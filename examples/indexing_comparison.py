#!/usr/bin/env python
"""Compare indexing schemes for particle distribution (paper §6.3).

For each registered space-filling ordering (Hilbert, snake, row-major,
Morton) this example partitions the same irregular particle set, then
reports the geometric quality metrics that drive communication —
subdomain bounding-box area, unique ghost grid points, communication
partners — and finally runs a short simulation per scheme to show the
modeled overhead ordering (Hilbert < Morton < snake < row-major, give or
take the Morton/snake order at small scale).

Run:  python examples/indexing_comparison.py
"""

import numpy as np

from repro import Grid2D, SimulationConfig, Simulation, gaussian_blob
from repro.analysis import format_table
from repro.core import ParticlePartitioner
from repro.core.alignment import bounding_box_area, ghost_node_counts, partner_counts
from repro.mesh import CurveBlockDecomposition

SCHEMES = ["hilbert", "morton", "snake", "rowmajor"]
P = 16


def geometry_metrics(scheme: str, grid: Grid2D, particles) -> list:
    partitioner = ParticlePartitioner(grid, scheme)
    decomp = CurveBlockDecomposition(grid, P, scheme)
    local = partitioner.initial_partition(particles, P)
    bbox = sum(bounding_box_area(lp, grid) for lp in local)
    ghosts = ghost_node_counts(local, grid, decomp)
    partners = partner_counts(local, grid, decomp)
    return [scheme, bbox, int(ghosts.sum()), int(ghosts.max()), int(partners.max())]


def simulated_overhead(scheme: str) -> float:
    config = SimulationConfig(
        nx=64, ny=32, nparticles=8192, p=P,
        distribution="irregular", scheme=scheme, policy="dynamic", seed=5,
    )
    return Simulation(config).run(80).overhead


def main() -> None:
    grid = Grid2D(64, 32)
    particles = gaussian_blob(grid, 8192, rng=5)

    rows = [geometry_metrics(s, grid, particles) for s in SCHEMES]
    print(format_table(
        ["scheme", "sum bbox area", "ghost nodes", "max ghosts/rank", "max partners"],
        rows,
        title=f"Subdomain geometry for {P} ranks, irregular distribution",
    ))

    print()
    overhead_rows = []
    for scheme in SCHEMES:
        overhead = simulated_overhead(scheme)
        overhead_rows.append([scheme, overhead])
        print(f"ran {scheme:<9s} overhead={overhead:.3f}s")
    print()
    print(format_table(
        ["scheme", "overhead (virtual s)"],
        overhead_rows,
        title="Modeled overhead of 80 iterations (cf. paper Table 2 / Figs 21-22)",
    ))
    best = min(overhead_rows, key=lambda r: r[1])
    print(f"\nlowest overhead: {best[0]} (the paper's choice)")


if __name__ == "__main__":
    main()
