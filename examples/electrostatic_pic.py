#!/usr/bin/env python
"""Compose an electrostatic PIC loop from the library's kernels.

The paper's code is electromagnetic, but the library's pieces compose
into the other classic variant: deposit charge, solve the periodic
Poisson problem for the potential, take E = -grad(phi), gather, push.
This example demonstrates the public kernel API (deposition, Poisson
solvers, interpolation, Boris push) outside the prebuilt steppers, and
checks the plasma-oscillation frequency against theory — a quantitative
physics validation.

Run:  python examples/electrostatic_pic.py
"""

import numpy as np

from repro import Grid2D, uniform_plasma
from repro.analysis import ascii_series
from repro.mesh import FieldState
from repro.pic import PoissonSolver
from repro.pic.deposition import deposit_charge_current
from repro.pic.interpolation import interpolate_fields
from repro.pic.push import boris_push


def main() -> None:
    grid = Grid2D(64, 16, lx=64.0, ly=16.0)
    solver = PoissonSolver(grid)
    # density=1 -> plasma frequency w_p = 1 in normalized units
    particles = uniform_plasma(grid, 64 * 16 * 16, vth=0.0005, density=1.0, rng=11)

    # Seed a small sinusoidal density perturbation by nudging positions.
    k = 2.0 * np.pi / grid.lx
    particles.x[:] = np.mod(particles.x + 0.1 * np.sin(k * particles.x), grid.lx)

    dt = 0.2
    steps = 320
    ez_amplitude = []
    fields = FieldState.zeros(grid)
    for _ in range(steps):
        # scatter: charge only (electrostatic)
        rho, _, _, _ = deposit_charge_current(grid, particles)
        # field solve: Poisson -> E
        phi = solver.solve_fft(rho)
        ex, ey = solver.electric_field(phi)
        fields.ex, fields.ey = ex, ey
        # gather + push
        e, b = interpolate_fields(grid, fields, particles)
        boris_push(grid, particles, e, b, dt)
        ez_amplitude.append(np.abs(ex).max())

    amplitude = np.array(ez_amplitude)
    print(ascii_series(amplitude, label="|Ex|max vs iteration (plasma oscillation)"))

    # measure the oscillation frequency from zero-crossings of the
    # dominant field mode; expect the plasma frequency w_p = 1 in
    # normalized units (density 1, q = m = 1).
    spectrum = np.abs(np.fft.rfft(amplitude - amplitude.mean()))
    freqs = np.fft.rfftfreq(steps, d=dt) * 2.0 * np.pi
    w_measured = freqs[np.argmax(spectrum[1:]) + 1]
    # |Ex| oscillates at twice the plasma frequency
    print(f"\nmeasured |E| oscillation frequency: {w_measured:.3f} "
          f"(theory: 2 * w_p = 2.000)")
    assert abs(w_measured - 2.0) < 0.25, "plasma frequency off — check the kernels"
    print("plasma oscillation frequency matches theory.")


if __name__ == "__main__":
    main()
