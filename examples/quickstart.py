#!/usr/bin/env python
"""Quickstart: run a parallel PIC simulation with dynamic redistribution.

Builds the paper's headline configuration at laptop scale — an irregular
(centre-concentrated) plasma on a simulated 16-processor CM-5 — runs 100
iterations under the dynamic (Stop-At-Rise) redistribution policy, and
prints the totals the paper's tables report.

Run:  python examples/quickstart.py
"""

from repro import Simulation, SimulationConfig
from repro.analysis import format_table


def main() -> None:
    config = SimulationConfig(
        nx=64,
        ny=32,
        nparticles=8192,  # 4 particles per cell, as in the paper
        p=16,
        distribution="irregular",
        scheme="hilbert",
        policy="dynamic",
        seed=1,
    )
    print(f"grid {config.nx}x{config.ny}, {config.nparticles} particles, "
          f"{config.p} virtual processors, policy={config.policy!r}")

    sim = Simulation(config)
    result = sim.run(100)

    print()
    print(format_table(
        ["quantity", "value"],
        [
            ["execution time (virtual s)", result.total_time],
            ["computation time (virtual s)", result.computation_time],
            ["overhead (virtual s)", result.overhead],
            ["redistributions triggered", result.n_redistributions],
            ["redistribution time (virtual s)", result.redistribution_time],
        ],
        title="100 iterations on the simulated CM-5",
    ))

    print()
    print("per-phase time (max over ranks, virtual s):")
    for phase, seconds in sorted(result.phase_breakdown.items()):
        print(f"  {phase:<15s} {seconds:8.3f}")

    first = result.iteration_times[:10].mean()
    last = result.iteration_times[-10:].mean()
    print()
    print(f"mean iteration time: first 10 = {first:.4f}s, last 10 = {last:.4f}s")
    print("(dynamic redistribution keeps the growth in check; try policy='static'")
    print(" in the config above to watch communication costs climb instead)")


if __name__ == "__main__":
    main()
