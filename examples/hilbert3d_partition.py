#!/usr/bin/env python
"""3-D extension demo: Hilbert partitioning of a 3-D particle cloud.

The paper works in 2-D but notes its indexing generalizes to n
dimensions.  This example partitions a 3-D centre blob over 16 ranks
with the n-D Hilbert transform versus the row-major baseline, and
compares the alignment and communication proxies.

Run:  python examples/hilbert3d_partition.py
"""

from repro.analysis import format_table
from repro.ext3d import (
    CurveBlockDecomposition3D,
    Grid3D,
    ParticlePartitioner3D,
    gaussian_blob_3d,
)


def main() -> None:
    grid = Grid3D(32, 32, 32)
    x, y, z = gaussian_blob_3d(grid, 32768, rng=9)
    print(f"{x.size} particles in a centre blob on a {grid.nx}^3 grid, 16 ranks")

    rows = []
    for scheme in ("hilbert", "rowmajor"):
        part = ParticlePartitioner3D(grid, 16, scheme)
        fractions = part.alignment_fraction(x, y, z)
        ghosts = part.ghost_vertex_count(x, y, z)
        decomp = CurveBlockDecomposition3D(grid, 16, scheme)
        surface = sum(decomp.surface_area(r) for r in range(16))
        rows.append([scheme, float(fractions.mean()), ghosts, surface])

    print()
    print(format_table(
        ["scheme", "mean alignment", "ghost vertices", "mesh surface cells"],
        rows,
        title="3-D partition quality (higher alignment / lower ghosts is better)",
    ))
    hil, row = rows
    print()
    print(f"Hilbert reduces ghost vertices by "
          f"{100 * (1 - hil[2] / row[2]):.0f}% versus row-major slabs, "
          "matching the 2-D result of the paper.")


if __name__ == "__main__":
    main()
