#!/usr/bin/env python
"""Physics demo: the two-stream instability on the sequential PIC.

Two counter-streaming electron beams are unstable: electrostatic waves
grow exponentially, feeding on the beams' kinetic energy, until the
beams trap and the growth saturates.  This exercises every phase of the
PIC loop end-to-end (scatter, Maxwell solve, gather, push) and prints
the field-energy history; the exponential-growth segment is the classic
correctness check for a PIC code.

Run:  python examples/two_stream_instability.py
"""

import numpy as np

from repro import Grid2D, SequentialPIC, two_stream
from repro.analysis import ascii_series


def main() -> None:
    grid = Grid2D(64, 8, lx=64.0, ly=8.0)
    # density=1 -> plasma frequency 1, so the instability growth is fast;
    # the default weakly-coupled density would take ~10x more steps.
    particles = two_stream(grid, 64 * 8 * 64, vdrift=0.2, vth=0.005, density=1.0, rng=7)
    sim = SequentialPIC(grid, particles, dt=0.5)

    print(f"{particles.n} particles in two beams (u = +/-0.2) on a {grid.nx}x{grid.ny} grid")
    e_field = []
    e_kinetic = []
    steps = 400
    for step in range(steps):
        sim.step()
        e_field.append(sim.fields.field_energy(grid))
        e_kinetic.append(sim.particles.kinetic_energy())

    e_field = np.array(e_field)
    e_kinetic = np.array(e_kinetic)

    print()
    print(ascii_series(np.log10(np.maximum(e_field, 1e-12)),
                       label="log10 field energy vs iteration"))

    growth = e_field[200] / max(e_field[10], 1e-12)
    print()
    print(f"field energy grew by a factor {growth:.3g} between steps 10 and 200")
    print(f"kinetic energy change: {e_kinetic[0]:.2f} -> {e_kinetic[-1]:.2f} "
          "(beams feed the wave)")
    assert growth > 10, "two-stream instability failed to grow — check the kernels"
    print("instability confirmed: exponential growth then saturation.")


if __name__ == "__main__":
    main()
