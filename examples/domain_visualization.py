#!/usr/bin/env python
"""Visualize alignment: mesh ownership vs particle placement.

Renders (as ASCII) the Hilbert mesh decomposition, the irregular
particle density, and the dominant particle owner per cell — before and
after a redistribution.  Before redistribution (after the blob has
drifted) the particle-owner map disagrees with the mesh map along the
blob edges; redistribution realigns them.

Run:  python examples/domain_visualization.py
"""

import numpy as np

from repro.analysis import density_map, ownership_map, particle_assignment_map
from repro.core import ParticlePartitioner, Redistributor
from repro.machine import VirtualMachine
from repro.mesh import CurveBlockDecomposition, Grid2D
from repro.particles import gaussian_blob
from repro.pic.push import boris_push


def agreement(grid, decomp, local):
    mesh_lines = ownership_map(decomp).splitlines()[1:]
    part_lines = particle_assignment_map(grid, local).splitlines()[1:]
    same = occupied = 0
    for mrow, prow in zip(mesh_lines, part_lines):
        for m, p in zip(mrow, prow):
            if p != ".":
                occupied += 1
                same += m == p
    return same / max(occupied, 1)


def main() -> None:
    grid = Grid2D(32, 16)
    particles = gaussian_blob(grid, 4096, vth=0.4, rng=11)
    p = 8
    vm = VirtualMachine(p)
    decomp = CurveBlockDecomposition(grid, p, "hilbert")
    partitioner = ParticlePartitioner(grid, "hilbert")
    redis = Redistributor(partitioner)
    local = redis.initialize(vm, partitioner.initial_partition(particles, p)).particles

    print(ownership_map(decomp))
    print()
    print(density_map(grid, particles))
    print()
    print(f"alignment right after distribution: {agreement(grid, decomp, local):.0%}")

    # let the blob fly apart ballistically for a while
    for parts in local:
        e = np.zeros((3, parts.n))
        b = np.zeros((3, parts.n))
        for _ in range(12):
            boris_push(grid, parts, e, b, dt=1.0)
    drifted = agreement(grid, decomp, local)
    print(f"alignment after 12 drift steps:     {drifted:.0%}")
    print()
    print(particle_assignment_map(grid, local))

    local = redis.redistribute(vm, local).particles
    realigned = agreement(grid, decomp, local)
    print()
    print(particle_assignment_map(grid, local))
    print()
    print(f"alignment after redistribution:     {realigned:.0%}")
    assert realigned > drifted
    print("redistribution restored mesh/particle alignment.")


if __name__ == "__main__":
    main()
