#!/usr/bin/env python
"""Compare redistribution policies on an irregular workload (paper §6.1–6.2).

Runs the same drifting centre-blob plasma under the static baseline,
several periodic policies, and the dynamic Stop-At-Rise policy, then
prints the total-time comparison of the paper's Figures 16/20 and an
ASCII rendering of the per-iteration execution-time series (Figure 17).

Run:  python examples/policy_comparison.py
"""

from repro import Simulation, SimulationConfig
from repro.analysis import ascii_series, format_table

ITERATIONS = 150
POLICIES = ["static", "periodic:50", "periodic:25", "periodic:10", "periodic:5", "dynamic"]


def run(policy: str):
    config = SimulationConfig(
        nx=64,
        ny=32,
        nparticles=8192,
        p=16,
        distribution="irregular",
        policy=policy,
        seed=3,
        vth=0.08,  # a warm blob so subdomains drift visibly
    )
    return Simulation(config).run(ITERATIONS)


def main() -> None:
    results = {}
    for policy in POLICIES:
        results[policy] = run(policy)
        print(f"ran {policy:<12s} total={results[policy].total_time:8.3f}s")

    rows = [
        [
            policy,
            r.total_time,
            r.overhead,
            r.n_redistributions,
            r.redistribution_time,
        ]
        for policy, r in results.items()
    ]
    print()
    print(format_table(
        ["policy", "total (s)", "overhead (s)", "#redis", "redis time (s)"],
        rows,
        title=f"Policy comparison, {ITERATIONS} iterations (cf. paper Figs 16 & 20)",
    ))

    best_periodic = min(
        results[p].total_time for p in POLICIES if p.startswith("periodic")
    )
    print()
    print(f"best periodic total: {best_periodic:.3f}s; "
          f"dynamic total: {results['dynamic'].total_time:.3f}s "
          "(no tuning required)")

    print()
    print(ascii_series(results["static"].iteration_times,
                       label="static: per-iteration time (s), cf. Fig 17"))
    print()
    print(ascii_series(results["dynamic"].iteration_times,
                       label="dynamic: per-iteration time (s)"))


if __name__ == "__main__":
    main()
