#!/usr/bin/env python
"""Profile where the virtual time goes, phase by phase.

Attaches a :class:`repro.machine.PhaseTrace` to a run with periodic
redistribution and renders an ASCII stacked-share profile: scatter and
gather shares grow as the particle subdomains drift, and redistribution
spikes (R) appear at every firing.

Run:  python examples/phase_profile.py
"""

from repro import Simulation, SimulationConfig
from repro.analysis import format_table
from repro.machine import PhaseTrace


def main() -> None:
    config = SimulationConfig(
        nx=64,
        ny=32,
        nparticles=8192,
        p=16,
        distribution="irregular",
        policy="periodic:25",
        seed=3,
        vth=0.08,
    )
    sim = Simulation(config)
    trace = PhaseTrace(sim.vm)

    iterations = 100
    for it in range(iterations):
        sim.pic.step()
        if sim.policy.should_redistribute(it):
            result = sim.redistributor.redistribute(sim.vm, sim.pic.particles)
            sim.pic.particles = result.particles
        trace.snapshot()

    print(trace.render(width=60))
    print()
    rows = sorted(trace.totals().items(), key=lambda kv: -kv[1])
    print(format_table(
        ["phase", "total (virtual s)"],
        [[k, v] for k, v in rows],
        title=f"Phase totals over {iterations} iterations",
    ))


if __name__ == "__main__":
    main()
