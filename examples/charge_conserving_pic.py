#!/usr/bin/env python
"""Era kernel vs modern kernel: Gauss-law error over a run.

The 1996-era PIC loop (plain CIC current deposition + collocated FDTD,
as in the paper) violates the discrete continuity equation, so
``div E - rho`` drifts and needs Marder cleaning.  The modern loop
(Yee-staggered FDTD + Umeda zigzag deposition) conserves charge
*exactly*.  This example runs both on the same plasma and prints the
Gauss-law error histories side by side.

Run:  python examples/charge_conserving_pic.py
"""

import numpy as np

from repro import Grid2D, SequentialPIC, uniform_plasma
from repro.analysis import ascii_series, format_table
from repro.pic.yee import YeePIC


def main() -> None:
    grid = Grid2D(32, 32)
    steps = 150

    era = SequentialPIC(grid, uniform_plasma(grid, 8192, density=1.0, rng=21))
    yee = YeePIC(grid, uniform_plasma(grid, 8192, density=1.0, rng=21), dt=era.dt)

    era_err, yee_err = [], []
    for _ in range(steps):
        era.step()
        yee.step()
        era_err.append(float(np.abs(era.solver.gauss_residual(era.fields)).max()))
        yee_err.append(yee.gauss_error())

    print(ascii_series(np.log10(np.maximum(era_err, 1e-20)),
                       label="log10 |div E - rho|: era kernel (CIC J + Marder cleaning)"))
    print()
    print(ascii_series(np.log10(np.maximum(yee_err, 1e-20)),
                       label="log10 |div E - rho|: modern kernel (Yee + zigzag)"))
    print()
    print(format_table(
        ["loop", "final Gauss error", "max Gauss error"],
        [
            ["era (paper-style)", era_err[-1], max(era_err)],
            ["modern (Yee + zigzag)", yee_err[-1], max(yee_err)],
        ],
    ))
    assert max(yee_err) < 1e-11, "zigzag + Yee must conserve charge exactly"
    print("\nmodern loop conserves charge to machine precision;")
    print("the era loop relies on Marder cleaning to keep the error bounded.")


if __name__ == "__main__":
    main()
