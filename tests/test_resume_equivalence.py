"""The exact-resume contract (DESIGN.md §5.2).

Checkpoint at iteration k, restore with ``Simulation.from_checkpoint``,
run the rest: the result must equal the uninterrupted run *exactly* —
per-iteration records, virtual times, comm-stat series, redistribution
schedule and costs — and the physical state must match at atol=0.
"""

import numpy as np
import pytest

from repro.pic import Simulation, SimulationConfig

TOTAL = 8
SPLIT = 4


def _config(**overrides) -> SimulationConfig:
    base = dict(
        nx=32,
        ny=16,
        nparticles=1024,
        p=4,
        distribution="irregular",
        vth=0.3,
        seed=3,
    )
    base.update(overrides)
    return SimulationConfig(**base)


def _assert_results_identical(full, resumed):
    assert len(full.records) == len(resumed.records)
    for a, b in zip(full.records, resumed.records):
        assert a == b, f"iteration {a.iteration}: {a} != {b}"
    assert full.total_time == resumed.total_time
    assert full.computation_time == resumed.computation_time
    assert full.n_redistributions == resumed.n_redistributions
    assert full.redistribution_time == resumed.redistribution_time
    assert full.phase_breakdown == resumed.phase_breakdown
    assert np.array_equal(full.scatter_max_bytes, resumed.scatter_max_bytes)
    assert np.array_equal(full.scatter_max_msgs, resumed.scatter_max_msgs)
    assert full.to_dict() == resumed.to_dict()


def _assert_state_identical(sim_a, sim_b):
    assert len(sim_a.pic.particles) == len(sim_b.pic.particles)
    for parts_a, parts_b in zip(sim_a.pic.particles, sim_b.pic.particles):
        assert np.array_equal(parts_a.ids, parts_b.ids)
        assert np.array_equal(parts_a.to_matrix(), parts_b.to_matrix())
    for name in ("ex", "ey", "ez", "bx", "by", "bz", "rho"):
        assert np.array_equal(
            getattr(sim_a.pic.fields, name), getattr(sim_b.pic.fields, name)
        ), f"field {name} diverged"
    assert np.array_equal(sim_a.vm.clocks, sim_b.vm.clocks)
    assert np.array_equal(sim_a.vm.compute_time, sim_b.vm.compute_time)
    assert sim_a.vm.ops.as_dict() == sim_b.vm.ops.as_dict()


def _run_split(config) -> tuple:
    """Return (uninterrupted sim+result, resumed sim+result) for config."""
    full_sim = Simulation(config)
    full = full_sim.run(TOTAL)

    first = Simulation(config)
    first.run(SPLIT)
    path = None

    import tempfile
    from pathlib import Path

    tmp = Path(tempfile.mkdtemp(prefix="repro_resume_"))
    path = first.checkpoint(tmp / "ck.npz")

    resumed_sim = Simulation.from_checkpoint(path)
    resumed = resumed_sim.run(TOTAL - SPLIT)
    return full_sim, full, resumed_sim, resumed


@pytest.mark.parametrize("engine", ["flat", "looped"])
@pytest.mark.parametrize("movement", ["lagrangian", "eulerian"])
@pytest.mark.parametrize("policy", ["static", "periodic:3", "dynamic"])
def test_era_kernel_matrix(engine, movement, policy):
    config = _config(engine=engine, movement=movement, policy=policy)
    full_sim, full, resumed_sim, resumed = _run_split(config)
    _assert_results_identical(full, resumed)
    _assert_state_identical(full_sim, resumed_sim)


@pytest.mark.parametrize("policy", ["static", "periodic:3", "dynamic"])
def test_modern_kernel(policy):
    config = _config(kernel="modern", policy=policy)
    full_sim, full, resumed_sim, resumed = _run_split(config)
    _assert_results_identical(full, resumed)
    _assert_state_identical(full_sim, resumed_sim)


def test_adaptive_rebalancing_bounds_restored():
    """Adaptive partitioning moves decomposition bounds at runtime; the
    checkpoint must carry them or the resumed ownership map diverges."""
    config = _config(movement="eulerian", partitioning="adaptive", policy="periodic:3")
    full_sim, full, resumed_sim, resumed = _run_split(config)
    _assert_results_identical(full, resumed)
    _assert_state_identical(full_sim, resumed_sim)
    assert np.array_equal(
        full_sim.decomp.curve_bounds, resumed_sim.decomp.curve_bounds
    )


def test_resume_of_resume():
    """Chained checkpoints: 3 + 3 + 2 equals the uninterrupted 8."""
    import tempfile
    from pathlib import Path

    config = _config(policy="dynamic")
    full = Simulation(config).run(TOTAL)

    tmp = Path(tempfile.mkdtemp(prefix="repro_chain_"))
    sim = Simulation(config)
    sim.run(3)
    sim.checkpoint(tmp / "a.npz")
    sim = Simulation.from_checkpoint(tmp / "a.npz")
    sim.run(3)
    sim.checkpoint(tmp / "b.npz")
    sim = Simulation.from_checkpoint(tmp / "b.npz")
    resumed = sim.run(2)
    _assert_results_identical(full, resumed)


def test_checkpoint_every_writes_during_run(tmp_path):
    config = _config()
    sim = Simulation(config)
    path = tmp_path / "periodic.npz"
    sim.run(6, checkpoint_every=3, checkpoint_path=path)
    assert path.exists()
    resumed = Simulation.from_checkpoint(path)
    # last write happened at iteration 6
    assert resumed.iteration == 6
    assert len(resumed.records) == 6


def test_checkpoint_every_requires_path():
    sim = Simulation(_config())
    with pytest.raises(ValueError, match="checkpoint_path"):
        sim.run(2, checkpoint_every=1)


def test_setup_cost_survives():
    config = _config(policy="dynamic")
    sim = Simulation(config)
    sim.run(2)
    import tempfile
    from pathlib import Path

    path = sim.checkpoint(Path(tempfile.mkdtemp(prefix="repro_sc_")) / "ck")
    resumed = Simulation.from_checkpoint(path)
    assert resumed._setup_cost == sim._setup_cost
