"""Tests for parallel sample sort and sorting primitives."""

import numpy as np
import pytest

from repro.machine import MachineModel, VirtualMachine
from repro.particles.sort import local_sort_by_keys, parallel_sample_sort, regular_samples


class TestRegularSamples:
    def test_spacing(self):
        keys = np.arange(100)
        samples = regular_samples(keys, 4)
        assert samples.size == 4
        assert np.all(np.diff(samples) > 0)

    def test_short_array(self):
        assert regular_samples(np.array([5, 6]), 10).size == 2

    def test_empty(self):
        assert regular_samples(np.array([]), 3).size == 0

    def test_bad_count(self):
        with pytest.raises(ValueError):
            regular_samples(np.arange(5), 0)


class TestLocalSort:
    def test_stable(self):
        keys = np.array([2, 1, 2, 1])
        payload = np.arange(4).reshape(4, 1)
        k, p = local_sort_by_keys(keys, payload)
        assert k.tolist() == [1, 1, 2, 2]
        assert p.ravel().tolist() == [1, 3, 0, 2]

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            local_sort_by_keys(np.arange(3), np.zeros((4, 1)))


class TestParallelSampleSort:
    @staticmethod
    def _random_input(p, n_per, seed=0):
        rng = np.random.default_rng(seed)
        keys = [rng.integers(0, 10000, n_per).astype(np.int64) for _ in range(p)]
        payloads = [k.reshape(-1, 1).astype(float) for k in keys]
        return keys, payloads

    def test_global_order(self):
        vm = VirtualMachine(4, MachineModel.cm5())
        keys, payloads = self._random_input(4, 200)
        keys_out, payloads_out, splitters = parallel_sample_sort(vm, keys, payloads)
        merged = np.concatenate(keys_out)
        assert np.array_equal(merged, np.sort(np.concatenate(keys)))
        assert splitters.size == 3

    def test_payload_follows_keys(self):
        vm = VirtualMachine(4, MachineModel.cm5())
        keys, payloads = self._random_input(4, 100, seed=1)
        keys_out, payloads_out, _ = parallel_sample_sort(vm, keys, payloads)
        for k, m in zip(keys_out, payloads_out):
            assert np.array_equal(k.astype(float), m.ravel())

    def test_nothing_lost(self):
        vm = VirtualMachine(8, MachineModel.cm5())
        keys, payloads = self._random_input(8, 50, seed=2)
        keys_out, _, _ = parallel_sample_sort(vm, keys, payloads)
        assert sum(k.size for k in keys_out) == 400

    def test_roughly_balanced(self):
        vm = VirtualMachine(4, MachineModel.cm5())
        keys, payloads = self._random_input(4, 1000, seed=3)
        keys_out, _, _ = parallel_sample_sort(vm, keys, payloads)
        counts = np.array([k.size for k in keys_out])
        assert counts.max() < 2.0 * counts.mean()

    def test_charges_time(self):
        vm = VirtualMachine(4, MachineModel.cm5())
        keys, payloads = self._random_input(4, 100)
        parallel_sample_sort(vm, keys, payloads)
        assert vm.compute_time.max() > 0 and vm.comm_time.max() > 0

    def test_empty_ranks_tolerated(self):
        vm = VirtualMachine(4, MachineModel.cm5())
        keys = [np.arange(100, dtype=np.int64), np.empty(0, dtype=np.int64),
                np.arange(50, dtype=np.int64), np.empty(0, dtype=np.int64)]
        payloads = [k.reshape(-1, 1).astype(float) for k in keys]
        keys_out, _, _ = parallel_sample_sort(vm, keys, payloads)
        assert sum(k.size for k in keys_out) == 150
        assert np.array_equal(np.concatenate(keys_out), np.sort(np.concatenate(keys)))

    def test_single_rank(self):
        vm = VirtualMachine(1, MachineModel.cm5())
        keys = [np.array([3, 1, 2], dtype=np.int64)]
        payloads = [keys[0].reshape(-1, 1).astype(float)]
        keys_out, payloads_out, splitters = parallel_sample_sort(vm, keys, payloads)
        assert keys_out[0].tolist() == [1, 2, 3]
        assert splitters.size == 0

    def test_duplicate_keys(self):
        vm = VirtualMachine(4, MachineModel.cm5())
        keys = [np.full(100, 7, dtype=np.int64) for _ in range(4)]
        payloads = [np.arange(100.0).reshape(-1, 1) for _ in range(4)]
        keys_out, _, _ = parallel_sample_sort(vm, keys, payloads)
        assert sum(k.size for k in keys_out) == 400
        assert np.all(np.concatenate(keys_out) == 7)
