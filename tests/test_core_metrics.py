"""Unit tests pinning the ``load_imbalance`` contract."""

import numpy as np
import pytest

from repro.core.metrics import load_imbalance, particle_counts
from repro.particles.arrays import ParticleArray


class TestLoadImbalance:
    def test_all_zero_is_balanced_by_convention(self):
        assert load_imbalance(np.zeros(4, dtype=np.int64)) == 1.0

    def test_single_rank_all_zero(self):
        assert load_imbalance(np.array([0])) == 1.0

    def test_perfectly_balanced(self):
        assert load_imbalance(np.array([7, 7, 7, 7])) == 1.0

    @pytest.mark.parametrize("p", [1, 2, 5, 16])
    def test_one_rank_has_everything(self, p):
        counts = np.zeros(p, dtype=np.int64)
        counts[0] = 1234
        assert load_imbalance(counts) == pytest.approx(float(p))

    def test_generic_ratio(self):
        # mean = 5, max = 8
        assert load_imbalance(np.array([8, 2, 5, 5])) == pytest.approx(8 / 5)

    def test_always_finite_and_at_least_one(self):
        rng = np.random.default_rng(0)
        for _ in range(50):
            counts = rng.integers(0, 100, size=rng.integers(1, 12))
            v = load_imbalance(counts)
            assert np.isfinite(v)
            assert v >= 1.0 or counts.sum() == 0

    def test_accepts_float_and_list_inputs(self):
        assert load_imbalance([3.0, 1.0]) == pytest.approx(1.5)


class TestParticleCounts:
    def test_counts(self):
        parts = [ParticleArray.empty(3), ParticleArray.empty(0), ParticleArray.empty(7)]
        np.testing.assert_array_equal(particle_counts(parts), [3, 0, 7])
