"""Tests for invariant guards, the exception taxonomy, and strict loads."""

import numpy as np
import pytest

from repro.mesh import FieldState, Grid2D
from repro.particles import uniform_plasma
from repro.pic import Simulation, SimulationConfig
from repro.pic.checkpoint import load_checkpoint
from repro.util.errors import (
    CheckpointError,
    FaultError,
    InvalidRankError,
    MessageLost,
    RankFailure,
    ReproError,
    SimulationIntegrityError,
)
from repro.util.guards import GUARD_MODES, InvariantGuard


@pytest.fixture
def parts(grid):
    p = uniform_plasma(grid, 256, rng=0)
    return [p.take(np.arange(0, 128)), p.take(np.arange(128, 256))]


class TestTaxonomy:
    def test_single_root(self):
        for exc in (
            FaultError,
            RankFailure,
            MessageLost,
            SimulationIntegrityError,
            CheckpointError,
            InvalidRankError,
        ):
            assert issubclass(exc, ReproError)

    def test_fault_family(self):
        assert issubclass(RankFailure, FaultError)
        assert issubclass(MessageLost, FaultError)

    def test_backwards_compatible_value_errors(self):
        # CheckpointError was a ValueError subclass before the taxonomy;
        # existing `except ValueError` call sites must keep catching it.
        assert issubclass(CheckpointError, ValueError)
        assert issubclass(InvalidRankError, ValueError)

    def test_rank_failure_carries_context(self):
        err = RankFailure(3, 7, "scatter")
        assert (err.rank, err.iteration, err.phase) == (3, 7, "scatter")
        assert "rank 3" in str(err)


class TestInvariantGuard:
    def test_mode_validation(self):
        with pytest.raises(ValueError, match="warn|strict"):
            InvariantGuard("off")
        assert GUARD_MODES == ("off", "warn", "strict")

    def test_clean_state_passes(self, parts):
        guard = InvariantGuard("strict")
        guard.capture(parts)
        guard.check_particles(parts, "test")
        assert guard.violations == []

    def test_count_loss_detected(self, parts):
        guard = InvariantGuard("strict")
        guard.capture(parts)
        with pytest.raises(SimulationIntegrityError, match="particle count"):
            guard.check_particles([parts[0]], "test")

    def test_charge_drift_detected(self, parts):
        guard = InvariantGuard("strict")
        guard.capture(parts)
        parts[0].q[:] *= 1.5
        with pytest.raises(SimulationIntegrityError, match="charge"):
            guard.check_particles(parts, "test")

    def test_nan_position_detected(self, parts):
        guard = InvariantGuard("strict")
        guard.capture(parts)
        parts[1].x[0] = np.nan
        with pytest.raises(SimulationIntegrityError, match="non-finite"):
            guard.check_particles(parts, "test")

    def test_field_nan_detected(self, grid):
        guard = InvariantGuard("strict")
        fields = FieldState.zeros(grid)
        fields.rho[3, 4] = np.inf
        with pytest.raises(SimulationIntegrityError, match="rho"):
            guard.check_fields(fields, "test")

    def test_warn_mode_warns_and_continues(self, parts):
        guard = InvariantGuard("warn")
        guard.capture(parts)
        with pytest.warns(UserWarning, match="particle count"):
            guard.check_particles([parts[0]], "test")
        # both the count and the consequent charge violation are recorded
        assert len(guard.violations) == 2  # recorded, not raised

    def test_tiny_reassociation_tolerated(self, parts):
        guard = InvariantGuard("strict")
        guard.capture(parts)
        parts[0].q[0] += 1e-14  # float-reassociation scale noise
        guard.check_particles(parts, "test")
        assert guard.violations == []


class TestSimulationIntegration:
    def _config(self, **kw):
        base = dict(nx=16, ny=8, nparticles=256, p=2, seed=0)
        base.update(kw)
        return SimulationConfig(**base)

    def test_guards_config_validation(self):
        with pytest.raises(ValueError, match="guards"):
            self._config(guards="maybe")

    def test_off_installs_no_guard(self):
        sim = Simulation(self._config(guards="off"))
        assert sim.guard is None and sim.pic.guard is None

    def test_guarded_run_is_clean(self):
        sim = Simulation(self._config(guards="strict"))
        sim.run(3)
        assert sim.guard.violations == []

    def test_guard_catches_live_corruption(self):
        sim = Simulation(self._config(guards="strict"))
        sim.run(1)
        sim.pic.particles[0].x[0] = np.nan
        with pytest.raises(SimulationIntegrityError):
            sim.run(1)

    def test_guard_does_not_change_accounting(self):
        off = Simulation(self._config(guards="off"))
        strict = Simulation(self._config(guards="strict"))
        r_off, r_strict = off.run(4), strict.run(4)
        assert r_off.total_time == r_strict.total_time
        assert off.vm.state_dict() == strict.vm.state_dict()


class TestStrictCheckpointLoad:
    def _write_v1(self, tmp_path, grid):
        parts = uniform_plasma(grid, 64, rng=0)
        fields = FieldState.zeros(grid)
        payload = {
            "version": np.array([1]),
            "meta": np.array([grid.nx, grid.ny, 2, 1], dtype=np.int64),
            "extent": np.array([grid.lx, grid.ly]),
            "rank0_matrix": parts.to_matrix(),
        }
        for name in ("ex", "ey", "ez", "bx", "by", "bz", "jx", "jy", "jz", "rho"):
            payload[f"field_{name}"] = getattr(fields, name)
        path = tmp_path / "legacy.npz"
        np.savez(path, **payload)
        return path

    def test_v1_strict_load_refused(self, tmp_path, grid):
        path = self._write_v1(tmp_path, grid)
        with pytest.raises(CheckpointError, match="format-v1"):
            load_checkpoint(path, strict=True)

    def test_v1_lenient_load_still_warns(self, tmp_path, grid):
        path = self._write_v1(tmp_path, grid)
        with pytest.warns(UserWarning, match="format-v1"):
            data = load_checkpoint(path)
        assert data.version == 1 and data.run_state is None

    def test_from_checkpoint_strict_guards_refuse_v1(self, tmp_path, grid):
        path = self._write_v1(tmp_path, grid)
        with pytest.raises(CheckpointError, match="strict"):
            Simulation.from_checkpoint(path, guards="strict")

    def test_from_checkpoint_guards_override(self, tmp_path):
        sim = Simulation(SimulationConfig(nx=16, ny=8, nparticles=256, p=2, seed=0))
        sim.run(2)
        path = sim.checkpoint(tmp_path / "ck.npz")
        resumed = Simulation.from_checkpoint(path, guards="warn")
        assert resumed.config.guards == "warn"
        assert resumed.guard is not None and resumed.guard.mode == "warn"

    def test_from_checkpoint_guards_validated(self, tmp_path):
        with pytest.raises(ValueError, match="guards"):
            Simulation.from_checkpoint(tmp_path / "nope.npz", guards="loud")
