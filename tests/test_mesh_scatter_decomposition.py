"""Tests for the cyclic (scatter) decomposition baseline."""

import numpy as np
import pytest

from repro.core import ParticlePartitioner
from repro.machine import MachineModel, VirtualMachine
from repro.mesh import CurveBlockDecomposition, Grid2D, HaloSchedule, ScatterDecomposition
from repro.particles import gaussian_blob, uniform_plasma
from repro.pic import ParallelPIC, SequentialPIC


class TestOwnership:
    def test_cyclic_assignment(self, grid):
        decomp = ScatterDecomposition(grid, 4)  # 2x2 processor grid
        # first row of cells alternates between ranks 0 and 1
        owners = decomp.owner_of_cells(np.arange(4))
        assert owners.tolist() == [0, 1, 0, 1]
        # second row alternates between ranks 2 and 3
        owners = decomp.owner_of_cells(np.arange(grid.nx, grid.nx + 4))
        assert owners.tolist() == [2, 3, 2, 3]

    def test_perfectly_balanced(self, grid):
        decomp = ScatterDecomposition(grid, 4)
        counts = decomp.cell_counts()
        assert counts.max() - counts.min() <= 1

    def test_balances_any_load_pattern(self):
        """Even a corner-concentrated blob is spread evenly — the one
        virtue of scatter decomposition."""
        grid = Grid2D(32, 32)
        parts = gaussian_blob(grid, 8192, sigma_frac=0.08, center=(8.0, 8.0), rng=0)
        decomp = ScatterDecomposition(grid, 8)
        cells = grid.cell_id_of_positions(parts.x, parts.y)
        counts = np.bincount(decomp.owner_of_cells(cells), minlength=8)
        assert counts.max() < 1.5 * counts.mean()

    def test_out_of_range(self, grid):
        with pytest.raises(ValueError):
            ScatterDecomposition(grid, 4).owner_of_cells(np.array([grid.ncells]))


class TestAntiLocality:
    def test_every_node_is_boundary(self, grid):
        """With p > 2, every owned node has off-rank stencil neighbours."""
        decomp = ScatterDecomposition(grid, 4)
        for r in range(4):
            assert decomp.boundary_node_count(r) == decomp.cell_counts()[r]

    def test_halo_far_larger_than_block(self, grid):
        scatter = HaloSchedule(ScatterDecomposition(grid, 4))
        block = HaloSchedule(CurveBlockDecomposition(grid, 4, "hilbert"))
        assert scatter.halo_sizes().sum() > 2 * block.halo_sizes().sum()


class TestPhysicsStillExact:
    def test_parallel_matches_sequential(self):
        """Anti-locality costs communication, never correctness."""
        grid = Grid2D(16, 8)
        particles = uniform_plasma(grid, 512, rng=1)
        vm = VirtualMachine(4, MachineModel.cm5())
        decomp = ScatterDecomposition(grid, 4)
        local = ParticlePartitioner(grid).initial_partition(particles, 4)
        pic = ParallelPIC(vm, grid, decomp, local)
        seq = SequentialPIC(grid, particles.copy(), dt=pic.dt)
        for _ in range(5):
            pic.step()
            seq.step()
        par = pic.all_particles()
        po, so = np.argsort(par.ids), np.argsort(seq.particles.ids)
        np.testing.assert_allclose(par.x[po], seq.particles.x[so], atol=1e-9)

    def test_scatter_traffic_dwarfs_block_decomposition(self):
        grid = Grid2D(16, 16)
        particles = uniform_plasma(grid, 2048, rng=2)

        def traffic(decomp):
            vm = VirtualMachine(4, MachineModel.cm5())
            local = ParticlePartitioner(grid).initial_partition(particles, 4)
            pic = ParallelPIC(vm, grid, decomp, local)
            pic.step()
            return vm.stats.phase("scatter").total_bytes

        cyclic = traffic(ScatterDecomposition(grid, 4))
        block = traffic(CurveBlockDecomposition(grid, 4, "hilbert"))
        assert cyclic > 3 * block
