"""Tests for the scatter phase (CIC deposition)."""

import numpy as np
import pytest

from repro.mesh import Grid2D
from repro.particles import ParticleArray, uniform_plasma
from repro.pic.deposition import accumulate_entries, deposit_charge_current, deposition_entries


def single_particle(grid, x, y, ux=0.0, uy=0.0, uz=0.0, q=-1.0, w=1.0):
    return ParticleArray(
        x=np.array([x]), y=np.array([y]),
        ux=np.array([ux]), uy=np.array([uy]), uz=np.array([uz]),
        q=np.array([q]), m=np.array([1.0]), w=np.array([w]),
        ids=np.array([0], dtype=np.int64),
    )


class TestDepositionEntries:
    def test_shapes(self, grid, uniform_particles):
        nodes, values = deposition_entries(grid, uniform_particles)
        n = uniform_particles.n
        assert nodes.shape == (n, 4)
        assert values.shape == (4, n, 4)

    def test_charge_channel_sums_to_particle_charge(self, grid):
        parts = single_particle(grid, 3.3, 2.7, w=2.0)
        _, values = deposition_entries(grid, parts)
        assert values[0].sum() == pytest.approx(-2.0)  # w * q

    def test_current_uses_velocity_not_momentum(self, grid):
        # ux = 3 => gamma ~ sqrt(10), vx = 3/sqrt(10)
        parts = single_particle(grid, 1.5, 1.5, ux=3.0)
        _, values = deposition_entries(grid, parts)
        vx = 3.0 / np.sqrt(10.0)
        assert values[1].sum() == pytest.approx(-vx)

    def test_zero_velocity_no_current(self, grid):
        parts = single_particle(grid, 1.2, 3.4)
        _, values = deposition_entries(grid, parts)
        assert np.all(values[1:] == 0)


class TestAccumulate:
    def test_duplicate_nodes_summed(self):
        nodes = np.array([2, 2, 5])
        values = np.ones((4, 3))
        acc = accumulate_entries(8, nodes, values)
        assert acc[0, 2] == 2.0 and acc[0, 5] == 1.0

    def test_total_preserved(self, grid, uniform_particles):
        nodes, values = deposition_entries(grid, uniform_particles)
        acc = accumulate_entries(grid.nnodes, nodes, values)
        assert acc[0].sum() == pytest.approx(values[0].sum())


class TestDeposit:
    def test_total_charge_conserved(self, grid, uniform_particles):
        rho, _, _, _ = deposit_charge_current(grid, uniform_particles)
        total = rho.sum() * grid.dx * grid.dy
        expected = (uniform_particles.w * uniform_particles.q).sum()
        assert total == pytest.approx(expected)

    def test_particle_on_node_deposits_to_single_node(self, grid):
        parts = single_particle(grid, 5.0, 3.0)
        rho, _, _, _ = deposit_charge_current(grid, parts)
        assert rho[3, 5] == pytest.approx(-1.0 / (grid.dx * grid.dy))
        assert np.count_nonzero(rho) == 1

    def test_cell_center_spreads_equally(self, grid):
        parts = single_particle(grid, 5.5, 3.5)
        rho, _, _, _ = deposit_charge_current(grid, parts)
        for iy, ix in [(3, 5), (3, 6), (4, 5), (4, 6)]:
            assert rho[iy, ix] == pytest.approx(-0.25 / (grid.dx * grid.dy))

    def test_periodic_wrap_deposition(self, grid):
        parts = single_particle(grid, grid.lx - 0.5, grid.ly - 0.5)
        rho, _, _, _ = deposit_charge_current(grid, parts)
        # corners wrap: nodes (ny-1, nx-1), (ny-1, 0), (0, nx-1), (0, 0)
        assert rho[0, 0] != 0 and rho[grid.ny - 1, grid.nx - 1] != 0

    def test_uniform_plasma_rho_near_constant(self):
        grid = Grid2D(16, 16)
        parts = uniform_plasma(grid, 16 * 16 * 64, density=1.0, rng=0)
        rho, _, _, _ = deposit_charge_current(grid, parts)
        assert abs(rho.mean() + 1.0) < 0.01  # density ~ -1 (electrons)
        assert rho.std() < 0.3

    def test_density_independent_of_particle_count(self):
        grid = Grid2D(8, 8)
        rho_a, _, _, _ = deposit_charge_current(grid, uniform_plasma(grid, 4096, rng=1))
        rho_b, _, _, _ = deposit_charge_current(grid, uniform_plasma(grid, 16384, rng=1))
        assert rho_a.mean() == pytest.approx(rho_b.mean(), rel=0.05)

    def test_empty_particles(self, grid):
        rho, jx, jy, jz = deposit_charge_current(grid, ParticleArray.empty(0))
        assert rho.sum() == 0 and jx.sum() == 0
