"""Taxonomy tests for repro.util.errors.

The job service ships exceptions across process boundaries, so every
public exception must (a) subclass ReproError, (b) round-trip through
pickle with attributes and message intact, and (c) carry an actionable
message — not a bare class name.
"""

import pickle

import pytest

import repro.util.errors as errors_mod
from repro.util.errors import (
    CacheCorruption,
    CheckpointError,
    FaultError,
    InvalidRankError,
    JobError,
    JobTimeout,
    MessageLost,
    RankFailure,
    ReproError,
    SimulationIntegrityError,
)

#: One representative, fully-populated instance per public exception.
INSTANCES = [
    ReproError("the run state is inconsistent; rebuild from the last checkpoint"),
    FaultError("rank 2 reported an unrecoverable transport fault"),
    RankFailure(3, iteration=17, phase="scatter"),
    MessageLost(1, 2, attempts=4),
    SimulationIntegrityError("charge not conserved: drift 1.2e-3 exceeds 1e-9 budget"),
    CheckpointError("file run.ck.npz is truncated: missing key 'fields/ez'"),
    InvalidRankError("destination rank 9 outside [0, 8)"),
    JobError("sweep-seed=3", "worker died (exitcode -9)", attempt=1),
    JobTimeout("sweep-seed=5", 30.0, 31.7, iteration=42, attempt=2),
    CacheCorruption("/cache/ab/abc123.json", "payload digest mismatch"),
]


def test_every_public_exception_is_covered():
    """INSTANCES spans __all__ exactly, so new classes must join the suite."""
    covered = {type(e).__name__ for e in INSTANCES}
    assert covered == set(errors_mod.__all__)


@pytest.mark.parametrize("exc", INSTANCES, ids=lambda e: type(e).__name__)
class TestTaxonomy:
    def test_subclasses_repro_error(self, exc):
        assert isinstance(exc, ReproError)

    def test_message_is_actionable(self, exc):
        # more than a class name: a sentence with concrete detail
        text = str(exc)
        assert len(text) > 20
        assert text != type(exc).__name__

    def test_pickle_roundtrip(self, exc):
        clone = pickle.loads(pickle.dumps(exc))
        assert type(clone) is type(exc)
        assert str(clone) == str(exc)
        assert clone.args == exc.args

    def test_pickle_preserves_attributes(self, exc):
        clone = pickle.loads(pickle.dumps(exc))
        public = {
            k: v for k, v in vars(exc).items() if not k.startswith("_")
        }
        for key, value in public.items():
            assert getattr(clone, key) == value, key


class TestHierarchy:
    def test_fault_subtypes(self):
        assert issubclass(RankFailure, FaultError)
        assert issubclass(MessageLost, FaultError)

    def test_job_timeout_is_job_error(self):
        assert issubclass(JobTimeout, JobError)

    def test_value_error_compatibility(self):
        # pre-existing except ValueError call sites keep working
        assert issubclass(CheckpointError, ValueError)
        assert issubclass(InvalidRankError, ValueError)

    def test_rank_failure_attributes(self):
        exc = RankFailure(5, iteration=3, phase="gather")
        assert (exc.rank, exc.iteration, exc.phase) == (5, 3, "gather")

    def test_job_timeout_attributes(self):
        exc = JobTimeout("j", 10.0, 12.5, iteration=7)
        assert exc.limit == 10.0
        assert exc.elapsed == 12.5
        assert exc.iteration == 7
