"""Tests for the Hilbert curve transforms (2-D and n-D)."""

import numpy as np
import pytest

from repro.indexing import (
    HilbertIndexing,
    hilbert_d_to_xy,
    hilbert_decode_nd,
    hilbert_encode_nd,
    hilbert_xy_to_d,
)
from repro.indexing.hilbert import hilbert_order_for


class TestOrderFor:
    @pytest.mark.parametrize(
        "nx,ny,expected",
        [(2, 2, 1), (4, 4, 2), (8, 8, 3), (5, 3, 3), (128, 64, 7), (1, 1, 1)],
    )
    def test_encloses_grid(self, nx, ny, expected):
        assert hilbert_order_for(nx, ny) == expected

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            hilbert_order_for(0, 4)


class TestHilbert2D:
    @pytest.mark.parametrize("order", [1, 2, 3, 5])
    def test_bijection(self, order):
        n = 1 << order
        xs, ys = np.meshgrid(np.arange(n), np.arange(n))
        d = hilbert_xy_to_d(order, xs.ravel(), ys.ravel())
        assert np.array_equal(np.sort(d), np.arange(n * n))

    @pytest.mark.parametrize("order", [1, 2, 3, 5])
    def test_roundtrip(self, order):
        n = 1 << order
        d = np.arange(n * n, dtype=np.int64)
        x, y = hilbert_d_to_xy(order, d)
        assert np.array_equal(hilbert_xy_to_d(order, x, y), d)

    @pytest.mark.parametrize("order", [1, 2, 4, 6])
    def test_unit_steps(self, order):
        """Consecutive curve positions are grid neighbours — the defining
        Hilbert property that gives 2-D locality."""
        n = 1 << order
        x, y = hilbert_d_to_xy(order, np.arange(n * n, dtype=np.int64))
        steps = np.abs(np.diff(x)) + np.abs(np.diff(y))
        assert np.all(steps == 1)

    def test_scalar_inputs(self):
        d = hilbert_xy_to_d(3, 0, 0)
        assert d == 0

    def test_known_order1_values(self):
        # Order-1 curve: (0,0)->0, (0,1)->1, (1,1)->2, (1,0)->3.
        xs = np.array([0, 0, 1, 1])
        ys = np.array([0, 1, 1, 0])
        assert np.array_equal(hilbert_xy_to_d(1, xs, ys), [0, 1, 2, 3])

    def test_out_of_range_coordinate_raises(self):
        with pytest.raises(ValueError, match="out of range"):
            hilbert_xy_to_d(2, np.array([4]), np.array([0]))

    def test_out_of_range_distance_raises(self):
        with pytest.raises(ValueError, match="out of range"):
            hilbert_d_to_xy(2, np.array([16]))

    def test_order_bounds(self):
        with pytest.raises(ValueError):
            hilbert_xy_to_d(0, np.array([0]), np.array([0]))
        with pytest.raises(ValueError):
            hilbert_xy_to_d(32, np.array([0]), np.array([0]))

    def test_inputs_not_mutated(self):
        x = np.array([1, 2, 3])
        y = np.array([0, 1, 2])
        xc, yc = x.copy(), y.copy()
        hilbert_xy_to_d(3, x, y)
        assert np.array_equal(x, xc) and np.array_equal(y, yc)

    def test_locality_beats_rowmajor(self):
        """Mean index distance of grid neighbours should be far smaller
        than for row-major ordering (the reason the paper uses Hilbert)."""
        order = 5
        n = 1 << order
        xs, ys = np.meshgrid(np.arange(n), np.arange(n - 1))
        d_here = hilbert_xy_to_d(order, xs.ravel(), ys.ravel())
        d_up = hilbert_xy_to_d(order, xs.ravel(), ys.ravel() + 1)
        hilbert_gap = np.abs(d_here - d_up).mean()
        rowmajor_gap = n  # vertical neighbours are exactly n apart
        assert hilbert_gap < rowmajor_gap


class TestHilbertND:
    @pytest.mark.parametrize("ndim,order", [(2, 3), (3, 3), (4, 2)])
    def test_roundtrip(self, ndim, order):
        total = (1 << order) ** ndim
        d = np.arange(total, dtype=np.int64)
        coords = hilbert_decode_nd(d, order, ndim)
        assert np.array_equal(hilbert_encode_nd(coords, order), d)

    @pytest.mark.parametrize("ndim,order", [(2, 4), (3, 3)])
    def test_unit_steps(self, ndim, order):
        total = (1 << order) ** ndim
        coords = hilbert_decode_nd(np.arange(total, dtype=np.int64), order, ndim)
        steps = np.abs(np.diff(coords, axis=0)).sum(axis=1)
        assert np.all(steps == 1)

    def test_coords_in_range(self):
        coords = hilbert_decode_nd(np.arange(64, dtype=np.int64), 3, 2)
        assert coords.min() >= 0 and coords.max() < 8

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="npoints, ndim"):
            hilbert_encode_nd(np.arange(8), 3)

    def test_rejects_key_overflow(self):
        with pytest.raises(ValueError, match="<= 62"):
            hilbert_encode_nd(np.zeros((1, 4), dtype=np.int64), 16)

    def test_empty_input(self):
        out = hilbert_encode_nd(np.empty((0, 2), dtype=np.int64), 3)
        assert out.shape == (0,)


class TestHilbertIndexing:
    def test_keys_match_transform(self):
        scheme = HilbertIndexing()
        ix = np.array([0, 1, 2, 3])
        iy = np.array([0, 0, 1, 1])
        keys = scheme.keys(ix, iy, 4, 4)
        assert np.array_equal(keys, hilbert_xy_to_d(2, ix, iy))

    def test_non_power_of_two_grid_unique_keys(self):
        scheme = HilbertIndexing()
        iy, ix = np.divmod(np.arange(12 * 10), 12)
        keys = scheme.keys(ix % 12, iy, 12, 10)
        assert np.unique(keys).size == 120

    def test_ordering_is_permutation(self):
        order = HilbertIndexing().ordering(8, 8)
        assert np.array_equal(np.sort(order), np.arange(64))

    def test_positions_inverse_of_ordering(self):
        scheme = HilbertIndexing()
        order = scheme.ordering(8, 4)
        pos = scheme.positions(8, 4)
        assert np.array_equal(pos[order], np.arange(32))
