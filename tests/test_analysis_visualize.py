"""Tests for the ASCII visualization helpers."""

import numpy as np
import pytest

from repro.analysis import density_map, ownership_map, particle_assignment_map
from repro.core import ParticlePartitioner
from repro.mesh import CurveBlockDecomposition, Grid2D
from repro.particles import ParticleArray, gaussian_blob, uniform_plasma


class TestDensityMap:
    def test_shape(self):
        grid = Grid2D(16, 8)
        parts = uniform_plasma(grid, 256, rng=0)
        out = density_map(grid, parts)
        lines = out.splitlines()
        assert len(lines) == 9  # header + ny rows
        assert all(len(line) == 16 for line in lines[1:])

    def test_blob_darkest_at_center(self):
        grid = Grid2D(16, 16)
        parts = gaussian_blob(grid, 8000, sigma_frac=0.06, rng=1)
        lines = density_map(grid, parts).splitlines()[1:]
        center = lines[8][8]
        corner = lines[0][0]
        assert center != " " and corner == " "

    def test_empty_particles(self):
        grid = Grid2D(8, 8)
        out = density_map(grid, ParticleArray.empty(0))
        assert "0 particles" in out

    def test_downsampling_wide_grid(self):
        grid = Grid2D(256, 8)
        parts = uniform_plasma(grid, 1024, rng=2)
        out = density_map(grid, parts, max_width=64)
        assert max(len(line) for line in out.splitlines()[1:]) <= 64


class TestOwnershipMap:
    def test_four_quadrants(self):
        grid = Grid2D(8, 8)
        decomp = CurveBlockDecomposition(grid, 4, "hilbert")
        lines = ownership_map(decomp).splitlines()[1:]
        glyphs = {ch for line in lines for ch in line}
        assert glyphs == {"0", "1", "2", "3"}

    def test_snake_strips_visible(self):
        grid = Grid2D(8, 8)
        decomp = CurveBlockDecomposition(grid, 4, "snake")
        lines = ownership_map(decomp).splitlines()[1:]
        # strip decomposition: each row is a single glyph
        for line in lines:
            assert len(set(line)) == 1


class TestParticleAssignmentMap:
    def test_aligned_partition_matches_mesh_map(self):
        grid = Grid2D(16, 16)
        parts = uniform_plasma(grid, 16 * 16 * 16, rng=3)
        decomp = CurveBlockDecomposition(grid, 4, "hilbert")
        local = ParticlePartitioner(grid, "hilbert").initial_partition(parts, 4)
        mesh_lines = ownership_map(decomp).splitlines()[1:]
        part_lines = particle_assignment_map(grid, local).splitlines()[1:]
        agree = sum(
            1
            for mrow, prow in zip(mesh_lines, part_lines)
            for m, p in zip(mrow, prow)
            if m == p
        )
        assert agree / grid.ncells > 0.8

    def test_empty_cells_dotted(self):
        grid = Grid2D(8, 8)
        local = [ParticleArray.empty(0), ParticleArray.empty(0)]
        lines = particle_assignment_map(grid, local).splitlines()[1:]
        assert all(set(line) == {"."} for line in lines)

    def test_requires_ranks(self):
        with pytest.raises(ValueError):
            particle_assignment_map(Grid2D(8, 8), [])
