"""Tests for the fleet-observability layer (repro.obs, DESIGN.md §5.8).

Pins the observability contract:

* **correlation** — every artifact a batch produces (service stream,
  per-job metrics/trace files, result payloads) carries the same
  ``{batch_id, job_id, attempt}`` stamp and joins with zero orphans,
  across retries and cache hits (the 6-job contract test);
* **zero-cost when off** — profiling + telemetry off ⇒ results, virtual
  clocks and op counts are bit-identical to the plain run;
* **export** — Prometheus snapshots render, parse, and round-trip;
* **live view** — the stream reader tolerates torn lines and the
  ``repro top`` fold/render reflects the wire truth;
* **schema** — ``validate_service`` accepts both stream generations and
  rejects malformed streams.
"""

import io
import json
import time

import pytest

from repro.obs import (
    BatchView,
    PhaseProfiler,
    aggregate_batch,
    maybe_section,
    parse_prom_text,
    read_stream,
    render_batch_rollup,
    render_prom_text,
    render_top,
    top_loop,
    write_prom_snapshot,
)
from repro.pic import Simulation
from repro.pic.simulation import config_from_dict
from repro.service import (
    JobSpec,
    Scheduler,
    derive_batch_id,
    job_artifact_stem,
    render_report,
)
from repro.telemetry import (
    MetricsRegistry,
    TelemetrySchemaError,
    validate_metrics,
    validate_service,
)

BASE = dict(nx=16, ny=8, nparticles=256, p=4)


def _config(**kw):
    return config_from_dict(dict(BASE, seed=3, **kw))


# ----------------------------------------------------------------------
# profiler unit tests
# ----------------------------------------------------------------------
class TestPhaseProfiler:
    def test_sections_nest_and_fold_with_self_time(self):
        prof = PhaseProfiler()
        prof.push("scatter")
        with prof.section("deposit"):
            time.sleep(0.002)
        with prof.section("reduce"):
            pass
        time.sleep(0.001)
        prof.pop("scatter")

        lines = prof.folded_lines()
        stacks = {ln.rsplit(" ", 1)[0]: int(ln.rsplit(" ", 1)[1]) for ln in lines}
        assert "scatter;deposit" in stacks
        assert "scatter;reduce" in stacks
        assert "scatter" in stacks  # parent self-time survives as its own frame
        assert all(v >= 0 for v in stacks.values())
        assert stacks["scatter;deposit"] >= 1000  # slept 2ms -> >=1000 us

    def test_mismatched_pop_raises(self):
        prof = PhaseProfiler()
        prof.push("gather")
        with pytest.raises(RuntimeError):
            prof.pop("scatter")

    def test_maybe_section_none_is_a_passthrough(self):
        with maybe_section(None, "anything"):
            x = 1
        assert x == 1

    def test_merge_worker_samples_lands_under_workers_root(self):
        prof = PhaseProfiler()
        with prof.section("field"):
            pass
        prof.merge_worker_samples({"scatter": [3, 0.25]})
        stacks = dict(
            ln.rsplit(" ", 1) for ln in prof.folded_lines()
        )
        assert "workers;scatter" in stacks
        assert int(stacks["workers;scatter"]) == 250000  # 0.25 s in us

    def test_export_folded_writes_per_root_and_combined(self, tmp_path):
        prof = PhaseProfiler()
        with prof.section("scatter"):
            with prof.section("deposit"):
                pass
        with prof.section("gather"):
            pass
        paths = prof.export_folded(tmp_path)
        names = {p.name for p in paths}
        assert "profile.folded" in names
        assert "scatter.folded" in names and "gather.folded" in names
        combined = (tmp_path / "profile.folded").read_text()
        assert "scatter;deposit " in combined


# ----------------------------------------------------------------------
# the zero-cost contract (profiling edition)
# ----------------------------------------------------------------------
class TestZeroCostWhenOff:
    def test_profiled_run_is_bit_identical(self):
        plain = Simulation(_config())
        r_plain = plain.run(6)

        observed = Simulation(_config())
        observed.enable_telemetry()
        observed.enable_profiling()
        r_observed = observed.run(6)

        assert observed.vm.elapsed() == plain.vm.elapsed()
        assert observed.vm.ops.as_dict() == plain.vm.ops.as_dict()
        d_plain, d_observed = r_plain.to_dict(), r_observed.to_dict()
        d_observed.pop("telemetry", None)
        assert d_observed == d_plain
        # the profiler actually measured something
        assert observed.profiler is not None
        assert observed.profiler.samples

    def test_save_profile_emits_folded_files(self, tmp_path):
        sim = Simulation(_config())
        sim.enable_profiling()
        sim.run(4)
        paths = sim.save_profile(tmp_path)
        assert any(p.name == "profile.folded" for p in paths)
        text = (tmp_path / "profile.folded").read_text()
        assert "scatter;" in text  # kernel sections, not just phases


# ----------------------------------------------------------------------
# Prometheus export
# ----------------------------------------------------------------------
class TestProm:
    def _registry(self):
        reg = MetricsRegistry()
        reg.counter("jobs.completed").inc(4)
        reg.gauge("queue.depth").set(2)
        h = reg.histogram("job.wall")
        h.observe(0.5)
        h.observe(1.5)
        return reg

    def test_render_parse_round_trip(self):
        text = render_prom_text(self._registry().snapshot(), labels={"batch": "b1"})
        parsed = parse_prom_text(text)
        assert parsed["repro_jobs_completed"]["kind"] == "counter"
        key = (("batch", "b1"),)
        assert parsed["repro_jobs_completed"]["samples"][key] == 4.0
        assert parsed["repro_queue_depth"]["samples"][key] == 2.0
        assert parsed["repro_job_wall_count"]["samples"][key] == 2.0
        assert parsed["repro_job_wall_sum"]["samples"][key] == 2.0
        assert parsed["repro_job_wall_mean"]["samples"][key] == 1.0

    def test_never_set_gauge_and_empty_histogram_are_skipped(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g")  # declared, never set
        reg.histogram("h")  # declared, no observations
        text = render_prom_text(reg.snapshot())
        parsed = parse_prom_text(text)
        assert "repro_c" in parsed
        assert "repro_g" not in parsed
        assert parsed["repro_h_count"]["samples"][()] == 0.0
        assert "repro_h_min" not in parsed  # no min/max/mean without data

    def test_write_prom_snapshot_creates_dir_and_parses(self, tmp_path):
        path = write_prom_snapshot(tmp_path / "metrics", self._registry())
        assert path.name == "repro.prom"
        parse_prom_text(path.read_text())  # must not raise

    def test_parser_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_prom_text("orphan_sample 1\n")
        with pytest.raises(ValueError):
            parse_prom_text("# TYPE x counter\nx notanumber\n")


# ----------------------------------------------------------------------
# stream schema validation
# ----------------------------------------------------------------------
def _stream_v2(batch_id="batch-abc", *, close=True):
    lines = [
        json.dumps(
            {
                "type": "header",
                "schema": "repro-service/2",
                "jobs": 1,
                "workers": 1,
                "batch_id": batch_id,
                "started_at": 1700000000.0,
            }
        ),
        json.dumps(
            {
                "type": "event",
                "kind": "job_launched",
                "t": 0.1,
                "job": "j0",
                "job_id": "k" * 64,
                "attempt": 0,
                "queue_depth": 0,
            }
        ),
        json.dumps(
            {
                "type": "event",
                "kind": "job_done",
                "t": 0.5,
                "job": "j0",
                "job_id": "k" * 64,
                "attempt": 0,
                "cached": False,
                "wall": 0.4,
            }
        ),
    ]
    if close:
        lines.append(json.dumps({"type": "summary", "aggregates": {}}))
    return lines


class TestValidateService:
    def test_accepts_v2(self):
        parsed = validate_service(_stream_v2())
        assert parsed.schema == "repro-service/2"
        assert parsed.batch_id == "batch-abc"
        assert len(parsed.job_events()) == 2

    def test_accepts_v1_without_correlation(self):
        lines = [
            json.dumps(
                {"type": "header", "schema": "repro-service/1", "jobs": 0, "workers": 1}
            ),
            json.dumps({"type": "summary", "aggregates": {}}),
        ]
        assert validate_service(lines).schema == "repro-service/1"

    def test_rejects_missing_summary(self):
        with pytest.raises(TelemetrySchemaError):
            validate_service(_stream_v2(close=False))

    def test_rejects_missing_batch_id_on_v2(self):
        lines = _stream_v2()
        head = json.loads(lines[0])
        del head["batch_id"]
        lines[0] = json.dumps(head)
        with pytest.raises(TelemetrySchemaError):
            validate_service(lines)

    def test_rejects_non_monotonic_t(self):
        lines = _stream_v2()
        ev = json.loads(lines[2])
        ev["t"] = 0.01  # earlier than the previous event
        lines[2] = json.dumps(ev)
        with pytest.raises(TelemetrySchemaError):
            validate_service(lines)

    def test_rejects_job_event_without_job_id_on_v2(self):
        lines = _stream_v2()
        ev = json.loads(lines[1])
        del ev["job_id"]
        lines[1] = json.dumps(ev)
        with pytest.raises(TelemetrySchemaError):
            validate_service(lines)


# ----------------------------------------------------------------------
# live view: reader, fold, render
# ----------------------------------------------------------------------
class TestTop:
    def test_read_stream_leaves_torn_line_for_next_round(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_bytes(b'{"type": "header", "jobs": 1}\n{"type": "ev')
        records, offset = read_stream(path)
        assert [r["type"] for r in records] == ["header"]
        # writer completes the line -> the retry picks it up
        with path.open("ab") as fh:
            fh.write(b'ent", "kind": "job_launched", "t": 0.1, "job": "a"}\n')
        records, offset = read_stream(path, offset=offset)
        assert [r["kind"] for r in records] == ["job_launched"]

    def test_batch_view_folds_lifecycle(self):
        view = BatchView()
        view.apply_all([json.loads(s) for s in _stream_v2()])
        assert view.finished
        assert view.batch_id == "batch-abc"
        row = view.jobs["j0"]
        assert row["state"] == "done"
        assert row["wall"] == 0.4
        assert view.cache_hits == 0

    def test_render_top_shows_progress_and_footer(self):
        view = BatchView()
        view.apply(
            {"type": "header", "schema": "repro-service/2", "jobs": 2,
             "workers": 2, "batch_id": "batch-x", "started_at": 0.0}
        )
        view.apply(
            {"type": "event", "kind": "job_progress", "t": 0.2, "job": "a",
             "job_id": "k" * 64, "attempt": 0, "iteration": 3, "total": 6,
             "imbalance": 1.25}
        )
        text = render_top(view)
        assert "batch-x" in text
        assert "3/6" in text
        assert "1.25" in text
        assert "batch complete" not in text
        view.apply({"type": "summary", "aggregates": {}})
        assert "batch complete" in render_top(view)

    def test_top_loop_once_on_finished_stream(self, tmp_path):
        path = tmp_path / "s.jsonl"
        path.write_text("\n".join(_stream_v2()) + "\n")
        buf = io.StringIO()
        view = top_loop(path, once=True, out=buf)
        assert view.finished
        assert "batch complete" in buf.getvalue()

    def test_top_loop_once_missing_stream(self, tmp_path):
        buf = io.StringIO()
        view = top_loop(tmp_path / "nope.jsonl", once=True, out=buf)
        assert not view.finished
        assert "waiting" in buf.getvalue()


# ----------------------------------------------------------------------
# report module consolidation (satellite: analysis -> telemetry)
# ----------------------------------------------------------------------
class TestReportConsolidation:
    def test_analysis_reexports_are_the_same_objects(self):
        from repro.analysis import report as old
        from repro.telemetry import report as new

        assert old.format_table is new.format_table
        assert old.ascii_series is new.ascii_series

    def test_telemetry_package_exports(self):
        import repro.telemetry as t

        assert callable(t.format_table) and callable(t.ascii_series)


# ----------------------------------------------------------------------
# the 6-job correlation contract
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def observed_batch(tmp_path_factory):
    """6-job batch with one forced retry and one in-batch cache hit,
    full observability on.  Several tests assert against it."""
    root = tmp_path_factory.mktemp("obs")
    jobs = [
        JobSpec(config=dict(BASE, seed=0), iterations=6, name="j0"),
        JobSpec(config=dict(BASE, seed=1), iterations=6, name="j1"),
        JobSpec(config=dict(BASE, seed=2), iterations=6, name="j2"),
        JobSpec(config=dict(BASE, seed=3), iterations=6, name="j3"),
        # crash attempt 0 before iteration 3 -> forced retry, resumes a1
        JobSpec(
            config=dict(BASE, seed=4),
            iterations=6,
            name="j4-retry",
            chaos={"kind": "crash", "at_iteration": 3, "attempts": [0]},
        ),
        # duplicate of j0's config -> served from the in-batch cache
        JobSpec(config=dict(BASE, seed=0), iterations=6, name="j5-dup"),
    ]
    scheduler = Scheduler(
        workers=2,
        cache=root / "cache",
        workdir=root / "work",
        retries=2,
        heartbeat_timeout=5.0,
        checkpoint_every=2,
        obs_dir=root / "obs",
        prom_dir=root / "prom",
    )
    report = scheduler.run(jobs)
    return {"root": root, "jobs": jobs, "report": report, "scheduler": scheduler}


class TestCorrelationContract:
    def test_batch_completes_with_retry_and_cache_hit(self, observed_batch):
        report = observed_batch["report"]
        assert report["ok"], report["counters"]
        assert report["counters"]["completed"] == 6
        assert report["counters"]["retries"] >= 1
        assert report["counters"]["cache_hits"] >= 1

    def test_batch_id_is_content_derived(self, observed_batch):
        report = observed_batch["report"]
        assert report["batch_id"] == derive_batch_id(observed_batch["jobs"])
        assert report["batch_id"].startswith("batch-")

    def test_stream_validates_as_v2_with_correlation(self, observed_batch):
        parsed = validate_service(observed_batch["root"] / "obs" / "service.jsonl")
        assert parsed.schema == "repro-service/2"
        assert parsed.batch_id == observed_batch["report"]["batch_id"]
        for ev in parsed.job_events():
            assert ev["job_id"]
            assert ev["attempt"] >= 0

    def test_stream_header_has_absolute_start_and_monotonic_t(self, observed_batch):
        parsed = validate_service(observed_batch["root"] / "obs" / "service.jsonl")
        assert parsed.header["started_at"] > 1e9  # epoch seconds, not relative
        ts = [ev["t"] for ev in parsed.events]
        assert ts == sorted(ts)
        assert all(t >= 0 for t in ts)

    def test_retry_job_reaches_attempt_one_on_the_wire(self, observed_batch):
        parsed = validate_service(observed_batch["root"] / "obs" / "service.jsonl")
        attempts = [
            ev["attempt"]
            for ev in parsed.job_events()
            if ev.get("job") == "j4-retry" and ev["kind"] == "job_launched"
        ]
        assert attempts == [0, 1]

    def test_every_metrics_artifact_joins(self, observed_batch):
        report = observed_batch["report"]
        obs = observed_batch["root"] / "obs"
        metrics = sorted(obs.glob("job-*.metrics.jsonl"))
        assert metrics  # executed jobs saved artifacts
        for path in metrics:
            parsed = validate_metrics(path)
            corr = parsed.header.get("correlation")
            assert corr is not None, path.name
            assert corr["batch_id"] == report["batch_id"]
            assert path.name.startswith(
                job_artifact_stem(corr["job_id"], corr["attempt"])
            )

    def test_retried_attempt_saved_artifacts(self, observed_batch):
        # attempt 0 was SIGKILLed before saving; attempt 1 must have saved
        report = observed_batch["report"]
        rec = next(j for j in report["jobs"] if j["name"] == "j4-retry")
        stem = job_artifact_stem(rec["key"], 1)
        obs = observed_batch["root"] / "obs"
        assert (obs / f"{stem}.metrics.jsonl").exists()
        assert (obs / f"{stem}.trace.json").exists()

    def test_result_payloads_carry_correlation(self, observed_batch):
        report = observed_batch["report"]
        for rec in observed_batch["scheduler"]._records:
            corr = rec.payload.get("correlation") if rec.payload else None
            assert corr is not None, rec.name
            assert corr["batch_id"] == report["batch_id"]
            assert corr["job_id"] == rec.key

    def test_aggregate_batch_joins_everything_no_orphans(self, observed_batch):
        rollup = aggregate_batch(observed_batch["root"] / "obs")
        assert rollup["schema"] == "repro-batch-rollup/1"
        assert rollup["batch_id"] == observed_batch["report"]["batch_id"]
        assert rollup["correlation"]["orphans"] == []
        assert rollup["correlation"]["joined"] == rollup["correlation"]["metrics_files"]
        assert rollup["counters"]["completed"] == 6
        assert rollup["counters"]["retries"] >= 1
        assert rollup["counters"]["cache_hits"] >= 1
        text = render_batch_rollup(rollup)
        assert "j4-retry" in text and "ORPHAN" not in text

    def test_aggregate_batch_flags_orphans(self, observed_batch, tmp_path):
        import shutil

        obs = tmp_path / "obs"
        shutil.copytree(observed_batch["root"] / "obs", obs)
        # forge a metrics file whose correlation points at another batch
        victim = sorted(obs.glob("job-*.metrics.jsonl"))[0]
        lines = victim.read_text().splitlines()
        head = json.loads(lines[0])
        head["correlation"]["batch_id"] = "batch-intruder00"
        lines[0] = json.dumps(head)
        victim.write_text("\n".join(lines) + "\n")
        rollup = aggregate_batch(obs)
        assert any(
            o["file"] == victim.name for o in rollup["correlation"]["orphans"]
        )
        assert "ORPHAN" in render_batch_rollup(rollup)

    def test_prom_snapshot_written_and_parses(self, observed_batch):
        path = observed_batch["root"] / "prom" / "repro-batch.prom"
        assert path.exists()
        parsed = parse_prom_text(path.read_text())
        key = (("batch", observed_batch["report"]["batch_id"]),)
        assert parsed["repro_jobs_completed"]["samples"][key] == 6.0
        assert parsed["repro_cache_hits"]["samples"][key] >= 1.0

    def test_render_report_sources_columns_from_stream(self, observed_batch):
        events, _ = read_stream(observed_batch["root"] / "obs" / "service.jsonl")
        text = render_report(observed_batch["report"], events=events)
        rows = {
            ln.split()[0]: ln for ln in text.splitlines() if ln.strip().startswith("j")
        }
        assert " yes " in rows["j5-dup"]  # cache column from job_done.cached
        assert " 2 " in rows["j4-retry"]  # attempts column from launch count

    def test_top_view_of_the_finished_batch(self, observed_batch):
        buf = io.StringIO()
        view = top_loop(
            observed_batch["root"] / "obs" / "service.jsonl", once=True, out=buf
        )
        assert view.finished
        assert view.cache_hits >= 1
        assert view.jobs["j4-retry"]["state"] == "done"
        assert "batch complete" in buf.getvalue()
