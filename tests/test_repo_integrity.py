"""Repo-integrity checks: documentation references real artifacts."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


class TestDesignDoc:
    def test_bench_targets_exist(self):
        text = (ROOT / "DESIGN.md").read_text()
        targets = re.findall(r"`benchmarks/(bench_\w+\.py)`", text)
        assert targets, "DESIGN.md must list bench targets"
        for name in targets:
            assert (ROOT / "benchmarks" / name).exists(), f"missing {name}"

    def test_every_paper_table_and_figure_has_a_bench(self):
        """The evaluation section has Table 1-3 and Figures 16-22; each
        must map to a bench file."""
        benches = {p.name for p in (ROOT / "benchmarks").glob("bench_*.py")}
        required = [
            "bench_table1_strategies.py",
            "bench_fig16_static_vs_periodic.py",
            "bench_fig17_iteration_time.py",
            "bench_fig18_max_data.py",
            "bench_fig19_max_messages.py",
            "bench_fig20_dynamic_vs_periodic.py",
            "bench_table2_indexing.py",
            "bench_table3_efficiency.py",
            "bench_fig21_overhead_uniform.py",
            "bench_fig22_overhead_irregular.py",
        ]
        for name in required:
            assert name in benches, f"missing paper bench {name}"


class TestReadme:
    def test_examples_listed_exist(self):
        text = (ROOT / "README.md").read_text()
        names = re.findall(r"`(\w+\.py)`", text)
        for name in set(names):
            if (ROOT / "examples" / name).exists():
                continue
            # names like pyproject-ish entries are fine; only enforce
            # files presented in the examples table
            assert f"examples/{name}" not in text, f"README references missing {name}"

    def test_quickstart_code_runs(self):
        """The README quickstart snippet must execute as written."""
        from repro import Simulation, SimulationConfig

        config = SimulationConfig(
            nx=64, ny=32, nparticles=8192, p=16,
            distribution="irregular", scheme="hilbert", policy="dynamic",
        )
        result = Simulation(config).run(5)
        assert result.total_time > 0


class TestPackageMetadata:
    def test_version_importable(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_pic_exports_resolve(self):
        import repro.pic as pic

        for name in pic.__all__:
            assert hasattr(pic, name), name

    def test_license_present(self):
        assert (ROOT / "LICENSE").read_text().startswith("MIT License")

    def test_docstring_coverage(self):
        """Every public module, class, and function ships a docstring."""
        import importlib
        import inspect
        import pkgutil

        import repro

        missing = []
        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            if info.name.endswith("__main__"):
                continue  # importing it runs the CLI
            module = importlib.import_module(info.name)
            if not module.__doc__:
                missing.append(info.name)
            for attr_name, obj in vars(module).items():
                if attr_name.startswith("_"):
                    continue
                if getattr(obj, "__module__", None) != info.name:
                    continue
                if inspect.isclass(obj) or inspect.isfunction(obj):
                    if not inspect.getdoc(obj):
                        missing.append(f"{info.name}.{attr_name}")
        assert not missing, f"missing docstrings: {missing}"
