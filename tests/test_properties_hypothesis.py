"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.indexing import (
    get_scheme,
    hilbert_d_to_xy,
    hilbert_decode_nd,
    hilbert_encode_nd,
    hilbert_xy_to_d,
)
from repro.machine import MachineModel, VirtualMachine
from repro.machine.collectives import exchange_by_destination
from repro.mesh import Grid2D
from repro.mesh.decomposition import balanced_splits
from repro.core.incremental_sort import BucketState, bucket_incremental_sort
from repro.core.load_balance import order_maintaining_balance
from repro.pic.ghost import DirectAddressTable, HashGhostTable

orders = st.integers(min_value=1, max_value=8)


class TestHilbertProperties:
    @given(order=orders, data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_random_points(self, order, data):
        n = 1 << order
        npts = data.draw(st.integers(1, 64))
        x = data.draw(arrays(np.int64, npts, elements=st.integers(0, n - 1)))
        y = data.draw(arrays(np.int64, npts, elements=st.integers(0, n - 1)))
        d = hilbert_xy_to_d(order, x, y)
        x2, y2 = hilbert_d_to_xy(order, d)
        assert np.array_equal(x, x2) and np.array_equal(y, y2)

    @given(order=orders, data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_distance_in_range(self, order, data):
        n = 1 << order
        npts = data.draw(st.integers(1, 32))
        x = data.draw(arrays(np.int64, npts, elements=st.integers(0, n - 1)))
        y = data.draw(arrays(np.int64, npts, elements=st.integers(0, n - 1)))
        d = hilbert_xy_to_d(order, x, y)
        assert d.min() >= 0 and d.max() < n * n

    @given(order=st.integers(1, 5), ndim=st.integers(2, 3), data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_nd_roundtrip_random(self, order, ndim, data):
        npts = data.draw(st.integers(1, 32))
        coords = data.draw(
            arrays(np.int64, (npts, ndim), elements=st.integers(0, (1 << order) - 1))
        )
        d = hilbert_encode_nd(coords, order)
        back = hilbert_decode_nd(d, order, ndim)
        assert np.array_equal(coords, back)


class TestSchemeBijectivity:
    @given(
        scheme_name=st.sampled_from(["hilbert", "snake", "rowmajor", "morton"]),
        nx=st.integers(2, 24),
        ny=st.integers(2, 24),
    )
    @settings(max_examples=40, deadline=None)
    def test_keys_unique_over_grid(self, scheme_name, nx, ny):
        scheme = get_scheme(scheme_name)
        iy, ix = np.divmod(np.arange(nx * ny, dtype=np.int64), nx)
        keys = scheme.keys(ix, iy, nx, ny)
        assert np.unique(keys).size == nx * ny


class TestBalancedSplits:
    @given(n=st.integers(0, 10000), p=st.integers(1, 64))
    @settings(max_examples=100, deadline=None)
    def test_partition_properties(self, n, p):
        bounds = balanced_splits(n, p)
        sizes = np.diff(bounds)
        assert bounds[0] == 0 and bounds[-1] == n
        assert sizes.min() >= 0
        assert sizes.max() - sizes.min() <= 1


class TestExchangeConservation:
    @given(
        p=st.integers(1, 6),
        data=st.data(),
    )
    @settings(max_examples=30, deadline=None)
    def test_rows_conserved(self, p, data):
        vm = VirtualMachine(p, MachineModel.cm5())
        arrays_, dests = [], []
        for r in range(p):
            n = data.draw(st.integers(0, 20))
            arrays_.append(np.arange(n, dtype=float).reshape(n, 1) + 100 * r)
            dests.append(
                np.array(
                    data.draw(st.lists(st.integers(0, p - 1), min_size=n, max_size=n)),
                    dtype=np.int64,
                )
            )
        out = exchange_by_destination(vm, arrays_, dests)
        sent = np.sort(np.concatenate([a.ravel() for a in arrays_]))
        got = np.sort(np.concatenate([o.ravel() for o in out]))
        assert np.array_equal(sent, got)


class TestGhostTableEquivalence:
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_hash_equals_direct(self, data):
        nnodes = data.draw(st.integers(1, 200))
        k = data.draw(st.integers(0, 200))
        nodes = np.array(
            data.draw(st.lists(st.integers(0, nnodes - 1), min_size=k, max_size=k)),
            dtype=np.int64,
        )
        values = data.draw(
            arrays(np.float64, (2, k), elements=st.floats(-10, 10, allow_nan=False))
        )
        direct = DirectAddressTable(nnodes, 2)
        hashed = HashGhostTable(nnodes, 2)
        direct.accumulate(nodes, values)
        hashed.accumulate(nodes, values)
        du, dv = direct.flush()
        hu, hv = hashed.flush()
        assert np.array_equal(du, hu)
        assert np.allclose(dv, hv, atol=1e-12)


class TestSortingPipelines:
    @given(p=st.integers(1, 5), data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_balance_preserves_order_and_counts(self, p, data):
        vm = VirtualMachine(p, MachineModel.cm5())
        chunks = []
        for _ in range(p):
            n = data.draw(st.integers(0, 30))
            chunks.append(n)
        total = sum(chunks)
        all_keys = np.sort(
            np.array(data.draw(st.lists(st.integers(0, 1000), min_size=total, max_size=total)), dtype=np.int64)
        )
        keys, payloads, start = [], [], 0
        for n in chunks:
            keys.append(all_keys[start : start + n])
            payloads.append(all_keys[start : start + n].reshape(-1, 1).astype(float))
            start += n
        out_keys, _ = order_maintaining_balance(vm, keys, payloads)
        assert np.array_equal(np.concatenate(out_keys), all_keys)
        counts = [k.size for k in out_keys]
        assert max(counts) - min(counts) <= 1

    @given(p=st.integers(1, 4), data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_incremental_sort_total_order(self, p, data):
        vm = VirtualMachine(p, MachineModel.cm5())
        states, new_keys = [], []
        for _ in range(p):
            n = data.draw(st.integers(0, 25))
            old = np.sort(
                np.array(data.draw(st.lists(st.integers(0, 500), min_size=n, max_size=n)), dtype=np.int64)
            )
            states.append(BucketState.build(old, old.reshape(-1, 1).astype(float), 4))
            deltas = np.array(
                data.draw(st.lists(st.integers(-50, 50), min_size=n, max_size=n)),
                dtype=np.int64,
            )
            new_keys.append(np.maximum(old + deltas, 0))
        keys_out, _, stats = bucket_incremental_sort(vm, states, new_keys)
        merged = np.concatenate(keys_out) if any(k.size for k in keys_out) else np.empty(0)
        assert np.array_equal(merged, np.sort(np.concatenate(new_keys)))
        assert stats.total == sum(s.n for s in states)


class TestAdaptiveQuantiles:
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_bounds_valid_for_any_load(self, data):
        from repro.core.adaptive import AdaptiveMeshRebalancer

        nx = data.draw(st.sampled_from([8, 16]))
        ny = data.draw(st.sampled_from([8, 16]))
        grid = Grid2D(nx, ny)
        p = data.draw(st.sampled_from([2, 4, 8]))
        ratio = data.draw(st.sampled_from([1.5, 2.0, 4.0]))
        reb = AdaptiveMeshRebalancer(grid, max_cell_ratio=ratio)
        counts = np.array(
            data.draw(
                st.lists(st.integers(0, 100), min_size=grid.ncells, max_size=grid.ncells)
            ),
            dtype=np.int64,
        )
        bounds = reb.quantile_bounds(counts, p)
        assert bounds[0] == 0 and bounds[-1] == grid.ncells
        assert np.all(np.diff(bounds) >= 0)
        cap = int(np.ceil(ratio * grid.ncells / p))
        assert np.diff(bounds).max() <= cap


class TestParticleArrayProperties:
    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_matrix_roundtrip_any_values(self, data):
        from repro.particles import ParticleArray

        n = data.draw(st.integers(0, 50))
        finite = st.floats(-1e12, 1e12, allow_nan=False)
        cols = {
            name: np.array(data.draw(st.lists(finite, min_size=n, max_size=n)))
            for name in ("x", "y", "ux", "uy", "uz", "q", "m", "w")
        }
        ids = np.array(
            data.draw(st.lists(st.integers(0, 2**40), min_size=n, max_size=n)),
            dtype=np.int64,
        )
        parts = ParticleArray(ids=ids, **cols)
        back = ParticleArray.from_matrix(parts.to_matrix())
        for name in ParticleArray.__slots__:
            assert np.array_equal(getattr(back, name), getattr(parts, name)), name

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_take_then_concat_is_permutation(self, data):
        from repro.particles import ParticleArray

        n = data.draw(st.integers(1, 60))
        parts = ParticleArray.empty(n)
        parts.x[:] = np.arange(n)
        perm = np.array(data.draw(st.permutations(list(range(n)))), dtype=np.int64)
        split = data.draw(st.integers(0, n))
        joined = ParticleArray.concat([parts.take(perm[:split]), parts.take(perm[split:])])
        assert np.array_equal(np.sort(joined.ids), np.arange(n))


class TestGridWrapProperties:
    @given(data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_wrap_is_idempotent_and_in_range(self, data):
        nx = data.draw(st.integers(2, 32))
        ny = data.draw(st.integers(2, 32))
        grid = Grid2D(nx, ny)
        n = data.draw(st.integers(1, 30))
        big = st.floats(-1e6, 1e6, allow_nan=False)
        x = np.array(data.draw(st.lists(big, min_size=n, max_size=n)))
        y = np.array(data.draw(st.lists(big, min_size=n, max_size=n)))
        xw, yw = grid.wrap_positions(x, y)
        assert np.all((xw >= 0) & (xw < grid.lx))
        assert np.all((yw >= 0) & (yw < grid.ly))
        xw2, yw2 = grid.wrap_positions(xw, yw)
        assert np.allclose(xw, xw2) and np.allclose(yw, yw2)

    @given(data=st.data())
    @settings(max_examples=50, deadline=None)
    def test_cell_lookup_always_valid(self, data):
        nx = data.draw(st.integers(2, 32))
        ny = data.draw(st.integers(2, 32))
        grid = Grid2D(nx, ny)
        n = data.draw(st.integers(1, 30))
        big = st.floats(-1e6, 1e6, allow_nan=False)
        x = np.array(data.draw(st.lists(big, min_size=n, max_size=n)))
        y = np.array(data.draw(st.lists(big, min_size=n, max_size=n)))
        ids = grid.cell_id_of_positions(x, y)
        assert ids.min() >= 0 and ids.max() < grid.ncells


class TestCICInvariants:
    @given(data=st.data())
    @settings(max_examples=30, deadline=None)
    def test_weights_partition_unity(self, data):
        nx = data.draw(st.integers(2, 32))
        ny = data.draw(st.integers(2, 32))
        grid = Grid2D(nx, ny)
        n = data.draw(st.integers(1, 50))
        x = data.draw(arrays(np.float64, n, elements=st.floats(-100, 100, allow_nan=False)))
        y = data.draw(arrays(np.float64, n, elements=st.floats(-100, 100, allow_nan=False)))
        nodes, weights = grid.cic_vertices_weights(x, y)
        assert np.allclose(weights.sum(axis=1), 1.0)
        assert weights.min() >= 0
        assert nodes.min() >= 0 and nodes.max() < grid.nnodes
