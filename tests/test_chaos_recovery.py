"""Chaos-matrix and rank-failure-recovery tests (DESIGN.md §5.3).

The contract under test: whatever fault the plan injects, the run either
finishes with a state satisfying the same conservation invariants as an
undisturbed run — bit-exact transport recovery for drop/duplicate/
corrupt, atol=1e-12 checkpoint-restore recovery for rank kills — or it
raises a typed exception.  Never a silent wrong answer.
"""

import time
import warnings

import numpy as np
import pytest

from repro.machine import FaultEvent, FaultPlan
from repro.pic import Simulation, SimulationConfig
from repro.util.errors import FaultError, ReproError, SimulationIntegrityError

_BASE = dict(
    nx=32,
    ny=16,
    nparticles=2048,
    p=6,
    distribution="irregular",
    policy="periodic:5",
    seed=1,
)
_NITERS = 12
_KILL_ITER = 7

_SUMMARY_KEYS = (
    "total_charge",
    "x_sum",
    "y_sum",
    "ux_sum",
    "uy_sum",
    "uz_sum",
    "rho_sum",
    "e_energy",
    "b_energy",
)


def _config(**kw):
    merged = dict(_BASE)
    merged.update(kw)
    return SimulationConfig(**merged)


def _fault_free(engine):
    return Simulation(_config(engine=engine)).run(_NITERS)


def _assert_summaries_close(actual, expected, atol=1e-12):
    assert actual["n_particles"] == expected["n_particles"]
    for key in _SUMMARY_KEYS:
        assert actual[key] == pytest.approx(expected[key], abs=atol), key


_FAULTS = {
    "drop": FaultEvent(kind="drop", src=0, iteration=4),
    "duplicate": FaultEvent(kind="duplicate", src=2, dst=1, iteration=5),
    "corrupt": FaultEvent(kind="corrupt", dst=3, iteration=6, phase="gather"),
    "rank-kill": FaultEvent(kind="kill", rank=2, iteration=_KILL_ITER),
}


class TestChaosMatrix:
    """{flat, looped} x {drop, duplicate, corrupt, rank-kill} x {warn, strict}."""

    @pytest.mark.parametrize("engine", ["flat", "looped"])
    @pytest.mark.parametrize("fault", sorted(_FAULTS))
    @pytest.mark.parametrize("guards", ["warn", "strict"])
    def test_exact_recovery_or_typed_error(self, engine, fault, guards, tmp_path):
        reference = _fault_free(engine)
        sim = Simulation(_config(engine=engine, guards=guards))
        sim.install_faults(FaultPlan(events=(_FAULTS[fault],)))
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", UserWarning)
                result = sim.run(
                    _NITERS,
                    checkpoint_every=3,
                    checkpoint_path=tmp_path / "ck.npz",
                )
        except ReproError:
            return  # a typed failure is an acceptable outcome; silence is not
        # the run finished: it must carry the fault on the clock and
        # match the fault-free physics
        assert result.total_time > reference.total_time
        _assert_summaries_close(result.final_state, reference.final_state)
        assert sim.guard.violations == []
        if fault == "rank-kill":
            assert result.n_recoveries == 1
            assert sim.config.p == _BASE["p"] - 1
        else:
            assert result.n_recoveries == 0

    @pytest.mark.parametrize("guards", ["warn", "strict"])
    def test_poison_never_silent(self, guards):
        """Undetectable transport corruption must surface through guards."""
        sim = Simulation(_config(guards=guards))
        sim.install_faults(
            FaultPlan(events=(FaultEvent(kind="poison", iteration=3, phase="scatter"),))
        )
        if guards == "strict":
            with pytest.raises(SimulationIntegrityError):
                sim.run(_NITERS)
        else:
            with pytest.warns(UserWarning, match="invariant violation"):
                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", RuntimeWarning)
                    try:
                        sim.run(5)
                    except ReproError:
                        pass
            assert sim.guard.violations


class TestCheckpointRecoveryEquivalence:
    """The acceptance contract: kill at iteration k with checkpoint_every
    <= k finishes identical (atol=1e-12) to the fault-free run."""

    @pytest.mark.parametrize("engine", ["flat", "looped"])
    def test_recovery_matches_fault_free(self, engine, tmp_path):
        reference = _fault_free(engine)
        sim = Simulation(_config(engine=engine))
        sim.install_faults(
            FaultPlan(events=(FaultEvent(kind="kill", rank=2, iteration=_KILL_ITER),))
        )
        result = sim.run(_NITERS, checkpoint_every=3, checkpoint_path=tmp_path / "ck.npz")
        assert result.n_recoveries == 1
        assert sim.config.p == _BASE["p"] - 1
        assert result.final_state["iteration"] == _NITERS
        _assert_summaries_close(result.final_state, reference.final_state)

    @pytest.mark.parametrize("engine", ["flat", "looped"])
    def test_recovery_time_on_the_clock(self, engine, tmp_path):
        reference = _fault_free(engine)
        sim = Simulation(_config(engine=engine))
        plan = FaultPlan(events=(FaultEvent(kind="kill", rank=2, iteration=_KILL_ITER),))
        sim.install_faults(plan)
        result = sim.run(_NITERS, checkpoint_every=3, checkpoint_path=tmp_path / "ck.npz")
        # detection + restore + replay all stay on the virtual clock ...
        assert result.total_time > reference.total_time
        assert result.recovery_time > plan.detect_timeout
        # ... and detection/restore are visible in the phase breakdown
        assert result.phase_breakdown["recovery"] >= plan.detect_timeout

    def test_live_salvage_without_checkpoint(self):
        """No checkpoint: the dead rank's particles are redistributed from
        the live pool; conservation invariants must still hold."""
        sim = Simulation(_config(guards="strict"))
        sim.install_faults(
            FaultPlan(events=(FaultEvent(kind="kill", rank=3, iteration=6),))
        )
        result = sim.run(_NITERS)
        assert result.n_recoveries == 1
        assert sim.config.p == _BASE["p"] - 1
        assert sim.guard.violations == []
        fs = result.final_state
        assert fs["n_particles"] == _BASE["nparticles"]
        assert fs["iteration"] == _NITERS

    def test_double_failure(self, tmp_path):
        """Two kills at different iterations: shrink twice, still exact."""
        reference = _fault_free("flat")
        sim = Simulation(_config())
        sim.install_faults(
            FaultPlan(
                events=(
                    FaultEvent(kind="kill", rank=1, iteration=5),
                    FaultEvent(kind="kill", rank=4, iteration=9),
                )
            )
        )
        result = sim.run(_NITERS, checkpoint_every=2, checkpoint_path=tmp_path / "ck.npz")
        assert result.n_recoveries == 2
        assert sim.config.p == _BASE["p"] - 2
        _assert_summaries_close(result.final_state, reference.final_state)

    def test_unrecoverable_without_plan_propagates(self):
        """RankFailure with no plan installed must not be swallowed."""
        from repro.machine.faults import FaultInjector

        sim = Simulation(_config())
        # install an injector directly on the machine, bypassing
        # Simulation.install_faults — the driver has no plan to recover with
        sim.vm.install_faults(
            FaultInjector(FaultPlan(events=(FaultEvent(kind="kill", rank=0, iteration=2),)))
        )
        with pytest.raises(FaultError):
            sim.run(_NITERS)


class TestZeroCostWhenOff:
    """With no faults and guards off, the machinery must be invisible."""

    def test_accounting_bit_identical_with_empty_plan(self):
        plain = Simulation(_config())
        wired = Simulation(_config())
        wired.install_faults(FaultPlan())  # installed but empty
        r_plain, r_wired = plain.run(6), wired.run(6)
        assert r_plain.total_time == r_wired.total_time
        assert plain.vm.state_dict() == wired.vm.state_dict()

    def test_guard_overhead_under_two_percent(self):
        """Guards-off wall time within 2% of a build-equivalent baseline.

        Interleaved min-of-N on the same machine (a cross-machine
        comparison against committed numbers would measure the hardware,
        not the code).  The baseline body is the identical simulation
        with the identical dormant branches, so this pins the *relative*
        cost of the fault/guard wiring at zero faults + guards off.
        """

        def once(install_empty_plan):
            sim = Simulation(_config(nparticles=4096, p=8))
            if install_empty_plan:
                sim.install_faults(FaultPlan())
            t0 = time.perf_counter()
            sim.run(4)
            return time.perf_counter() - t0

        for _ in range(3):  # measurement rounds: pass on the first quiet one
            base = min(once(False) for _ in range(3))
            wired = min(once(True) for _ in range(3))
            if wired <= base * 1.02:
                return
        pytest.fail(f"fault machinery overhead above 2%: {wired:.4f}s vs {base:.4f}s")
