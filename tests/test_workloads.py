"""Tests for the paper-case workload catalogue."""

import pytest

from repro.pic import SimulationConfig
from repro.workloads import FIG16_CASES, FIG17_CASE, FIG20_CASE, TABLE2_CASES, scaled_iterations
from repro.workloads.scenarios import repro_scale


class TestCatalogue:
    def test_fig17_matches_paper(self):
        case = FIG17_CASE
        assert (case.nx, case.ny) == (128, 64)
        assert case.nparticles == 32768
        assert case.p == 32
        assert case.distribution == "irregular"

    def test_fig16_has_three_pairs(self):
        assert len(FIG16_CASES) == 3
        assert all(c.iterations == 2000 and c.p == 32 for c in FIG16_CASES)

    def test_table2_sweep_dimensions(self):
        assert len(TABLE2_CASES) == 2 * 4 * 3  # dist x (mesh, n) x p
        ps = {c.p for c in TABLE2_CASES}
        assert ps == {32, 64, 128}
        dists = {c.distribution for c in TABLE2_CASES}
        assert dists == {"uniform", "irregular"}

    def test_average_four_particles_per_cell(self):
        """The paper notes 32768 particles on 128x64 is 4 per cell."""
        case = FIG17_CASE
        assert case.nparticles / (case.nx * case.ny) == pytest.approx(4.0)

    def test_config_kwargs_build_valid_configs(self):
        for case in (FIG17_CASE, FIG20_CASE) + FIG16_CASES[:1]:
            cfg = SimulationConfig(**case.config_kwargs())
            assert cfg.nx == case.nx


class TestCaseImmutability:
    def test_paper_cases_frozen(self):
        with pytest.raises(Exception):
            FIG17_CASE.nparticles = 1

    def test_all_case_names_unique(self):
        names = [c.name for c in FIG16_CASES + TABLE2_CASES] + [
            FIG17_CASE.name,
            FIG20_CASE.name,
        ]
        assert len(names) == len(set(names))


class TestScaling:
    def test_scaled_iterations_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scaled_iterations(2000) == 200

    def test_scaled_iterations_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "1")
        assert scaled_iterations(2000) == 2000

    def test_minimum_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.001")
        assert scaled_iterations(2000, minimum=20) == 20

    def test_bad_env_value(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "lots")
        with pytest.raises(ValueError):
            repro_scale()

    def test_nonpositive_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0")
        with pytest.raises(ValueError):
            repro_scale()
