"""Tests for the Yee solver and the exactly charge-conserving YeePIC."""

import numpy as np
import pytest

from repro.mesh import FieldState, Grid2D
from repro.particles import two_stream, uniform_plasma
from repro.pic.yee import YeePIC, YeeSolver, staggered_cic


@pytest.fixture
def grid():
    return Grid2D(32, 32, lx=32.0, ly=32.0)


@pytest.fixture
def solver(grid):
    return YeeSolver(grid)


class TestStaggeredCIC:
    def test_unshifted_matches_plain(self, grid):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 32, 50)
        y = rng.uniform(0, 32, 50)
        nodes_a, weights_a = staggered_cic(grid, x, y, 0.0, 0.0)
        nodes_b, weights_b = grid.cic_vertices_weights(x, y)
        assert np.array_equal(nodes_a, nodes_b)
        assert np.allclose(weights_a, weights_b)

    def test_particle_on_face_full_weight(self, grid):
        # a particle at x = 3.5 sits exactly on the Ex face (i=3 + 1/2)
        nodes, weights = staggered_cic(grid, np.array([3.5]), np.array([2.0]), 0.5, 0.0)
        assert weights[0, 0] == pytest.approx(1.0)
        assert nodes[0, 0] == 2 * 32 + 3

    def test_weights_sum_to_one(self, grid):
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 32, 100)
        y = rng.uniform(0, 32, 100)
        for sx, sy in ((0.5, 0.0), (0.0, 0.5), (0.5, 0.5)):
            _, weights = staggered_cic(grid, x, y, sx, sy)
            assert np.allclose(weights.sum(axis=1), 1.0)


class TestYeeSolver:
    def test_cfl_limit(self, solver):
        assert solver.cfl_limit() == pytest.approx(1.0 / np.sqrt(2.0))

    def test_validate_dt(self, solver):
        with pytest.raises(ValueError, match="CFL"):
            solver.validate_dt(1.0)

    def test_div_b_exactly_zero_from_zero(self, grid, solver):
        fields = FieldState.zeros(grid)
        rng = np.random.default_rng(2)
        fields.ex[:] = rng.normal(size=grid.shape)
        fields.ey[:] = rng.normal(size=grid.shape)
        fields.ez[:] = rng.normal(size=grid.shape)
        for _ in range(50):
            solver.step(fields, 0.5)
        assert solver.divergence_b(fields) < 1e-13

    def test_vacuum_energy_conserved(self, grid, solver):
        """After the O(1)-step transient of non-modal initial data, the
        plain-sum energy stays flat for hundreds of steps (the Yee
        scheme conserves a staggered energy functional)."""
        fields = FieldState.zeros(grid)
        rng = np.random.default_rng(3)
        fields.ez[:] = rng.normal(size=grid.shape)
        for _ in range(100):
            solver.step(fields, 0.5)
        e_settled = fields.field_energy(grid)
        for _ in range(300):
            solver.step(fields, 0.5)
        assert fields.field_energy(grid) == pytest.approx(e_settled, rel=0.05)

    def test_plane_wave_speed(self, grid, solver):
        """A resolved Ez/By plane wave travels at c with little error
        (Yee dispersion is far better than the collocated scheme's)."""
        fields = FieldState.zeros(grid)
        k = 2 * np.pi / grid.lx
        x_ez = np.arange(grid.nx)[None, :] * np.ones((grid.ny, 1))
        x_by = x_ez + 0.5  # By is staggered half a cell in x
        fields.ez[:] = np.sin(k * x_ez)
        fields.by[:] = -np.sin(k * x_by)
        dt = 0.5
        steps = 32
        for _ in range(steps):
            solver.step(fields, dt)
        expected = np.sin(k * (x_ez - dt * steps))
        assert np.abs(fields.ez - expected).max() < 0.05

    def test_gauss_residual_zero_for_consistent_init(self, grid, solver):
        rng = np.random.default_rng(4)
        rho = rng.normal(size=grid.shape)
        ex, ey = solver.initial_e_from_rho(rho)
        fields = FieldState.zeros(grid)
        fields.ex, fields.ey = ex, ey
        assert np.abs(solver.gauss_residual(fields, rho)).max() < 1e-11


class TestYeePIC:
    def test_gauss_law_machine_precision(self):
        """The headline property: |div E - rho| stays at machine epsilon
        for the whole run, with no cleaning."""
        grid = Grid2D(16, 16)
        parts = uniform_plasma(grid, 1024, density=1.0, vth=0.05, rng=5)
        sim = YeePIC(grid, parts)
        assert sim.gauss_error() < 1e-12
        sim.run(50)
        assert sim.gauss_error() < 1e-12

    def test_div_b_machine_precision(self):
        grid = Grid2D(16, 16)
        parts = uniform_plasma(grid, 1024, density=1.0, rng=6)
        sim = YeePIC(grid, parts)
        sim.run(30)
        assert sim.solver.divergence_b(sim.fields) < 1e-13

    def test_energy_bounded_weak_coupling(self):
        grid = Grid2D(16, 16)
        parts = uniform_plasma(grid, 2048, vth=0.02, rng=7)  # default density
        sim = YeePIC(grid, parts)
        e0 = sim.total_energy()
        sim.run(150)
        assert sim.total_energy() < 2.0 * e0

    def test_two_stream_grows_then_saturates(self):
        """Field energy rises well above the shot-noise floor (growth),
        then relaxes (trapping); the Gauss law survives throughout.
        Density 0.09 puts the most unstable wavelength at ~6 cells so
        the instability is grid-resolved."""
        grid = Grid2D(64, 8, lx=64.0, ly=8.0)
        parts = two_stream(grid, 64 * 8 * 64, vdrift=0.2, vth=0.005, density=0.09, rng=8)
        sim = YeePIC(grid, parts, dt=0.5)
        sim.step()
        early = sim.fields.field_energy(grid)
        peak = early
        for _ in range(200):
            sim.step()
            peak = max(peak, sim.fields.field_energy(grid))
        assert peak > 3 * early
        assert sim.gauss_error() < 1e-11

    def test_iteration_counter_and_validation(self):
        grid = Grid2D(8, 8)
        parts = uniform_plasma(grid, 64, rng=9)
        sim = YeePIC(grid, parts)
        sim.run(3)
        assert sim.iteration == 3
        with pytest.raises(ValueError):
            sim.run(-1)
        with pytest.raises(ValueError, match="CFL"):
            YeePIC(grid, parts, dt=5.0)
