"""Tests for adaptive Eulerian mesh rebalancing."""

import numpy as np
import pytest

from repro.core.adaptive import AdaptiveMeshRebalancer
from repro.machine import MachineModel, VirtualMachine
from repro.mesh import CurveBlockDecomposition, Grid2D
from repro.particles import gaussian_blob, uniform_plasma
from repro.pic import ParallelPIC, SequentialPIC


def build_eulerian(grid, particles, p=8, scheme="hilbert"):
    vm = VirtualMachine(p, MachineModel.cm5())
    decomp = CurveBlockDecomposition(grid, p, scheme)
    cells = grid.cell_id_of_positions(particles.x, particles.y)
    owners = decomp.owner_of_cells(cells)
    local = [particles.take(np.flatnonzero(owners == r)) for r in range(p)]
    return vm, ParallelPIC(vm, grid, decomp, local, movement="eulerian")


class TestQuantileBounds:
    def test_uniform_counts_give_balanced_split(self):
        grid = Grid2D(16, 16)
        reb = AdaptiveMeshRebalancer(grid)
        bounds = reb.quantile_bounds(np.ones(grid.ncells, dtype=np.int64), 4)
        widths = np.diff(bounds)
        assert widths.max() - widths.min() <= 1

    def test_concentrated_counts_give_narrow_runs(self):
        grid = Grid2D(16, 16)
        reb = AdaptiveMeshRebalancer(grid, max_cell_ratio=100.0)
        counts = np.zeros(grid.ncells, dtype=np.int64)
        counts[:8] = 1000  # all particles in 8 cells (row-major ids)
        bounds = reb.quantile_bounds(counts, 4)
        # some run must be much narrower than the mean
        assert np.diff(bounds).min() < grid.ncells / 8

    def test_zero_particles_falls_back_to_even(self):
        grid = Grid2D(8, 8)
        reb = AdaptiveMeshRebalancer(grid)
        bounds = reb.quantile_bounds(np.zeros(grid.ncells, dtype=np.int64), 4)
        assert np.diff(bounds).tolist() == [16, 16, 16, 16]

    def test_cell_ratio_cap_enforced(self):
        grid = Grid2D(16, 16)
        reb = AdaptiveMeshRebalancer(grid, max_cell_ratio=2.0)
        counts = np.zeros(grid.ncells, dtype=np.int64)
        counts[0] = 10**6
        bounds = reb.quantile_bounds(counts, 8)
        widths = np.diff(bounds)
        assert widths.max() <= 2.0 * grid.ncells / 8 + 1

    def test_bad_ratio_rejected(self):
        with pytest.raises(ValueError):
            AdaptiveMeshRebalancer(Grid2D(8, 8), max_cell_ratio=0.5)


class TestRebalance:
    def test_balances_particle_counts(self):
        # sigma wide enough that load spans many cells: cell-granular
        # rebalancing cannot split a single overloaded cell (that
        # limitation is intrinsic to Eulerian ownership and is tested
        # separately below).
        grid = Grid2D(32, 32)
        particles = gaussian_blob(grid, 8192, sigma_frac=0.12, center=(10.0, 10.0), rng=0)
        vm, pic = build_eulerian(grid, particles, p=8)
        before = np.array([p.n for p in pic.particles], dtype=float)
        reb = AdaptiveMeshRebalancer(grid)
        cost = reb.rebalance(pic)
        after = np.array([p.n for p in pic.particles], dtype=float)
        assert cost > 0
        assert after.max() / after.mean() < 0.6 * (before.max() / before.mean())
        assert after.max() / after.mean() < 1.5

    def test_single_hot_cell_cannot_be_split(self):
        """Cell granularity bounds what Eulerian rebalancing can do: a
        one-cell hot spot stays on one rank."""
        grid = Grid2D(16, 16)
        particles = gaussian_blob(grid, 4096, sigma_frac=0.005, center=(4.5, 4.5), rng=1)
        vm, pic = build_eulerian(grid, particles, p=4)
        AdaptiveMeshRebalancer(grid).rebalance(pic)
        counts = np.array([p.n for p in pic.particles])
        assert counts.max() > 0.9 * 4096

    def test_requires_eulerian(self, grid, uniform_particles):
        from repro.core import ParticlePartitioner

        vm = VirtualMachine(4, MachineModel.cm5())
        decomp = CurveBlockDecomposition(grid, 4)
        local = ParticlePartitioner(grid).initial_partition(uniform_particles, 4)
        pic = ParallelPIC(vm, grid, decomp, local, movement="lagrangian")
        with pytest.raises(ValueError, match="Eulerian"):
            AdaptiveMeshRebalancer(grid).rebalance(pic)

    def test_physics_unchanged_by_rebalancing(self):
        """Rebalancing moves ownership, not physics: a run with periodic
        rebalances matches the sequential reference."""
        grid = Grid2D(16, 16)
        particles = gaussian_blob(grid, 2048, rng=1)
        vm, pic = build_eulerian(grid, particles, p=4)
        seq = SequentialPIC(grid, particles.copy(), dt=pic.dt)
        reb = AdaptiveMeshRebalancer(grid)
        for it in range(9):
            pic.step()
            seq.step()
            if it % 3 == 2:
                reb.rebalance(pic)
        par = pic.all_particles()
        po, so = np.argsort(par.ids), np.argsort(seq.particles.ids)
        np.testing.assert_allclose(par.x[po], seq.particles.x[so], atol=1e-9)
        np.testing.assert_allclose(pic.fields.ez, seq.fields.ez, atol=1e-9)

    def test_no_particles_lost(self):
        grid = Grid2D(16, 16)
        particles = gaussian_blob(grid, 1024, rng=2)
        vm, pic = build_eulerian(grid, particles, p=4)
        reb = AdaptiveMeshRebalancer(grid)
        pic.step()
        reb.rebalance(pic)
        ids = np.sort(np.concatenate([p.ids for p in pic.particles]))
        assert np.array_equal(ids, np.arange(1024))

    def test_particles_aligned_after_rebalance(self):
        """After rebalancing, every particle sits on the rank that owns
        its cell (the Eulerian invariant)."""
        grid = Grid2D(16, 16)
        particles = gaussian_blob(grid, 2048, rng=3)
        vm, pic = build_eulerian(grid, particles, p=4)
        pic.step()
        AdaptiveMeshRebalancer(grid).rebalance(pic)
        for r in range(4):
            parts = pic.particles[r]
            cells = grid.cell_id_of_positions(parts.x, parts.y)
            assert np.all(pic.decomp.owner_of_cells(cells) == r)

    def test_rebalance_cost_charged_under_phase(self):
        grid = Grid2D(16, 16)
        particles = gaussian_blob(grid, 1024, rng=4)
        vm, pic = build_eulerian(grid, particles, p=4)
        pic.step()
        AdaptiveMeshRebalancer(grid).rebalance(pic)
        assert vm.phase_breakdown().get("rebalance", 0.0) > 0
