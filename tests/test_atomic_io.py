"""Tests for the shared atomic-write helpers (repro.util.atomic_io)."""

import json
import os

import pytest

from repro.util.atomic_io import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    atomic_writer,
)


class TestAtomicWriter:
    def test_writes_content(self, tmp_path):
        path = tmp_path / "out.bin"
        with atomic_writer(path, "wb") as fh:
            fh.write(b"payload")
        assert path.read_bytes() == b"payload"

    def test_overwrites_in_place(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("old")
        with atomic_writer(path, "w") as fh:
            fh.write("new")
        assert path.read_text() == "new"

    def test_no_temp_residue_on_success(self, tmp_path):
        path = tmp_path / "out.txt"
        with atomic_writer(path, "w") as fh:
            fh.write("x")
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_failure_leaves_original_and_no_residue(self, tmp_path):
        path = tmp_path / "out.txt"
        path.write_text("original")
        with pytest.raises(RuntimeError):
            with atomic_writer(path, "w") as fh:
                fh.write("partial")
                raise RuntimeError("mid-write crash")
        assert path.read_text() == "original"
        assert os.listdir(tmp_path) == ["out.txt"]

    def test_failure_with_no_preexisting_file(self, tmp_path):
        path = tmp_path / "fresh.txt"
        with pytest.raises(RuntimeError):
            with atomic_writer(path, "w") as fh:
                fh.write("partial")
                raise RuntimeError("boom")
        assert not path.exists()
        assert os.listdir(tmp_path) == []

    def test_interleaved_writers_same_target_do_not_clobber(self, tmp_path):
        # two writers in ONE process racing on the same target: each must
        # get a distinct temp file (pid alone is not unique enough), so
        # neither truncates the other's in-flight data and no cleanup
        # unlinks the other's temp — last rename wins, complete
        path = tmp_path / "out.txt"
        with atomic_writer(path, "w") as outer:
            outer.write("outer")
            with atomic_writer(path, "w") as inner:
                inner.write("inner")
            assert path.read_text() == "inner"
        assert path.read_text() == "outer"
        assert os.listdir(tmp_path) == ["out.txt"]


class TestConvenienceWrappers:
    def test_bytes(self, tmp_path):
        p = atomic_write_bytes(tmp_path / "b.bin", b"\x00\x01")
        assert p.read_bytes() == b"\x00\x01"

    def test_text(self, tmp_path):
        p = atomic_write_text(tmp_path / "t.txt", "héllo\n")
        assert p.read_text() == "héllo\n"

    def test_json_roundtrip(self, tmp_path):
        doc = {"b": [1, 2.5, None], "a": {"nested": True}}
        p = atomic_write_json(tmp_path / "d.json", doc)
        assert json.loads(p.read_text()) == doc

    def test_json_sort_keys(self, tmp_path):
        p = atomic_write_json(tmp_path / "d.json", {"b": 1, "a": 2}, sort_keys=True)
        assert p.read_text().index('"a"') < p.read_text().index('"b"')
