"""Tests for field storage and diagnostics."""

import numpy as np
import pytest

from repro.mesh import FieldState, Grid2D


class TestFieldState:
    def test_zeros_shape(self, grid):
        fields = FieldState.zeros(grid)
        assert fields.shape == grid.shape
        assert fields.ex.sum() == 0

    def test_shape_mismatch_rejected(self, grid):
        arrays = [np.zeros(grid.shape)] * 9 + [np.zeros((3, 3))]
        with pytest.raises(ValueError, match="one shape"):
            FieldState(*arrays)

    def test_copy_is_deep(self, grid):
        fields = FieldState.zeros(grid)
        dup = fields.copy()
        dup.ex[0, 0] = 5.0
        assert fields.ex[0, 0] == 0.0

    def test_clear_sources_leaves_fields(self, grid):
        fields = FieldState.zeros(grid)
        fields.ex[:] = 1.0
        fields.jx[:] = 2.0
        fields.rho[:] = 3.0
        fields.clear_sources()
        assert fields.jx.sum() == 0 and fields.rho.sum() == 0
        assert np.all(fields.ex == 1.0)

    def test_field_energy(self):
        grid = Grid2D(4, 4, lx=2.0, ly=2.0)
        fields = FieldState.zeros(grid)
        fields.ez[:] = 2.0
        # 16 nodes * 0.5 * 4 * cell area (0.25)
        assert fields.field_energy(grid) == pytest.approx(16 * 0.5 * 4 * 0.25)

    def test_total_charge(self, grid):
        fields = FieldState.zeros(grid)
        fields.rho[:] = 1.0
        assert fields.total_charge(grid) == pytest.approx(grid.ncells * grid.dx * grid.dy)

    def test_allclose(self, grid):
        a = FieldState.zeros(grid)
        b = FieldState.zeros(grid)
        assert a.allclose(b)
        b.by[0, 0] = 1e-3
        assert not a.allclose(b)
