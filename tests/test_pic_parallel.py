"""Tests for the parallel PIC — above all, equivalence with the
sequential reference for every decomposition / table / movement combo."""

import numpy as np
import pytest

from repro.core import ParticlePartitioner
from repro.machine import MachineModel, VirtualMachine
from repro.mesh import CurveBlockDecomposition, Grid2D
from repro.particles import ParticleArray, gaussian_blob, uniform_plasma
from repro.pic import ParallelPIC, SequentialPIC


def build_parallel(grid, particles, p=4, scheme="hilbert", **kwargs):
    vm = VirtualMachine(p, MachineModel.cm5())
    decomp = CurveBlockDecomposition(grid, p, scheme)
    local = ParticlePartitioner(grid, scheme).initial_partition(particles, p)
    pic = ParallelPIC(vm, grid, decomp, local, **kwargs)
    return vm, pic


def assert_matches_sequential(grid, particles, pic, niters):
    seq = SequentialPIC(grid, particles.copy(), dt=pic.dt)
    for _ in range(niters):
        pic.step()
        seq.step()
    par = pic.all_particles()
    po = np.argsort(par.ids)
    so = np.argsort(seq.particles.ids)
    np.testing.assert_allclose(par.x[po], seq.particles.x[so], atol=1e-9)
    np.testing.assert_allclose(par.y[po], seq.particles.y[so], atol=1e-9)
    np.testing.assert_allclose(par.ux[po], seq.particles.ux[so], atol=1e-9)
    np.testing.assert_allclose(pic.fields.ez, seq.fields.ez, atol=1e-9)
    np.testing.assert_allclose(pic.fields.rho, seq.fields.rho, atol=1e-9)


class TestEquivalence:
    @pytest.mark.parametrize("scheme", ["hilbert", "snake", "rowmajor"])
    def test_matches_sequential_uniform(self, scheme):
        grid = Grid2D(16, 16)
        particles = uniform_plasma(grid, 1024, rng=0)
        _, pic = build_parallel(grid, particles, p=4, scheme=scheme)
        assert_matches_sequential(grid, particles, pic, 10)

    def test_matches_sequential_irregular(self):
        grid = Grid2D(16, 16)
        particles = gaussian_blob(grid, 1024, rng=1)
        _, pic = build_parallel(grid, particles, p=4)
        assert_matches_sequential(grid, particles, pic, 10)

    @pytest.mark.parametrize("table", ["hash", "direct"])
    def test_ghost_table_kinds_equivalent(self, table):
        grid = Grid2D(16, 8)
        particles = uniform_plasma(grid, 512, rng=2)
        _, pic = build_parallel(grid, particles, p=4, ghost_table=table)
        assert_matches_sequential(grid, particles, pic, 5)

    def test_eulerian_matches_sequential(self):
        grid = Grid2D(16, 16)
        particles = uniform_plasma(grid, 1024, rng=3)
        _, pic = build_parallel(grid, particles, p=4, movement="eulerian")
        assert_matches_sequential(grid, particles, pic, 8)

    def test_many_ranks(self):
        grid = Grid2D(16, 16)
        particles = uniform_plasma(grid, 2048, rng=4)
        _, pic = build_parallel(grid, particles, p=16)
        assert_matches_sequential(grid, particles, pic, 5)

    def test_single_rank_degenerate(self):
        grid = Grid2D(8, 8)
        particles = uniform_plasma(grid, 256, rng=5)
        vm, pic = build_parallel(grid, particles, p=1)
        assert_matches_sequential(grid, particles, pic, 5)
        # one rank: no communication at all
        assert vm.comm_time.max() == 0.0


class TestCommunicationAuthenticity:
    """The values moved between ranks must equal the owners' data."""

    def test_gather_messages_carry_owner_fields(self):
        grid = Grid2D(16, 16)
        particles = gaussian_blob(grid, 1024, rng=6)
        vm, pic = build_parallel(grid, particles, p=4, collect_debug=True)
        pic.step()
        node_values = pic._field_node_values()
        seen_any = False
        for dst in range(vm.p):
            for src, (ids, vals) in pic.last_gather_messages[dst].items():
                # src owned these nodes and sent current field values
                assert np.all(pic.node_owner[ids] == src)
                np.testing.assert_allclose(vals, node_values[:, ids])
                seen_any = True
        assert seen_any

    def test_ghost_nodes_are_offrank(self):
        grid = Grid2D(16, 16)
        particles = uniform_plasma(grid, 1024, rng=7)
        vm, pic = build_parallel(grid, particles, p=4)
        pic.scatter()
        for r in range(vm.p):
            for owner, ids in pic._ghost_nodes[r].items():
                assert owner != r
                assert np.all(pic.node_owner[ids] == owner)

    def test_scatter_traffic_recorded(self):
        grid = Grid2D(16, 16)
        particles = uniform_plasma(grid, 1024, rng=8)
        vm, pic = build_parallel(grid, particles, p=4)
        pic.step()
        scatter = vm.stats.phase("scatter")
        assert scatter.total_msgs > 0 and scatter.total_bytes > 0

    def test_lagrangian_push_has_no_communication(self):
        grid = Grid2D(16, 16)
        particles = uniform_plasma(grid, 512, rng=9)
        vm, pic = build_parallel(grid, particles, p=4)
        pic.step()
        assert vm.stats.phase("push").total_msgs == 0

    def test_eulerian_migration_has_communication(self):
        grid = Grid2D(16, 16)
        particles = uniform_plasma(grid, 2048, rng=10)
        vm, pic = build_parallel(grid, particles, p=4, movement="eulerian")
        for _ in range(3):
            pic.step()
        assert vm.stats.phase("migration").total_msgs > 0


class TestDriftEffects:
    def test_static_assignment_traffic_grows(self):
        """Under Lagrangian movement with no redistribution, scatter
        traffic grows as particles drift off their subdomains (the
        effect of paper Figure 18)."""
        grid = Grid2D(32, 32)
        particles = gaussian_blob(grid, 4096, vth=0.2, rng=11)
        vm, pic = build_parallel(grid, particles, p=8)
        early = []
        late = []
        for it in range(30):
            pic.step()
            epoch = vm.stats.snapshot_epoch()
            volume = epoch["scatter"].max_bytes if "scatter" in epoch else 0
            (early if it < 5 else late).append(volume)
        assert np.mean(late[-5:]) > np.mean(early)

    def test_eulerian_counts_become_unbalanced(self):
        """Blob particles under Eulerian movement concentrate on few
        ranks (the load-balance failure of grid partitioning, Table 1)."""
        grid = Grid2D(16, 16)
        # centre the blob inside one rank's tile so the imbalance is stark
        particles = gaussian_blob(grid, 4096, sigma_frac=0.02, center=(4.0, 4.0), rng=12)
        vm = VirtualMachine(8, MachineModel.cm5())
        decomp = CurveBlockDecomposition(grid, 8, "hilbert")
        cells = grid.cell_id_of_positions(particles.x, particles.y)
        owners = decomp.owner_of_cells(cells)
        local = [particles.take(np.flatnonzero(owners == r)) for r in range(8)]
        pic = ParallelPIC(vm, grid, decomp, local, movement="eulerian")
        pic.step()
        counts = np.array([p.n for p in pic.particles])
        assert counts.max() > 3 * counts.mean()


class TestValidation:
    def test_rank_count_mismatch(self):
        grid = Grid2D(8, 8)
        vm = VirtualMachine(4)
        decomp = CurveBlockDecomposition(grid, 2)
        with pytest.raises(ValueError):
            ParallelPIC(vm, grid, decomp, [ParticleArray.empty(0)] * 4)

    def test_unknown_movement(self):
        grid = Grid2D(8, 8)
        vm = VirtualMachine(2)
        decomp = CurveBlockDecomposition(grid, 2)
        with pytest.raises(ValueError, match="movement"):
            ParallelPIC(vm, grid, decomp, [ParticleArray.empty(0)] * 2, movement="warp")
