"""Tests for the job service (repro.service): jobs, queue, cache,
sweeps, backoff, scheduler happy path, and the run-level watchdog."""

import json
import threading

import pytest

from repro.pic.simulation import Simulation, SimulationConfig, config_from_dict
from repro.service import (
    JobQueue,
    JobRecord,
    JobSpec,
    ResultCache,
    Scheduler,
    backoff_delay,
    expand_jobs,
    job_key,
    load_jobs,
    render_report,
)
from repro.service.cache import payload_digest
from repro.util.errors import JobTimeout

BASE = dict(nx=16, ny=8, nparticles=256, p=4)


def spec(seed=0, iterations=4, **kw):
    return JobSpec(config=dict(BASE, seed=seed), iterations=iterations, **kw)


# ----------------------------------------------------------------------
# job model
# ----------------------------------------------------------------------
class TestJobKey:
    def test_stable_across_dict_order(self):
        a = JobSpec(config=dict(BASE, seed=1), iterations=4)
        shuffled = dict(reversed(list(dict(BASE, seed=1).items())))
        b = JobSpec(config=shuffled, iterations=4)
        assert a.key == b.key

    def test_defaults_canonicalize(self):
        # spelling out a default-valued field does not split the key
        a = JobSpec(config=dict(BASE), iterations=4)
        b = JobSpec(config=dict(BASE, scheme="hilbert"), iterations=4)
        assert a.key == b.key

    def test_result_determining_fields_split_the_key(self):
        a = spec(seed=0)
        assert a.key != spec(seed=1).key
        assert a.key != spec(seed=0, iterations=5).key
        assert a.key != JobSpec(
            config=dict(BASE, seed=0),
            iterations=4,
            fault_plan={"events": [{"kind": "kill", "rank": 1, "iteration": 2}]},
        ).key

    def test_chaos_excluded_from_key(self):
        # killing the worker never changes the result, so it shares a key
        a = spec(seed=0)
        b = JobSpec(
            config=dict(BASE, seed=0),
            iterations=4,
            chaos={"kind": "crash", "at_iteration": 1, "attempts": [0]},
        )
        assert a.key == b.key

    def test_name_and_priority_excluded(self):
        assert spec(name="x", priority=3).key == spec(name="y").key

    def test_roundtrip(self):
        s = spec(seed=2, name="n", priority=1)
        assert JobSpec.from_dict(s.to_dict()).key == s.key

    def test_validation(self):
        with pytest.raises(ValueError):
            JobSpec(config=dict(BASE, distribution="nope"), iterations=4)
        with pytest.raises(ValueError):
            JobSpec(config=dict(BASE), iterations=0)
        with pytest.raises(ValueError):
            JobSpec(config=dict(BASE), iterations=4, chaos={"kind": "explode"})
        with pytest.raises(ValueError):
            JobSpec.from_dict({"config": dict(BASE)})


# ----------------------------------------------------------------------
# queue
# ----------------------------------------------------------------------
class TestJobQueue:
    def test_priority_then_fifo(self):
        q = JobQueue()
        lo1 = JobRecord(spec=spec(seed=0, name="lo1"))
        hi = JobRecord(spec=spec(seed=1, name="hi", priority=5))
        lo2 = JobRecord(spec=spec(seed=2, name="lo2"))
        for r in (lo1, hi, lo2):
            q.push(r)
        assert [q.pop().name for _ in range(3)] == ["hi", "lo1", "lo2"]

    def test_maxsize_backpressure(self):
        q = JobQueue(maxsize=1)
        q.push(JobRecord(spec=spec(seed=0)))
        assert q.full
        with pytest.raises(IndexError):
            q.push(JobRecord(spec=spec(seed=1)))
        q.pop()
        assert not q.full


# ----------------------------------------------------------------------
# sweeps
# ----------------------------------------------------------------------
class TestSweep:
    def test_bare_list(self):
        jobs = expand_jobs([spec(seed=0).to_dict(), spec(seed=1).to_dict()])
        assert len(jobs) == 2

    def test_jobs_object(self):
        jobs = expand_jobs({"jobs": [spec(seed=0).to_dict()]})
        assert len(jobs) == 1

    def test_cartesian_expansion_and_names(self):
        jobs = expand_jobs(
            {
                "name": "sw",
                "base": dict(BASE),
                "iterations": 3,
                "sweep": {"seed": [0, 1], "p": [2, 4]},
            }
        )
        assert len(jobs) == 4
        assert jobs[0].name == "sw-seed=0-p=2"
        assert jobs[-1].name == "sw-seed=1-p=4"
        assert {j.config["p"] for j in jobs} == {2, 4}

    def test_iterations_sweepable(self):
        jobs = expand_jobs(
            {"base": dict(BASE), "sweep": {"iterations": [2, 4]}}
        )
        assert sorted(j.iterations for j in jobs) == [2, 4]

    def test_bad_shapes(self):
        with pytest.raises(ValueError):
            expand_jobs({"base": dict(BASE)})  # no sweep, no jobs
        with pytest.raises(ValueError):
            expand_jobs({"base": dict(BASE), "sweep": {}})
        with pytest.raises(ValueError):
            expand_jobs({"base": dict(BASE), "sweep": {"seed": [0]}})  # no iterations
        with pytest.raises(ValueError):
            expand_jobs("not a document")

    def test_load_jobs_file(self, tmp_path):
        f = tmp_path / "jobs.json"
        f.write_text(json.dumps([spec(seed=0).to_dict()]))
        assert len(load_jobs(f)) == 1
        f.write_text("{broken")
        with pytest.raises(ValueError):
            load_jobs(f)


# ----------------------------------------------------------------------
# cache
# ----------------------------------------------------------------------
class TestResultCache:
    PAYLOAD = {"totals": {"total_time": 1.25}, "final_state": {"x_sum": 0.5}}

    def test_roundtrip_bit_identical(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put("ab" + "0" * 62, self.PAYLOAD)
        got = cache.get("ab" + "0" * 62)
        assert json.dumps(got, sort_keys=True) == json.dumps(
            self.PAYLOAD, sort_keys=True
        )
        assert cache.stats() == {"hits": 1, "misses": 0, "quarantined": 0}

    def test_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("cd" + "0" * 62) is None
        assert cache.misses == 1

    @pytest.mark.parametrize(
        "corruptor",
        [
            lambda text: "not json at all {",
            lambda text: text.replace('"repro-cache/1"', '"other/9"'),
            lambda text: text.replace('"key": "ab', '"key": "ba', 1),
            lambda text: text.replace("1.25", "9.75"),  # payload edit
            lambda text: text[: len(text) // 2],  # truncation
        ],
        ids=["garbage", "schema", "key", "payload-flip", "truncated"],
    )
    def test_corruption_quarantined_and_recomputable(self, tmp_path, corruptor):
        key = "ab" + "1" * 62
        cache = ResultCache(tmp_path)
        path = cache.put(key, self.PAYLOAD)
        path.write_text(corruptor(path.read_text()))
        assert cache.get(key) is None  # miss, not a wrong result
        assert len(cache.quarantined) == 1
        assert not path.exists()  # moved aside, slot free for recompute
        quarantined = list(path.parent.glob("*.quarantined.*"))
        assert len(quarantined) == 1  # preserved for debugging
        cache.put(key, self.PAYLOAD)
        assert cache.get(key) == self.PAYLOAD

    def test_digest_is_canonical(self):
        assert payload_digest({"a": 1, "b": 2}) == payload_digest({"b": 2, "a": 1})


# ----------------------------------------------------------------------
# backoff
# ----------------------------------------------------------------------
class TestBackoff:
    def test_deterministic(self):
        assert backoff_delay("k", 1) == backoff_delay("k", 1)

    def test_jitter_decorrelates_jobs(self):
        assert backoff_delay("job-a", 0) != backoff_delay("job-b", 0)

    def test_exponential_growth_with_cap(self):
        base, cap = 0.1, 1.0
        delays = [
            backoff_delay("k", a, base=base, cap=cap) for a in range(8)
        ]
        for a, d in enumerate(delays):
            raw = min(cap, base * 2**a)
            assert 0.5 * raw <= d < raw
        assert delays[-1] <= cap


# ----------------------------------------------------------------------
# scheduler happy path
# ----------------------------------------------------------------------
class TestSchedulerBasics:
    def test_batch_matches_direct_runs_bit_identically(self, tmp_path):
        jobs = [spec(seed=s, name=f"j{s}") for s in range(3)]
        report = Scheduler(
            workers=2, cache=tmp_path / "cache", workdir=tmp_path / "work"
        ).run(jobs)
        assert report["ok"]
        assert report["counters"]["completed"] == 3
        for job in jobs:
            sim = Simulation(config_from_dict(job.config))
            ref = sim.run(job.iterations).to_dict()
            got = next(r for r in report["jobs"] if r["name"] == job.name)
            assert json.dumps(got["final_state"], sort_keys=True) == json.dumps(
                ref["final_state"], sort_keys=True
            )

    def test_cache_hits_on_resubmission(self, tmp_path):
        jobs = [spec(seed=s) for s in range(2)]
        kw = dict(cache=tmp_path / "cache", workdir=tmp_path / "work")
        cold = Scheduler(workers=2, **kw).run(jobs)
        warm = Scheduler(workers=2, **kw).run(jobs)
        assert warm["counters"]["cache_hits"] == 2
        for c, w in zip(cold["jobs"], warm["jobs"]):
            assert w["cached"] and not c["cached"]
            assert json.dumps(c["final_state"], sort_keys=True) == json.dumps(
                w["final_state"], sort_keys=True
            )

    def test_no_cache_mode(self, tmp_path):
        report = Scheduler(workers=1, cache=None, workdir=tmp_path).run(
            [spec(seed=0)]
        )
        assert report["ok"]
        assert report["params"]["cache"] is None

    def test_priority_order_with_one_worker(self, tmp_path):
        jobs = [
            spec(seed=0, name="low", priority=0),
            spec(seed=1, name="high", priority=9),
        ]
        sched = Scheduler(workers=1, cache=None, workdir=tmp_path)
        report = sched.run(jobs)
        launches = [
            r["job"]
            for r in sched.telemetry.records
            if r["kind"] == "job_launched"
        ]
        assert launches == ["high", "low"]
        assert report["ok"]

    def test_circuit_breaker_cancels_remainder(self, tmp_path):
        # an invalid fault plan event rank makes the job fail every attempt
        bad = JobSpec(
            config=dict(BASE, seed=0),
            iterations=4,
            name="bad",
            fault_plan={"events": [{"kind": "kill", "rank": 99, "iteration": 1}]},
        )
        rest = [spec(seed=s, name=f"ok{s}") for s in (1, 2)]
        report = Scheduler(
            workers=1,
            cache=None,
            workdir=tmp_path,
            retries=0,
            max_failures=1,
        ).run([bad] + rest)
        assert not report["ok"]
        assert report["circuit_open"]
        states = {r["name"]: r["state"] for r in report["jobs"]}
        assert states["bad"] == "failed"
        assert list(states.values()).count("cancelled") == 2

    def test_circuit_open_cancels_late_retryable_failure(self, tmp_path):
        # "bad" exhausts its retries quickly and trips the breaker while
        # "hung" is still live; the hung worker's heartbeat loss lands
        # after the circuit opened and must cancel the job, not schedule
        # a retry (a retry would never launch — launches are gated on
        # the closed circuit — and the loop would busy-spin forever)
        bad = JobSpec(
            config=dict(BASE, seed=0),
            iterations=4,
            name="bad",
            fault_plan={"events": [{"kind": "kill", "rank": 99, "iteration": 1}]},
        )
        hung = JobSpec(
            config=dict(BASE, seed=1),
            iterations=4,
            name="hung",
            chaos={"kind": "hang", "at_iteration": 0, "attempts": [0]},
        )
        sched = Scheduler(
            workers=2,
            cache=None,
            workdir=tmp_path,
            retries=1,
            max_failures=1,
            heartbeat_timeout=1.5,
        )
        out = {}
        th = threading.Thread(
            target=lambda: out.update(report=sched.run([bad, hung])), daemon=True
        )
        th.start()
        th.join(60.0)
        assert not th.is_alive(), "scheduler busy-spun after the circuit opened"
        report = out["report"]
        assert report["circuit_open"] and not report["ok"]
        states = {r["name"]: r["state"] for r in report["jobs"]}
        assert states["bad"] == "failed"
        assert states["hung"] == "cancelled"
        assert report["counters"]["cancelled"] == 1
        kinds = {r["kind"] for r in sched.telemetry.records}
        assert "job_cancelled" in kinds

    def test_no_cache_no_workdir_uses_private_tempdir(self, tmp_path, monkeypatch):
        # --no-cache without --workdir must not drop scratch checkpoints
        # into ./work in the caller's cwd
        monkeypatch.chdir(tmp_path)
        report = Scheduler(workers=1, cache=None).run([spec(seed=0)])
        assert report["ok"]
        assert not (tmp_path / "work").exists()

    def test_slow_start_survives_heartbeat_watchdog(self, tmp_path):
        # simulation construction longer than heartbeat_timeout: the
        # watchdog only arms at the worker's first message, so a slow
        # build must not be killed as hung
        job = spec(
            seed=0,
            name="slow",
            chaos={"kind": "slow_start", "seconds": 1.2, "attempts": [0]},
        )
        report = Scheduler(
            workers=1,
            cache=None,
            workdir=tmp_path,
            retries=0,
            heartbeat_timeout=0.4,
        ).run([job])
        assert report["ok"]
        assert report["counters"]["heartbeats_lost"] == 0

    def test_report_renders(self, tmp_path):
        report = Scheduler(workers=1, cache=None, workdir=tmp_path).run(
            [spec(seed=0, name="solo")]
        )
        text = render_report(report)
        assert "solo" in text and "batch: OK" in text
        with pytest.raises(ValueError):
            render_report({"schema": "other/1"})

    def test_telemetry_stream_saves(self, tmp_path):
        sched = Scheduler(workers=1, cache=tmp_path / "c", workdir=tmp_path / "w")
        sched.run([spec(seed=0)])
        path = sched.telemetry.save(tmp_path / "svc.jsonl")
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert lines[0]["schema"] == "repro-service/2"
        assert lines[-1]["type"] == "summary"
        kinds = {r.get("kind") for r in lines if r["type"] == "event"}
        assert "job_launched" in kinds and "job_done" in kinds


# ----------------------------------------------------------------------
# run-level wall-clock watchdog
# ----------------------------------------------------------------------
class TestWalltimeWatchdog:
    def test_timeout_raises_and_checkpoints(self, tmp_path):
        ck = tmp_path / "wd.ck.npz"
        sim = Simulation(SimulationConfig(**BASE, seed=3))
        sim.enable_telemetry()
        with pytest.raises(JobTimeout) as info:
            sim.run(10**9, checkpoint_every=1, checkpoint_path=ck, walltime=0.3)
        assert info.value.iteration == sim.iteration > 0
        assert ck.exists()
        kinds = [
            r["kind"]
            for r in sim.telemetry.records
            if r.get("type") == "event"
        ]
        assert "timeout" in kinds
        # the final checkpoint resumes exactly at the interrupted iteration
        resumed = Simulation.from_checkpoint(ck)
        assert resumed.iteration == sim.iteration

    def test_resume_after_timeout_matches_uninterrupted(self, tmp_path):
        ck = tmp_path / "wd.ck.npz"
        cfg = SimulationConfig(**BASE, seed=4)
        sim = Simulation(cfg)
        with pytest.raises(JobTimeout):
            # walltime tiny: stops after the very first iteration
            sim.run(6, checkpoint_every=1, checkpoint_path=ck, walltime=1e-9)
        resumed = Simulation.from_checkpoint(ck)
        resumed.run(6 - resumed.iteration)
        ref = Simulation(cfg).run(6)
        assert json.dumps(
            resumed.result().to_dict()["final_state"], sort_keys=True
        ) == json.dumps(ref.to_dict()["final_state"], sort_keys=True)

    def test_no_timeout_for_completed_run(self):
        sim = Simulation(SimulationConfig(**BASE, seed=5))
        result = sim.run(2, walltime=3600.0)
        assert len(result.records) == 2

    def test_walltime_validation(self):
        sim = Simulation(SimulationConfig(**BASE, seed=6))
        with pytest.raises(ValueError):
            sim.run(1, walltime=0.0)
