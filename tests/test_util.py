"""Tests for repro.util (rng, validation, op counting)."""

import numpy as np
import pytest

from repro.util import OpCounter, as_rng, require, require_positive, require_type


class TestAsRng:
    def test_seed_gives_reproducible_stream(self):
        a = as_rng(42).random(5)
        b = as_rng(42).random(5)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        assert not np.array_equal(as_rng(1).random(5), as_rng(2).random(5))

    def test_none_gives_generator(self):
        assert isinstance(as_rng(None), np.random.Generator)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_rng(gen) is gen

    def test_numpy_integer_seed(self):
        assert isinstance(as_rng(np.int64(3)), np.random.Generator)

    def test_rejects_bad_type(self):
        with pytest.raises(TypeError, match="rng must be"):
            as_rng("seed")


class TestValidation:
    def test_require_passes(self):
        require(True, "never")

    def test_require_raises(self):
        with pytest.raises(ValueError, match="boom"):
            require(False, "boom")

    def test_require_positive_strict(self):
        require_positive(1.0, "x")
        with pytest.raises(ValueError, match="x must be > 0"):
            require_positive(0.0, "x")

    def test_require_positive_nonstrict(self):
        require_positive(0.0, "x", strict=False)
        with pytest.raises(ValueError, match="x must be >= 0"):
            require_positive(-1.0, "x", strict=False)

    def test_require_type_single(self):
        require_type(3, int, "n")
        with pytest.raises(TypeError, match="n must be int"):
            require_type("3", int, "n")

    def test_require_type_tuple_message(self):
        with pytest.raises(TypeError, match="int | float"):
            require_type("x", (int, float), "v")


class TestOpCounter:
    def test_add_and_get(self):
        counter = OpCounter()
        counter.add("scatter", 10)
        counter.add("scatter", 5)
        assert counter.get("scatter") == 15

    def test_unseen_category_is_zero(self):
        assert OpCounter().get("nope") == 0.0

    def test_total(self):
        counter = OpCounter()
        counter.add("a", 1)
        counter.add("b", 2)
        assert counter.total() == 3

    def test_merge(self):
        a, b = OpCounter(), OpCounter()
        a.add("x", 1)
        b.add("x", 2)
        b.add("y", 3)
        a.merge(b)
        assert a.get("x") == 3 and a.get("y") == 3

    def test_reset(self):
        counter = OpCounter()
        counter.add("x", 1)
        counter.reset()
        assert counter.total() == 0

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            OpCounter().add("x", -1)

    def test_as_dict_snapshot(self):
        counter = OpCounter()
        counter.add("x", 1)
        d = counter.as_dict()
        d["x"] = 99
        assert counter.get("x") == 1
