"""Tests for the conservation-diagnostics recorder."""

import numpy as np
import pytest

from repro.mesh import Grid2D
from repro.particles import uniform_plasma
from repro.pic import SequentialPIC
from repro.pic.diagnostics import DiagnosticsRecorder


@pytest.fixture
def run_with_recorder():
    grid = Grid2D(16, 16)
    parts = uniform_plasma(grid, 1024, rng=0)
    sim = SequentialPIC(grid, parts)
    rec = DiagnosticsRecorder(grid)
    for it in range(20):
        sim.step()
        rec.record(it, sim.fields, sim.particles)
    return sim, rec


class TestRecording:
    def test_sample_count(self, run_with_recorder):
        _, rec = run_with_recorder
        assert len(rec.samples) == 20

    def test_every_cadence(self):
        grid = Grid2D(8, 8)
        parts = uniform_plasma(grid, 64, rng=1)
        sim = SequentialPIC(grid, parts)
        rec = DiagnosticsRecorder(grid, every=5)
        for it in range(20):
            sim.step()
            rec.record(it, sim.fields, sim.particles)
        assert len(rec.samples) == 4
        assert [s.iteration for s in rec.samples] == [0, 5, 10, 15]

    def test_every_validated(self, grid):
        with pytest.raises(ValueError):
            DiagnosticsRecorder(grid, every=0)


class TestSeries:
    def test_scalar_series_shape(self, run_with_recorder):
        _, rec = run_with_recorder
        assert rec.series("field_energy").shape == (20,)
        assert rec.series("total_energy").shape == (20,)

    def test_momentum_series_shape(self, run_with_recorder):
        _, rec = run_with_recorder
        assert rec.series("momentum").shape == (20, 3)

    def test_unknown_name(self, run_with_recorder):
        _, rec = run_with_recorder
        with pytest.raises(KeyError):
            rec.series("entropy")

    def test_empty_recorder_raises(self, grid):
        with pytest.raises(ValueError, match="no samples"):
            DiagnosticsRecorder(grid).series("field_energy")


class TestConservation:
    def test_charge_exactly_conserved(self, run_with_recorder):
        _, rec = run_with_recorder
        assert rec.charge_drift() < 1e-12

    def test_energy_drift_small_for_quiet_plasma(self, run_with_recorder):
        _, rec = run_with_recorder
        assert abs(rec.energy_drift()) < 0.5

    def test_gauss_residual_bounded(self, run_with_recorder):
        _, rec = run_with_recorder
        assert rec.series("gauss_residual").max() < 1.0

    def test_summary_keys(self, run_with_recorder):
        _, rec = run_with_recorder
        summary = rec.summary()
        assert set(summary) == {
            "samples",
            "energy_drift",
            "charge_drift",
            "max_gauss_residual",
        }
        assert summary["samples"] == 20
