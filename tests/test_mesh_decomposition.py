"""Tests for mesh decompositions (curve-block and rectangular block)."""

import numpy as np
import pytest

from repro.mesh import BlockDecomposition, CurveBlockDecomposition, Grid2D
from repro.mesh.decomposition import balanced_splits


class TestBalancedSplits:
    def test_even_split(self):
        assert balanced_splits(12, 4).tolist() == [0, 3, 6, 9, 12]

    def test_remainder_goes_to_leading_runs(self):
        assert balanced_splits(10, 4).tolist() == [0, 3, 6, 8, 10]

    def test_degenerate(self):
        assert balanced_splits(0, 3).tolist() == [0, 0, 0, 0]
        assert balanced_splits(5, 1).tolist() == [0, 5]

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            balanced_splits(5, 0)


class TestCurveBlock:
    def test_every_cell_owned_once(self, grid):
        decomp = CurveBlockDecomposition(grid, 4)
        counts = decomp.cell_counts()
        assert counts.sum() == grid.ncells

    def test_balanced(self, grid):
        decomp = CurveBlockDecomposition(grid, 4)
        counts = decomp.cell_counts()
        assert counts.max() - counts.min() <= 1
        assert decomp.max_cell_imbalance() == pytest.approx(1.0, abs=0.05)

    def test_contiguous_along_curve(self, grid):
        decomp = CurveBlockDecomposition(grid, 4, "hilbert")
        pos = decomp.scheme.positions(grid.nx, grid.ny)
        for r in range(4):
            cells = decomp.cells_of_rank(r)
            run = np.sort(pos[cells])
            assert np.array_equal(run, np.arange(run[0], run[0] + run.size))

    def test_hilbert_tiles_square_for_pow4(self):
        """On a 2^k square grid with p = 4^j, Hilbert runs are square tiles
        (paper Figure 10)."""
        grid = Grid2D(8, 8)
        decomp = CurveBlockDecomposition(grid, 4, "hilbert")
        for r in range(4):
            cells = decomp.cells_of_rank(r)
            ys, xs = np.divmod(cells, 8)
            assert xs.max() - xs.min() == 3 and ys.max() - ys.min() == 3

    def test_snake_tiles_are_strips(self):
        grid = Grid2D(8, 8)
        decomp = CurveBlockDecomposition(grid, 4, "snake")
        cells = decomp.cells_of_rank(0)
        ys, xs = np.divmod(cells, 8)
        assert xs.max() - xs.min() == 7  # full-width strip
        assert ys.max() - ys.min() == 1

    def test_owner_of_cells_range_check(self, grid):
        decomp = CurveBlockDecomposition(grid, 4)
        with pytest.raises(ValueError):
            decomp.owner_of_cells(np.array([grid.ncells]))

    def test_nodes_alias_cells(self, grid):
        decomp = CurveBlockDecomposition(grid, 4)
        assert np.array_equal(decomp.nodes_of_rank(2), decomp.cells_of_rank(2))

    def test_explicit_bounds(self, grid):
        ncells = grid.ncells
        bounds = np.array([0, ncells // 8, ncells // 2, ncells // 2, ncells])
        decomp = CurveBlockDecomposition(grid, 4, bounds=bounds)
        counts = decomp.cell_counts()
        assert counts[2] == 0  # zero-width run
        assert counts.sum() == ncells

    def test_bad_bounds_rejected(self, grid):
        with pytest.raises(ValueError, match="length p\\+1"):
            CurveBlockDecomposition(grid, 4, bounds=np.array([0, grid.ncells]))
        bad = np.array([0, 10, 5, 20, grid.ncells])
        with pytest.raises(ValueError, match="non-decreasing"):
            CurveBlockDecomposition(grid, 4, bounds=bad)

    def test_boundary_node_count_hilbert_below_snake(self):
        grid = Grid2D(32, 32)
        hil = CurveBlockDecomposition(grid, 16, "hilbert")
        snk = CurveBlockDecomposition(grid, 16, "snake")
        hil_total = sum(hil.boundary_node_count(r) for r in range(16))
        snk_total = sum(snk.boundary_node_count(r) for r in range(16))
        assert hil_total < snk_total

    def test_more_ranks_than_cells_rejected(self):
        grid = Grid2D(2, 2)
        with pytest.raises(ValueError):
            CurveBlockDecomposition(grid, 5)


class TestBlockDecomposition:
    def test_tile_bounds_cover_grid(self):
        grid = Grid2D(16, 8)
        decomp = BlockDecomposition(grid, 8)
        seen = np.zeros(grid.shape, dtype=int)
        for r in range(8):
            iy0, iy1, ix0, ix1 = decomp.tile(r)
            seen[iy0:iy1, ix0:ix1] += 1
        assert np.all(seen == 1)

    def test_owner_matches_tiles(self):
        grid = Grid2D(16, 8)
        decomp = BlockDecomposition(grid, 8)
        for r in range(8):
            cells = decomp.cells_of_rank(r)
            iy0, iy1, ix0, ix1 = decomp.tile(r)
            ys, xs = np.divmod(cells, 16)
            assert xs.min() >= ix0 and xs.max() < ix1
            assert ys.min() >= iy0 and ys.max() < iy1

    def test_explicit_grid_shape(self):
        grid = Grid2D(16, 8)
        decomp = BlockDecomposition(grid, 8, pr=2, pc=4)
        assert decomp.pr == 2 and decomp.pc == 4

    def test_bad_factorization_rejected(self):
        grid = Grid2D(16, 8)
        with pytest.raises(ValueError, match="pr \\* pc"):
            BlockDecomposition(grid, 8, pr=3, pc=3)

    def test_uneven_divisions_balanced(self):
        grid = Grid2D(10, 7)
        decomp = BlockDecomposition(grid, 6, pr=2, pc=3)
        counts = decomp.cell_counts()
        assert counts.sum() == 70
        assert counts.max() - counts.min() <= 7  # (4x4 vs 3x3 tiles)
