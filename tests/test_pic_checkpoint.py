"""Tests for checkpoint/restart."""

import numpy as np
import pytest

from repro.core import ParticlePartitioner
from repro.machine import MachineModel, VirtualMachine
from repro.mesh import CurveBlockDecomposition, Grid2D
from repro.particles import uniform_plasma
from repro.pic import ParallelPIC, SequentialPIC
from repro.pic.checkpoint import load_checkpoint, save_checkpoint


class TestRoundtrip:
    def test_sequential_state_roundtrip(self, tmp_path, grid, uniform_particles):
        sim = SequentialPIC(grid, uniform_particles)
        sim.run(7)
        path = save_checkpoint(tmp_path / "ck", grid, sim.fields, [sim.particles], 7)
        data = load_checkpoint(path)
        assert data.iteration == 7
        assert data.grid.nx == grid.nx and data.grid.lx == grid.lx
        assert data.fields.allclose(sim.fields)
        assert np.array_equal(data.particles[0].ids, sim.particles.ids)
        assert np.allclose(data.particles[0].x, sim.particles.x)

    def test_per_rank_sets_preserved(self, tmp_path, grid, uniform_particles):
        local = ParticlePartitioner(grid).initial_partition(uniform_particles, 4)
        from repro.mesh import FieldState

        fields = FieldState.zeros(grid)
        path = save_checkpoint(tmp_path / "ranks", grid, fields, local, 0)
        data = load_checkpoint(path)
        assert data.nranks == 4
        for a, b in zip(local, data.particles):
            assert a.n == b.n
            assert np.array_equal(a.ids, b.ids)

    def test_suffix_added(self, tmp_path, grid, uniform_particles):
        sim = SequentialPIC(grid, uniform_particles)
        path = save_checkpoint(tmp_path / "plain", grid, sim.fields, [sim.particles], 0)
        assert path.suffix == ".npz"
        assert load_checkpoint(tmp_path / "plain").iteration == 0


class TestExactRestart:
    def test_parallel_resume_is_bitexact(self, tmp_path):
        """Run 10 iterations; checkpoint at 5 and resume: identical state."""
        grid = Grid2D(16, 16)
        particles = uniform_plasma(grid, 1024, rng=3)

        def build(local):
            vm = VirtualMachine(4, MachineModel.cm5())
            decomp = CurveBlockDecomposition(grid, 4, "hilbert")
            return ParallelPIC(vm, grid, decomp, local)

        local = ParticlePartitioner(grid).initial_partition(particles, 4)
        reference = build([p.copy() for p in local])
        for _ in range(10):
            reference.step()

        first = build([p.copy() for p in local])
        for _ in range(5):
            first.step()
        path = save_checkpoint(tmp_path / "mid", grid, first.fields, first.particles, 5)

        data = load_checkpoint(path)
        resumed = build(data.particles)
        resumed.fields = data.fields
        for _ in range(5):
            resumed.step()

        ref_parts = reference.all_particles()
        res_parts = resumed.all_particles()
        order_a = np.argsort(ref_parts.ids)
        order_b = np.argsort(res_parts.ids)
        assert np.array_equal(ref_parts.x[order_a], res_parts.x[order_b])
        assert np.array_equal(ref_parts.ux[order_a], res_parts.ux[order_b])
        assert np.array_equal(reference.fields.ez, resumed.fields.ez)


class TestValidation:
    def test_negative_iteration_rejected(self, tmp_path, grid, uniform_particles):
        sim = SequentialPIC(grid, uniform_particles)
        with pytest.raises(ValueError):
            save_checkpoint(tmp_path / "x", grid, sim.fields, [sim.particles], -1)

    def test_empty_particle_list_rejected(self, tmp_path, grid):
        from repro.mesh import FieldState

        with pytest.raises(ValueError):
            save_checkpoint(tmp_path / "x", grid, FieldState.zeros(grid), [], 0)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "nothere.npz")
