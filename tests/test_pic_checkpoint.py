"""Tests for checkpoint/restart."""

import numpy as np
import pytest

from repro.core import ParticlePartitioner
from repro.machine import MachineModel, VirtualMachine
from repro.mesh import CurveBlockDecomposition, Grid2D
from repro.particles import uniform_plasma
from repro.pic import ParallelPIC, SequentialPIC
from repro.pic.checkpoint import (
    CheckpointError,
    load_checkpoint,
    save_checkpoint,
)


class TestRoundtrip:
    def test_sequential_state_roundtrip(self, tmp_path, grid, uniform_particles):
        sim = SequentialPIC(grid, uniform_particles)
        sim.run(7)
        path = save_checkpoint(tmp_path / "ck", grid, sim.fields, [sim.particles], 7)
        data = load_checkpoint(path)
        assert data.iteration == 7
        assert data.grid.nx == grid.nx and data.grid.lx == grid.lx
        assert data.fields.allclose(sim.fields)
        assert np.array_equal(data.particles[0].ids, sim.particles.ids)
        assert np.allclose(data.particles[0].x, sim.particles.x)

    def test_per_rank_sets_preserved(self, tmp_path, grid, uniform_particles):
        local = ParticlePartitioner(grid).initial_partition(uniform_particles, 4)
        from repro.mesh import FieldState

        fields = FieldState.zeros(grid)
        path = save_checkpoint(tmp_path / "ranks", grid, fields, local, 0)
        data = load_checkpoint(path)
        assert data.nranks == 4
        for a, b in zip(local, data.particles):
            assert a.n == b.n
            assert np.array_equal(a.ids, b.ids)

    def test_suffix_added(self, tmp_path, grid, uniform_particles):
        sim = SequentialPIC(grid, uniform_particles)
        path = save_checkpoint(tmp_path / "plain", grid, sim.fields, [sim.particles], 0)
        assert path.suffix == ".npz"
        assert load_checkpoint(tmp_path / "plain").iteration == 0


class TestExactRestart:
    def test_parallel_resume_is_bitexact(self, tmp_path):
        """Run 10 iterations; checkpoint at 5 and resume: identical state."""
        grid = Grid2D(16, 16)
        particles = uniform_plasma(grid, 1024, rng=3)

        def build(local):
            vm = VirtualMachine(4, MachineModel.cm5())
            decomp = CurveBlockDecomposition(grid, 4, "hilbert")
            return ParallelPIC(vm, grid, decomp, local)

        local = ParticlePartitioner(grid).initial_partition(particles, 4)
        reference = build([p.copy() for p in local])
        for _ in range(10):
            reference.step()

        first = build([p.copy() for p in local])
        for _ in range(5):
            first.step()
        path = save_checkpoint(tmp_path / "mid", grid, first.fields, first.particles, 5)

        data = load_checkpoint(path)
        resumed = build(data.particles)
        resumed.fields = data.fields
        for _ in range(5):
            resumed.step()

        ref_parts = reference.all_particles()
        res_parts = resumed.all_particles()
        order_a = np.argsort(ref_parts.ids)
        order_b = np.argsort(res_parts.ids)
        assert np.array_equal(ref_parts.x[order_a], res_parts.x[order_b])
        assert np.array_equal(ref_parts.ux[order_a], res_parts.ux[order_b])
        assert np.array_equal(reference.fields.ez, resumed.fields.ez)


class TestValidation:
    def test_negative_iteration_rejected(self, tmp_path, grid, uniform_particles):
        sim = SequentialPIC(grid, uniform_particles)
        with pytest.raises(ValueError):
            save_checkpoint(tmp_path / "x", grid, sim.fields, [sim.particles], -1)

    def test_empty_particle_list_rejected(self, tmp_path, grid):
        from repro.mesh import FieldState

        with pytest.raises(ValueError):
            save_checkpoint(tmp_path / "x", grid, FieldState.zeros(grid), [], 0)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "nothere.npz")

    def test_missing_file_message_names_path(self, tmp_path):
        with pytest.raises(FileNotFoundError, match="nothere"):
            load_checkpoint(tmp_path / "nothere")

    def test_garbage_file_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "bogus.npz"
        path.write_bytes(b"this is not an npz archive at all")
        with pytest.raises(CheckpointError, match="not a repro checkpoint"):
            load_checkpoint(path)

    def test_bare_npy_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "array.npz"
        with open(path, "wb") as fh:
            np.save(fh, np.arange(5))
        with pytest.raises(CheckpointError, match="not a repro checkpoint"):
            load_checkpoint(path)

    def test_foreign_npz_names_missing_keys(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez(path, a=np.arange(3), b=np.arange(4))
        with pytest.raises(CheckpointError) as err:
            load_checkpoint(path)
        assert "version" in str(err.value)
        assert "'a'" in str(err.value)  # lists what it DID find

    def test_truncated_archive_names_missing_keys(self, tmp_path, grid, uniform_particles):
        sim = SequentialPIC(grid, uniform_particles)
        path = save_checkpoint(tmp_path / "full", grid, sim.fields, [sim.particles], 3)
        data = dict(np.load(path))
        del data["field_ez"], data["rank0_matrix"]
        np.savez(path, **data)
        with pytest.raises(CheckpointError) as err:
            load_checkpoint(path)
        assert "field_ez" in str(err.value)

    def test_unsupported_version(self, tmp_path, grid, uniform_particles):
        sim = SequentialPIC(grid, uniform_particles)
        path = save_checkpoint(tmp_path / "v9", grid, sim.fields, [sim.particles], 0)
        data = dict(np.load(path))
        data["version"] = np.array([9])
        np.savez(path, **data)
        with pytest.raises(CheckpointError, match="version 9"):
            load_checkpoint(path)

    def test_bad_magic(self, tmp_path, grid, uniform_particles):
        sim = SequentialPIC(grid, uniform_particles)
        path = save_checkpoint(tmp_path / "m", grid, sim.fields, [sim.particles], 0)
        data = dict(np.load(path))
        data["format"] = np.array(["other-tool"])
        np.savez(path, **data)
        with pytest.raises(CheckpointError, match="format marker"):
            load_checkpoint(path)


class TestAtomicWrite:
    def test_failed_write_preserves_existing(self, tmp_path, grid, uniform_particles, monkeypatch):
        """A crash mid-write must leave the previous checkpoint intact."""
        sim = SequentialPIC(grid, uniform_particles)
        path = save_checkpoint(tmp_path / "ck", grid, sim.fields, [sim.particles], 1)
        before = path.read_bytes()

        def boom(*args, **kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(np, "savez_compressed", boom)
        with pytest.raises(OSError):
            save_checkpoint(path, grid, sim.fields, [sim.particles], 2)
        assert path.read_bytes() == before
        assert load_checkpoint(path).iteration == 1
        leftovers = [p for p in tmp_path.iterdir() if ".tmp" in p.name]
        assert leftovers == [], f"temp litter left behind: {leftovers}"


class TestRunState:
    def test_run_state_and_sort_keys_roundtrip(self, tmp_path, grid, uniform_particles):
        local = ParticlePartitioner(grid).initial_partition(uniform_particles, 2)
        from repro.mesh import FieldState

        run_state = {"config": {"nx": grid.nx}, "vm": {"clocks": [0.5, 0.25]}}
        keys = [np.sort(np.arange(p.n) * 3) for p in local]
        path = save_checkpoint(
            tmp_path / "rs", grid, FieldState.zeros(grid), local, 4,
            run_state=run_state, sort_keys=keys,
        )
        data = load_checkpoint(path)
        assert data.version == 2
        assert data.run_state == run_state
        assert data.sort_keys is not None
        for saved, original in zip(data.sort_keys, keys):
            assert np.array_equal(saved, original)

    def test_no_run_state_loads_as_none(self, tmp_path, grid, uniform_particles):
        sim = SequentialPIC(grid, uniform_particles)
        path = save_checkpoint(tmp_path / "bare", grid, sim.fields, [sim.particles], 0)
        data = load_checkpoint(path)
        assert data.run_state is None and data.sort_keys is None

    def test_sort_keys_length_mismatch_rejected(self, tmp_path, grid, uniform_particles):
        from repro.mesh import FieldState

        with pytest.raises(ValueError):
            save_checkpoint(
                tmp_path / "x", grid, FieldState.zeros(grid),
                [uniform_particles], 0, sort_keys=[np.arange(3), np.arange(3)],
            )


class TestV1Compat:
    def _write_v1(self, tmp_path, grid, particles):
        """Craft a legacy v1 archive (pre-run-state format)."""
        from repro.mesh import FieldState

        fields = FieldState.zeros(grid)
        payload = {
            "version": np.array([1]),
            "meta": np.array([grid.nx, grid.ny, 6, 1], dtype=np.int64),
            "extent": np.array([grid.lx, grid.ly]),
            "rank0_matrix": particles.to_matrix(),
        }
        for name in (
            "ex", "ey", "ez", "bx", "by", "bz", "jx", "jy", "jz", "rho",
        ):
            payload[f"field_{name}"] = getattr(fields, name)
        path = tmp_path / "legacy.npz"
        np.savez(path, **payload)
        return path

    def test_v1_loads_with_warning(self, tmp_path, grid, uniform_particles):
        path = self._write_v1(tmp_path, grid, uniform_particles)
        with pytest.warns(UserWarning, match="format-v1"):
            data = load_checkpoint(path)
        assert data.version == 1
        assert data.iteration == 6
        assert data.run_state is None
        assert np.array_equal(data.particles[0].ids, uniform_particles.ids)

    def test_from_checkpoint_rejects_v1(self, tmp_path, grid, uniform_particles):
        from repro.pic import Simulation

        path = self._write_v1(tmp_path, grid, uniform_particles)
        with pytest.warns(UserWarning, match="format-v1"):
            with pytest.raises(CheckpointError, match="v1"):
                Simulation.from_checkpoint(path)
