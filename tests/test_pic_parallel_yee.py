"""Tests for the parallel charge-conserving (Yee + zigzag) stepper."""

import numpy as np
import pytest

from repro.core import ParticlePartitioner
from repro.machine import MachineModel, VirtualMachine
from repro.mesh import CurveBlockDecomposition, Grid2D
from repro.particles import ParticleArray, gaussian_blob, uniform_plasma
from repro.pic.parallel_yee import ParallelYeePIC
from repro.pic.yee import YeePIC


def build(grid, particles, p=4, scheme="hilbert", **kwargs):
    vm = VirtualMachine(p, MachineModel.cm5())
    decomp = CurveBlockDecomposition(grid, p, scheme)
    local = ParticlePartitioner(grid, scheme).initial_partition(particles, p)
    return vm, ParallelYeePIC(vm, grid, decomp, local, **kwargs)


class TestEquivalence:
    @pytest.mark.parametrize("dist,seed", [("uniform", 0), ("blob", 1)])
    def test_matches_sequential_yee(self, dist, seed):
        grid = Grid2D(16, 16)
        sampler = uniform_plasma if dist == "uniform" else gaussian_blob
        particles = sampler(grid, 1024, density=1.0, rng=seed)
        vm, par = build(grid, particles)
        seq = YeePIC(grid, particles.copy(), dt=par.dt)
        for _ in range(8):
            par.step()
            seq.step()
        a = par.all_particles()
        oa, ob = np.argsort(a.ids), np.argsort(seq.particles.ids)
        np.testing.assert_allclose(a.x[oa], seq.particles.x[ob], atol=1e-9)
        np.testing.assert_allclose(a.ux[oa], seq.particles.ux[ob], atol=1e-9)
        np.testing.assert_allclose(par.fields.ex, seq.fields.ex, atol=1e-9)
        np.testing.assert_allclose(par.fields.bz, seq.fields.bz, atol=1e-9)
        np.testing.assert_allclose(par.fields.rho, seq.fields.rho, atol=1e-9)

    @pytest.mark.parametrize("table", ["hash", "direct"])
    def test_ghost_tables_equivalent(self, table):
        grid = Grid2D(16, 8)
        particles = uniform_plasma(grid, 512, rng=2)
        vm, par = build(grid, particles, ghost_table=table)
        seq = YeePIC(grid, particles.copy(), dt=par.dt)
        for _ in range(4):
            par.step()
            seq.step()
        np.testing.assert_allclose(par.fields.ey, seq.fields.ey, atol=1e-9)

    def test_single_rank(self):
        grid = Grid2D(8, 8)
        particles = uniform_plasma(grid, 128, rng=3)
        vm, par = build(grid, particles, p=1)
        par.step()
        assert vm.comm_time.max() == 0.0


class TestChargeConservation:
    def test_gauss_machine_precision_in_parallel(self):
        grid = Grid2D(16, 16)
        particles = gaussian_blob(grid, 2048, density=1.0, rng=4)
        vm, par = build(grid, particles, p=4)
        assert par.gauss_error() < 1e-12
        for _ in range(20):
            par.step()
        assert par.gauss_error() < 1e-12

    def test_div_b_machine_precision(self):
        grid = Grid2D(16, 16)
        particles = uniform_plasma(grid, 1024, density=1.0, rng=5)
        vm, par = build(grid, particles, p=4)
        for _ in range(10):
            par.step()
        assert par.solver.divergence_b(par.fields) < 1e-13


class TestCommunicationStructure:
    def test_gather_is_two_rounds(self):
        """Request + reply: gather-phase message count is roughly twice
        a one-round exchange with the same partner structure."""
        grid = Grid2D(16, 16)
        particles = gaussian_blob(grid, 2048, rng=6)
        vm, par = build(grid, particles, p=4)
        par.step()
        gather = vm.stats.phase("gather")
        scatter = vm.stats.phase("scatter")
        assert gather.total_msgs > scatter.total_msgs

    def test_gather_replies_carry_owner_values(self):
        grid = Grid2D(16, 16)
        particles = gaussian_blob(grid, 1024, rng=7)
        vm, par = build(grid, particles, p=4)
        par.step()
        node_values = par._field_node_values()
        seen = False
        for requester in range(vm.p):
            for owner, (ids, vals) in par.last_gather_replies[requester].items():
                assert np.all(par.node_owner[ids] == owner)
                seen = True
        assert seen

    def test_alignment_reduces_traffic(self):
        """Curve-aligned particle placement produces less scatter+gather
        traffic than a round-robin placement — the paper's thesis, on
        the modern kernel."""
        grid = Grid2D(32, 32)
        particles = gaussian_blob(grid, 4096, rng=8)

        def traffic(local):
            vm = VirtualMachine(8, MachineModel.cm5())
            decomp = CurveBlockDecomposition(grid, 8, "hilbert")
            pic = ParallelYeePIC(vm, grid, decomp, local)
            pic.step()
            return (
                vm.stats.phase("scatter").total_bytes
                + vm.stats.phase("gather").total_bytes
            )

        aligned = ParticlePartitioner(grid, "hilbert").initial_partition(particles, 8)
        scattered = [particles.take(np.arange(r, particles.n, 8)) for r in range(8)]
        assert traffic(aligned) < 0.5 * traffic(scattered)


class TestValidation:
    def test_rank_count_mismatch(self):
        grid = Grid2D(8, 8)
        vm = VirtualMachine(4)
        decomp = CurveBlockDecomposition(grid, 2)
        with pytest.raises(ValueError):
            ParallelYeePIC(vm, grid, decomp, [ParticleArray.empty(0)] * 4)

    def test_empty_rank_tolerated(self):
        grid = Grid2D(8, 8)
        vm = VirtualMachine(2)
        decomp = CurveBlockDecomposition(grid, 2)
        parts = uniform_plasma(grid, 64, rng=9)
        pic = ParallelYeePIC(vm, grid, decomp, [parts, ParticleArray.empty(0)])
        pic.step()
        assert pic.iteration == 1
