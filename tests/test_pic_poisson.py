"""Tests for the electrostatic Poisson solvers."""

import numpy as np
import pytest

from repro.mesh import Grid2D
from repro.pic.poisson import PoissonSolver


@pytest.fixture
def grid():
    return Grid2D(32, 16, lx=32.0, ly=16.0)


@pytest.fixture
def solver(grid):
    return PoissonSolver(grid)


def sinusoidal_rho(grid, kx_mode=1, ky_mode=0):
    x = np.arange(grid.nx)[None, :] * grid.dx
    y = np.arange(grid.ny)[:, None] * grid.dy
    return np.cos(2 * np.pi * kx_mode * x / grid.lx) * np.cos(2 * np.pi * ky_mode * y / grid.ly)


class TestFFTSolver:
    def test_discrete_laplacian_inverts(self, grid, solver):
        rng = np.random.default_rng(0)
        rho = rng.normal(size=grid.shape)
        phi = solver.solve_fft(rho)
        residual = solver.apply_laplacian(phi) + (rho - rho.mean())
        assert np.abs(residual).max() < 1e-10

    def test_zero_mean_output(self, grid, solver):
        phi = solver.solve_fft(sinusoidal_rho(grid) + 3.0)
        assert abs(phi.mean()) < 1e-12

    def test_mean_of_rho_irrelevant(self, grid, solver):
        rho = sinusoidal_rho(grid)
        assert np.allclose(solver.solve_fft(rho), solver.solve_fft(rho + 7.0))

    def test_shape_validated(self, solver):
        with pytest.raises(ValueError):
            solver.solve_fft(np.zeros((3, 3)))


class TestJacobiSolver:
    def test_agrees_with_fft(self, grid, solver):
        rho = sinusoidal_rho(grid, kx_mode=2, ky_mode=1)
        phi_fft = solver.solve_fft(rho)
        phi_jac, sweeps = solver.solve_jacobi(rho, tol=1e-9)
        assert sweeps > 0
        assert np.abs(phi_jac - phi_fft).max() < 1e-5

    def test_warm_start_converges_faster(self, grid, solver):
        rho = sinusoidal_rho(grid)
        phi, sweeps_cold = solver.solve_jacobi(rho, tol=1e-8)
        _, sweeps_warm = solver.solve_jacobi(rho, tol=1e-8, phi0=phi)
        assert sweeps_warm < sweeps_cold

    def test_nonconvergence_raises(self, grid, solver):
        rho = sinusoidal_rho(grid)
        with pytest.raises(RuntimeError, match="Jacobi failed"):
            solver.solve_jacobi(rho, tol=1e-12, max_sweeps=3)

    def test_tol_validated(self, grid, solver):
        with pytest.raises(ValueError):
            solver.solve_jacobi(np.zeros(grid.shape), tol=0.0)


class TestElectricField:
    def test_gradient_of_linear_mode(self, grid, solver):
        rho = sinusoidal_rho(grid)
        phi = solver.solve_fft(rho)
        ex, ey = solver.electric_field(phi)
        # E should be sinusoidal in x with ky=0: ey ~ 0
        assert np.abs(ey).max() < 1e-12
        assert np.abs(ex).max() > 0

    def test_gauss_law_discrete(self, grid, solver):
        """div E = rho - <rho> for the discrete operators."""
        rng = np.random.default_rng(1)
        rho = rng.normal(size=grid.shape)
        phi = solver.solve_fft(rho)
        # div of centred-gradient E equals the wide (2h) Laplacian of -phi;
        # verify via the solver's own operator on a smoothed field instead:
        residual = solver.apply_laplacian(phi) + (rho - rho.mean())
        assert np.abs(residual).max() < 1e-10
