"""Looped-vs-flat engine parity: the accounting-invariance contract.

The flat engine replaces ``for r in range(p)`` phase loops with single
pooled kernels, but the virtual machine must not be able to tell the
difference: identical virtual time, identical per-category op counts,
identical per-rank clocks, and identical per-phase message statistics.
Physical state (particles, fields) is pinned at ``atol=1e-12`` between
the engines; since the flat scatter adopted the looped engine's per-rank
deposition association the engines actually agree bit-for-bit, and the
multicore backend (``workers=N``) is *required* to: sharding may never
perturb a single bit of state or accounting (DESIGN.md §5.5).
"""

import multiprocessing

import numpy as np
import pytest

from repro.core import ParticlePartitioner
from repro.machine import MachineModel, VirtualMachine
from repro.mesh import CurveBlockDecomposition, Grid2D
from repro.parallel_exec import shared_memory_available
from repro.particles import ParticleArray, ParticlePool, gaussian_blob, uniform_plasma
from repro.pic import ParallelPIC

needs_multicore = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods()
    or not shared_memory_available(),
    reason="fork or multiprocessing.shared_memory unavailable",
)


def _build(engine, *, p=6, movement="lagrangian", ghost_table="hash",
           field_solver="maxwell", n=1200, rng=21, **kwargs):
    grid = Grid2D(24, 16)
    particles = gaussian_blob(grid, n, rng=rng)
    vm = VirtualMachine(p, MachineModel.cm5())
    decomp = CurveBlockDecomposition(grid, p, "hilbert")
    local = ParticlePartitioner(grid, "hilbert").initial_partition(particles, p)
    pic = ParallelPIC(
        vm, grid, decomp, local,
        movement=movement, ghost_table=ghost_table,
        field_solver=field_solver, engine=engine, **kwargs,
    )
    return vm, pic


def _assert_accounting_equal(vm_l, vm_f):
    assert vm_f.elapsed() == vm_l.elapsed()
    np.testing.assert_array_equal(vm_f.clocks, vm_l.clocks)
    np.testing.assert_array_equal(vm_f.compute_time, vm_l.compute_time)
    np.testing.assert_array_equal(vm_f.comm_time, vm_l.comm_time)
    assert vm_f.ops.as_dict() == vm_l.ops.as_dict()
    assert set(vm_f.phase_time) == set(vm_l.phase_time)
    for name in vm_l.phase_time:
        np.testing.assert_array_equal(vm_f.phase_time[name], vm_l.phase_time[name])
    assert vm_f.stats.phases() == vm_l.stats.phases()
    for name in vm_l.stats.phases():
        rec_l, rec_f = vm_l.stats.phase(name), vm_f.stats.phase(name)
        for attr in ("msgs_sent", "msgs_recv", "bytes_sent", "bytes_recv"):
            np.testing.assert_array_equal(
                getattr(rec_f, attr), getattr(rec_l, attr),
                err_msg=f"phase {name}: {attr} differs between engines",
            )


class TestAccountingInvariance:
    """vm.elapsed(), vm.ops, and comm stats must agree to the last bit."""

    @pytest.mark.parametrize("ghost_table", ["hash", "direct"])
    @pytest.mark.parametrize("movement", ["lagrangian", "eulerian"])
    def test_movement_and_table_matrix(self, movement, ghost_table):
        vm_l, pic_l = _build("looped", movement=movement, ghost_table=ghost_table)
        vm_f, pic_f = _build("flat", movement=movement, ghost_table=ghost_table)
        for _ in range(4):
            pic_l.step()
            pic_f.step()
        _assert_accounting_equal(vm_l, vm_f)

    @pytest.mark.parametrize("p", [1, 2, 7, 16])
    def test_rank_counts(self, p):
        vm_l, pic_l = _build("looped", p=p)
        vm_f, pic_f = _build("flat", p=p)
        for _ in range(3):
            pic_l.step()
            pic_f.step()
        _assert_accounting_equal(vm_l, vm_f)

    def test_electrostatic_solver(self):
        vm_l, pic_l = _build("looped", field_solver="electrostatic")
        vm_f, pic_f = _build("flat", field_solver="electrostatic")
        for _ in range(3):
            pic_l.step()
            pic_f.step()
        _assert_accounting_equal(vm_l, vm_f)

    def test_ghost_table_stats_match(self):
        vm_l, pic_l = _build("looped")
        vm_f, pic_f = _build("flat")
        for _ in range(3):
            pic_l.step()
            pic_f.step()
        for tl, tf in zip(pic_l.ghost_tables, pic_f.ghost_tables):
            assert tf.stats.entries == tl.stats.entries
            assert tf.stats.unique_nodes == tl.stats.unique_nodes
            assert tf.stats.ops == tl.stats.ops


class TestPhysicalParity:
    """Particles and fields agree between engines at 1e-12."""

    @pytest.mark.parametrize("movement", ["lagrangian", "eulerian"])
    def test_state_matches(self, movement):
        _, pic_l = _build("looped", movement=movement)
        _, pic_f = _build("flat", movement=movement)
        for _ in range(5):
            pic_l.step()
            pic_f.step()
        par_l, par_f = pic_l.all_particles(), pic_f.all_particles()
        assert par_f.n == par_l.n
        ol, of = np.argsort(par_l.ids), np.argsort(par_f.ids)
        np.testing.assert_array_equal(par_f.ids[of], par_l.ids[ol])
        for attr in ("x", "y", "ux", "uy", "uz"):
            np.testing.assert_allclose(
                getattr(par_f, attr)[of], getattr(par_l, attr)[ol], atol=1e-12,
                err_msg=f"particle {attr} diverged between engines",
            )
        for field in ("ex", "ey", "ez", "bx", "by", "bz", "rho", "jx", "jy", "jz"):
            np.testing.assert_allclose(
                getattr(pic_f.fields, field), getattr(pic_l.fields, field),
                atol=1e-12, err_msg=f"field {field} diverged between engines",
            )

    def test_ghost_schedule_identical(self):
        """The flat scatter's message schedule equals the looped one's."""
        _, pic_l = _build("looped")
        _, pic_f = _build("flat")
        pic_l.scatter()
        pic_f.scatter()
        for gl, gf in zip(pic_l._ghost_nodes, pic_f._ghost_nodes):
            assert sorted(gl) == sorted(gf)
            for owner in gl:
                np.testing.assert_array_equal(gf[owner], gl[owner])


class TestMulticoreParity:
    """flat+workers must be *bit-identical* to serial flat — accounting
    AND physical state — for every worker count (DESIGN.md §5.5)."""

    def _assert_state_identical(self, pic_a, pic_b):
        par_a, par_b = pic_a.all_particles(), pic_b.all_particles()
        assert par_b.n == par_a.n
        oa, ob = np.argsort(par_a.ids), np.argsort(par_b.ids)
        np.testing.assert_array_equal(par_b.ids[ob], par_a.ids[oa])
        for attr in ("x", "y", "ux", "uy", "uz"):
            np.testing.assert_array_equal(
                getattr(par_b, attr)[ob], getattr(par_a, attr)[oa],
                err_msg=f"particle {attr} not bit-identical across worker counts",
            )
        for field in ("ex", "ey", "ez", "bx", "by", "bz", "rho"):
            np.testing.assert_array_equal(
                getattr(pic_b.fields, field), getattr(pic_a.fields, field),
                err_msg=f"field {field} not bit-identical across worker counts",
            )

    @needs_multicore
    @pytest.mark.parametrize("movement", ["lagrangian", "eulerian"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_workers_bit_identical(self, workers, movement):
        vm_s, pic_s = _build("flat", movement=movement)
        vm_w, pic_w = _build("flat", movement=movement, workers=workers)
        try:
            for _ in range(4):
                pic_s.step()
                pic_w.step()
            _assert_accounting_equal(vm_s, vm_w)
            self._assert_state_identical(pic_s, pic_w)
        finally:
            pic_w.close()

    @needs_multicore
    def test_three_way_accounting(self):
        """looped ≡ flat ≡ flat+workers on the same virtual machine run."""
        vm_l, pic_l = _build("looped")
        vm_f, pic_f = _build("flat")
        vm_w, pic_w = _build("flat", workers=2)
        try:
            for _ in range(4):
                pic_l.step()
                pic_f.step()
                pic_w.step()
            _assert_accounting_equal(vm_l, vm_f)
            _assert_accounting_equal(vm_l, vm_w)
            self._assert_state_identical(pic_f, pic_w)
        finally:
            pic_w.close()

    @needs_multicore
    def test_workers_survive_repartition(self):
        """Pool rebuilds (redistribution-style) keep worker runs identical."""
        _, pic_s = _build("flat")
        _, pic_w = _build("flat", workers=2)
        try:
            for _ in range(2):
                pic_s.step()
                pic_w.step()
            pic_s.particles = [p.copy() for p in pic_s.particles]
            pic_w.particles = [p.copy() for p in pic_w.particles]
            for _ in range(2):
                pic_s.step()
                pic_w.step()
            self._assert_state_identical(pic_s, pic_w)
        finally:
            pic_w.close()


class TestPoolLifecycle:
    def test_pool_survives_external_reassignment(self):
        """Replacing pic.particles (as the redistributor does) must
        trigger a pool rebuild, not stale reads."""
        _, pic = _build("flat")
        pic.step()
        pool_before = pic._pool
        assert pool_before is not None and pool_before.owns(pic.particles)
        # Redistribution swaps in brand-new per-rank arrays.
        pic.particles = [p.copy() for p in pic.particles]
        assert not pool_before.owns(pic.particles)
        pic.step()
        assert pic._pool is not pool_before
        assert pic._pool.owns(pic.particles)

    def test_pool_round_trip(self):
        grid = Grid2D(8, 8)
        particles = uniform_plasma(grid, 200, rng=5)
        parts = [particles.take(np.arange(i * 50, (i + 1) * 50)) for i in range(4)]
        pool = ParticlePool.from_ranks(parts)
        assert pool.p == 4 and pool.n == 200
        np.testing.assert_array_equal(pool.counts, [50, 50, 50, 50])
        for r in range(4):
            np.testing.assert_array_equal(pool.views[r].ids, parts[r].ids)
            np.testing.assert_array_equal(pool.views[r].x, parts[r].x)
        assert pool.owns(list(pool.views))
        assert not pool.owns(parts)

    def test_empty_segments(self):
        parts = [ParticleArray.empty(0) for _ in range(3)]
        pool = ParticlePool.from_ranks(parts)
        assert pool.n == 0
        np.testing.assert_array_equal(pool.counts, [0, 0, 0])


class TestDebugHooks:
    def test_hooks_empty_by_default(self):
        _, pic = _build("flat")
        pic.step()
        assert pic.last_halo == []
        assert pic.last_gather_messages == []

    @pytest.mark.parametrize("engine", ["looped", "flat"])
    def test_hooks_populated_when_requested(self, engine):
        vm, pic = _build(engine, collect_debug=True)
        pic.step()
        assert len(pic.last_gather_messages) == vm.p
        assert len(pic.last_halo) == vm.p


class TestValidation:
    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="engine"):
            _build("pooled")
