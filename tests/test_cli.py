"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.nx == 64 and args.policy == "dynamic"

    def test_bad_distribution_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--distribution", "fractal"])


class TestCommands:
    def test_schemes(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        assert "hilbert" in out and "snake" in out

    def test_scenarios(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "fig17" in out and "128x64" in out

    def test_run_small(self, capsys):
        code = main([
            "run", "--nx", "16", "--ny", "16", "-n", "512", "-p", "4",
            "--iterations", "5", "--policy", "static",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "total_time" in out and "scatter" in out

    def test_run_json(self, capsys):
        code = main([
            "run", "--nx", "16", "--ny", "16", "-n", "512", "-p", "4",
            "--iterations", "3", "--json",
        ])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["iterations"] == 3
        assert summary["total_time"] > 0
        assert "phase_breakdown" in summary

    def test_run_named_case_overrides_geometry(self, capsys):
        code = main([
            "run", "--case", "fig20", "--iterations", "2", "--json",
        ])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["iterations"] == 2

    def test_run_unknown_case(self):
        with pytest.raises(SystemExit, match="unknown case"):
            main(["run", "--case", "fig99"])

    def test_config_file_loaded(self, capsys, tmp_path):
        cfg = tmp_path / "cfg.json"
        cfg.write_text('{"nx": 16, "ny": 16, "nparticles": 512, "p": 4, "policy": "periodic:2"}')
        assert main(["run", "--config", str(cfg), "--iterations", "4", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["n_redistributions"] == 2

    def test_cli_flag_overrides_config_file(self, capsys, tmp_path):
        cfg = tmp_path / "cfg.json"
        cfg.write_text('{"nx": 16, "ny": 16, "nparticles": 512, "p": 4, "policy": "static"}')
        code = main([
            "run", "--config", str(cfg), "--policy", "periodic:2",
            "--iterations", "4", "--json",
        ])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["n_redistributions"] == 2

    def test_config_file_unknown_keys_rejected(self, tmp_path):
        cfg = tmp_path / "cfg.json"
        cfg.write_text('{"warp_factor": 9}')
        with pytest.raises(SystemExit, match="unknown config keys"):
            main(["run", "--config", str(cfg)])

    def test_config_file_bad_json(self, tmp_path):
        cfg = tmp_path / "cfg.json"
        cfg.write_text("{nope")
        with pytest.raises(SystemExit, match="not valid JSON"):
            main(["run", "--config", str(cfg)])

    def test_config_file_missing(self, tmp_path):
        with pytest.raises(SystemExit, match="not found"):
            main(["run", "--config", str(tmp_path / "nope.json")])

    def test_save_json(self, tmp_path, capsys):
        out = tmp_path / "result.json"
        code = main([
            "run", "--nx", "16", "--ny", "16", "-n", "512", "-p", "4",
            "--iterations", "3", "--save-json", str(out),
        ])
        assert code == 0
        saved = json.loads(out.read_text())
        assert saved["totals"]["iterations"] == 3
        assert len(saved["series"]["iteration_time"]) == 3

    def test_electrostatic_solver_flag(self, capsys):
        code = main([
            "run", "--nx", "16", "--ny", "16", "-n", "512", "-p", "4",
            "--iterations", "2", "--field-solver", "electrostatic", "--json",
        ])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["iterations"] == 2

    def test_run_periodic_policy(self, capsys):
        code = main([
            "run", "--nx", "16", "--ny", "16", "-n", "512", "-p", "4",
            "--iterations", "6", "--policy", "periodic:2", "--json",
        ])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["n_redistributions"] == 3
