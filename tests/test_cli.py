"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.nx == 64 and args.policy == "dynamic"

    def test_bad_distribution_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--distribution", "fractal"])


class TestCommands:
    def test_schemes(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        assert "hilbert" in out and "snake" in out

    def test_scenarios(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "fig17" in out and "128x64" in out

    def test_run_small(self, capsys):
        code = main([
            "run", "--nx", "16", "--ny", "16", "-n", "512", "-p", "4",
            "--iterations", "5", "--policy", "static",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "total_time" in out and "scatter" in out

    def test_run_json(self, capsys):
        code = main([
            "run", "--nx", "16", "--ny", "16", "-n", "512", "-p", "4",
            "--iterations", "3", "--json",
        ])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["iterations"] == 3
        assert summary["total_time"] > 0
        assert "phase_breakdown" in summary

    def test_run_named_case_overrides_geometry(self, capsys):
        code = main([
            "run", "--case", "fig20", "--iterations", "2", "--json",
        ])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["iterations"] == 2

    def test_run_unknown_case(self):
        with pytest.raises(SystemExit, match="unknown case"):
            main(["run", "--case", "fig99"])

    def test_config_file_loaded(self, capsys, tmp_path):
        cfg = tmp_path / "cfg.json"
        cfg.write_text('{"nx": 16, "ny": 16, "nparticles": 512, "p": 4, "policy": "periodic:2"}')
        assert main(["run", "--config", str(cfg), "--iterations", "4", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["n_redistributions"] == 2

    def test_cli_flag_overrides_config_file(self, capsys, tmp_path):
        cfg = tmp_path / "cfg.json"
        cfg.write_text('{"nx": 16, "ny": 16, "nparticles": 512, "p": 4, "policy": "static"}')
        code = main([
            "run", "--config", str(cfg), "--policy", "periodic:2",
            "--iterations", "4", "--json",
        ])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["n_redistributions"] == 2

    def test_config_file_unknown_keys_rejected(self, tmp_path):
        cfg = tmp_path / "cfg.json"
        cfg.write_text('{"warp_factor": 9}')
        with pytest.raises(SystemExit, match="unknown config keys"):
            main(["run", "--config", str(cfg)])

    def test_config_file_bad_json(self, tmp_path):
        cfg = tmp_path / "cfg.json"
        cfg.write_text("{nope")
        with pytest.raises(SystemExit, match="not valid JSON"):
            main(["run", "--config", str(cfg)])

    def test_config_file_missing(self, tmp_path):
        with pytest.raises(SystemExit, match="not found"):
            main(["run", "--config", str(tmp_path / "nope.json")])

    def test_save_json(self, tmp_path, capsys):
        out = tmp_path / "result.json"
        code = main([
            "run", "--nx", "16", "--ny", "16", "-n", "512", "-p", "4",
            "--iterations", "3", "--save-json", str(out),
        ])
        assert code == 0
        saved = json.loads(out.read_text())
        assert saved["totals"]["iterations"] == 3
        assert len(saved["series"]["iteration_time"]) == 3

    def test_electrostatic_solver_flag(self, capsys):
        code = main([
            "run", "--nx", "16", "--ny", "16", "-n", "512", "-p", "4",
            "--iterations", "2", "--field-solver", "electrostatic", "--json",
        ])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["iterations"] == 2

    def test_run_periodic_policy(self, capsys):
        code = main([
            "run", "--nx", "16", "--ny", "16", "-n", "512", "-p", "4",
            "--iterations", "6", "--policy", "periodic:2", "--json",
        ])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["n_redistributions"] == 3

    def test_config_file_accepts_density_dt_nbuckets(self, capsys, tmp_path):
        """density / dt / nbuckets are valid SimulationConfig fields with no
        CLI flag — the config loader must not reject them."""
        cfg = tmp_path / "cfg.json"
        cfg.write_text(json.dumps({
            "nx": 16, "ny": 16, "nparticles": 512, "p": 4,
            "density": 0.02, "dt": 0.01, "nbuckets": 8,
        }))
        assert main(["run", "--config", str(cfg), "--iterations", "2", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["iterations"] == 2

    def test_config_file_model_preset(self, capsys, tmp_path):
        cfg = tmp_path / "cfg.json"
        cfg.write_text(json.dumps({
            "nx": 16, "ny": 16, "nparticles": 512, "p": 4, "model": "modern",
        }))
        assert main(["run", "--config", str(cfg), "--iterations", "2", "--json"]) == 0

    def test_config_file_bad_model(self, tmp_path):
        cfg = tmp_path / "cfg.json"
        cfg.write_text('{"model": "vaxcluster"}')
        with pytest.raises(SystemExit, match="bad machine model"):
            main(["run", "--config", str(cfg)])


class TestConfigRoundtrip:
    def test_saved_config_replays_identically(self, tmp_path, capsys):
        """save_json's config block feeds back through --config and
        reproduces the identical run."""
        first = tmp_path / "first.json"
        argv = [
            "run", "--nx", "16", "--ny", "16", "-n", "512", "-p", "4",
            "--distribution", "irregular", "--policy", "periodic:2",
            "--vth", "0.2", "--seed", "7", "--iterations", "5",
        ]
        assert main(argv + ["--save-json", str(first)]) == 0
        capsys.readouterr()

        saved = json.loads(first.read_text())
        cfg_file = tmp_path / "cfg.json"
        cfg_file.write_text(json.dumps(saved["config"]))

        second = tmp_path / "second.json"
        assert main([
            "run", "--config", str(cfg_file), "--iterations", "5",
            "--save-json", str(second),
        ]) == 0
        assert json.loads(second.read_text()) == saved


class TestResume:
    def _base_argv(self):
        return [
            "run", "--nx", "16", "--ny", "16", "-n", "512", "-p", "4",
            "--distribution", "irregular", "--policy", "dynamic",
            "--seed", "3", "--vth", "0.2",
        ]

    def test_resume_matches_uninterrupted(self, tmp_path, capsys):
        full = tmp_path / "full.json"
        assert main(self._base_argv() + [
            "--iterations", "8", "--save-json", str(full),
        ]) == 0
        ck = tmp_path / "ck.npz"
        assert main(self._base_argv() + [
            "--iterations", "4", "--checkpoint-every", "4",
            "--checkpoint-path", str(ck),
        ]) == 0
        resumed = tmp_path / "resumed.json"
        assert main([
            "resume", str(ck), "--iterations", "4", "--save-json", str(resumed),
        ]) == 0
        capsys.readouterr()
        assert json.loads(resumed.read_text()) == json.loads(full.read_text())

    def test_resume_missing_file(self, tmp_path):
        with pytest.raises(SystemExit, match="not found"):
            main(["resume", str(tmp_path / "nope.npz"), "--iterations", "1"])

    def test_resume_invalid_file(self, tmp_path):
        bogus = tmp_path / "bogus.npz"
        bogus.write_bytes(b"nope")
        with pytest.raises(SystemExit, match="cannot resume"):
            main(["resume", str(bogus), "--iterations", "1"])

    def test_checkpoint_every_without_path(self):
        with pytest.raises(SystemExit, match="checkpoint-path"):
            main(self._base_argv() + ["--iterations", "2", "--checkpoint-every", "1"])

    def test_checkpoint_every_bad_value(self, tmp_path):
        with pytest.raises(SystemExit, match="checkpoint-every"):
            main(self._base_argv() + [
                "--iterations", "2", "--checkpoint-every", "0",
                "--checkpoint-path", str(tmp_path / "x.npz"),
            ])

    def test_resume_keeps_checkpointing_to_source_by_default(self, tmp_path, capsys):
        ck = tmp_path / "ck.npz"
        assert main(self._base_argv() + [
            "--iterations", "2", "--checkpoint-every", "2",
            "--checkpoint-path", str(ck),
        ]) == 0
        assert main([
            "resume", str(ck), "--iterations", "2", "--checkpoint-every", "2",
        ]) == 0
        capsys.readouterr()
        from repro.pic.checkpoint import load_checkpoint

        assert load_checkpoint(ck).iteration == 4
