"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.nx == 64 and args.policy == "dynamic"

    def test_bad_distribution_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--distribution", "fractal"])


class TestCommands:
    def test_schemes(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        assert "hilbert" in out and "snake" in out

    def test_scenarios(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "fig17" in out and "128x64" in out

    def test_run_small(self, capsys):
        code = main([
            "run", "--nx", "16", "--ny", "16", "-n", "512", "-p", "4",
            "--iterations", "5", "--policy", "static",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "total_time" in out and "scatter" in out

    def test_run_json(self, capsys):
        code = main([
            "run", "--nx", "16", "--ny", "16", "-n", "512", "-p", "4",
            "--iterations", "3", "--json",
        ])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["iterations"] == 3
        assert summary["total_time"] > 0
        assert "phase_breakdown" in summary

    def test_run_named_case_overrides_geometry(self, capsys):
        code = main([
            "run", "--case", "fig20", "--iterations", "2", "--json",
        ])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["iterations"] == 2

    def test_run_unknown_case(self):
        with pytest.raises(SystemExit, match="unknown case"):
            main(["run", "--case", "fig99"])

    def test_config_file_loaded(self, capsys, tmp_path):
        cfg = tmp_path / "cfg.json"
        cfg.write_text('{"nx": 16, "ny": 16, "nparticles": 512, "p": 4, "policy": "periodic:2"}')
        assert main(["run", "--config", str(cfg), "--iterations", "4", "--json"]) == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["n_redistributions"] == 2

    def test_cli_flag_overrides_config_file(self, capsys, tmp_path):
        cfg = tmp_path / "cfg.json"
        cfg.write_text('{"nx": 16, "ny": 16, "nparticles": 512, "p": 4, "policy": "static"}')
        code = main([
            "run", "--config", str(cfg), "--policy", "periodic:2",
            "--iterations", "4", "--json",
        ])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["n_redistributions"] == 2

    def test_config_file_unknown_keys_rejected(self, tmp_path):
        cfg = tmp_path / "cfg.json"
        cfg.write_text('{"warp_factor": 9}')
        with pytest.raises(SystemExit, match="unknown config keys"):
            main(["run", "--config", str(cfg)])

    def test_config_file_bad_json(self, tmp_path):
        cfg = tmp_path / "cfg.json"
        cfg.write_text("{nope")
        with pytest.raises(SystemExit, match="not valid JSON"):
            main(["run", "--config", str(cfg)])

    def test_config_file_missing(self, tmp_path):
        with pytest.raises(SystemExit, match="not found"):
            main(["run", "--config", str(tmp_path / "nope.json")])

    def test_save_json(self, tmp_path, capsys):
        out = tmp_path / "result.json"
        code = main([
            "run", "--nx", "16", "--ny", "16", "-n", "512", "-p", "4",
            "--iterations", "3", "--save-json", str(out),
        ])
        assert code == 0
        saved = json.loads(out.read_text())
        assert saved["totals"]["iterations"] == 3
        assert len(saved["series"]["iteration_time"]) == 3

    def test_electrostatic_solver_flag(self, capsys):
        code = main([
            "run", "--nx", "16", "--ny", "16", "-n", "512", "-p", "4",
            "--iterations", "2", "--field-solver", "electrostatic", "--json",
        ])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["iterations"] == 2

    def test_run_periodic_policy(self, capsys):
        code = main([
            "run", "--nx", "16", "--ny", "16", "-n", "512", "-p", "4",
            "--iterations", "6", "--policy", "periodic:2", "--json",
        ])
        assert code == 0
        summary = json.loads(capsys.readouterr().out)
        assert summary["n_redistributions"] == 3

    def test_config_file_accepts_density_dt_nbuckets(self, capsys, tmp_path):
        """density / dt / nbuckets are valid SimulationConfig fields with no
        CLI flag — the config loader must not reject them."""
        cfg = tmp_path / "cfg.json"
        cfg.write_text(json.dumps({
            "nx": 16, "ny": 16, "nparticles": 512, "p": 4,
            "density": 0.02, "dt": 0.01, "nbuckets": 8,
        }))
        assert main(["run", "--config", str(cfg), "--iterations", "2", "--json"]) == 0
        assert json.loads(capsys.readouterr().out)["iterations"] == 2

    def test_config_file_model_preset(self, capsys, tmp_path):
        cfg = tmp_path / "cfg.json"
        cfg.write_text(json.dumps({
            "nx": 16, "ny": 16, "nparticles": 512, "p": 4, "model": "modern",
        }))
        assert main(["run", "--config", str(cfg), "--iterations", "2", "--json"]) == 0

    def test_config_file_bad_model(self, tmp_path):
        cfg = tmp_path / "cfg.json"
        cfg.write_text('{"model": "vaxcluster"}')
        with pytest.raises(SystemExit, match="bad machine model"):
            main(["run", "--config", str(cfg)])


class TestConfigRoundtrip:
    def test_saved_config_replays_identically(self, tmp_path, capsys):
        """save_json's config block feeds back through --config and
        reproduces the identical run."""
        first = tmp_path / "first.json"
        argv = [
            "run", "--nx", "16", "--ny", "16", "-n", "512", "-p", "4",
            "--distribution", "irregular", "--policy", "periodic:2",
            "--vth", "0.2", "--seed", "7", "--iterations", "5",
        ]
        assert main(argv + ["--save-json", str(first)]) == 0
        capsys.readouterr()

        saved = json.loads(first.read_text())
        cfg_file = tmp_path / "cfg.json"
        cfg_file.write_text(json.dumps(saved["config"]))

        second = tmp_path / "second.json"
        assert main([
            "run", "--config", str(cfg_file), "--iterations", "5",
            "--save-json", str(second),
        ]) == 0
        assert json.loads(second.read_text()) == saved


class TestResume:
    def _base_argv(self):
        return [
            "run", "--nx", "16", "--ny", "16", "-n", "512", "-p", "4",
            "--distribution", "irregular", "--policy", "dynamic",
            "--seed", "3", "--vth", "0.2",
        ]

    def test_resume_matches_uninterrupted(self, tmp_path, capsys):
        full = tmp_path / "full.json"
        assert main(self._base_argv() + [
            "--iterations", "8", "--save-json", str(full),
        ]) == 0
        ck = tmp_path / "ck.npz"
        assert main(self._base_argv() + [
            "--iterations", "4", "--checkpoint-every", "4",
            "--checkpoint-path", str(ck),
        ]) == 0
        resumed = tmp_path / "resumed.json"
        assert main([
            "resume", str(ck), "--iterations", "4", "--save-json", str(resumed),
        ]) == 0
        capsys.readouterr()
        assert json.loads(resumed.read_text()) == json.loads(full.read_text())

    def test_resume_missing_file(self, tmp_path):
        with pytest.raises(SystemExit, match="not found"):
            main(["resume", str(tmp_path / "nope.npz"), "--iterations", "1"])

    def test_resume_invalid_file(self, tmp_path):
        bogus = tmp_path / "bogus.npz"
        bogus.write_bytes(b"nope")
        with pytest.raises(SystemExit, match="cannot resume"):
            main(["resume", str(bogus), "--iterations", "1"])

    def test_checkpoint_every_without_path(self):
        with pytest.raises(SystemExit, match="checkpoint-path"):
            main(self._base_argv() + ["--iterations", "2", "--checkpoint-every", "1"])

    def test_checkpoint_every_bad_value(self, tmp_path):
        with pytest.raises(SystemExit, match="checkpoint-every"):
            main(self._base_argv() + [
                "--iterations", "2", "--checkpoint-every", "0",
                "--checkpoint-path", str(tmp_path / "x.npz"),
            ])

    def test_resume_keeps_checkpointing_to_source_by_default(self, tmp_path, capsys):
        ck = tmp_path / "ck.npz"
        assert main(self._base_argv() + [
            "--iterations", "2", "--checkpoint-every", "2",
            "--checkpoint-path", str(ck),
        ]) == 0
        assert main([
            "resume", str(ck), "--iterations", "2", "--checkpoint-every", "2",
        ]) == 0
        capsys.readouterr()
        from repro.pic.checkpoint import load_checkpoint

        assert load_checkpoint(ck).iteration == 4


class TestSubmitAndJobs:
    def _jobs_file(self, tmp_path, n=2):
        path = tmp_path / "jobs.json"
        path.write_text(json.dumps({
            "name": "cli",
            "base": {"nx": 16, "ny": 8, "nparticles": 256, "p": 4},
            "iterations": 3,
            "sweep": {"seed": list(range(n))},
        }))
        return path

    def test_submit_then_jobs(self, tmp_path, capsys):
        jf = self._jobs_file(tmp_path)
        report = tmp_path / "report.json"
        code = main([
            "submit", str(jf), "--jobs", "2",
            "--cache", str(tmp_path / "cache"),
            "--report", str(report),
            "--metrics", str(tmp_path / "svc.jsonl"),
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "batch: OK" in out and "cli-seed=0" in out
        doc = json.loads(report.read_text())
        assert doc["schema"] == "repro-batch/1" and doc["ok"]
        assert doc["counters"]["completed"] == 2
        lines = (tmp_path / "svc.jsonl").read_text().splitlines()
        assert json.loads(lines[0])["schema"] == "repro-service/2"
        # render the saved report
        assert main(["jobs", str(report)]) == 0
        assert "batch: OK" in capsys.readouterr().out

    def test_submit_warm_cache_hits(self, tmp_path, capsys):
        jf = self._jobs_file(tmp_path)
        argv = ["submit", str(jf), "--cache", str(tmp_path / "cache"), "--json"]
        assert main(argv) == 0
        capsys.readouterr()
        assert main(argv) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["counters"]["cache_hits"] == 2

    def test_submit_bad_file(self, tmp_path):
        with pytest.raises(SystemExit, match="not found"):
            main(["submit", str(tmp_path / "nope.json")])
        bad = tmp_path / "bad.json"
        bad.write_text("[{\"iterations\": 3}]")
        with pytest.raises(SystemExit, match="bad job file"):
            main(["submit", str(bad)])

    def test_submit_flag_validation(self, tmp_path):
        jf = self._jobs_file(tmp_path)
        for argv_extra, msg in (
            (["--jobs", "0"], "--jobs"),
            (["--retries", "-1"], "--retries"),
            (["--timeout", "0"], "--timeout"),
            (["--max-failures", "-2"], "--max-failures"),
            (["--checkpoint-every", "0"], "--checkpoint-every"),
        ):
            with pytest.raises(SystemExit, match=msg):
                main(["submit", str(jf)] + argv_extra)

    def test_jobs_missing_and_invalid(self, tmp_path):
        with pytest.raises(SystemExit, match="not found"):
            main(["jobs", str(tmp_path / "nope.json")])
        bad = tmp_path / "bad.json"
        bad.write_text("{\"schema\": \"other/1\"}")
        with pytest.raises(SystemExit, match="bad batch report"):
            main(["jobs", str(bad)])


class TestTimeoutWatchdog:
    def test_run_timeout_exit_code_and_resumable(self, tmp_path, capsys):
        from repro.cli import EXIT_TIMEOUT

        ck = tmp_path / "wd.npz"
        code = main([
            "run", "--nx", "16", "--ny", "8", "-n", "256", "-p", "4",
            "--iterations", "1000000", "--policy", "static",
            "--timeout", "0.3",
            "--checkpoint-every", "1", "--checkpoint-path", str(ck),
            "--metrics", str(tmp_path / "m.jsonl"),
        ])
        assert code == EXIT_TIMEOUT == 124
        capsys.readouterr()
        assert ck.exists()
        # the timeout event is in the metrics stream
        stream = (tmp_path / "m.jsonl").read_text()
        assert '"kind": "timeout"' in stream
        # and the checkpoint resumes
        assert main(["resume", str(ck), "--iterations", "1"]) == 0
        capsys.readouterr()

    def test_run_timeout_validation(self):
        with pytest.raises(SystemExit, match="--timeout"):
            main([
                "run", "--nx", "16", "--ny", "8", "-n", "256", "-p", "4",
                "--iterations", "2", "--timeout", "-1",
            ])

    def test_bench_timeout_saves_partial(self, tmp_path, capsys):
        from repro.cli import EXIT_TIMEOUT

        out = tmp_path / "partial.json"
        code = main([
            "bench", "run", "--suite", "smoke", "--repeats", "1",
            "--warmup", "0", "--timeout", "0.0001", "--output", str(out),
        ])
        assert code == EXIT_TIMEOUT
        capsys.readouterr()
        doc = json.loads(out.read_text())
        assert doc["schema"].startswith("repro-bench")
        assert doc["cases"] == {} or isinstance(doc["cases"], dict)
