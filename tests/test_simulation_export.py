"""Tests for SimulationResult export and the verify CLI."""

import json

import numpy as np
import pytest

from repro.cli import main
from repro.pic import Simulation, SimulationConfig


@pytest.fixture
def result():
    cfg = SimulationConfig(nx=16, ny=16, nparticles=512, p=4, seed=0, policy="periodic:3")
    return Simulation(cfg).run(6)


class TestToDict:
    def test_round_trips_through_json(self, result):
        blob = json.dumps(result.to_dict())
        back = json.loads(blob)
        assert back["totals"]["iterations"] == 6
        assert back["config"]["p"] == 4

    def test_series_lengths(self, result):
        d = result.to_dict()
        assert len(d["series"]["iteration_time"]) == 6
        assert len(d["series"]["scatter_max_bytes"]) == 6
        assert d["series"]["redistributed"].count(True) == 2

    def test_totals_consistent(self, result):
        d = result.to_dict()
        assert d["totals"]["total_time"] == pytest.approx(result.total_time)
        assert d["totals"]["overhead"] == pytest.approx(result.overhead)

    def test_model_name_present(self, result):
        # "model" (a SimulationConfig field), not the old "machine" key
        # that config_from_dict / --config could not accept
        config = result.to_dict()["config"]
        assert config["model"] == "cm5"
        assert "machine" not in config

    def test_config_block_is_complete(self, result):
        """Every SimulationConfig field appears, so the block replays
        through config_from_dict to an identical config."""
        from dataclasses import fields as dataclass_fields

        from repro.pic import config_from_dict

        config = result.to_dict()["config"]
        assert set(config) == {f.name for f in dataclass_fields(SimulationConfig)}
        rebuilt = config_from_dict(config)
        assert rebuilt == result.config


class TestSaveJson:
    def test_save_and_reload(self, result, tmp_path):
        path = tmp_path / "run.json"
        result.save_json(path)
        back = json.loads(path.read_text())
        assert back["totals"]["n_redistributions"] == result.n_redistributions


class TestVerifyCommand:
    def test_verify_passes(self, capsys):
        assert main(["verify", "-p", "4", "--iterations", "4"]) == 0
        assert "VERIFY OK" in capsys.readouterr().out

    def test_verify_with_snake(self, capsys):
        assert main(["verify", "-p", "2", "--iterations", "3", "--scheme", "snake"]) == 0
