"""Tests for the charge-conserving (zigzag) current deposition."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh import Grid2D
from repro.particles import ParticleArray
from repro.pic.deposition import deposit_charge_current
from repro.pic.zigzag import continuity_residual, deposit_current_zigzag


@pytest.fixture
def grid():
    return Grid2D(8, 8)


def cic_rho(grid, x, y, q):
    parts = ParticleArray.empty(x.shape[0])
    parts.x[:] = x
    parts.y[:] = y
    parts.q[:] = q
    parts.w[:] = 1.0
    rho, _, _, _ = deposit_charge_current(grid, parts)
    return rho


class TestContinuity:
    def test_exact_for_random_moves(self, grid):
        rng = np.random.default_rng(0)
        n = 100
        x1 = rng.uniform(0, 8, n)
        y1 = rng.uniform(0, 8, n)
        x2 = np.mod(x1 + rng.uniform(-0.9, 0.9, n), 8.0)
        y2 = np.mod(y1 + rng.uniform(-0.9, 0.9, n), 8.0)
        q = rng.uniform(-2, 2, n)
        jx, jy = deposit_current_zigzag(grid, x1, y1, x2, y2, q, dt=0.5)
        res = continuity_residual(
            grid, cic_rho(grid, x1, y1, q), cic_rho(grid, x2, y2, q), jx, jy, 0.5
        )
        assert np.abs(res).max() < 1e-12

    def test_exact_across_periodic_boundary(self, grid):
        x1 = np.array([7.9])
        y1 = np.array([0.05])
        x2 = np.array([0.2])  # wraps in x
        y2 = np.array([7.9])  # wraps in y
        q = np.array([1.0])
        jx, jy = deposit_current_zigzag(grid, x1, y1, x2, y2, q, dt=1.0)
        res = continuity_residual(
            grid, cic_rho(grid, x1, y1, q), cic_rho(grid, x2, y2, q), jx, jy, 1.0
        )
        assert np.abs(res).max() < 1e-12

    @given(data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_continuity_property(self, data):
        grid = Grid2D(
            data.draw(st.sampled_from([4, 8, 12])),
            data.draw(st.sampled_from([4, 8, 12])),
        )
        n = data.draw(st.integers(1, 30))
        floats = st.floats(0.0, 1.0, allow_nan=False)
        x1 = np.array(data.draw(st.lists(floats, min_size=n, max_size=n))) * grid.lx
        y1 = np.array(data.draw(st.lists(floats, min_size=n, max_size=n))) * grid.ly
        mv = st.floats(-0.99, 0.99, allow_nan=False)
        dx = np.array(data.draw(st.lists(mv, min_size=n, max_size=n))) * grid.dx
        dy = np.array(data.draw(st.lists(mv, min_size=n, max_size=n))) * grid.dy
        x2 = np.mod(x1 + dx, grid.lx)
        y2 = np.mod(y1 + dy, grid.ly)
        q = np.ones(n)
        jx, jy = deposit_current_zigzag(grid, x1, y1, x2, y2, q, dt=0.25)
        res = continuity_residual(
            grid, cic_rho(grid, x1, y1, q), cic_rho(grid, x2, y2, q), jx, jy, 0.25
        )
        assert np.abs(res).max() < 1e-10


class TestPlainDepositionViolatesContinuity:
    def test_motivates_zigzag(self, grid):
        """The era kernel's (interpolated v * q) current does NOT satisfy
        the same discrete continuity — the reason Marder cleaning exists."""
        rng = np.random.default_rng(1)
        n = 200
        x1 = rng.uniform(0, 8, n)
        y1 = rng.uniform(0, 8, n)
        ux = rng.uniform(-0.5, 0.5, n)
        uy = rng.uniform(-0.5, 0.5, n)
        dt = 0.5
        parts = ParticleArray.empty(n)
        parts.x[:] = x1
        parts.y[:] = y1
        parts.ux[:] = ux
        parts.uy[:] = uy
        parts.q[:] = 1.0
        parts.w[:] = 1.0
        _, jx_plain, jy_plain, _ = deposit_charge_current(grid, parts)
        gamma = np.sqrt(1 + ux**2 + uy**2)
        x2 = np.mod(x1 + dt * ux / gamma, 8.0)
        y2 = np.mod(y1 + dt * uy / gamma, 8.0)
        q = np.ones(n)
        res = continuity_residual(
            grid, cic_rho(grid, x1, y1, q), cic_rho(grid, x2, y2, q),
            jx_plain, jy_plain, dt,
        )
        assert np.abs(res).max() > 1e-3


class TestValidation:
    def test_too_large_move_rejected(self, grid):
        with pytest.raises(ValueError, match="less than one cell"):
            deposit_current_zigzag(
                grid,
                np.array([0.5]), np.array([0.5]),
                np.array([2.5]), np.array([0.5]),
                np.array([1.0]), 1.0,
            )

    def test_length_mismatch_rejected(self, grid):
        with pytest.raises(ValueError):
            deposit_current_zigzag(
                grid, np.zeros(2), np.zeros(2), np.zeros(3), np.zeros(2),
                np.zeros(2), 1.0,
            )

    def test_zero_motion_zero_current(self, grid):
        x = np.array([3.3])
        y = np.array([4.4])
        jx, jy = deposit_current_zigzag(grid, x, y, x, y, np.array([1.0]), 1.0)
        assert np.abs(jx).max() == 0 and np.abs(jy).max() == 0

    def test_empty_input(self, grid):
        jx, jy = deposit_current_zigzag(
            grid, np.zeros(0), np.zeros(0), np.zeros(0), np.zeros(0), np.zeros(0), 1.0
        )
        assert jx.shape == grid.shape
