"""Tests for the unified run telemetry layer (repro.telemetry).

Pins the contracts of DESIGN.md §5.4:

* zero-cost when off — a run without telemetry is bit-identical to the
  pre-telemetry code path (clocks, ops, result dicts);
* enabled overhead stays under 5% wall-clock;
* exported artifacts conform to their schemas (``repro-trace/1`` /
  ``repro-metrics/1``) on both engines;
* SAR decision records replay to the exact fire/skip verdicts;
* telemetry streams stay consistent across rank-failure shrink (no
  stale rank columns) and across checkpoint/resume.
"""

import json
import time

import numpy as np
import pytest

from repro.cli import main
from repro.machine import FaultEvent, FaultPlan
from repro.pic import Simulation, SimulationConfig
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    RunTelemetry,
    SpanTracer,
    TelemetrySchemaError,
    render_comparison,
    report_from_files,
    validate_metrics,
    validate_trace,
)


def _config(**kw):
    base = dict(
        nx=32,
        ny=16,
        nparticles=2048,
        p=4,
        distribution="irregular",
        policy="dynamic",
        seed=7,
    )
    base.update(kw)
    return SimulationConfig(**base)


# ----------------------------------------------------------------------
# unit layer: tracer + registry
# ----------------------------------------------------------------------
class TestSpanTracer:
    def test_records_only_advancing_ranks(self):
        tracer = SpanTracer()
        tracer.set_iteration(3)
        tracer.record_phase("scatter", np.array([0.0, 1.0]), np.array([2.0, 1.0]))
        assert len(tracer.spans) == 1
        span = tracer.spans[0]
        assert (span.rank, span.iteration, span.name) == (0, 3, "scatter")
        assert span.duration == 2.0

    def test_chrome_export_shape(self):
        tracer = SpanTracer()
        tracer.note_ranks(2)
        tracer.set_iteration(0)
        tracer.record_phase("push", np.array([0.0, 0.0]), np.array([0.5, 0.25]))
        tracer.record_instant("checkpoint", 0.5, path="ck.npz")
        tracer.record_counters("load imbalance", 0.5, {"max/mean": 1.5})
        doc = validate_trace(tracer.to_chrome())
        codes = [ev["ph"] for ev in doc["traceEvents"]]
        assert codes.count("M") == 3  # process + 2 rank lanes
        assert codes.count("X") == 2 and "i" in codes and "C" in codes
        span = next(ev for ev in doc["traceEvents"] if ev["ph"] == "X")
        assert span["ts"] == 0.0 and span["dur"] == 0.5e6

    def test_trace_is_deterministic(self, tmp_path):
        texts = []
        for run in range(2):
            sim = Simulation(_config())
            sim.enable_telemetry()
            sim.run(5)
            path = sim.telemetry.save_trace(tmp_path / f"t{run}.json")
            texts.append(path.read_text())
        assert texts[0] == texts[1]


class TestMetricsRegistry:
    def test_counter_monotonic(self):
        counter = Counter("n")
        counter.inc()
        counter.inc(2.5)
        assert counter.snapshot() == 3.5
        with pytest.raises(ValueError):
            counter.inc(-1.0)

    def test_gauge_last_value(self):
        gauge = Gauge("g")
        assert gauge.snapshot() is None
        gauge.set(1.0)
        gauge.set(4.0)
        assert gauge.snapshot() == 4.0

    def test_histogram_summary(self):
        hist = Histogram("h")
        for v in (1.0, 3.0, 2.0):
            hist.observe(v)
        snap = hist.snapshot()
        assert snap["count"] == 3 and snap["min"] == 1.0 and snap["max"] == 3.0
        assert snap["mean"] == pytest.approx(2.0)

    def test_names_pinned_to_kind(self):
        reg = MetricsRegistry()
        reg.counter("x").inc()
        with pytest.raises(TypeError):
            reg.gauge("x")
        assert "x" in reg and reg.names() == ["x"]

    def test_snapshot_sorted_and_typed(self):
        reg = MetricsRegistry()
        reg.gauge("b").set(1.0)
        reg.counter("a").inc(2.0)
        snap = reg.snapshot()
        assert list(snap) == ["a", "b"]
        assert snap["a"] == {"kind": "counter", "value": 2.0}


# ----------------------------------------------------------------------
# the zero-cost contract
# ----------------------------------------------------------------------
class TestZeroCostWhenOff:
    def test_bit_identical_results(self):
        cfg = _config()
        plain = Simulation(cfg)
        r_plain = plain.run(10)
        traced = Simulation(cfg)
        traced.enable_telemetry()
        r_traced = traced.run(10)

        assert traced.vm.elapsed() == plain.vm.elapsed()
        assert traced.vm.ops.as_dict() == plain.vm.ops.as_dict()
        assert traced.vm.phase_breakdown() == plain.vm.phase_breakdown()

        d_plain, d_traced = r_plain.to_dict(), r_traced.to_dict()
        assert "telemetry" not in d_plain  # off-run dict is unchanged
        assert d_traced.pop("telemetry")  # on-run adds only this block
        assert d_traced == d_plain

    def test_enabled_overhead_under_five_percent(self):
        # Measured at the tier-1 bench scale (p=32, n=8192 — the same
        # regime `telemetry_overhead_p32` gates), where per-iteration
        # physics dominates the fixed bookkeeping.  Min-of-N wall times,
        # retried to ride out scheduler noise.
        cfg = dict(nx=64, ny=32, nparticles=8192, p=32)

        def wall(enable):
            best = float("inf")
            for _ in range(3):
                sim = Simulation(_config(**cfg))
                if enable:
                    sim.enable_telemetry()
                t0 = time.perf_counter()
                sim.run(6)
                best = min(best, time.perf_counter() - t0)
            return best

        for _ in range(3):
            plain, traced = wall(False), wall(True)
            if traced <= plain * 1.05:
                return
        pytest.fail(f"telemetry overhead above 5%: {traced / plain - 1.0:.1%}")


# ----------------------------------------------------------------------
# exported artifacts
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ["flat", "looped"])
class TestExports:
    def test_trace_and_metrics_validate(self, engine, tmp_path):
        sim = Simulation(_config(engine=engine))
        sim.enable_telemetry()
        result = sim.run(8)
        trace = validate_trace(sim.telemetry.save_trace(tmp_path / "t.json"))
        metrics = validate_metrics(sim.telemetry.save_metrics(tmp_path / "m.jsonl"))

        assert metrics.p == 4 and len(metrics.iterations) == 8
        assert metrics.summary["aggregates"]["iterations"]["value"] == 8.0
        spans = [ev for ev in trace["traceEvents"] if ev["ph"] == "X"]
        assert {ev["tid"] for ev in spans} == set(range(4))
        assert {ev["name"] for ev in spans} >= {"scatter", "field", "gather", "push"}

        # per-iteration phase increments must reassemble the machine's
        # phase breakdown exactly
        totals: dict[str, float] = {}
        for rec in metrics.iterations:
            for phase, dt in rec["phase_time"].items():
                totals[phase] = totals.get(phase, 0.0) + dt
        for phase, seconds in sim.vm.phase_breakdown().items():
            assert totals.get(phase, 0.0) == pytest.approx(seconds, abs=1e-12)

        # iteration records tile the run: t_iter sums to total time
        t_sum = sum(rec["t_iter"] for rec in metrics.iterations)
        assert t_sum == pytest.approx(result.total_time, abs=1e-12)

    def test_result_dict_aggregates(self, engine):
        sim = Simulation(_config(engine=engine))
        sim.enable_telemetry()
        out = sim.run(6).to_dict()
        agg = out["telemetry"]
        assert agg["iterations"]["value"] == 6.0
        assert agg["iteration.time"]["value"]["count"] == 6
        assert agg["sar.evaluations"]["value"] >= 1.0
        assert json.loads(json.dumps(out)) == out  # JSON-serializable


class TestSchemaValidation:
    def test_rejects_missing_header(self):
        with pytest.raises(TelemetrySchemaError, match="header"):
            validate_metrics([json.dumps({"type": "iteration"})])

    def test_rejects_stale_rank_columns(self):
        header = {"type": "header", "schema": "repro-metrics/1", "p": 4}
        it = {
            "type": "iteration", "iteration": 0, "p": 4, "t_iter": 0.1,
            "phase_time": {}, "particles_per_rank": [1, 1, 1, 1],
            "imbalance": 1.0, "comm": {}, "sar_decisions": [],
            "redistributed": False, "redistribution_cost": 0.0,
        }
        shrink = {"type": "event", "kind": "shrink", "iteration": 0, "t": 0.1, "p": 3}
        stale = dict(it, iteration=1, p=3)  # still 4 rank columns
        summary = {"type": "summary", "iterations": 2, "aggregates": {}}
        lines = [json.dumps(r) for r in (header, it, shrink, stale, summary)]
        with pytest.raises(TelemetrySchemaError, match="stale ranks"):
            validate_metrics(lines)

    def test_rejects_wrong_trace_schema(self):
        with pytest.raises(TelemetrySchemaError, match="schema"):
            validate_trace({"traceEvents": [], "otherData": {"schema": "nope"}})


# ----------------------------------------------------------------------
# SAR decision log replay
# ----------------------------------------------------------------------
class TestSARDecisionLog:
    def test_one_record_per_evaluation_replays_verdicts(self):
        sim = Simulation(_config(nparticles=4096, p=8))
        sim.enable_telemetry()
        result = sim.run(30)
        metrics = validate_metrics(sim.telemetry.metrics_lines())

        fired_iterations = []
        for rec in metrics.iterations:
            # the driver evaluates the policy once per iteration
            assert len(rec["sar_decisions"]) == 1
            d = rec["sar_decisions"][0]
            assert d["policy"] == "dynamic" and d["iteration"] == rec["iteration"]
            # replay Eq. 1 from the logged inputs
            if d["i0"] is None or d["i1"] is None or d["i1"] <= d["i0"]:
                expected = False
            else:
                rise = d["t1"] - d["t0"]
                expected = rise > 0.0 and rise * (d["i1"] - d["i0"]) >= d["threshold"]
            assert expected == d["fired"], f"iteration {rec['iteration']}"
            # the verdict is what the driver acted on
            assert rec["redistributed"] == d["fired"]
            if d["fired"]:
                fired_iterations.append(rec["iteration"])

        assert len(fired_iterations) == result.n_redistributions
        agg = sim.telemetry.aggregates()
        assert agg["sar.evaluations"]["value"] == 30.0
        assert agg["sar.fired"]["value"] == float(len(fired_iterations))

    def test_periodic_policy_records(self):
        sim = Simulation(_config(policy="periodic:3"))
        sim.enable_telemetry()
        sim.run(9)
        metrics = validate_metrics(sim.telemetry.metrics_lines())
        for rec in metrics.iterations:
            (d,) = rec["sar_decisions"]
            assert d["policy"] == "periodic" and d["period"] == 3
            assert d["fired"] == ((rec["iteration"] + 1) % 3 == 0)


# ----------------------------------------------------------------------
# satellite 2: consistency across rank-failure shrink
# ----------------------------------------------------------------------
class TestTelemetryAcrossRecovery:
    @pytest.mark.parametrize("engine", ["flat", "looped"])
    def test_rank_kill_keeps_streams_consistent(self, engine, tmp_path):
        sim = Simulation(_config(p=6, engine=engine, seed=2))
        sim.install_faults(
            FaultPlan(events=(FaultEvent(kind="kill", rank=3, iteration=4),))
        )
        sim.enable_telemetry()
        result = sim.run(10, checkpoint_every=3, checkpoint_path=tmp_path / "ck.npz")
        assert result.n_recoveries == 1 and sim.vm.p == 5

        # metrics: validator enforces the no-stale-rank-columns contract
        metrics = validate_metrics(sim.telemetry.save_metrics(tmp_path / "m.jsonl"))
        widths = [len(rec["particles_per_rank"]) for rec in metrics.iterations]
        assert set(widths) == {5, 6} and widths == sorted(widths, reverse=True)
        kinds = [ev["kind"] for ev in metrics.events]
        assert {"rank_failure", "shrink", "recovery"} <= set(kinds)
        assert kinds.index("rank_failure") < kinds.index("shrink") < kinds.index("recovery")

        # trace: spans never name a rank beyond the pre-shrink machine,
        # and post-shrink iterations never use the dead width
        trace = validate_trace(sim.telemetry.save_trace(tmp_path / "t.json"))
        spans = [ev for ev in trace["traceEvents"] if ev["ph"] == "X"]
        assert max(ev["tid"] for ev in spans) <= 5
        assert trace["otherData"]["rank_history"][-1][1] == 5

        # PhaseTrace survived the machine swap: its totals reassemble the
        # shrunk machine's cumulative phase breakdown exactly
        for phase, seconds in sim.vm.phase_breakdown().items():
            assert sim.trace.totals().get(phase, 0.0) == pytest.approx(
                seconds, abs=1e-12
            )

    def test_comm_stats_continuous_after_shrink(self, tmp_path):
        sim = Simulation(_config(p=6, seed=2))
        sim.install_faults(
            FaultPlan(events=(FaultEvent(kind="kill", rank=3, iteration=4),))
        )
        sim.enable_telemetry()
        sim.run(8, checkpoint_every=3, checkpoint_path=tmp_path / "ck.npz")
        metrics = validate_metrics(sim.telemetry.metrics_lines())
        # every iteration record carries scatter traffic — the comm
        # ledger kept flowing through the recovery swap
        for rec in metrics.iterations:
            assert rec["comm"]["scatter"]["msgs"] > 0


# ----------------------------------------------------------------------
# trace rows across checkpoint / resume
# ----------------------------------------------------------------------
class TestTelemetryAcrossResume:
    def test_trace_rows_survive_resume(self, tmp_path):
        cfg = _config(seed=5)
        full = Simulation(cfg)
        full.run(12)

        part = Simulation(cfg)
        part.run(6)
        ck = part.checkpoint(tmp_path / "ck.npz")
        resumed = Simulation.from_checkpoint(ck)
        resumed.enable_telemetry()
        resumed.run(6)

        assert len(resumed.trace.rows) == len(full.trace.rows) == 12
        for phase, seconds in full.trace.totals().items():
            assert resumed.trace.totals()[phase] == pytest.approx(seconds, abs=1e-12)
        # telemetry itself only covers the resumed tail
        assert resumed.telemetry.enabled_iterations == 6

    def test_checkpoint_event_recorded(self, tmp_path):
        sim = Simulation(_config())
        sim.enable_telemetry()
        sim.run(6, checkpoint_every=2, checkpoint_path=tmp_path / "ck.npz")
        metrics = validate_metrics(sim.telemetry.metrics_lines())
        checkpoints = [ev for ev in metrics.events if ev["kind"] == "checkpoint"]
        assert len(checkpoints) == 3
        assert all(ev["path"].endswith("ck.npz") for ev in checkpoints)


# ----------------------------------------------------------------------
# guard violations feed the registry
# ----------------------------------------------------------------------
class TestGuardTelemetry:
    def test_violation_counted(self):
        sim = Simulation(_config(guards="warn"))
        sim.enable_telemetry()
        sim.run(2)
        # force a conservation violation and step once more
        sim.guard.expected_count = sim.guard.expected_count + 1
        with pytest.warns(UserWarning, match="invariant violation"):
            sim.run(1)
        agg = sim.telemetry.aggregates()
        assert agg["guard.violations"]["value"] >= 1.0
        metrics = validate_metrics(sim.telemetry.metrics_lines())
        assert any(ev["kind"] == "guard_violation" for ev in metrics.events)


# ----------------------------------------------------------------------
# report rendering + CLI
# ----------------------------------------------------------------------
class TestReport:
    def _run_files(self, tmp_path, tag, **kw):
        sim = Simulation(_config(**kw))
        sim.enable_telemetry()
        sim.run(8)
        return (
            sim.telemetry.save_metrics(tmp_path / f"{tag}.jsonl"),
            sim.telemetry.save_trace(tmp_path / f"{tag}.trace.json"),
        )

    def test_single_run_report(self, tmp_path):
        metrics_path, trace_path = self._run_files(tmp_path, "a")
        text = report_from_files([metrics_path], trace_path=trace_path)
        assert "telemetry report" in text
        assert "phase profile" in text and "load imbalance" in text
        assert "redistribution decisions" in text
        assert "rank lanes" in text  # trace cross-check line

    def test_comparison_report(self, tmp_path):
        a, _ = self._run_files(tmp_path, "flat", engine="flat")
        b, _ = self._run_files(tmp_path, "looped", engine="looped")
        text = report_from_files([a, b])
        assert "side-by-side comparison" in text
        assert "flat.jsonl" in text and "looped.jsonl" in text

    def test_render_comparison_direct(self, tmp_path):
        path, _ = self._run_files(tmp_path, "x")
        metrics = validate_metrics(path)
        text = render_comparison([("left", metrics), ("right", metrics)])
        assert "total_time" in text and "left" in text and "right" in text


class TestCLI:
    def test_run_with_trace_and_metrics(self, tmp_path, capsys):
        trace = tmp_path / "t.json"
        metrics = tmp_path / "m.jsonl"
        code = main([
            "run", "--nx", "16", "--ny", "16", "-n", "512", "-p", "4",
            "--iterations", "5",
            "--trace", str(trace), "--metrics", str(metrics),
        ])
        assert code == 0
        validate_trace(trace)
        validate_metrics(metrics)

    def test_report_command(self, tmp_path, capsys):
        metrics = tmp_path / "m.jsonl"
        main([
            "run", "--nx", "16", "--ny", "16", "-n", "512", "-p", "4",
            "--iterations", "5", "--metrics", str(metrics),
        ])
        capsys.readouterr()
        assert main(["report", str(metrics)]) == 0
        out = capsys.readouterr().out
        assert "telemetry report" in out

    def test_report_rejects_bad_file(self, tmp_path):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"type": "header", "schema": "wrong"}\n')
        with pytest.raises(SystemExit, match="bad telemetry file"):
            main(["report", str(bad)])

    def test_resume_with_metrics(self, tmp_path, capsys):
        ck = tmp_path / "ck.npz"
        main([
            "run", "--nx", "16", "--ny", "16", "-n", "512", "-p", "4",
            "--iterations", "4", "--checkpoint-every", "4",
            "--checkpoint-path", str(ck),
        ])
        metrics = tmp_path / "m.jsonl"
        code = main([
            "resume", str(ck), "--iterations", "3", "--metrics", str(metrics),
        ])
        assert code == 0
        parsed = validate_metrics(metrics)
        assert len(parsed.iterations) == 3
