"""Tests for bucket-based incremental sorting (paper Figure 12)."""

import numpy as np
import pytest

from repro.core.incremental_sort import BucketState, bucket_incremental_sort
from repro.machine import MachineModel, VirtualMachine


def make_states(p, n_per, nbuckets=4, seed=0):
    rng = np.random.default_rng(seed)
    all_keys = np.sort(rng.integers(0, 100000, p * n_per))
    states = []
    for r in range(p):
        keys = all_keys[r * n_per : (r + 1) * n_per]
        payload = keys.reshape(-1, 1).astype(float)
        states.append(BucketState.build(keys, payload, nbuckets))
    return states


class TestBucketState:
    def test_build_offsets(self):
        state = BucketState.build(np.arange(10), np.zeros((10, 1)), 4)
        assert state.bucket_offsets.tolist() == [0, 3, 6, 8, 10]
        assert state.nbuckets == 4

    def test_bucket_key_ranges(self):
        keys = np.array([1, 2, 5, 9, 20, 30])
        state = BucketState.build(keys, np.zeros((6, 1)), 2)
        assert state.bucket_lows.tolist() == [1, 9]
        assert state.bucket_highs.tolist() == [5, 30]

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError, match="sorted"):
            BucketState.build(np.array([3, 1]), np.zeros((2, 1)), 2)

    def test_empty_state(self):
        state = BucketState.build(np.empty(0, dtype=np.int64), np.zeros((0, 1)), 4)
        assert state.n == 0
        assert state.upper_key == np.iinfo(np.int64).min

    def test_upper_key(self):
        state = BucketState.build(np.array([1, 7]), np.zeros((2, 1)), 2)
        assert state.upper_key == 7


class TestIncrementalSort:
    def test_identity_when_keys_unchanged(self):
        vm = VirtualMachine(4, MachineModel.cm5())
        states = make_states(4, 50)
        new_keys = [s.keys.copy() for s in states]
        keys_out, payloads_out, stats = bucket_incremental_sort(vm, states, new_keys)
        assert stats.moved_rank == 0
        assert stats.same_bucket == 200
        for s, k in zip(states, keys_out):
            assert np.array_equal(s.keys, k)

    def test_globally_sorted_after_perturbation(self):
        vm = VirtualMachine(4, MachineModel.cm5())
        states = make_states(4, 100, seed=1)
        rng = np.random.default_rng(2)
        new_keys = [
            s.keys + rng.integers(-500, 500, s.n) for s in states
        ]
        keys_out, payloads_out, stats = bucket_incremental_sort(vm, states, new_keys)
        merged = np.concatenate(keys_out)
        assert np.array_equal(merged, np.sort(np.concatenate(new_keys)))
        assert stats.total == 400

    def test_payload_follows_keys(self):
        vm = VirtualMachine(4, MachineModel.cm5())
        states = make_states(4, 50, seed=3)
        # payload column = original key; perturb keys, payload should ride along
        rng = np.random.default_rng(4)
        new_keys = [s.keys + rng.integers(-100, 100, s.n) for s in states]
        expected_pairs = sorted(
            zip(np.concatenate(new_keys), np.concatenate([s.payload[:, 0] for s in states]))
        )
        keys_out, payloads_out, _ = bucket_incremental_sort(vm, states, new_keys)
        got_keys = np.concatenate(keys_out)
        got_payload = np.concatenate([p[:, 0] for p in payloads_out])
        exp_keys = np.array([k for k, _ in expected_pairs])
        assert np.array_equal(got_keys, exp_keys)
        # payloads may tie-swap only among equal keys
        for k in np.unique(got_keys):
            sel = got_keys == k
            exp_vals = sorted(v for kk, v in expected_pairs if kk == k)
            assert sorted(got_payload[sel].tolist()) == exp_vals

    def test_classification_counts(self):
        """Small perturbations mostly stay in their bucket; big ones move
        rank — the cost gradient the incremental algorithm exploits."""
        vm = VirtualMachine(4, MachineModel.cm5())
        states = make_states(4, 200, nbuckets=8, seed=5)
        small = [s.keys + 1 for s in states]
        _, _, stats_small = bucket_incremental_sort(vm, states, small)

        states2 = make_states(4, 200, nbuckets=8, seed=5)
        rng = np.random.default_rng(6)
        big = [rng.permutation(np.concatenate([s.keys for s in states2]))[: s.n] for s in states2]
        _, _, stats_big = bucket_incremental_sort(vm, states2, big)
        assert stats_small.moved_rank < stats_big.moved_rank
        assert stats_small.same_bucket > stats_big.same_bucket

    def test_cheaper_than_full_sort_when_drift_small(self):
        """Virtual cost of incremental sort under small drift must be
        below a from-scratch sample sort of the same data (Fig 11)."""
        from repro.particles.sort import parallel_sample_sort

        p, n_per = 8, 500
        states = make_states(p, n_per, seed=7)
        new_keys = [s.keys + 2 for s in states]

        vm_inc = VirtualMachine(p, MachineModel.cm5())
        bucket_incremental_sort(vm_inc, states, new_keys)

        vm_full = VirtualMachine(p, MachineModel.cm5())
        payloads = [s.payload for s in make_states(p, n_per, seed=7)]
        parallel_sample_sort(vm_full, new_keys, payloads)
        assert vm_inc.elapsed() < vm_full.elapsed()

    def test_more_buckets_cheapen_bucket_moves(self):
        """Elements that change bucket pay O(log L) classification but a
        cheaper per-bucket re-sort; with perturbations that move elements
        between buckets, more buckets must not *increase* total cost and
        should reduce the re-sort component."""
        costs = {}
        for nbuckets in (2, 32):
            vm = VirtualMachine(4, MachineModel.cm5())
            states = make_states(4, 1000, nbuckets=nbuckets, seed=11)
            rng = np.random.default_rng(12)
            new_keys = [s.keys + rng.integers(-2000, 2000, s.n) for s in states]
            bucket_incremental_sort(vm, states, new_keys)
            costs[nbuckets] = vm.compute_time.max()
        assert costs[32] < costs[2]

    def test_empty_rank_handled(self):
        vm = VirtualMachine(3, MachineModel.cm5())
        keys0 = np.array([1, 2, 3], dtype=np.int64)
        states = [
            BucketState.build(keys0, keys0.reshape(-1, 1).astype(float), 2),
            BucketState.build(np.empty(0, dtype=np.int64), np.zeros((0, 1)), 2),
            BucketState.build(np.array([10, 11], dtype=np.int64), np.zeros((2, 1)), 2),
        ]
        new_keys = [s.keys.copy() for s in states]
        keys_out, _, _ = bucket_incremental_sort(vm, states, new_keys)
        assert np.array_equal(np.concatenate(keys_out), [1, 2, 3, 10, 11])

    def test_length_mismatch_rejected(self):
        vm = VirtualMachine(2, MachineModel.cm5())
        states = make_states(2, 10)
        bad = [states[0].keys[:5], states[1].keys]
        with pytest.raises(ValueError, match="length mismatch"):
            bucket_incremental_sort(vm, states, bad)
