"""Tests for ghost-grid-point tables (duplicate-access removal)."""

import numpy as np
import pytest

from repro.pic.ghost import DirectAddressTable, HashGhostTable, make_ghost_table


def entries(seed=0, k=100, nnodes=64, nchannels=4):
    rng = np.random.default_rng(seed)
    nodes = rng.integers(0, nnodes, k)
    values = rng.normal(size=(nchannels, k))
    return nodes, values


class TestFactory:
    def test_kinds(self):
        assert isinstance(make_ghost_table("direct", 16), DirectAddressTable)
        assert isinstance(make_ghost_table("hash", 16), HashGhostTable)

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown ghost table"):
            make_ghost_table("btree", 16)


@pytest.mark.parametrize("kind", ["direct", "hash"])
class TestSemantics:
    def test_duplicates_summed(self, kind):
        table = make_ghost_table(kind, 8, nchannels=1)
        table.accumulate(np.array([3, 3, 5]), np.array([[1.0, 2.0, 4.0]]))
        uniq, summed = table.flush()
        assert uniq.tolist() == [3, 5]
        assert summed[0].tolist() == [3.0, 4.0]

    def test_unique_nodes_sorted(self, kind):
        table = make_ghost_table(kind, 64)
        nodes, values = entries(seed=1)
        table.accumulate(nodes, values)
        uniq, _ = table.flush()
        assert np.all(np.diff(uniq) > 0)

    def test_flush_resets(self, kind):
        table = make_ghost_table(kind, 8, nchannels=1)
        table.accumulate(np.array([2]), np.array([[1.0]]))
        table.flush()
        uniq, summed = table.flush()
        assert uniq.size == 0 and summed.shape == (1, 0)

    def test_multiple_accumulate_calls(self, kind):
        table = make_ghost_table(kind, 8, nchannels=1)
        table.accumulate(np.array([1]), np.array([[1.0]]))
        table.accumulate(np.array([1, 2]), np.array([[2.0, 5.0]]))
        uniq, summed = table.flush()
        assert uniq.tolist() == [1, 2]
        assert summed[0].tolist() == [3.0, 5.0]

    def test_empty_accumulate(self, kind):
        table = make_ghost_table(kind, 8)
        table.accumulate(np.empty(0, dtype=np.int64), np.empty((4, 0)))
        uniq, _ = table.flush()
        assert uniq.size == 0

    def test_out_of_range_node(self, kind):
        table = make_ghost_table(kind, 8, nchannels=1)
        with pytest.raises(ValueError, match="out of range"):
            table.accumulate(np.array([8]), np.array([[1.0]]))

    def test_value_shape_checked(self, kind):
        table = make_ghost_table(kind, 8, nchannels=4)
        with pytest.raises(ValueError):
            table.accumulate(np.array([1]), np.array([[1.0]]))

    def test_stats_entries(self, kind):
        table = make_ghost_table(kind, 64)
        nodes, values = entries(k=50)
        table.accumulate(nodes, values)
        table.flush()
        assert table.stats.entries == 50
        assert table.stats.unique_nodes == np.unique(nodes).size


class TestEquivalence:
    def test_hash_and_direct_agree(self):
        nodes, values = entries(seed=3, k=500, nnodes=128)
        direct = DirectAddressTable(128)
        hashed = HashGhostTable(128)
        direct.accumulate(nodes, values)
        hashed.accumulate(nodes, values)
        du, dv = direct.flush()
        hu, hv = hashed.flush()
        assert np.array_equal(du, hu)
        assert np.allclose(dv, hv)


class TestCostTradeoffs:
    def test_direct_memory_proportional_to_mesh(self):
        small = DirectAddressTable(100)
        large = DirectAddressTable(10000)
        assert large.stats.memory_slots == 100 * small.stats.memory_slots

    def test_hash_memory_proportional_to_unique(self):
        table = HashGhostTable(10**6)
        nodes = np.arange(10)
        table.accumulate(nodes, np.zeros((4, 10)))
        table.flush()
        assert table.stats.memory_slots < 1000  # nowhere near the mesh size

    def test_direct_fewer_ops_per_entry(self):
        nodes, values = entries(k=100, nnodes=64)
        direct = DirectAddressTable(64)
        hashed = HashGhostTable(64)
        direct.accumulate(nodes, values)
        hashed.accumulate(nodes, values)
        assert direct.stats.ops < hashed.stats.ops
