"""Tests for the fault-injection machinery (repro.machine.faults)."""

import json

import numpy as np
import pytest

from repro.machine import FaultEvent, FaultInjector, FaultPlan, MachineModel, VirtualMachine
from repro.machine.collectives import (
    exchange_by_destination,
    exchange_by_destination_pooled,
)
from repro.util.errors import (
    FaultError,
    InvalidRankError,
    MessageLost,
    RankFailure,
)


def _vm(p=4):
    return VirtualMachine(p, MachineModel.cm5())


def _send(p, nbytes_per_row=8):
    """Every rank sends one row to its right neighbour."""
    send = [dict() for _ in range(p)]
    for src in range(p):
        send[src][(src + 1) % p] = np.full(3, float(src))
    return send


def _plan(*events, **kw):
    return FaultPlan(events=tuple(events), **kw)


class TestFaultPlanSerialization:
    def test_roundtrip(self):
        plan = _plan(
            FaultEvent(kind="kill", rank=2, iteration=5),
            FaultEvent(kind="drop", src=0, dst=1, iteration=3, phase="scatter", count=2),
            FaultEvent(kind="slowdown", rank=1, iteration=4, count=3, factor=2.5),
            retry_timeout=1e-3,
            detect_timeout=1e-2,
            max_retries=5,
        )
        back = FaultPlan.from_dict(plan.to_dict())
        assert back == plan

    def test_json_file_roundtrip(self, tmp_path):
        plan = _plan(FaultEvent(kind="corrupt", dst=3, iteration=7))
        path = tmp_path / "faults.json"
        path.write_text(json.dumps(plan.to_dict()))
        assert FaultPlan.from_json(path) == plan

    def test_example_plan_parses(self):
        from pathlib import Path

        example = Path(__file__).resolve().parents[1] / "examples" / "faults.json"
        plan = FaultPlan.from_json(example)
        assert any(e.kind == "kill" for e in plan.events)

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent(kind="meteor", rank=0)

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown fault event keys"):
            FaultEvent.from_dict({"kind": "drop", "severity": 11})
        with pytest.raises(ValueError, match="unknown fault plan keys"):
            FaultPlan.from_dict({"happens": []})

    def test_bad_json_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2]")
        with pytest.raises(ValueError, match="JSON object"):
            FaultPlan.from_json(path)
        path.write_text("{nope")
        with pytest.raises(ValueError, match="not valid JSON"):
            FaultPlan.from_json(path)

    def test_kill_needs_rank(self):
        with pytest.raises(ValueError, match="victim rank"):
            FaultEvent(kind="kill")

    def test_survivor_plan_remaps(self):
        plan = _plan(
            FaultEvent(kind="kill", rank=2, iteration=5),
            FaultEvent(kind="slowdown", rank=3, iteration=0, count=0),
            FaultEvent(kind="drop", src=1, dst=2),  # targets the dead rank
            FaultEvent(kind="corrupt", src=3, dst=0),
        )
        surv = plan.survivor_plan(2)
        kinds = [e.kind for e in surv.events]
        assert "kill" not in kinds  # the fired kill is removed
        assert "drop" not in kinds  # dead-rank message events dropped
        slow = next(e for e in surv.events if e.kind == "slowdown")
        assert slow.rank == 2  # 3 shifts down past the dead rank
        corrupt = next(e for e in surv.events if e.kind == "corrupt")
        assert (corrupt.src, corrupt.dst) == (2, 0)


class TestInstall:
    def test_install_accepts_plan_injector_none(self):
        vm = _vm()
        plan = _plan(FaultEvent(kind="duplicate", src=0))
        vm.install_faults(plan)
        assert isinstance(vm.fault_injector, FaultInjector)
        vm.install_faults(FaultInjector(plan))
        assert vm.fault_injector.plan == plan
        vm.install_faults(None)
        assert vm.fault_injector is None

    def test_install_rejects_garbage(self):
        with pytest.raises(TypeError, match="FaultPlan"):
            _vm().install_faults({"kind": "drop"})


class TestZeroCostWhenOff:
    def test_empty_plan_is_accounting_identical(self):
        """An installed-but-empty plan charges exactly like no plan."""
        clean, empty = _vm(), _vm()
        empty.install_faults(FaultPlan())
        for vm in (clean, empty):
            with vm.phase("scatter"):
                vm.alltoallv(_send(vm.p))
                vm.charge_ops("push", 1000.0)
                vm.allreduce([np.ones(4)] * vm.p)
                vm.allgather([np.arange(r + 1) for r in range(vm.p)])
        assert clean.elapsed() == empty.elapsed()
        assert clean.state_dict() == empty.state_dict()


class TestTransportFaults:
    def test_drop_charges_retries_and_delivers(self):
        clean, faulty = _vm(), _vm()
        faulty.install_faults(_plan(FaultEvent(kind="drop", src=0, dst=1, count=2)))
        r_clean = clean.alltoallv(_send(4))
        r_faulty = faulty.alltoallv(_send(4))
        np.testing.assert_array_equal(r_clean[1][0], r_faulty[1][0])  # payload intact
        assert faulty.elapsed() > clean.elapsed()
        # two retransmissions recorded on top of the clean message count
        assert (
            faulty.stats.phase("default").total_msgs
            == clean.stats.phase("default").total_msgs + 2
        )

    def test_drop_beyond_max_retries_raises(self):
        vm = _vm()
        vm.install_faults(_plan(FaultEvent(kind="drop", src=0, dst=1, count=5), max_retries=3))
        with pytest.raises(MessageLost) as err:
            vm.alltoallv(_send(4))
        assert err.value.src == 0 and err.value.dst == 1

    def test_duplicate_and_corrupt_cost_but_do_not_damage(self):
        for kind in ("duplicate", "corrupt"):
            clean, faulty = _vm(), _vm()
            faulty.install_faults(_plan(FaultEvent(kind=kind, src=2, dst=3)))
            r_clean = clean.alltoallv(_send(4))
            r_faulty = faulty.alltoallv(_send(4))
            np.testing.assert_array_equal(r_clean[3][2], r_faulty[3][2])
            assert faulty.elapsed() > clean.elapsed(), kind
            assert (
                faulty.stats.phase("default").total_msgs
                > clean.stats.phase("default").total_msgs
            ), kind

    def test_corrupt_records_nack_to_sender(self):
        vm = _vm()
        vm.install_faults(_plan(FaultEvent(kind="corrupt", src=2, dst=3)))
        vm.alltoallv(_send(4))
        # the 8-byte NACK travels dst -> src
        assert vm.stats.phase("default").bytes_recv[2] >= 8

    def test_poison_damages_float_payload_only(self):
        vm = _vm()
        vm.install_faults(_plan(FaultEvent(kind="poison", src=0, dst=1)))
        send = [dict() for _ in range(4)]
        send[0][1] = (np.arange(3, dtype=float), np.arange(3, dtype=np.int64))
        recv = vm.alltoallv(send)
        floats, ints = recv[1][0]
        assert np.isnan(floats[0]) and np.isfinite(floats[1:]).all()
        np.testing.assert_array_equal(ints, np.arange(3))  # addressing untouched

    def test_phase_filter(self):
        vm = _vm()
        vm.install_faults(_plan(FaultEvent(kind="poison", phase="scatter")))
        with vm.phase("gather"):
            recv = vm.alltoallv(_send(4))
        assert np.isfinite(recv[1][0]).all()  # wrong phase: no damage

    def test_self_sends_are_immune(self):
        vm = _vm()
        vm.install_faults(_plan(FaultEvent(kind="poison", src=1, dst=1)))
        send = [dict() for _ in range(4)]
        send[1][1] = np.ones(3)
        recv = vm.alltoallv(send)
        assert np.isfinite(recv[1][1]).all()

    def test_collective_fault_costs_extra(self):
        clean, faulty = _vm(), _vm()
        faulty.install_faults(_plan(FaultEvent(kind="drop", iteration=0)))
        for vm in (clean, faulty):
            vm.allreduce([np.ones(8)] * vm.p)
        assert faulty.elapsed() > clean.elapsed()


class TestKillAndSlowdown:
    def test_kill_raises_rank_failure_with_detection_charge(self):
        vm = _vm()
        vm.install_faults(_plan(FaultEvent(kind="kill", rank=2, iteration=0)))
        with pytest.raises(RankFailure) as err:
            vm.alltoallv(_send(4))
        assert err.value.rank == 2
        assert vm.phase_time["recovery"].max() == pytest.approx(
            vm.fault_injector.plan.detect_timeout
        )

    def test_kill_waits_for_its_iteration(self):
        vm = _vm()
        vm.install_faults(_plan(FaultEvent(kind="kill", rank=1, iteration=5)))
        vm.fault_injector.set_iteration(4)
        vm.alltoallv(_send(4))  # survives: not yet due
        vm.fault_injector.set_iteration(5)
        with pytest.raises(RankFailure):
            vm.alltoallv(_send(4))

    def test_kill_out_of_range_is_typed_error(self):
        vm = _vm(2)
        vm.install_faults(_plan(FaultEvent(kind="kill", rank=7)))
        with pytest.raises(FaultError, match="p=2"):
            vm.alltoallv([dict(), {0: np.ones(2)}])

    def test_slowdown_scales_only_victim(self):
        clean, slow = _vm(), _vm()
        slow.install_faults(
            _plan(FaultEvent(kind="slowdown", rank=1, iteration=0, count=2, factor=3.0))
        )
        for vm in (clean, slow):
            vm.charge_ops("push", 1000.0)
        assert slow.clocks[1] == pytest.approx(3.0 * clean.clocks[1])
        assert slow.clocks[0] == pytest.approx(clean.clocks[0])
        # expires after `count` iterations
        slow.fault_injector.set_iteration(2)
        before = slow.clocks.copy()
        clean_before = clean.clocks.copy()
        slow.charge_ops("push", 1000.0)
        clean.charge_ops("push", 1000.0)
        np.testing.assert_allclose(slow.clocks - before, clean.clocks - clean_before)


class TestExchangeValidation:
    def test_pooled_rejects_out_of_range_destinations(self):
        vm = _vm(3)
        rows = np.ones((4, 2))
        offsets = np.array([0, 2, 3, 4])
        for bad in (np.array([0, 3, 1, 2]), np.array([0, -1, 1, 2])):
            with pytest.raises(InvalidRankError, match="out of range"):
                exchange_by_destination_pooled(vm, rows, bad, offsets)

    def test_per_rank_exchange_rejects_bad_destinations(self):
        vm = _vm(2)
        arrays = [np.ones(2), np.ones(1)]
        with pytest.raises(InvalidRankError, match="rank 0"):
            exchange_by_destination(vm, arrays, [np.array([0, 5]), np.array([1])])

    def test_invalid_rank_error_is_value_error(self):
        # pre-existing `except ValueError` call sites keep working
        assert issubclass(InvalidRankError, ValueError)
