"""Multicore flat backend: shm arena, worker pool, sharding, fallback,
and the Simulation-level bit-identity contract across worker counts
(accounting, results, fault recovery, checkpoint/resume)."""

import json
import multiprocessing
import warnings
from dataclasses import replace

import numpy as np
import pytest

from repro.machine import FaultEvent, FaultPlan
from repro.mesh import Grid2D
from repro.parallel_exec import (
    FlatBackend,
    SharedArena,
    ShmArray,
    ShmAttachCache,
    WorkerError,
    WorkerPool,
    create_backend,
    live_worker_pids,
    resolve_workers,
    shared_memory_available,
)
from repro.pic import Simulation, SimulationConfig
from repro.pic.checkpoint import load_checkpoint

_MULTICORE_OK = (
    "fork" in multiprocessing.get_all_start_methods() and shared_memory_available()
)
needs_multicore = pytest.mark.skipif(
    not _MULTICORE_OK, reason="fork or multiprocessing.shared_memory unavailable"
)


# ----------------------------------------------------------------------
# resolve_workers / graceful degradation
# ----------------------------------------------------------------------
class TestResolveWorkers:
    @pytest.mark.parametrize(
        "spec,expected", [(None, 0), (0, 0), (1, 1), (4, 4), ("0", 0), ("3", 3)]
    )
    def test_values(self, spec, expected):
        assert resolve_workers(spec) == expected

    def test_auto_is_positive(self):
        assert resolve_workers("auto") >= 1
        assert resolve_workers(" AUTO ") >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            resolve_workers(-2)

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers("many")


class TestGracefulFallback:
    def test_workers_leq_one_is_in_process(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # must not even warn
            assert create_backend(0, Grid2D(8, 8)) is None
            assert create_backend(1, Grid2D(8, 8)) is None
            assert create_backend(None, Grid2D(8, 8)) is None

    def test_no_shared_memory_warns_and_falls_back(self, monkeypatch):
        from repro.parallel_exec import backend as backend_mod

        monkeypatch.setattr(backend_mod, "shared_memory_available", lambda: False)
        monkeypatch.setattr(backend_mod, "_warned", set())
        with pytest.warns(RuntimeWarning, match="falling back"):
            assert create_backend(4, Grid2D(8, 8)) is None
        # second construction is silent (one warning per process per reason)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert create_backend(4, Grid2D(8, 8)) is None

    def test_simulation_never_crashes_without_shm(self, monkeypatch):
        from repro.parallel_exec import backend as backend_mod

        monkeypatch.setattr(backend_mod, "shared_memory_available", lambda: False)
        monkeypatch.setattr(backend_mod, "_warned", set())
        cfg = SimulationConfig(nx=16, ny=8, nparticles=256, p=2, seed=1)
        with pytest.warns(RuntimeWarning, match="falling back"):
            sim = Simulation(cfg, workers=4)
        assert sim.backend is None
        sim.run(1)  # in-process path, never crashes
        sim.close()

    def test_workers_ignored_off_flat_era(self):
        cfg = SimulationConfig(
            nx=16, ny=8, nparticles=256, p=2, seed=1, engine="looped"
        )
        with pytest.warns(RuntimeWarning, match="ignored"):
            sim = Simulation(cfg, workers=2)
        assert sim.backend is None
        sim.close()


class TestDegradedObservability:
    """A silent multicore fallback must be visible in results + telemetry."""

    def test_fallback_sets_degraded_marker(self, monkeypatch):
        from repro.parallel_exec import backend as backend_mod

        monkeypatch.setattr(backend_mod, "shared_memory_available", lambda: False)
        monkeypatch.setattr(backend_mod, "_warned", set())
        cfg = SimulationConfig(nx=16, ny=8, nparticles=256, p=2, seed=1)
        with pytest.warns(RuntimeWarning):
            sim = Simulation(cfg, workers=4)
        assert sim.degraded is not None
        assert sim.degraded["requested_workers"] == 4
        assert "shared" in sim.degraded["reason"]
        telemetry = sim.enable_telemetry()
        result = sim.run(1)
        assert result.to_dict()["degraded"] == sim.degraded
        assert telemetry.header()["degraded"] == sim.degraded
        sim.close()

    def test_engine_mismatch_sets_degraded_marker(self):
        cfg = SimulationConfig(
            nx=16, ny=8, nparticles=256, p=2, seed=1, engine="looped"
        )
        with pytest.warns(RuntimeWarning, match="ignored"):
            sim = Simulation(cfg, workers=2)
        assert sim.degraded is not None
        assert sim.degraded["requested_workers"] == 2
        assert "engine" in sim.degraded["reason"]
        sim.close()

    def test_true_runs_carry_no_marker(self):
        cfg = SimulationConfig(nx=16, ny=8, nparticles=256, p=2, seed=1)
        sim = Simulation(cfg)  # in-process was *requested*: not degraded
        sim.enable_telemetry()
        result = sim.run(1)
        assert sim.degraded is None
        assert "degraded" not in result.to_dict()  # byte-identity preserved
        assert "degraded" not in sim.telemetry.header()
        sim.close()


# ----------------------------------------------------------------------
# shared-memory arena
# ----------------------------------------------------------------------
@needs_multicore
class TestSharedArena:
    def test_array_roundtrip(self):
        arena = SharedArena(tag="t")
        try:
            view, desc = arena.array("buf", (5, 3), np.float64)
            view[...] = np.arange(15.0).reshape(5, 3)
            assert desc.shape == (5, 3) and desc.nbytes == 15 * 8
            cache = ShmAttachCache()
            np.testing.assert_array_equal(
                cache.get(desc), np.arange(15.0).reshape(5, 3)
            )
            cache.close()
        finally:
            arena.close()

    def test_reuse_and_fresh(self):
        arena = SharedArena(tag="t")
        try:
            _, d1 = arena.array("buf", (8,), np.float64)
            _, d2 = arena.array("buf", (4,), np.float64)  # smaller: reuse
            assert d2.name == d1.name
            _, d3 = arena.array("buf", (64,), np.float64)  # grows: new block
            assert d3.name != d1.name
            pairs = arena.columns("buf", [((4,), np.float64)], fresh=True)
            assert pairs[0][1].name != d3.name  # fresh forces a new block
        finally:
            arena.close()

    def test_columns_offsets(self):
        arena = SharedArena(tag="t")
        try:
            pairs = arena.columns(
                "cols", [((4,), np.float64), ((4,), np.int64), ((2,), np.bool_)]
            )
            (a, da), (b, db), (c, dc) = pairs
            a[...] = 1.5
            b[...] = 7
            c[...] = True
            assert (da.offset, db.offset, dc.offset) == (0, 32, 64)
            cache = ShmAttachCache()
            np.testing.assert_array_equal(cache.get(db), np.full(4, 7))
            np.testing.assert_array_equal(cache.get(da), np.full(4, 1.5))
            cache.close()
        finally:
            arena.close()

    def test_publish_copies(self):
        arena = SharedArena(tag="t")
        try:
            src = np.arange(6, dtype=np.int64)
            desc = arena.publish("owner", src)
            src[:] = -1  # mutating the source must not reach the arena
            cache = ShmAttachCache()
            np.testing.assert_array_equal(cache.get(desc), np.arange(6))
            cache.close()
        finally:
            arena.close()

    def test_close_unlinks(self):
        arena = SharedArena(tag="t")
        _, desc = arena.array("buf", (4,), np.float64)
        arena.close()
        cache = ShmAttachCache()
        with pytest.raises(FileNotFoundError):
            cache.get(desc)
        arena.close()  # idempotent


# ----------------------------------------------------------------------
# worker pool
# ----------------------------------------------------------------------
@needs_multicore
class TestWorkerPool:
    def test_ping_and_pids(self):
        pool = WorkerPool(2, (8, 8, 8.0, 8.0))
        try:
            assert pool.run([(0, "ping", {}), (1, "ping", {})]) == ["pong", "pong"]
            assert len(pool.pids) == 2
            assert set(pool.pids) <= set(live_worker_pids())
        finally:
            pool.close()
        assert pool.pids == []
        assert not (set(pool.pids) & set(live_worker_pids()))

    def test_worker_exception_propagates(self):
        pool = WorkerPool(1, (8, 8, 8.0, 8.0))
        try:
            with pytest.raises(WorkerError, match="no_such_handler"):
                pool.run([(0, "no_such_handler", {})])
            # pool keeps serving after a failed task
            assert pool.run([(0, "ping", {})]) == ["pong"]
        finally:
            pool.close()

    def test_closed_pool_rejects_tasks(self):
        pool = WorkerPool(1, (8, 8, 8.0, 8.0))
        pool.close()
        with pytest.raises(WorkerError, match="closed"):
            pool.run([(0, "ping", {})])


# ----------------------------------------------------------------------
# sharding
# ----------------------------------------------------------------------
@needs_multicore
class TestShards:
    @pytest.fixture(scope="class")
    def backend(self):
        b = create_backend(3, Grid2D(8, 8))
        assert isinstance(b, FlatBackend)
        yield b
        b.close()

    @pytest.mark.parametrize(
        "counts",
        [
            [10, 10, 10, 10, 10, 10],
            [0, 0, 0, 0],
            [100, 0, 0, 1],
            [1],
            [0, 50, 0, 50, 0],
            list(range(20)),
        ],
    )
    def test_cover_all_ranks_once(self, backend, counts):
        shards = backend._shards(np.asarray(counts, dtype=np.int64))
        assert len(shards) <= backend.nworkers
        covered = []
        for r0, r1 in shards:
            assert r1 > r0
            covered.extend(range(r0, r1))
        assert covered == list(range(len(counts)))

    def test_classify_matches_serial(self, backend):
        rng = np.random.default_rng(11)
        n, p = 4096, 7
        keys = rng.integers(0, 10**6, n)
        rank_of = rng.integers(0, p, n)
        lows = rng.integers(0, 10**6, n)
        highs = lows + rng.integers(0, 1000, n)
        splitters = np.sort(rng.integers(0, 10**6, p - 1))
        from repro.parallel_exec.kernels import classify_chunk

        dest_s, same_s = classify_chunk(keys, rank_of, lows, highs, splitters)
        dest_w, same_w = backend.classify(keys, rank_of, lows, highs, splitters)
        np.testing.assert_array_equal(dest_w, dest_s)
        np.testing.assert_array_equal(same_w, same_s)


# ----------------------------------------------------------------------
# Simulation-level bit-identity across worker counts
# ----------------------------------------------------------------------
def _cfg(**kwargs) -> SimulationConfig:
    base = dict(
        nx=16,
        ny=12,
        nparticles=800,
        p=6,
        distribution="irregular",
        policy="dynamic",
        seed=3,
        engine="flat",
    )
    base.update(kwargs)
    return SimulationConfig(**base)


def _result_dict(cfg, workers, niters=4, **run_kwargs):
    sim = Simulation(cfg, workers=workers)
    try:
        result = sim.run(niters, **run_kwargs)
        return result.to_dict()
    finally:
        sim.close()


def _strip_wall(d: dict) -> dict:
    return {k: v for k, v in d.items() if "wall" not in k}


@needs_multicore
class TestSimulationInvariance:
    @pytest.mark.parametrize("movement", ["lagrangian", "eulerian"])
    def test_result_dicts_identical(self, movement):
        cfg = _cfg(movement=movement)
        ref = _strip_wall(_result_dict(cfg, 0))
        for workers in (1, 2, 4):
            got = _strip_wall(_result_dict(cfg, workers))
            assert json.dumps(got, sort_keys=True, default=str) == json.dumps(
                ref, sort_keys=True, default=str
            ), f"workers={workers} perturbed the result dict"

    def test_three_way_with_looped(self):
        flat = _strip_wall(_result_dict(_cfg(), 2))
        looped = _strip_wall(_result_dict(_cfg(engine="looped"), 0))
        flat.pop("config")
        looped.pop("config")  # engines differ only in the config label
        assert json.dumps(flat, sort_keys=True, default=str) == json.dumps(
            looped, sort_keys=True, default=str
        )

    def test_fault_recovery_identical(self, tmp_path):
        """A rank kill + checkpoint recovery shrinks the machine; the
        backend must survive the shrink with bit-identical results."""
        plan = FaultPlan(events=(FaultEvent(kind="kill", rank=2, iteration=3),))
        outcomes = {}
        for workers in (0, 2):
            sim = Simulation(_cfg(), workers=workers)
            try:
                sim.install_faults(plan)
                result = sim.run(
                    5,
                    checkpoint_every=2,
                    checkpoint_path=tmp_path / f"ck_w{workers}.npz",
                )
                assert result.n_recoveries == 1
                outcomes[workers] = _strip_wall(result.to_dict())
            finally:
                sim.close()
        assert json.dumps(outcomes[0], sort_keys=True, default=str) == json.dumps(
            outcomes[2], sort_keys=True, default=str
        )

    def test_checkpoints_identical_across_worker_counts(self, tmp_path):
        """Checkpoints never record a worker count and their payload is
        bit-identical whichever backend wrote them."""
        paths = {}
        for workers in (0, 2):
            path = tmp_path / f"ck_w{workers}.npz"
            sim = Simulation(_cfg(), workers=workers)
            try:
                sim.run(3)
                sim.checkpoint(path)
            finally:
                sim.close()
            paths[workers] = path
        a, b = np.load(paths[0], allow_pickle=True), np.load(paths[2], allow_pickle=True)
        assert sorted(a.files) == sorted(b.files)
        for key in a.files:
            va, vb = a[key], b[key]
            assert va.dtype == vb.dtype, key
            if va.dtype == object:
                assert repr(va.tolist()) == repr(vb.tolist()), key
            else:
                np.testing.assert_array_equal(vb, va, err_msg=f"checkpoint key {key}")
        a.close()
        b.close()

    def test_resume_across_worker_counts(self, tmp_path):
        """checkpoint with workers=2, resume with workers=0 (and the
        reverse) — both must equal the uninterrupted serial run."""
        cfg = _cfg()
        full = _strip_wall(_result_dict(cfg, 0, niters=6))
        for ck_workers, res_workers in ((2, 0), (0, 2)):
            path = tmp_path / f"ck_{ck_workers}_{res_workers}.npz"
            sim = Simulation(cfg, workers=ck_workers)
            try:
                sim.run(3, checkpoint_every=3, checkpoint_path=path)
            finally:
                sim.close()
            resumed = Simulation.from_checkpoint(path, workers=res_workers)
            try:
                result = resumed.run(3)
                got = _strip_wall(result.to_dict())
            finally:
                resumed.close()
            assert json.dumps(got, sort_keys=True, default=str) == json.dumps(
                full, sort_keys=True, default=str
            ), f"checkpoint workers={ck_workers} resume workers={res_workers}"

    def test_backend_attached_and_released(self):
        sim = Simulation(_cfg(), workers=2)
        assert sim.backend is not None
        pids = set(sim.backend.workers.pids)
        assert pids and pids <= set(live_worker_pids())
        sim.run(1)
        sim.close()
        assert sim.backend is None
        assert not (pids & set(live_worker_pids()))

    def test_context_manager(self):
        with Simulation(_cfg(), workers=2) as sim:
            assert sim.backend is not None
            sim.run(1)
        assert sim.backend is None
