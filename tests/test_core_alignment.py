"""Tests for alignment metrics (paper Figure 5)."""

import numpy as np
import pytest

from repro.core import ParticlePartitioner
from repro.core.alignment import (
    bounding_box_area,
    ghost_node_counts,
    partner_counts,
    subdomain_overlap_fraction,
)
from repro.core.metrics import load_imbalance, particle_counts
from repro.mesh import CurveBlockDecomposition, Grid2D
from repro.particles import ParticleArray, gaussian_blob, uniform_plasma


class TestBoundingBox:
    def test_empty(self, grid):
        assert bounding_box_area(ParticleArray.empty(0), grid) == 0.0

    def test_single_point(self, grid):
        parts = ParticleArray.empty(1)
        parts.x[:] = 2.0
        parts.y[:] = 3.0
        assert bounding_box_area(parts, grid) == 0.0

    def test_known_box(self, grid):
        parts = ParticleArray.empty(2)
        parts.x[:] = [1.0, 3.0]
        parts.y[:] = [2.0, 6.0]
        assert bounding_box_area(parts, grid) == pytest.approx(8.0)

    def test_hilbert_subdomains_more_compact_than_snake(self):
        """Equal particle slices along a Hilbert curve span smaller
        boxes than along a snake curve — the geometric root of the
        paper's Table 2 result."""
        grid = Grid2D(32, 32)
        parts = uniform_plasma(grid, 8192, rng=0)
        areas = {}
        for scheme in ("hilbert", "snake"):
            local = ParticlePartitioner(grid, scheme).initial_partition(parts, 16)
            areas[scheme] = sum(bounding_box_area(lp, grid) for lp in local)
        assert areas["hilbert"] < areas["snake"]


class TestOverlap:
    def test_perfect_alignment(self, grid):
        decomp = CurveBlockDecomposition(grid, 4, "hilbert")
        # put particles exactly on rank 2's cells
        cells = decomp.cells_of_rank(2)
        cx, cy = grid.cell_coords(cells)
        parts = ParticleArray.empty(cells.size)
        parts.x[:] = cx + 0.5
        parts.y[:] = cy + 0.5
        assert subdomain_overlap_fraction(parts, 2, grid, decomp) == 1.0
        assert subdomain_overlap_fraction(parts, 0, grid, decomp) == 0.0

    def test_empty_reports_one(self, grid):
        decomp = CurveBlockDecomposition(grid, 4)
        assert subdomain_overlap_fraction(ParticleArray.empty(0), 0, grid, decomp) == 1.0

    def test_aligned_partition_high_overlap(self):
        grid = Grid2D(32, 32)
        decomp = CurveBlockDecomposition(grid, 8, "hilbert")
        parts = uniform_plasma(grid, 8192, rng=1)
        local = ParticlePartitioner(grid, "hilbert").initial_partition(parts, 8)
        fractions = [
            subdomain_overlap_fraction(lp, r, grid, decomp) for r, lp in enumerate(local)
        ]
        assert min(fractions) > 0.7


class TestPartnerAndGhostCounts:
    def test_aligned_uniform_few_partners(self):
        grid = Grid2D(32, 32)
        decomp = CurveBlockDecomposition(grid, 16, "hilbert")
        parts = uniform_plasma(grid, 4096, rng=2)
        local = ParticlePartitioner(grid, "hilbert").initial_partition(parts, 16)
        partners = partner_counts(local, grid, decomp)
        assert partners.max() <= 8  # near-neighbours only

    def test_misaligned_blob_many_ghosts(self):
        grid = Grid2D(32, 32)
        decomp = CurveBlockDecomposition(grid, 8, "hilbert")
        parts = gaussian_blob(grid, 4096, rng=3)
        # deliberately bad assignment: round-robin by id
        local = [parts.take(np.arange(r, parts.n, 8)) for r in range(8)]
        aligned = ParticlePartitioner(grid, "hilbert").initial_partition(parts, 8)
        bad = ghost_node_counts(local, grid, decomp).sum()
        good = ghost_node_counts(aligned, grid, decomp).sum()
        assert good < bad

    def test_empty_ranks(self, grid):
        decomp = CurveBlockDecomposition(grid, 4)
        locals_ = [ParticleArray.empty(0) for _ in range(4)]
        assert partner_counts(locals_, grid, decomp).sum() == 0
        assert ghost_node_counts(locals_, grid, decomp).sum() == 0


class TestMetrics:
    def test_particle_counts(self):
        locals_ = [ParticleArray.empty(3), ParticleArray.empty(5)]
        assert particle_counts(locals_).tolist() == [3, 5]

    def test_load_imbalance_balanced(self):
        assert load_imbalance(np.array([10, 10, 10])) == 1.0

    def test_load_imbalance_skewed(self):
        assert load_imbalance(np.array([30, 0, 0])) == pytest.approx(3.0)

    def test_load_imbalance_empty(self):
        assert load_imbalance(np.zeros(4)) == 1.0
