"""Tests for the higher-level communication patterns."""

import numpy as np
import pytest

from repro.machine.collectives import (
    alltoall_concat,
    exchange_by_destination,
    halo_sendrecv,
)


class TestAlltoallConcat:
    def test_concatenates_in_source_order(self, vm4):
        send = [dict() for _ in range(4)]
        send[2][0] = np.array([20.0])
        send[1][0] = np.array([10.0, 11.0])
        out = alltoall_concat(vm4, send)
        assert np.array_equal(out[0], [10.0, 11.0, 20.0])

    def test_empty_receive_matches_payload_shape(self, vm4):
        send = [dict() for _ in range(4)]
        send[0][1] = np.zeros((2, 9))
        out = alltoall_concat(vm4, send)
        assert out[3].shape == (0, 9)

    def test_all_empty_exchange(self, vm4):
        out = alltoall_concat(vm4, [dict() for _ in range(4)])
        assert all(o.size == 0 for o in out)


class TestExchangeByDestination:
    def test_routing(self, vm4):
        arrays = [np.arange(4.0).reshape(4, 1) + 10 * r for r in range(4)]
        dests = [np.array([0, 1, 2, 3]) for _ in range(4)]
        out = exchange_by_destination(vm4, arrays, dests)
        # rank 1 receives element index 1 from every rank, source order
        assert np.array_equal(out[1].ravel(), [1.0, 11.0, 21.0, 31.0])

    def test_stable_within_source(self, vm4):
        arrays = [np.array([[1.0], [2.0], [3.0]])] + [np.zeros((0, 1))] * 3
        dests = [np.array([2, 2, 2])] + [np.zeros(0, dtype=np.int64)] * 3
        out = exchange_by_destination(vm4, arrays, dests)
        assert np.array_equal(out[2].ravel(), [1.0, 2.0, 3.0])

    def test_length_mismatch_rejected(self, vm4):
        arrays = [np.zeros((2, 1))] * 4
        dests = [np.zeros(3, dtype=np.int64)] * 4
        with pytest.raises(ValueError, match="length mismatch"):
            exchange_by_destination(vm4, arrays, dests)

    def test_bad_destination_rejected(self, vm4):
        arrays = [np.zeros((1, 1))] * 4
        dests = [np.array([7])] + [np.zeros(1, dtype=np.int64)] * 3
        with pytest.raises(ValueError, match="destination out of range"):
            exchange_by_destination(vm4, arrays, dests)

    def test_conservation(self, vm4):
        """Every row sent is received exactly once."""
        rng = np.random.default_rng(0)
        arrays = [rng.random((20, 3)) for _ in range(4)]
        dests = [rng.integers(0, 4, 20) for _ in range(4)]
        out = exchange_by_destination(vm4, arrays, dests)
        total_in = np.concatenate(arrays).sum()
        total_out = sum(o.sum() for o in out)
        assert total_out == pytest.approx(total_in)
        assert sum(o.shape[0] for o in out) == 80


class TestHaloSendrecv:
    def test_is_alltoallv(self, vm4):
        send = [dict() for _ in range(4)]
        send[0][1] = np.arange(4.0)
        out = halo_sendrecv(vm4, send)
        assert np.array_equal(out[1][0], np.arange(4.0))
