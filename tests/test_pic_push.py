"""Tests for the relativistic Boris pusher."""

import numpy as np
import pytest

from repro.mesh import Grid2D
from repro.particles import ParticleArray
from repro.pic.push import boris_push


@pytest.fixture
def grid():
    return Grid2D(64, 64, lx=64.0, ly=64.0)


def one_particle(x=32.0, y=32.0, ux=0.0, uy=0.0, uz=0.0, q=-1.0):
    parts = ParticleArray.empty(1)
    parts.x[:] = x
    parts.y[:] = y
    parts.ux[:] = ux
    parts.uy[:] = uy
    parts.uz[:] = uz
    parts.q[:] = q
    parts.m[:] = 1.0
    parts.w[:] = 1.0
    return parts


def fields(n, e=(0, 0, 0), b=(0, 0, 0)):
    ef = np.zeros((3, n))
    bf = np.zeros((3, n))
    for i in range(3):
        ef[i] = e[i]
        bf[i] = b[i]
    return ef, bf


class TestFreeStreaming:
    def test_no_field_straight_line(self, grid):
        parts = one_particle(ux=0.3)
        e, b = fields(1)
        boris_push(grid, parts, e, b, dt=1.0)
        gamma = np.sqrt(1 + 0.09)
        assert parts.x[0] == pytest.approx(32.0 + 0.3 / gamma)
        assert parts.ux[0] == pytest.approx(0.3)

    def test_periodic_wrap(self, grid):
        parts = one_particle(x=63.9, ux=10.0)
        e, b = fields(1)
        boris_push(grid, parts, e, b, dt=1.0)
        assert 0 <= parts.x[0] < 64.0


class TestElectricAcceleration:
    def test_nonrelativistic_kick(self, grid):
        parts = one_particle(q=-1.0)
        e, b = fields(1, e=(0.001, 0, 0))
        boris_push(grid, parts, e, b, dt=1.0)
        # du = q E dt = -0.001
        assert parts.ux[0] == pytest.approx(-0.001, rel=1e-6)

    def test_charge_sign(self, grid):
        neg = one_particle(q=-1.0)
        pos = one_particle(q=1.0)
        e, b = fields(1, e=(0.01, 0, 0))
        boris_push(grid, neg, e, b, dt=0.5)
        boris_push(grid, pos, e, b, dt=0.5)
        assert neg.ux[0] == pytest.approx(-pos.ux[0])


class TestMagneticRotation:
    def test_energy_conserved_in_pure_b(self, grid):
        """The Boris rotation preserves |u| exactly in a pure magnetic
        field — the scheme's defining property."""
        parts = one_particle(ux=0.5, uy=0.2)
        u0 = np.sqrt(parts.ux[0] ** 2 + parts.uy[0] ** 2 + parts.uz[0] ** 2)
        e, b = fields(1, b=(0, 0, 0.3))
        for _ in range(100):
            boris_push(grid, parts, e, b, dt=0.5)
        u1 = np.sqrt(parts.ux[0] ** 2 + parts.uy[0] ** 2 + parts.uz[0] ** 2)
        assert u1 == pytest.approx(u0, rel=1e-12)

    def test_larmor_rotation_direction(self, grid):
        # electron (q=-1) in Bz > 0: u rotates counterclockwise
        parts = one_particle(ux=0.1)
        e, b = fields(1, b=(0, 0, 1.0))
        boris_push(grid, parts, e, b, dt=0.01)
        assert parts.uy[0] > 0

    def test_gyration_period(self, grid):
        """Small-angle steps should complete a cyclotron orbit in
        2*pi*gamma/|q|B steps of dt."""
        parts = one_particle(ux=0.01)
        e, b = fields(1, b=(0, 0, 1.0))
        dt = 0.01
        gamma = float(parts.gamma()[0])
        steps = int(round(2 * np.pi * gamma / dt))
        for _ in range(steps):
            boris_push(grid, parts, e, b, dt=dt)
        assert parts.ux[0] == pytest.approx(0.01, rel=1e-3)
        assert abs(parts.uy[0]) < 1e-4


class TestExBDrift:
    def test_drift_velocity(self, grid):
        """Crossed E and B give the classic E x B drift regardless of
        charge sign."""
        parts = one_particle()
        e, b = fields(1, e=(0, 0.01, 0), b=(0, 0, 1.0))
        xs = []
        for _ in range(2000):
            boris_push(grid, parts, e, b, dt=0.05)
            xs.append(parts.x[0])
        # E x B / B^2 = (Ey * Bz, ...)/Bz^2 -> vx = 0.01
        drift = (np.unwrap(np.array(xs) * 2 * np.pi / 64.0) * 64.0 / (2 * np.pi))
        vx = (drift[-1] - drift[0]) / (0.05 * 1999)
        assert vx == pytest.approx(0.01, rel=0.05)


class TestValidation:
    def test_dt_positive(self, grid):
        parts = one_particle()
        e, b = fields(1)
        with pytest.raises(ValueError):
            boris_push(grid, parts, e, b, dt=0.0)

    def test_shape_check(self, grid):
        parts = one_particle()
        with pytest.raises(ValueError, match="must be"):
            boris_push(grid, parts, np.zeros((3, 2)), np.zeros((3, 1)), dt=0.1)

    def test_relativistic_speed_limit(self, grid):
        """However hard the kick, |v| stays below c = 1."""
        parts = one_particle()
        e, b = fields(1, e=(100.0, 0, 0))
        for _ in range(50):
            boris_push(grid, parts, e, b, dt=0.1)
        v = abs(parts.ux[0]) / parts.gamma()[0]
        assert v < 1.0
