"""Tests for the phase-trace profiler."""

import numpy as np
import pytest

from repro.machine import MachineModel, VirtualMachine
from repro.machine.trace import PhaseTrace


@pytest.fixture
def traced_vm():
    vm = VirtualMachine(2, MachineModel.cm5())
    trace = PhaseTrace(vm)
    for _ in range(5):
        with vm.phase("scatter"):
            vm.charge_ops("scatter", 100)
        with vm.phase("push"):
            vm.charge_ops("push", 50)
        trace.snapshot()
    return vm, trace


class TestSnapshots:
    def test_row_count(self, traced_vm):
        _, trace = traced_vm
        assert len(trace.rows) == 5

    def test_increments_not_cumulative(self, traced_vm):
        _, trace = traced_vm
        scatter = trace.series("scatter")
        assert np.allclose(scatter, scatter[0])
        assert scatter[0] > 0

    def test_totals_match_vm(self, traced_vm):
        vm, trace = traced_vm
        totals = trace.totals()
        breakdown = vm.phase_breakdown()
        assert totals["scatter"] == pytest.approx(breakdown["scatter"])
        assert totals["push"] == pytest.approx(breakdown["push"])

    def test_phases_sorted(self, traced_vm):
        _, trace = traced_vm
        assert trace.phases == ["push", "scatter"]

    def test_unseen_phase_series_zero(self, traced_vm):
        _, trace = traced_vm
        assert trace.series("gather").sum() == 0


class TestRender:
    def test_render_contains_glyphs(self, traced_vm):
        _, trace = traced_vm
        out = trace.render(width=10)
        assert "S=scatter" in out and "P=push" in out
        assert "S" in out.splitlines()[-2] or "P" in out.splitlines()[-2]

    def test_render_empty_raises(self):
        vm = VirtualMachine(2)
        with pytest.raises(ValueError):
            PhaseTrace(vm).render()

    def test_unknown_phase_gets_x_glyph(self):
        vm = VirtualMachine(2)
        trace = PhaseTrace(vm)
        with vm.phase("mystery"):
            vm.charge_ops("push", 10)
        trace.snapshot()
        out = trace.render()
        assert "X=mystery" in out

    def test_migration_glyph(self):
        vm = VirtualMachine(2)
        trace = PhaseTrace(vm)
        with vm.phase("migration"):
            vm.charge_ops("index", 10)
        trace.snapshot()
        assert "M=migration" in trace.render()

    def test_columns_sum_to_bar_height(self):
        """Largest-remainder apportionment: every non-empty column stacks
        exactly bar_height glyphs — no blank rows from rounding loss."""
        vm = VirtualMachine(2)
        trace = PhaseTrace(vm)
        # Three phases with shares 1/3 each: naive per-phase rounding gives
        # 3+3+3 = 9 of 10 glyphs, leaving a hole at the top of the bar.
        for _ in range(4):
            for phase in ("scatter", "push", "gather"):
                with vm.phase(phase):
                    vm.charge_ops("push", 10)
            trace.snapshot()
        out = trace.render(width=4)
        bar_lines = [line[1:] for line in out.splitlines()[2:-1]]  # strip axis
        assert len(bar_lines) == 10
        for col in range(len(bar_lines[0])):
            glyphs = [line[col] for line in bar_lines]
            assert " " not in glyphs, f"column {col} lost glyphs to rounding"

    def test_render_with_simulation(self):
        """Trace a real mini-run end to end."""
        from repro.pic import Simulation, SimulationConfig

        sim = Simulation(SimulationConfig(nx=16, ny=16, nparticles=512, p=4, seed=0))
        trace = PhaseTrace(sim.vm)
        for _ in range(5):
            sim.pic.step()
            trace.snapshot()
        out = trace.render()
        for phase in ("scatter", "field", "gather", "push"):
            assert phase in out
