"""Tests for the high-level Simulation driver."""

import numpy as np
import pytest

from repro.core import DynamicSARPolicy
from repro.pic import Simulation, SimulationConfig


def small_config(**kwargs):
    defaults = dict(nx=16, ny=16, nparticles=1024, p=4, seed=0)
    defaults.update(kwargs)
    return SimulationConfig(**defaults)


class TestConfig:
    def test_defaults_valid(self):
        SimulationConfig()

    def test_unknown_distribution(self):
        with pytest.raises(ValueError, match="distribution"):
            small_config(distribution="fractal")

    def test_unknown_partitioning(self):
        with pytest.raises(ValueError, match="partitioning"):
            small_config(partitioning="diagonal")

    def test_too_few_particles(self):
        with pytest.raises(ValueError, match="one particle per rank"):
            small_config(nparticles=2, p=4)


class TestRun:
    def test_records_per_iteration(self):
        sim = Simulation(small_config())
        result = sim.run(10)
        assert len(result.records) == 10
        assert result.iteration_times.shape == (10,)
        assert np.all(result.iteration_times > 0)

    def test_total_time_is_sum_plus_redistribution(self):
        sim = Simulation(small_config(policy="periodic:3"))
        result = sim.run(9)
        reconstructed = result.iteration_times.sum() + result.redistribution_time
        assert result.total_time == pytest.approx(reconstructed, rel=1e-9)

    def test_overhead_nonnegative(self):
        result = Simulation(small_config()).run(5)
        assert result.overhead >= 0
        assert result.computation_time > 0

    def test_zero_iterations(self):
        result = Simulation(small_config()).run(0)
        assert result.records == [] and result.total_time == 0.0

    def test_deterministic(self):
        a = Simulation(small_config(distribution="irregular")).run(10)
        b = Simulation(small_config(distribution="irregular")).run(10)
        assert np.array_equal(a.iteration_times, b.iteration_times)
        assert np.array_equal(a.scatter_max_bytes, b.scatter_max_bytes)

    def test_setup_excluded_from_total(self):
        sim = Simulation(small_config())
        assert sim.vm.elapsed() == 0.0  # clock reset after setup distribution
        assert sim._setup_cost > 0


class TestPolicyIntegration:
    def test_static_never_redistributes(self):
        result = Simulation(small_config(policy="static")).run(20)
        assert result.n_redistributions == 0

    def test_periodic_counts(self):
        result = Simulation(small_config(policy="periodic:5")).run(20)
        assert result.n_redistributions == 4
        fired = [r.iteration for r in result.records if r.redistributed]
        assert fired == [4, 9, 14, 19]

    def test_dynamic_seeded_with_setup_cost(self):
        sim = Simulation(small_config(policy="dynamic"))
        assert isinstance(sim.policy, DynamicSARPolicy)
        assert sim.policy.redistribution_cost == pytest.approx(sim._setup_cost)

    def test_dynamic_redistributes_under_drift(self):
        cfg = small_config(
            policy="dynamic", distribution="irregular", nparticles=4096, vth=0.3
        )
        result = Simulation(cfg).run(60)
        assert result.n_redistributions >= 1

    def test_redistribution_cost_recorded(self):
        result = Simulation(small_config(policy="periodic:4")).run(8)
        fired = [r for r in result.records if r.redistributed]
        assert all(r.redistribution_cost > 0 for r in fired)

    def test_eulerian_ignores_policy(self):
        cfg = small_config(policy="periodic:2", movement="eulerian", partitioning="grid")
        result = Simulation(cfg).run(6)
        assert result.n_redistributions == 0


class TestPartitioningStrategies:
    def test_grid_partitioning_unbalanced_particles(self):
        cfg = small_config(
            partitioning="grid",
            movement="eulerian",
            distribution="irregular",
            nx=32,
            ny=32,
            p=16,
            nparticles=8192,
        )
        sim = Simulation(cfg)
        counts = np.array([p.n for p in sim.pic.particles])
        assert counts.max() > 2 * counts.mean()

    def test_particle_partitioning_unbalanced_cells(self):
        cfg = small_config(
            partitioning="particle",
            distribution="irregular",
            nx=32,
            ny=32,
            p=16,
            nparticles=8192,
        )
        sim = Simulation(cfg)
        cell_counts = sim.decomp.cell_counts()
        assert cell_counts.max() > 2 * cell_counts.mean()
        particle_counts = np.array([p.n for p in sim.pic.particles])
        assert particle_counts.max() - particle_counts.min() <= 1

    def test_independent_both_balanced(self):
        cfg = small_config(partitioning="independent", distribution="irregular")
        sim = Simulation(cfg)
        assert sim.decomp.max_cell_imbalance() < 1.05
        counts = np.array([p.n for p in sim.pic.particles])
        assert counts.max() - counts.min() <= 1


class TestAdaptivePartitioning:
    def test_requires_eulerian(self):
        with pytest.raises(ValueError, match="eulerian"):
            small_config(partitioning="adaptive", movement="lagrangian")

    def test_rebalances_under_policy(self):
        cfg = small_config(
            partitioning="adaptive",
            movement="eulerian",
            distribution="irregular",
            policy="periodic:4",
            nparticles=2048,
        )
        result = Simulation(cfg).run(12)
        assert result.n_redistributions == 3
        assert all(r.redistribution_cost > 0 for r in result.records if r.redistributed)

    def test_keeps_particle_balance(self):
        cfg = small_config(
            partitioning="adaptive",
            movement="eulerian",
            distribution="irregular",
            policy="periodic:5",
            nx=32,
            ny=32,
            p=8,
            nparticles=8192,
        )
        sim = Simulation(cfg)
        sim.run(20)
        counts = np.array([p.n for p in sim.pic.particles], dtype=float)
        assert counts.max() / counts.mean() < 2.0


class TestModernKernel:
    def test_runs_with_policies(self):
        cfg = small_config(kernel="modern", policy="periodic:3", distribution="irregular")
        result = Simulation(cfg).run(9)
        assert result.n_redistributions == 3
        assert result.total_time > 0

    def test_gauss_preserved_across_redistributions(self):
        cfg = small_config(
            kernel="modern", policy="periodic:3", distribution="irregular", nparticles=2048
        )
        sim = Simulation(cfg)
        sim.run(9)
        assert sim.pic.gauss_error() < 1e-11

    def test_modern_rejects_eulerian(self):
        with pytest.raises(ValueError, match="modern kernel"):
            small_config(kernel="modern", movement="eulerian")

    def test_modern_rejects_electrostatic(self):
        with pytest.raises(ValueError, match="its own"):
            small_config(kernel="modern", field_solver="electrostatic")

    def test_unknown_kernel(self):
        with pytest.raises(ValueError, match="kernel"):
            small_config(kernel="quantum")


class TestSeriesShapes:
    def test_static_iteration_time_rises_for_irregular(self):
        cfg = small_config(
            distribution="irregular", nparticles=4096, p=8, nx=32, ny=32, vth=0.2
        )
        result = Simulation(cfg).run(40)
        times = result.iteration_times
        assert times[-5:].mean() > times[:5].mean()

    def test_redistribution_resets_traffic(self):
        cfg = small_config(
            distribution="irregular",
            nparticles=4096,
            p=8,
            nx=32,
            ny=32,
            vth=0.2,
            policy="periodic:15",
        )
        result = Simulation(cfg).run(45)
        volumes = result.scatter_max_bytes.astype(float)
        # traffic right after each redistribution is lower than right before
        for r in result.records:
            if r.redistributed and r.iteration + 1 < len(volumes):
                assert volumes[r.iteration + 1] <= volumes[r.iteration]
