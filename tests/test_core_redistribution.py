"""Tests for the redistribution driver."""

import numpy as np
import pytest

from repro.core import ParticlePartitioner, Redistributor
from repro.machine import MachineModel, VirtualMachine
from repro.mesh import Grid2D
from repro.particles import gaussian_blob, uniform_plasma
from repro.pic.push import boris_push


@pytest.fixture
def setup(grid):
    vm = VirtualMachine(4, MachineModel.cm5())
    partitioner = ParticlePartitioner(grid, "hilbert")
    redis = Redistributor(partitioner, nbuckets=8)
    particles = uniform_plasma(grid, 800, vth=0.3, rng=0)
    local = partitioner.initial_partition(particles, 4)
    return vm, partitioner, redis, local


def drift(grid, local, steps=3):
    """Move particles ballistically so keys change."""
    e = np.zeros((3, 0))
    for parts in local:
        ef = np.zeros((3, parts.n))
        bf = np.zeros((3, parts.n))
        for _ in range(steps):
            boris_push(grid, parts, ef, bf, dt=1.0)


class TestInitialize:
    def test_produces_balanced_sorted_ranks(self, grid, setup):
        vm, partitioner, redis, local = setup
        result = redis.initialize(vm, local)
        counts = [p.n for p in result.particles]
        assert max(counts) - min(counts) <= 1
        assert result.cost > 0

    def test_redistribute_requires_initialize(self, grid, setup):
        vm, partitioner, redis, local = setup
        with pytest.raises(ValueError, match="initialize"):
            redis.redistribute(vm, local)


class TestRedistribute:
    def test_restores_sorted_balanced_state(self, grid, setup):
        vm, partitioner, redis, local = setup
        local = redis.initialize(vm, local).particles
        drift(grid, local)
        result = redis.redistribute(vm, local)
        counts = [p.n for p in result.particles]
        assert max(counts) - min(counts) <= 1
        prev_max = -1
        for parts in result.particles:
            keys = partitioner.particle_keys(parts)
            assert np.all(np.diff(keys) >= 0)
            if keys.size:
                assert keys[0] >= prev_max
                prev_max = keys[-1]

    def test_no_particles_lost(self, grid, setup):
        vm, partitioner, redis, local = setup
        local = redis.initialize(vm, local).particles
        drift(grid, local)
        result = redis.redistribute(vm, local)
        ids = np.sort(np.concatenate([p.ids for p in result.particles]))
        assert np.array_equal(ids, np.arange(800))

    def test_attributes_preserved(self, grid, setup):
        """Momenta travel intact with their particles."""
        vm, partitioner, redis, local = setup
        local = redis.initialize(vm, local).particles
        by_id = {}
        for parts in local:
            for i in range(parts.n):
                by_id[int(parts.ids[i])] = (parts.ux[i], parts.uy[i])
        drift(grid, local, steps=1)
        result = redis.redistribute(vm, local)
        for parts in result.particles:
            for i in range(parts.n):
                ux, uy = by_id[int(parts.ids[i])]
                assert parts.ux[i] == pytest.approx(ux)
                assert parts.uy[i] == pytest.approx(uy)

    def test_cost_measured(self, grid, setup):
        vm, partitioner, redis, local = setup
        local = redis.initialize(vm, local).particles
        drift(grid, local)
        result = redis.redistribute(vm, local)
        assert result.cost > 0

    def test_repeated_epochs(self, grid, setup):
        vm, partitioner, redis, local = setup
        local = redis.initialize(vm, local).particles
        for _ in range(4):
            drift(grid, local)
            local = redis.redistribute(vm, local).particles
        ids = np.sort(np.concatenate([p.ids for p in local]))
        assert np.array_equal(ids, np.arange(800))

    def test_count_change_detected(self, grid, setup):
        vm, partitioner, redis, local = setup
        local = redis.initialize(vm, local).particles
        local[0] = local[0].take(np.arange(local[0].n - 1))
        with pytest.raises(ValueError, match="count changed"):
            redis.redistribute(vm, local)

    def test_improves_alignment_for_drifted_blob(self, grid):
        """After heavy drift, redistribution must reduce the ghost-node
        count (the quantity driving scatter traffic)."""
        from repro.core.alignment import ghost_node_counts
        from repro.mesh import CurveBlockDecomposition

        vm = VirtualMachine(4, MachineModel.cm5())
        partitioner = ParticlePartitioner(grid, "hilbert")
        decomp = CurveBlockDecomposition(grid, 4, "hilbert")
        redis = Redistributor(partitioner)
        particles = gaussian_blob(grid, 1000, vth=0.5, rng=1)
        local = redis.initialize(vm, partitioner.initial_partition(particles, 4)).particles
        drift(grid, local, steps=10)
        before = ghost_node_counts(local, grid, decomp).sum()
        local = redis.redistribute(vm, local).particles
        after = ghost_node_counts(local, grid, decomp).sum()
        assert after < before


class TestFullRedistribute:
    def test_equivalent_result_to_incremental(self, grid, setup):
        vm, partitioner, redis, local = setup
        local = redis.initialize(vm, local).particles
        drift(grid, local)
        snapshot = [p.copy() for p in local]
        inc = redis.redistribute(vm, [p.copy() for p in snapshot])

        vm2 = VirtualMachine(4, MachineModel.cm5())
        redis2 = Redistributor(partitioner)
        full = redis2.full_redistribute(vm2, [p.copy() for p in snapshot])
        # Equal-key ties may fall on different sides of a rank boundary,
        # so compare per-rank key multisets and the global id multiset.
        for a, b in zip(inc.particles, full.particles):
            assert a.n == b.n
            assert np.array_equal(
                np.sort(partitioner.particle_keys(a)),
                np.sort(partitioner.particle_keys(b)),
            )
        all_inc = np.sort(np.concatenate([p.ids for p in inc.particles]))
        all_full = np.sort(np.concatenate([p.ids for p in full.particles]))
        assert np.array_equal(all_inc, all_full)
