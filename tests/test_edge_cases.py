"""Edge-case and failure-injection tests across modules."""

import numpy as np
import pytest

from repro.machine import MachineModel, VirtualMachine
from repro.mesh import CurveBlockDecomposition, Grid2D
from repro.particles import ParticleArray, two_stream, uniform_plasma
from repro.pic import ParallelPIC, SequentialPIC, Simulation, SimulationConfig


class TestEmptyParticleSets:
    def test_sequential_with_no_particles(self, grid):
        sim = SequentialPIC(grid, ParticleArray.empty(0))
        sim.run(3)
        assert sim.iteration == 3
        assert sim.fields.rho.sum() == 0

    def test_parallel_with_one_empty_rank(self, grid):
        vm = VirtualMachine(4, MachineModel.cm5())
        decomp = CurveBlockDecomposition(grid, 4)
        parts = uniform_plasma(grid, 300, rng=0)
        local = [
            parts.take(np.arange(0, 100)),
            ParticleArray.empty(0),
            parts.take(np.arange(100, 200)),
            parts.take(np.arange(200, 300)),
        ]
        pic = ParallelPIC(vm, grid, decomp, local)
        pic.step()
        assert pic.all_particles().n == 300


class TestExtremePositions:
    def test_particle_exactly_on_domain_edge(self, grid):
        parts = ParticleArray.empty(3)
        parts.x[:] = [0.0, grid.lx - 1e-12, grid.lx]  # last wraps to 0
        parts.y[:] = [0.0, grid.ly - 1e-12, 0.0]
        parts.q[:] = -1.0
        parts.m[:] = 1.0
        parts.w[:] = 1.0
        sim = SequentialPIC(grid, parts)
        sim.run(2)
        assert np.all(np.isfinite(sim.particles.x))
        assert np.all(sim.particles.x >= 0) and np.all(sim.particles.x < grid.lx)

    def test_zero_mass_particles_rejected(self, grid):
        """ParticleArray.empty leaves m = 0; pushing such particles must
        raise instead of silently producing NaNs."""
        parts = ParticleArray.empty(2)
        parts.q[:] = -1.0
        parts.w[:] = 1.0  # mass left at 0
        sim = SequentialPIC(grid, parts)
        with pytest.raises(ValueError, match="positive particle masses"):
            sim.step()

    def test_cell_lookup_at_exact_boundaries(self, grid):
        ids = grid.cell_id_of_positions(
            np.array([0.0, grid.lx, -grid.lx]), np.array([0.0, 0.0, 0.0])
        )
        assert ids.tolist() == [0, 0, 0]


class TestDegenerateMachines:
    def test_two_rank_machine(self):
        grid = Grid2D(8, 4)
        cfg = SimulationConfig(nx=8, ny=4, nparticles=64, p=2, seed=0)
        result = Simulation(cfg).run(3)
        assert result.total_time > 0

    def test_ranks_equal_cells(self):
        grid = Grid2D(4, 2)
        decomp = CurveBlockDecomposition(grid, 8)  # one cell per rank
        assert decomp.cell_counts().tolist() == [1] * 8


class TestDistributionConstraints:
    def test_two_stream_simulation_rejects_odd_count(self):
        with pytest.raises(ValueError, match="even"):
            Simulation(SimulationConfig(nx=16, ny=16, nparticles=513, p=4,
                                        distribution="two_stream", seed=0))

    def test_ring_distribution_simulation_runs(self):
        cfg = SimulationConfig(nx=16, ny=16, nparticles=512, p=4,
                               distribution="ring", seed=0)
        result = Simulation(cfg).run(3)
        assert len(result.records) == 3


class TestNumericalRobustness:
    def test_no_nans_after_long_run(self):
        cfg = SimulationConfig(nx=32, ny=16, nparticles=2048, p=8,
                               distribution="irregular", policy="dynamic",
                               seed=1, vth=0.2)
        sim = Simulation(cfg)
        sim.run(60)
        parts = sim.pic.all_particles()
        assert np.all(np.isfinite(parts.x)) and np.all(np.isfinite(parts.ux))
        assert np.all(np.isfinite(sim.pic.fields.ez))

    def test_extreme_thermal_velocity_stays_subluminal(self, grid):
        parts = uniform_plasma(grid, 256, vth=5.0, rng=2)  # relativistic
        sim = SequentialPIC(grid, parts)
        sim.run(10)
        v = np.sqrt(sim.particles.ux**2 + sim.particles.uy**2) / sim.particles.gamma()
        assert v.max() < 1.0
