"""Differential test: incremental redistribution vs from-scratch sort.

The paper's whole premise (Figure 12) is that the bucket incremental
sort is a *cheaper implementation of the same function* as the
from-scratch sample sort.  These tests drive both paths over randomized
multi-epoch drifts and require the outputs to agree exactly: per-rank
sorted order, rebuilt bucket boundaries, and rank assignment.

Two levels are covered:

* ``bucket_incremental_sort`` + ``order_maintaining_balance`` on unique
  integer keys, compared row-for-row against a plain global
  ``argsort`` + balanced split (unique keys make the reference unique,
  so the match must be exact);
* ``Redistributor.redistribute`` on real particles, compared against the
  from-scratch ``ParticlePartitioner.distribute`` on copies of the same
  drifted sets (duplicate cell keys allow tied particles to permute, so
  the comparison canonicalizes rows by ``(key, id)``).
"""

import numpy as np
import pytest

from repro.core import ParticlePartitioner, Redistributor
from repro.core.incremental_sort import BucketState, bucket_incremental_sort
from repro.core.load_balance import order_maintaining_balance
from repro.machine import MachineModel, VirtualMachine
from repro.mesh import Grid2D
from repro.mesh.decomposition import balanced_splits
from repro.particles import uniform_plasma


def _build_states(keys, payloads, nbuckets):
    return [BucketState.build(k, m, nbuckets) for k, m in zip(keys, payloads)]


def _reference_sort(keys, payloads, p):
    """From-scratch reference: global stable sort + balanced split."""
    all_keys = np.concatenate(keys)
    all_pay = np.concatenate(payloads)
    order = np.argsort(all_keys, kind="stable")
    all_keys = all_keys.take(order)
    all_pay = all_pay.take(order, axis=0)
    bounds = balanced_splits(all_keys.shape[0], p)
    return (
        [all_keys[bounds[r] : bounds[r + 1]] for r in range(p)],
        [all_pay[bounds[r] : bounds[r + 1]] for r in range(p)],
    )


def _incremental_epoch(vm, states, new_keys, nbuckets):
    keys_out, payloads_out, stats = bucket_incremental_sort(vm, states, new_keys)
    keys_bal, payloads_bal = order_maintaining_balance(vm, keys_out, payloads_out)
    return keys_bal, payloads_bal, stats


class TestKeyLevelDifferential:
    """Unique keys: the reference is unique, so equality must be exact."""

    @pytest.mark.parametrize("p", [2, 3, 5])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_multi_epoch_random_drift(self, p, seed):
        rng = np.random.default_rng(seed)
        n = 40 * p
        nbuckets = 4
        vm = VirtualMachine(p, MachineModel.cm5())

        # Epoch 0: a sorted balanced distribution of a random permutation
        # of the key universe.
        universe = np.sort(rng.choice(10 * n, size=n, replace=False)).astype(np.int64)
        bounds = balanced_splits(n, p)
        keys = [universe[bounds[r] : bounds[r + 1]] for r in range(p)]
        ids = np.arange(n, dtype=np.float64).reshape(-1, 1)
        payloads = [ids[bounds[r] : bounds[r + 1]] for r in range(p)]
        states = _build_states(keys, payloads, nbuckets)

        for _ in range(5):
            # Drift: permute a random subset of the key values, keeping
            # them unique (each element keeps its payload row).
            flat = np.concatenate([s.keys for s in states])
            moved = rng.random(n) < 0.3
            shuffled = flat.copy()
            shuffled[moved] = rng.permutation(flat[moved])
            offs = np.concatenate([[0], np.cumsum([s.n for s in states])])
            new_keys = [shuffled[offs[r] : offs[r + 1]] for r in range(p)]

            ref_keys, ref_pay = _reference_sort(
                new_keys, [s.payload for s in states], p
            )
            out_keys, out_pay, _ = _incremental_epoch(vm, states, new_keys, nbuckets)

            for r in range(p):
                np.testing.assert_array_equal(out_keys[r], ref_keys[r])
                np.testing.assert_array_equal(out_pay[r], ref_pay[r])
                # Rebuilt bucket boundaries match a from-scratch build.
                got = BucketState.build(out_keys[r], out_pay[r], nbuckets)
                want = BucketState.build(ref_keys[r], ref_pay[r], nbuckets)
                np.testing.assert_array_equal(got.bucket_offsets, want.bucket_offsets)
                np.testing.assert_array_equal(got.bucket_lows, want.bucket_lows)
                np.testing.assert_array_equal(got.bucket_highs, want.bucket_highs)
            states = _build_states(out_keys, out_pay, nbuckets)

    @pytest.mark.parametrize("p", [2, 4])
    def test_no_movement_epoch(self, p):
        """Identical keys: nothing crosses a rank, output == input."""
        n = 24 * p
        vm = VirtualMachine(p, MachineModel.cm5())
        universe = np.arange(0, 2 * n, 2, dtype=np.int64)
        bounds = balanced_splits(n, p)
        keys = [universe[bounds[r] : bounds[r + 1]] for r in range(p)]
        payloads = [np.arange(n, dtype=np.float64).reshape(-1, 1)[bounds[r] : bounds[r + 1]] for r in range(p)]
        states = _build_states(keys, payloads, 3)

        out_keys, out_pay, stats = _incremental_epoch(vm, states, keys, 3)
        assert stats.moved_rank == 0
        assert stats.moved_bucket == 0
        assert stats.same_bucket == n
        for r in range(p):
            np.testing.assert_array_equal(out_keys[r], keys[r])
            np.testing.assert_array_equal(out_pay[r], payloads[r])

    @pytest.mark.parametrize("p", [2, 3, 4])
    def test_all_off_rank_epoch(self, p):
        """Rotate every rank's keys to the next rank: 100% off-rank
        traffic must still reproduce the from-scratch sort."""
        n = 16 * p
        vm = VirtualMachine(p, MachineModel.cm5())
        universe = np.arange(n, dtype=np.int64)
        bounds = balanced_splits(n, p)
        keys = [universe[bounds[r] : bounds[r + 1]] for r in range(p)]
        payloads = [100.0 + universe.astype(np.float64).reshape(-1, 1)[bounds[r] : bounds[r + 1]] for r in range(p)]
        states = _build_states(keys, payloads, 4)

        new_keys = [keys[(r + 1) % p] for r in range(p)]
        ref_keys, ref_pay = _reference_sort(new_keys, payloads, p)
        out_keys, out_pay, stats = _incremental_epoch(vm, states, new_keys, 4)
        assert stats.moved_rank == n
        assert stats.same_bucket == 0
        for r in range(p):
            np.testing.assert_array_equal(out_keys[r], ref_keys[r])
            np.testing.assert_array_equal(out_pay[r], ref_pay[r])


class TestRedistributorDifferential:
    """Particle-level: incremental vs from-scratch on the same drifts."""

    @staticmethod
    def _canonical(partitioner, particles):
        """Global matrix sorted by (key, id) — the unique canonical form
        shared by every correct sorted-balanced distribution."""
        rows = []
        for parts in particles:
            keys = partitioner.particle_keys(parts)
            mat = parts.to_matrix()
            rows.append((keys, mat))
        keys = np.concatenate([k for k, _ in rows])
        mat = np.concatenate([m for _, m in rows])
        ids = np.round(mat[:, -1]).astype(np.int64)
        order = np.lexsort((ids, keys))
        return keys.take(order), mat.take(order, axis=0)

    @pytest.mark.parametrize("p", [2, 4])
    @pytest.mark.parametrize("scheme", ["hilbert", "rowmajor"])
    def test_multi_epoch_drift_matches_full(self, p, scheme):
        rng = np.random.default_rng(11)
        grid = Grid2D(16, 12)
        partitioner = ParticlePartitioner(grid, scheme)
        particles = uniform_plasma(grid, 60 * p, rng=5)
        local = partitioner.initial_partition(particles, p)

        vm = VirtualMachine(p, MachineModel.cm5())
        redist = Redistributor(partitioner, nbuckets=8)
        res = redist.initialize(vm, local)
        current = res.particles

        for _ in range(4):
            # Random drift applied identically to both pipelines.
            for parts in current:
                parts.x, parts.y = grid.wrap_positions(
                    parts.x + rng.normal(0, 1.5, parts.n),
                    parts.y + rng.normal(0, 1.5, parts.n),
                )
            snapshot = [parts.copy() for parts in current]

            inc = redist.redistribute(vm, current)
            vm_full = VirtualMachine(p, MachineModel.cm5())
            full = partitioner.distribute(vm_full, snapshot)

            # Rank assignment: same per-rank counts and per-rank sorted
            # key sequences (forced identical up to key ties).
            inc_counts = [parts.n for parts in inc.particles]
            full_counts = [parts.n for parts in full]
            assert inc_counts == full_counts
            for r in range(p):
                np.testing.assert_array_equal(
                    partitioner.particle_keys(inc.particles[r]),
                    partitioner.particle_keys(full[r]),
                )
            # Full contents agree after canonicalizing key ties.
            ik, im = self._canonical(partitioner, inc.particles)
            fk, fm = self._canonical(partitioner, full)
            np.testing.assert_array_equal(ik, fk)
            np.testing.assert_array_equal(im, fm)
            current = inc.particles
