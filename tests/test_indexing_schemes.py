"""Tests for snake / row-major / Morton schemes and the registry."""

import numpy as np
import pytest

from repro.indexing import (
    HilbertIndexing,
    IndexingScheme,
    MortonIndexing,
    RowMajorIndexing,
    SnakeIndexing,
    available_schemes,
    get_scheme,
    morton_encode_2d,
    register_scheme,
)


class TestRowMajor:
    def test_keys(self):
        scheme = RowMajorIndexing()
        keys = scheme.keys(np.array([0, 1, 0]), np.array([0, 0, 1]), 4, 4)
        assert np.array_equal(keys, [0, 1, 4])

    def test_ordering_identity(self):
        assert np.array_equal(RowMajorIndexing().ordering(5, 3), np.arange(15))


class TestSnake:
    def test_even_rows_forward(self):
        scheme = SnakeIndexing()
        keys = scheme.keys(np.arange(4), np.zeros(4, dtype=int), 4, 2)
        assert np.array_equal(keys, [0, 1, 2, 3])

    def test_odd_rows_reversed(self):
        scheme = SnakeIndexing()
        keys = scheme.keys(np.arange(4), np.ones(4, dtype=int), 4, 2)
        assert np.array_equal(keys, [7, 6, 5, 4])

    def test_bijection(self):
        scheme = SnakeIndexing()
        iy, ix = np.divmod(np.arange(6 * 7), 7)
        keys = scheme.keys(ix, iy, 7, 6)
        assert np.array_equal(np.sort(keys), np.arange(42))

    def test_continuous_walk(self):
        """The snake curve, like Hilbert, has unit steps — its weakness is
        aspect ratio, not continuity."""
        scheme = SnakeIndexing()
        order = scheme.ordering(6, 4)
        ys, xs = np.divmod(order, 6)
        steps = np.abs(np.diff(xs)) + np.abs(np.diff(ys))
        assert np.all(steps == 1)


class TestMorton:
    def test_encode_known(self):
        # (x=1, y=0) -> 1 ; (0, 1) -> 2 ; (1, 1) -> 3 ; (2, 0) -> 4
        assert np.array_equal(
            morton_encode_2d(np.array([1, 0, 1, 2]), np.array([0, 1, 1, 0])),
            [1, 2, 3, 4],
        )

    def test_bijection(self):
        iy, ix = np.divmod(np.arange(16 * 16), 16)
        keys = MortonIndexing().keys(ix, iy, 16, 16)
        assert np.unique(keys).size == 256

    def test_range_check(self):
        with pytest.raises(ValueError):
            morton_encode_2d(np.array([-1]), np.array([0]))


class TestBaseValidation:
    @pytest.mark.parametrize("scheme", [HilbertIndexing(), SnakeIndexing(), RowMajorIndexing(), MortonIndexing()])
    def test_out_of_range_raises(self, scheme):
        with pytest.raises(ValueError, match="out of range"):
            scheme.keys(np.array([8]), np.array([0]), 8, 8)

    def test_empty_input_ok(self):
        keys = HilbertIndexing().keys(np.array([], dtype=int), np.array([], dtype=int), 4, 4)
        assert keys.size == 0


class TestRegistry:
    def test_known_schemes_present(self):
        names = available_schemes()
        for expect in ("hilbert", "snake", "rowmajor", "morton"):
            assert expect in names

    def test_get_by_name(self):
        assert isinstance(get_scheme("hilbert"), HilbertIndexing)
        assert isinstance(get_scheme("snake"), SnakeIndexing)

    def test_instance_passthrough(self):
        scheme = SnakeIndexing()
        assert get_scheme(scheme) is scheme

    def test_unknown_name(self):
        with pytest.raises(KeyError, match="unknown indexing scheme"):
            get_scheme("peano")

    def test_register_custom(self):
        class Diagonal(IndexingScheme):
            name = "diagonal-test"

            def keys(self, ix, iy, nx, ny):
                ix, iy = self._validate(ix, iy, nx, ny)
                return (ix + iy) * np.int64(max(nx, ny)) + ix

        register_scheme(Diagonal)
        assert isinstance(get_scheme("diagonal-test"), Diagonal)

    def test_register_rejects_non_scheme(self):
        with pytest.raises(TypeError):
            register_scheme(int)

    def test_register_rejects_default_name(self):
        class Nameless(IndexingScheme):
            def keys(self, ix, iy, nx, ny):  # pragma: no cover
                return np.zeros_like(ix)

        with pytest.raises(ValueError, match="non-default"):
            register_scheme(Nameless)


class TestSubdomainQuality:
    """The structural claim of paper §6.3: equal curve runs have smaller
    bounding boxes under Hilbert than under snake ordering."""

    @staticmethod
    def _max_bbox_aspect(scheme_name, nx, ny, p):
        order = get_scheme(scheme_name).ordering(nx, ny)
        chunk = (nx * ny) // p
        worst = 0.0
        for r in range(p):
            cells = order[r * chunk : (r + 1) * chunk]
            ys, xs = np.divmod(cells, nx)
            w = xs.max() - xs.min() + 1
            h = ys.max() - ys.min() + 1
            worst = max(worst, max(w / h, h / w))
        return worst

    def test_hilbert_subdomains_squarer_than_snake(self):
        hil = self._max_bbox_aspect("hilbert", 32, 32, 16)
        snk = self._max_bbox_aspect("snake", 32, 32, 16)
        assert hil < snk

    def test_hilbert_perimeter_smaller(self):
        """Total subdomain perimeter (comm proxy) lower for Hilbert."""

        def total_perimeter(scheme_name, nx, ny, p):
            scheme = get_scheme(scheme_name)
            pos = scheme.positions(nx, ny)
            chunk = (nx * ny) // p
            owner = pos // chunk
            grid_owner = owner.reshape(ny, nx)
            horiz = grid_owner != np.roll(grid_owner, 1, axis=1)
            vert = grid_owner != np.roll(grid_owner, 1, axis=0)
            return int(horiz.sum() + vert.sum())

        assert total_perimeter("hilbert", 32, 32, 16) < total_perimeter("snake", 32, 32, 16)
