"""Chaos suite for the job service — the acceptance scenario.

A 12-job sweep runs under the supervised scheduler with injected
process-level faults (SIGKILLed workers, one hung worker), one
virtual-machine fault plan (rank kill recovered in-run), and one
corrupted cache entry.  The batch must complete with every job's
``final_state_summary`` matching a fault-free single-process run at
atol=1e-12 (bit-identical for jobs without VM faults), the report must
account for every retry / timeout / quarantine, and a second identical
submission must be served entirely from cache — bit-identical, in
under 1% of the cold wall time.
"""

import json
import math
import time

import pytest

from repro.pic.simulation import Simulation, config_from_dict
from repro.service import JobSpec, ResultCache, Scheduler
from repro.service.worker import scratch_checkpoint

BASE = dict(nx=16, ny=8, nparticles=256, p=4)
ITERATIONS = 6


def _sweep_jobs():
    """The 12-job chaos sweep: 8 clean, 2 crash, 1 hang, 1 VM fault."""
    jobs = []
    for seed in range(8):
        jobs.append(
            JobSpec(
                config=dict(BASE, seed=seed),
                iterations=ITERATIONS,
                name=f"clean{seed}",
            )
        )
    for seed, at in ((8, 3), (9, 4)):
        jobs.append(
            JobSpec(
                config=dict(BASE, seed=seed),
                iterations=ITERATIONS,
                name=f"crash{seed}",
                chaos={"kind": "crash", "at_iteration": at, "attempts": [0]},
            )
        )
    jobs.append(
        JobSpec(
            config=dict(BASE, seed=10),
            iterations=ITERATIONS,
            name="hang10",
            chaos={"kind": "hang", "at_iteration": 2, "attempts": [0]},
        )
    )
    # a VM-level rank kill, recovered in-run from the worker's scratch
    # checkpoint (checkpoint_every=2 guarantees one exists before it)
    jobs.append(
        JobSpec(
            config=dict(BASE, seed=11),
            iterations=ITERATIONS,
            name="vmfault11",
            fault_plan={
                "detect_timeout": 0.5,
                "events": [{"kind": "kill", "rank": 1, "iteration": 3}],
            },
        )
    )
    assert len(jobs) == 12
    return jobs


def _reference_final_state(spec: JobSpec) -> dict:
    """Fault-free single-process run of the job's config."""
    sim = Simulation(config_from_dict(spec.config))
    return sim.run(spec.iterations).to_dict()["final_state"]


@pytest.fixture(scope="module")
def chaos_batch(tmp_path_factory):
    """Run the cold chaos batch once; several tests assert against it."""
    root = tmp_path_factory.mktemp("chaos")
    jobs = _sweep_jobs()
    scheduler = Scheduler(
        workers=3,
        cache=root / "cache",
        workdir=root / "work",
        retries=2,
        heartbeat_timeout=2.0,
        checkpoint_every=2,
    )
    t0 = time.monotonic()
    report = scheduler.run(jobs)
    cold_wall = time.monotonic() - t0
    return {
        "root": root,
        "jobs": jobs,
        "scheduler": scheduler,
        "report": report,
        "cold_wall": cold_wall,
    }


class TestChaosBatch:
    def test_every_job_completes(self, chaos_batch):
        report = chaos_batch["report"]
        assert report["ok"], report["counters"]
        assert report["counters"]["completed"] == 12
        assert report["counters"]["failed"] == 0

    def test_final_states_match_fault_free_runs(self, chaos_batch):
        by_name = {r["name"]: r for r in chaos_batch["report"]["jobs"]}
        for spec in chaos_batch["jobs"]:
            ref = _reference_final_state(spec)
            got = by_name[spec.name]["final_state"]
            if spec.fault_plan is None:
                # exact-resume contract: chaos never perturbs the bits
                assert json.dumps(got, sort_keys=True) == json.dumps(
                    ref, sort_keys=True
                ), spec.name
            else:
                # VM-fault recovery contract (DESIGN.md §5.3): the
                # recovered run matches fault-free at atol=1e-12
                for key, want in ref.items():
                    if isinstance(want, float):
                        assert math.isclose(
                            got[key], want, rel_tol=0.0, abs_tol=1e-12
                        ), (spec.name, key)
                    else:
                        assert got[key] == want, (spec.name, key)

    def test_faults_are_visible_in_the_report(self, chaos_batch):
        report = chaos_batch["report"]
        counters = report["counters"]
        assert counters["worker_losses"] >= 2  # the two SIGKILLs
        assert counters["heartbeats_lost"] >= 1  # the hang
        assert counters["retries"] >= 3
        by_name = {r["name"]: r for r in report["jobs"]}
        for name in ("crash8", "crash9"):
            job = by_name[name]
            assert job["attempts"] >= 2
            assert any("worker died" in r["reason"] for r in job["retries"])
            assert job["resumed_from"] is not None and job["resumed_from"] >= 2
        hang = by_name["hang10"]
        assert any("no heartbeat" in r["reason"] for r in hang["retries"])
        # the VM-fault job recovered *inside* the run, not via scheduler retry
        vm = by_name["vmfault11"]
        assert vm["attempts"] == 1
        assert vm["totals"]["n_recoveries"] == 1

    def test_telemetry_accounts_for_the_chaos(self, chaos_batch):
        records = chaos_batch["scheduler"].telemetry.records
        kinds = [r["kind"] for r in records]
        assert kinds.count("worker_lost") >= 2
        assert "heartbeat_lost" in kinds
        assert kinds.count("job_retry") >= 3
        assert kinds.count("job_done") == 12

    def test_scratch_checkpoints_cleaned_up(self, chaos_batch):
        workdir = chaos_batch["root"] / "work"
        for spec in chaos_batch["jobs"]:
            assert not scratch_checkpoint(workdir, spec.key).exists()


class TestWarmResubmission:
    def test_served_from_cache_bit_identical_and_fast(self, chaos_batch):
        root = chaos_batch["root"]
        jobs = chaos_batch["jobs"]
        t0 = time.monotonic()
        warm = Scheduler(
            workers=3, cache=root / "cache", workdir=root / "work"
        ).run(jobs)
        warm_wall = time.monotonic() - t0
        assert warm["ok"]
        assert warm["counters"]["cache_hits"] == 12
        cold_by_name = {r["name"]: r for r in chaos_batch["report"]["jobs"]}
        for job in warm["jobs"]:
            assert job["cached"], job["name"]
            cold = cold_by_name[job["name"]]
            assert json.dumps(job["final_state"], sort_keys=True) == json.dumps(
                cold["final_state"], sort_keys=True
            ), job["name"]
            assert json.dumps(job["totals"], sort_keys=True) == json.dumps(
                cold["totals"], sort_keys=True
            ), job["name"]
        # the headline number: a warm batch costs < 1% of the cold one
        assert warm_wall < 0.01 * chaos_batch["cold_wall"], (
            f"warm {warm_wall:.3f}s vs cold {chaos_batch['cold_wall']:.3f}s"
        )

    def test_corrupted_entry_quarantined_then_recomputed(self, chaos_batch):
        root = chaos_batch["root"]
        jobs = chaos_batch["jobs"]
        cache = ResultCache(root / "cache")
        victim = jobs[0]
        path = cache.path_for(victim.key)
        text = path.read_text()
        # flip a digit inside the payload: digest check must catch it
        path.write_text(text.replace('"total_time":', '"total_time": 1e9 + ', 1))
        report = Scheduler(
            workers=2, cache=root / "cache", workdir=root / "work"
        ).run(jobs)
        assert report["ok"]
        assert report["counters"]["quarantined"] == 1
        assert report["counters"]["cache_hits"] == 11
        recomputed = next(r for r in report["jobs"] if r["name"] == victim.name)
        assert not recomputed["cached"]
        assert json.dumps(recomputed["final_state"], sort_keys=True) == json.dumps(
            _reference_final_state(victim), sort_keys=True
        )
        # quarantined copy kept beside the cache entry for debugging
        assert list(path.parent.glob("*.quarantined.*"))
        # and the recomputed entry is valid again
        assert cache.get(victim.key) is not None
