"""Property-based parallel-vs-sequential equivalence sweep.

Hypothesis draws random small configurations (grid shape, particle
count, rank count, indexing scheme, ghost table, decomposition kind)
and asserts that the parallel PIC reproduces the sequential reference —
the strongest single invariant in the library.
"""

import multiprocessing

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ParticlePartitioner
from repro.machine import MachineModel, VirtualMachine
from repro.mesh import (
    BlockDecomposition,
    CurveBlockDecomposition,
    Grid2D,
    ScatterDecomposition,
)
from repro.parallel_exec import shared_memory_available
from repro.particles import gaussian_blob, uniform_plasma
from repro.pic import ParallelPIC, SequentialPIC

_MULTICORE_OK = (
    "fork" in multiprocessing.get_all_start_methods() and shared_memory_available()
)


@st.composite
def configurations(draw):
    nx = draw(st.sampled_from([8, 12, 16]))
    ny = draw(st.sampled_from([8, 10, 16]))
    n = draw(st.integers(16, 400))
    p = draw(st.sampled_from([1, 2, 3, 4, 6]))
    scheme = draw(st.sampled_from(["hilbert", "snake", "rowmajor", "morton"]))
    table = draw(st.sampled_from(["hash", "direct"]))
    decomp_kind = draw(st.sampled_from(["curve", "block", "scatter"]))
    movement = draw(st.sampled_from(["lagrangian", "eulerian"]))
    engine = draw(st.sampled_from(["looped", "flat"]))
    # The multicore backend only exists for the flat engine; elsewhere
    # (and where fork/shm is unavailable) workers stays 0.
    workers = (
        draw(st.sampled_from([0, 1, 2, 4]))
        if engine == "flat" and _MULTICORE_OK
        else 0
    )
    dist = draw(st.sampled_from(["uniform", "blob"]))
    seed = draw(st.integers(0, 10**6))
    steps = draw(st.integers(1, 4))
    return (nx, ny, n, p, scheme, table, decomp_kind, movement, engine, workers,
            dist, seed, steps)


class TestEquivalenceSweep:
    @given(cfg=configurations())
    @settings(max_examples=25, deadline=None)
    def test_parallel_equals_sequential(self, cfg):
        (nx, ny, n, p, scheme, table, decomp_kind, movement, engine, workers,
         dist, seed, steps) = cfg
        grid = Grid2D(nx, ny)
        sampler = uniform_plasma if dist == "uniform" else gaussian_blob
        particles = sampler(grid, n, rng=seed)

        vm = VirtualMachine(p, MachineModel.cm5())
        if decomp_kind == "curve":
            decomp = CurveBlockDecomposition(grid, p, scheme)
        elif decomp_kind == "block":
            decomp = BlockDecomposition(grid, p)
        else:
            decomp = ScatterDecomposition(grid, p)
        local = ParticlePartitioner(grid, scheme).initial_partition(particles, p)
        pic = ParallelPIC(
            vm, grid, decomp, local, ghost_table=table, movement=movement,
            engine=engine, workers=workers,
        )
        seq = SequentialPIC(grid, particles.copy(), dt=pic.dt)
        try:
            for _ in range(steps):
                pic.step()
                seq.step()

            par = pic.all_particles()
            assert par.n == seq.particles.n
            po = np.argsort(par.ids)
            so = np.argsort(seq.particles.ids)
            np.testing.assert_allclose(par.x[po], seq.particles.x[so], atol=1e-9)
            np.testing.assert_allclose(par.y[po], seq.particles.y[so], atol=1e-9)
            np.testing.assert_allclose(par.ux[po], seq.particles.ux[so], atol=1e-9)
            np.testing.assert_allclose(pic.fields.ez, seq.fields.ez, atol=1e-9)
            np.testing.assert_allclose(pic.fields.rho, seq.fields.rho, atol=1e-9)
        finally:
            pic.close()


class TestFullMatrix:
    """Deterministic full sweep of engine x movement x scheme x ranks.

    Every combination of {looped, flat} x {lagrangian, eulerian} x
    {hilbert, snake, morton, rowmajor} x {1, 3, 4} ranks must reproduce
    the sequential reference.  Agreement is pinned at ``atol=1e-12`` —
    far below any physical scale in the run but above the ~1e-16
    summation-order noise of ``bincount`` deposition, which reorders the
    same additions the sequential code performs (true bit-equality holds
    for particle trajectories at p=1 only by accident of that ordering).
    """

    @pytest.mark.parametrize("p", [1, 3, 4])
    @pytest.mark.parametrize("scheme", ["hilbert", "snake", "morton", "rowmajor"])
    @pytest.mark.parametrize("movement", ["lagrangian", "eulerian"])
    @pytest.mark.parametrize("engine", ["looped", "flat"])
    def test_matrix(self, engine, movement, scheme, p):
        grid = Grid2D(16, 12)
        particles = uniform_plasma(grid, 300, rng=7)
        vm = VirtualMachine(p, MachineModel.cm5())
        decomp = CurveBlockDecomposition(grid, p, scheme)
        local = ParticlePartitioner(grid, scheme).initial_partition(particles, p)
        pic = ParallelPIC(vm, grid, decomp, local, movement=movement, engine=engine)
        seq = SequentialPIC(grid, particles.copy(), dt=pic.dt)
        for _ in range(3):
            pic.step()
            seq.step()

        par = pic.all_particles()
        assert par.n == seq.particles.n
        po = np.argsort(par.ids)
        so = np.argsort(seq.particles.ids)
        np.testing.assert_array_equal(par.ids[po], seq.particles.ids[so])
        for attr in ("x", "y", "ux", "uy", "uz"):
            np.testing.assert_allclose(
                getattr(par, attr)[po],
                getattr(seq.particles, attr)[so],
                atol=1e-12,
                err_msg=f"particle {attr} diverged",
            )
        for field in ("ex", "ey", "ez", "bz", "rho", "jx", "jy"):
            np.testing.assert_allclose(
                getattr(pic.fields, field),
                getattr(seq.fields, field),
                atol=1e-12,
                err_msg=f"field {field} diverged",
            )
