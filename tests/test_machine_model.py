"""Tests for the two-level machine cost model."""

import numpy as np
import pytest

from repro.machine import MachineModel


class TestPresets:
    def test_cm5_constants(self):
        model = MachineModel.cm5()
        assert model.name == "cm5"
        assert model.tau == pytest.approx(86e-6)
        assert model.delta == pytest.approx(2e-7)

    def test_modern_has_higher_compute_comm_ratio(self):
        """The paper notes the CM-5's compute/comm ratio is unusually
        small; a modern preset must have a larger tau/delta ratio."""
        cm5 = MachineModel.cm5()
        modern = MachineModel.modern()
        assert modern.tau / modern.delta > cm5.tau / cm5.delta

    def test_zero_compute_model(self):
        model = MachineModel.zero_compute()
        assert model.compute_cost("scatter", 1e6) < 1e-12
        assert model.message_cost(100) > 0


class TestValidation:
    def test_rejects_nonpositive_delta(self):
        with pytest.raises(ValueError):
            MachineModel(delta=0.0)

    def test_rejects_negative_tau(self):
        with pytest.raises(ValueError):
            MachineModel(tau=-1.0)

    def test_rejects_bad_weight(self):
        with pytest.raises(ValueError):
            MachineModel(op_weights={"scatter": 0.0})


class TestCosts:
    def test_compute_cost_linear(self):
        model = MachineModel.cm5()
        assert model.compute_cost("scatter", 200) == pytest.approx(
            2 * model.compute_cost("scatter", 100)
        )

    def test_compute_cost_unknown_category_warns_and_uses_delta(self):
        model = MachineModel.cm5()
        with pytest.warns(UserWarning, match="unknown op category 'mystery'"):
            assert model.compute_cost("mystery", 10) == pytest.approx(10 * model.delta)

    def test_compute_cost_unknown_category_strict_raises(self):
        with pytest.raises(ValueError, match="unknown op category"):
            MachineModel.cm5().compute_cost("mystery", 10, strict=True)

    def test_compute_cost_rejects_negative(self):
        with pytest.raises(ValueError):
            MachineModel.cm5().compute_cost("scatter", -1)

    def test_message_cost_startup_plus_bandwidth(self):
        model = MachineModel.cm5()
        assert model.message_cost(0, 1) == pytest.approx(model.tau)
        assert model.message_cost(1000, 1) == pytest.approx(model.tau + 1000 * model.mu)

    def test_message_cost_multiple_messages(self):
        model = MachineModel.cm5()
        assert model.message_cost(1000, 3) == pytest.approx(3 * model.tau + 1000 * model.mu)

    def test_collective_cost_log_depth(self):
        model = MachineModel.cm5()
        assert model.collective_cost(1, 100) == 0.0
        c8 = model.collective_cost(8, 0)
        c16 = model.collective_cost(16, 0)
        assert c16 == pytest.approx(c8 * 4 / 3)  # log2 16 / log2 8

    def test_collective_cost_rejects_bad_p(self):
        with pytest.raises(ValueError):
            MachineModel.cm5().collective_cost(0, 10)

    def test_frozen(self):
        with pytest.raises(Exception):
            MachineModel.cm5().tau = 1.0
