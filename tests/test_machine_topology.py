"""Tests for processor-grid topology."""

import pytest

from repro.machine import BlockTopology, best_process_grid


class TestBestProcessGrid:
    @pytest.mark.parametrize(
        "p,expected",
        [(1, (1, 1)), (4, (2, 2)), (6, (2, 3)), (12, (3, 4)), (32, (4, 8)), (64, (8, 8)), (128, (8, 16)), (7, (1, 7))],
    )
    def test_most_square_factorization(self, p, expected):
        assert best_process_grid(p) == expected

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            best_process_grid(0)


class TestBlockTopology:
    def test_coords_rank_roundtrip(self):
        topo = BlockTopology(3, 4)
        for rank in range(12):
            row, col = topo.coords(rank)
            assert topo.rank(row, col) == rank

    def test_square_ish(self):
        topo = BlockTopology.square_ish(32)
        assert topo.pr * topo.pc == 32 and topo.pr == 4

    def test_periodic_neighbors_wrap(self):
        topo = BlockTopology(2, 3, periodic=True)
        nbrs = topo.neighbors(0)  # coords (0, 0)
        assert nbrs["north"] == topo.rank(1, 0)  # wraps
        assert nbrs["west"] == topo.rank(0, 2)
        assert nbrs["east"] == topo.rank(0, 1)

    def test_open_boundary_neighbors_none(self):
        topo = BlockTopology(2, 2, periodic=False)
        nbrs = topo.neighbors(0)
        assert nbrs["north"] is None and nbrs["west"] is None
        assert nbrs["south"] == 2 and nbrs["east"] == 1

    def test_rank_out_of_range(self):
        with pytest.raises(ValueError):
            BlockTopology(2, 2).coords(4)

    def test_nonperiodic_rank_range_check(self):
        topo = BlockTopology(2, 2, periodic=False)
        with pytest.raises(ValueError):
            topo.rank(2, 0)
