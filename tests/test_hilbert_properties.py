"""Property-based invariants of the Hilbert curve transforms.

Complements the example-based ``test_indexing_hilbert.py`` with
Hypothesis-driven coverage of the three defining properties:

* **round-trip** — ``d_to_xy(xy_to_d(x, y)) == (x, y)`` (and the n-D
  Skilling transform likewise) across curve orders 1-10;
* **adjacency** — consecutive curve distances map to grid-neighbour
  cells (|dx| + |dy| == 1), the locality property the partitioner
  relies on;
* **non-power-of-two embedding** — grids embedded into the enclosing
  ``2^k`` square still get distinct, order-preserving keys.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.indexing.hilbert import (
    HilbertIndexing,
    hilbert_d_to_xy,
    hilbert_encode_nd,
    hilbert_decode_nd,
    hilbert_order_for,
    hilbert_xy_to_d,
)

ORDERS = st.integers(1, 10)


class TestRoundTrip2D:
    @given(order=ORDERS, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_xy_d_xy(self, order, data):
        n = 1 << order
        coords = st.integers(0, n - 1)
        x = np.array(data.draw(st.lists(coords, min_size=1, max_size=64)))
        y = np.array(data.draw(st.lists(coords, min_size=len(x), max_size=len(x))))
        d = hilbert_xy_to_d(order, x, y)
        assert d.dtype == np.int64
        assert d.min() >= 0 and d.max() < n * n
        x2, y2 = hilbert_d_to_xy(order, d)
        np.testing.assert_array_equal(x2, x)
        np.testing.assert_array_equal(y2, y)

    @given(order=ORDERS, data=st.data())
    @settings(max_examples=60, deadline=None)
    def test_d_xy_d(self, order, data):
        n2 = (1 << order) ** 2
        d = np.array(data.draw(st.lists(st.integers(0, n2 - 1), min_size=1, max_size=64)))
        x, y = hilbert_d_to_xy(order, d)
        np.testing.assert_array_equal(hilbert_xy_to_d(order, x, y), d)

    @given(order=st.integers(1, 6))
    @settings(max_examples=8, deadline=None)
    def test_bijection_exhaustive(self, order):
        """The curve visits every cell of the 2^k square exactly once."""
        n = 1 << order
        xx, yy = np.meshgrid(np.arange(n), np.arange(n))
        d = hilbert_xy_to_d(order, xx.ravel(), yy.ravel())
        assert np.array_equal(np.sort(d), np.arange(n * n))


class TestAdjacency:
    @given(order=st.integers(1, 10), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_consecutive_distances_are_grid_neighbors(self, order, data):
        n2 = (1 << order) ** 2
        start = data.draw(st.integers(0, max(0, n2 - 257)))
        length = data.draw(st.integers(2, min(256, n2 - start)))
        d = np.arange(start, start + length, dtype=np.int64)
        x, y = hilbert_d_to_xy(order, d)
        manhattan = np.abs(np.diff(x)) + np.abs(np.diff(y))
        np.testing.assert_array_equal(manhattan, np.ones(length - 1, dtype=np.int64))


class TestRoundTripND:
    @given(
        ndim=st.integers(1, 5),
        order=ORDERS,
        data=st.data(),
    )
    @settings(max_examples=60, deadline=None)
    def test_encode_decode(self, ndim, order, data):
        if ndim * order > 62:
            order = 62 // ndim
        n = 1 << order
        npoints = data.draw(st.integers(1, 32))
        coords = np.array(
            data.draw(
                st.lists(
                    st.lists(st.integers(0, n - 1), min_size=ndim, max_size=ndim),
                    min_size=npoints,
                    max_size=npoints,
                )
            ),
            dtype=np.int64,
        )
        d = hilbert_encode_nd(coords, order)
        assert d.min() >= 0 and d.max() < (np.int64(1) << (ndim * order))
        np.testing.assert_array_equal(hilbert_decode_nd(d, order, ndim), coords)

    @given(order=st.integers(1, 8), data=st.data())
    @settings(max_examples=40, deadline=None)
    def test_2d_nd_agrees_with_dedicated_2d(self, order, data):
        """Skilling's n-D transform and the iterative 2-D one are both
        Hilbert curves: consecutive n-D distances must also be grid
        neighbours even though the two curves differ by reflection."""
        n = 1 << order
        npoints = data.draw(st.integers(2, min(64, n * n)))
        d = np.sort(
            np.array(
                data.draw(
                    st.lists(
                        st.integers(0, n * n - 1),
                        min_size=npoints,
                        max_size=npoints,
                        unique=True,
                    )
                ),
                dtype=np.int64,
            )
        )
        coords = hilbert_decode_nd(d, order, 2)
        consecutive = np.flatnonzero(np.diff(d) == 1)
        steps = np.abs(np.diff(coords, axis=0)).sum(axis=1)
        np.testing.assert_array_equal(steps[consecutive], 1)


class TestNonPowerOfTwoEmbedding:
    @given(
        nx=st.integers(1, 40),
        ny=st.integers(1, 40),
    )
    @settings(max_examples=60, deadline=None)
    def test_keys_distinct_and_in_range(self, nx, ny):
        order = hilbert_order_for(nx, ny)
        side = 1 << order
        assert side >= max(nx, ny)
        # Minimality: one order less would not enclose the grid
        # (except at the order-1 floor).
        if order > 1:
            assert (side >> 1) < max(nx, ny)
        xx, yy = np.meshgrid(np.arange(nx), np.arange(ny))
        keys = HilbertIndexing().keys(xx.ravel(), yy.ravel(), nx, ny)
        assert len(np.unique(keys)) == nx * ny
        assert keys.min() >= 0 and keys.max() < side * side

    @given(
        nx=st.sampled_from([3, 5, 6, 7, 9, 12, 20]),
        ny=st.sampled_from([3, 5, 6, 7, 9, 12, 20]),
    )
    @settings(max_examples=30, deadline=None)
    def test_embedded_keys_match_full_curve(self, nx, ny):
        """Keys of the embedded grid are the full-curve distances
        restricted to the grid: ordering matches the enclosing curve."""
        order = hilbert_order_for(nx, ny)
        xx, yy = np.meshgrid(np.arange(nx), np.arange(ny))
        keys = HilbertIndexing().keys(xx.ravel(), yy.ravel(), nx, ny)
        np.testing.assert_array_equal(
            keys, hilbert_xy_to_d(order, xx.ravel(), yy.ravel())
        )
