"""Tests for SoA particle storage."""

import numpy as np
import pytest

from repro.particles import ParticleArray


def make_particles(n, seed=0):
    rng = np.random.default_rng(seed)
    return ParticleArray(
        x=rng.random(n),
        y=rng.random(n),
        ux=rng.normal(size=n),
        uy=rng.normal(size=n),
        uz=rng.normal(size=n),
        q=np.full(n, -1.0),
        m=np.ones(n),
        w=np.full(n, 2.0),
        ids=np.arange(n, dtype=np.int64),
    )


class TestConstruction:
    def test_empty(self):
        parts = ParticleArray.empty(5)
        assert parts.n == 5 and len(parts) == 5
        assert np.array_equal(parts.ids, np.arange(5))

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="length"):
            ParticleArray(
                np.zeros(2), np.zeros(3), np.zeros(2), np.zeros(2), np.zeros(2),
                np.zeros(2), np.zeros(2), np.zeros(2), np.zeros(2, dtype=np.int64),
            )

    def test_dtype_coercion(self):
        parts = ParticleArray(
            np.array([1]), np.array([2]), np.array([0]), np.array([0]), np.array([0]),
            np.array([-1]), np.array([1]), np.array([1]), np.array([7]),
        )
        assert parts.x.dtype == np.float64 and parts.ids.dtype == np.int64


class TestOperations:
    def test_concat(self):
        a, b = make_particles(3), make_particles(2, seed=1)
        both = ParticleArray.concat([a, b])
        assert both.n == 5
        assert np.array_equal(both.x[:3], a.x)

    def test_concat_empty_list(self):
        assert ParticleArray.concat([]).n == 0

    def test_take_indices(self):
        parts = make_particles(10)
        sub = parts.take(np.array([3, 1]))
        assert sub.n == 2 and sub.ids.tolist() == [3, 1]

    def test_take_mask(self):
        parts = make_particles(10)
        sub = parts.take(parts.ids % 2 == 0)
        assert sub.n == 5

    def test_sorted_by(self):
        parts = make_particles(10)
        out = parts.sorted_by(-parts.ids.astype(float))
        assert out.ids.tolist() == list(range(9, -1, -1))

    def test_sorted_by_wrong_length(self):
        with pytest.raises(ValueError):
            make_particles(5).sorted_by(np.arange(3))

    def test_copy_independent(self):
        parts = make_particles(4)
        dup = parts.copy()
        dup.x[0] = 99.0
        assert parts.x[0] != 99.0


class TestWireFormat:
    def test_matrix_roundtrip(self):
        parts = make_particles(16)
        back = ParticleArray.from_matrix(parts.to_matrix())
        for name in ParticleArray.__slots__:
            assert np.array_equal(getattr(back, name), getattr(parts, name)), name

    def test_matrix_shape(self):
        assert make_particles(7).to_matrix().shape == (7, 9)

    def test_from_matrix_rejects_bad_shape(self):
        with pytest.raises(ValueError):
            ParticleArray.from_matrix(np.zeros((3, 5)))

    def test_empty_roundtrip(self):
        back = ParticleArray.from_matrix(ParticleArray.empty(0).to_matrix())
        assert back.n == 0


class TestPhysics:
    def test_gamma_at_rest(self):
        parts = ParticleArray.empty(3)
        assert np.allclose(parts.gamma(), 1.0)

    def test_gamma_formula(self):
        parts = ParticleArray.empty(1)
        parts.ux[:] = 3.0
        parts.uy[:] = 4.0
        assert parts.gamma()[0] == pytest.approx(np.sqrt(26.0))

    def test_kinetic_energy_zero_at_rest(self):
        assert ParticleArray.empty(10).kinetic_energy() == 0.0

    def test_kinetic_energy_weighted(self):
        parts = ParticleArray.empty(1)
        parts.ux[:] = 1.0
        parts.w[:] = 2.0
        parts.m[:] = 1.0
        assert parts.kinetic_energy() == pytest.approx(2.0 * (np.sqrt(2.0) - 1.0))

    def test_momentum(self):
        parts = ParticleArray.empty(2)
        parts.w[:] = 1.0
        parts.m[:] = 1.0
        parts.ux[:] = [1.0, -1.0]
        assert np.allclose(parts.momentum(), [0.0, 0.0, 0.0])
