"""Tests for curve-index-based particle partitioning."""

import numpy as np
import pytest

from repro.core import ParticlePartitioner
from repro.machine import MachineModel, VirtualMachine
from repro.mesh import CurveBlockDecomposition, Grid2D
from repro.particles import ParticleArray, gaussian_blob, uniform_plasma


class TestParticleKeys:
    def test_keys_are_cell_curve_positions(self, grid):
        part = ParticlePartitioner(grid, "hilbert")
        parts = uniform_plasma(grid, 100, rng=0)
        keys = part.particle_keys(parts)
        cells = grid.cell_id_of_positions(parts.x, parts.y)
        pos = part.scheme.positions(grid.nx, grid.ny)
        assert np.array_equal(keys, pos[cells])

    def test_same_cell_same_key(self, grid):
        part = ParticlePartitioner(grid)
        a = ParticleArray.empty(2)
        a.x[:] = [3.1, 3.9]
        a.y[:] = [2.1, 2.9]
        keys = part.particle_keys(a)
        assert keys[0] == keys[1]


class TestInitialPartition:
    def test_balanced_counts(self, grid):
        part = ParticlePartitioner(grid)
        parts = gaussian_blob(grid, 1001, rng=1)
        local = part.initial_partition(parts, 4)
        counts = [lp.n for lp in local]
        assert sum(counts) == 1001
        assert max(counts) - min(counts) <= 1

    def test_rank_slices_sorted_and_ordered(self, grid):
        part = ParticlePartitioner(grid)
        parts = uniform_plasma(grid, 512, rng=2)
        local = part.initial_partition(parts, 4)
        prev_max = -1
        for lp in local:
            keys = part.particle_keys(lp)
            assert np.all(np.diff(keys) >= 0)
            if keys.size:
                assert keys[0] >= prev_max
                prev_max = keys[-1]

    def test_no_particles_lost(self, grid):
        part = ParticlePartitioner(grid)
        parts = uniform_plasma(grid, 777, rng=3)
        local = part.initial_partition(parts, 8)
        all_ids = np.sort(np.concatenate([lp.ids for lp in local]))
        assert np.array_equal(all_ids, np.arange(777))

    def test_alignment_with_mesh_decomposition(self):
        """For a near-uniform distribution, most particles land on the
        rank that owns their cell — the paper's alignment claim."""
        grid = Grid2D(32, 32)
        parts = uniform_plasma(grid, 32 * 32 * 4, rng=4)
        part = ParticlePartitioner(grid, "hilbert")
        decomp = CurveBlockDecomposition(grid, 16, "hilbert")
        local = part.initial_partition(parts, 16)
        aligned = 0
        for r, lp in enumerate(local):
            cells = grid.cell_id_of_positions(lp.x, lp.y)
            aligned += (decomp.owner_of_cells(cells) == r).sum()
        assert aligned / parts.n > 0.8


class TestDistribute:
    def test_matches_initial_partition(self, grid):
        """The runtime (sample sort) distribution must produce the same
        global order as the setup-time sequential one."""
        parts = uniform_plasma(grid, 600, rng=5)
        part = ParticlePartitioner(grid)
        vm = VirtualMachine(4, MachineModel.cm5())
        scattered = [parts.take(np.arange(r, parts.n, 4)) for r in range(4)]
        out = part.distribute(vm, scattered)
        ref = part.initial_partition(parts, 4)
        for got, want in zip(out, ref):
            assert got.n == want.n
            keys_got = np.sort(part.particle_keys(got))
            keys_want = np.sort(part.particle_keys(want))
            assert np.array_equal(keys_got, keys_want)

    def test_charges_time(self, grid):
        parts = uniform_plasma(grid, 400, rng=6)
        part = ParticlePartitioner(grid)
        vm = VirtualMachine(4, MachineModel.cm5())
        part.distribute(vm, part.initial_partition(parts, 4))
        assert vm.elapsed() > 0
