"""Tests for the virtual machine: clocks, charging, alltoallv, collectives."""

import numpy as np
import pytest

from repro.machine import MachineModel, VirtualMachine
from repro.machine.virtual import payload_nbytes


class TestConstruction:
    def test_defaults_to_cm5(self):
        vm = VirtualMachine(4)
        assert vm.model.name == "cm5"

    def test_rejects_zero_ranks(self):
        with pytest.raises(ValueError):
            VirtualMachine(0)

    def test_clocks_start_at_zero(self, vm4):
        assert vm4.elapsed() == 0.0


class TestCharging:
    def test_charge_ops_scalar_broadcast(self, vm4):
        vm4.charge_ops("scatter", 100)
        expected = vm4.model.compute_cost("scatter", 100)
        assert np.allclose(vm4.clocks, expected)
        assert np.allclose(vm4.compute_time, expected)

    def test_charge_ops_per_rank(self, vm4):
        vm4.charge_ops("push", np.array([1.0, 2.0, 3.0, 4.0]))
        assert vm4.clocks[3] == pytest.approx(4 * vm4.clocks[0])

    def test_comm_and_compute_tracked_separately(self, vm4):
        vm4.charge_compute_seconds(1.0)
        vm4.charge_comm_seconds(0.5)
        assert np.allclose(vm4.compute_time, 1.0)
        assert np.allclose(vm4.comm_time, 0.5)
        assert vm4.elapsed() == pytest.approx(1.5)

    def test_negative_charge_rejected(self, vm4):
        with pytest.raises(ValueError):
            vm4.charge_compute_seconds(-1.0)

    def test_phase_labels_costs(self, vm4):
        with vm4.phase("scatter"):
            vm4.charge_ops("scatter", 10)
        with vm4.phase("push"):
            vm4.charge_ops("push", 10)
        breakdown = vm4.phase_breakdown()
        assert set(breakdown) == {"scatter", "push"}
        assert breakdown["scatter"] > 0

    def test_nested_phases(self, vm4):
        with vm4.phase("outer"):
            with vm4.phase("inner"):
                assert vm4.current_phase == "inner"
            assert vm4.current_phase == "outer"
        assert vm4.current_phase == "default"

    def test_barrier_syncs_to_max(self, vm4):
        vm4.charge_ops("push", np.array([1.0, 5.0, 2.0, 3.0]))
        vm4.barrier()
        assert np.all(vm4.clocks == vm4.clocks[0])


class TestAlltoallv:
    def test_payload_delivery(self, vm4):
        send = [dict() for _ in range(4)]
        send[0][3] = np.arange(10.0)
        send[2][1] = np.arange(5.0)
        recv = vm4.alltoallv(send)
        assert np.array_equal(recv[3][0], np.arange(10.0))
        assert np.array_equal(recv[1][2], np.arange(5.0))
        assert recv[0] == {}

    def test_self_send_free(self, vm4):
        send = [dict() for _ in range(4)]
        send[1][1] = np.arange(100.0)
        vm4.alltoallv(send)
        assert vm4.elapsed() == 0.0
        assert vm4.stats.phase("default").total_msgs == 0

    def test_cost_formula(self):
        vm = VirtualMachine(2, MachineModel.cm5())
        payload = np.arange(100.0)  # 800 bytes
        send = [{1: payload}, {}]
        vm.alltoallv(send, sync=False)
        model = vm.model
        expected = model.tau + 800 * model.mu  # sender: one msg out
        assert vm.clocks[0] == pytest.approx(expected)
        assert vm.clocks[1] == pytest.approx(expected)  # receiver symmetric

    def test_sync_barrier_applied(self, vm4):
        send = [dict() for _ in range(4)]
        send[0][1] = np.arange(10.0)
        vm4.alltoallv(send)
        assert np.all(vm4.clocks == vm4.clocks.max())

    def test_stats_recorded_under_phase(self, vm4):
        send = [dict() for _ in range(4)]
        send[0][1] = np.zeros(4)
        with vm4.phase("scatter"):
            vm4.alltoallv(send)
        rec = vm4.stats.phase("scatter")
        assert rec.msgs_sent[0] == 1 and rec.bytes_recv[1] == 32

    def test_wrong_length_rejected(self, vm4):
        with pytest.raises(ValueError):
            vm4.alltoallv([{}])

    def test_bad_destination_rejected(self, vm4):
        with pytest.raises(ValueError):
            vm4.alltoallv([{9: np.zeros(1)}, {}, {}, {}])

    def test_tuple_payload(self, vm4):
        ids = np.arange(3, dtype=np.int64)
        vals = np.zeros((4, 3))
        send = [dict() for _ in range(4)]
        send[0][1] = (ids, vals)
        recv = vm4.alltoallv(send)
        got_ids, got_vals = recv[1][0]
        assert np.array_equal(got_ids, ids)
        assert got_vals.shape == (4, 3)


class TestCollectives:
    def test_allgather_values(self, vm4):
        values = [np.array([float(r)]) for r in range(4)]
        out = vm4.allgather(values)
        assert len(out) == 4
        for r in range(4):
            assert [v[0] for v in out[r]] == [0.0, 1.0, 2.0, 3.0]

    def test_allgather_costs_all_ranks_equally(self, vm4):
        vm4.allgather([np.zeros(10) for _ in range(4)])
        assert vm4.elapsed() > 0
        assert np.all(vm4.clocks == vm4.clocks[0])

    def test_allreduce_sum(self, vm4):
        arrays = [np.full(3, float(r)) for r in range(4)]
        out = vm4.allreduce(arrays, op="sum")
        assert np.array_equal(out[0], np.full(3, 6.0))

    def test_allreduce_max_min(self, vm4):
        arrays = [np.array([float(r), -float(r)]) for r in range(4)]
        assert np.array_equal(vm4.allreduce(arrays, op="max")[0], [3.0, 0.0])
        assert np.array_equal(vm4.allreduce(arrays, op="min")[0], [0.0, -3.0])

    def test_allreduce_result_copies_independent(self, vm4):
        out = vm4.allreduce([np.ones(2) for _ in range(4)])
        out[0][0] = 99
        assert out[1][0] == 4.0

    def test_allreduce_shape_mismatch(self, vm4):
        with pytest.raises(ValueError, match="same shape"):
            vm4.allreduce([np.ones(2), np.ones(3), np.ones(2), np.ones(2)])

    def test_allreduce_bad_op(self, vm4):
        with pytest.raises(ValueError, match="unsupported"):
            vm4.allreduce([np.ones(1)] * 4, op="prod")

    def test_allreduce_scalar(self, vm4):
        assert vm4.allreduce_scalar([1.0, 2.0, 3.0, 4.0]) == pytest.approx(10.0)


class TestCollectivesExtra:
    def test_allgather_explicit_sizes(self, vm4):
        values = [np.zeros(1) for _ in range(4)]
        vm4.allgather(values, nbytes_each=np.array([100, 200, 300, 400]))
        rec = vm4.stats.phase("default")
        assert rec.bytes_sent.tolist() == [100, 200, 300, 400]
        assert np.all(rec.bytes_recv == 1000)

    def test_phase_time_accumulates_across_calls(self, vm4):
        with vm4.phase("scatter"):
            vm4.charge_ops("scatter", 10)
        with vm4.phase("scatter"):
            vm4.charge_ops("scatter", 10)
        single = vm4.model.compute_cost("scatter", 10)
        assert vm4.phase_breakdown()["scatter"] == pytest.approx(2 * single)

    def test_elapsed_monotone(self, vm4):
        times = [vm4.elapsed()]
        vm4.charge_ops("push", 5)
        times.append(vm4.elapsed())
        vm4.allreduce_scalar([1.0] * 4)
        times.append(vm4.elapsed())
        assert times[0] < times[1] < times[2]

    def test_comm_plus_compute_equals_clock(self, vm4):
        """With bulk-synchronous equal charging, clock = compute + comm."""
        vm4.charge_ops("push", 100)  # same on every rank
        vm4.allreduce([np.zeros(4)] * 4)
        total = vm4.compute_time + vm4.comm_time
        assert np.allclose(total, vm4.clocks)


class TestPayloadNbytes:
    def test_ndarray(self):
        assert payload_nbytes(np.zeros(10)) == 80

    def test_tuple_of_arrays(self):
        assert payload_nbytes((np.zeros(2), np.zeros((3, 4)))) == 16 + 96

    def test_scalar(self):
        assert payload_nbytes(3.5) == 8

    def test_sized_object(self):
        assert payload_nbytes([1, 2, 3]) == 24

    def test_fallback(self):
        assert payload_nbytes(object()) == 64
