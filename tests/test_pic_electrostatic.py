"""Tests for the electrostatic field-solve mode (sequential + parallel)."""

import numpy as np
import pytest

from repro.core import ParticlePartitioner
from repro.machine import MachineModel, VirtualMachine
from repro.mesh import CurveBlockDecomposition, Grid2D
from repro.particles import uniform_plasma
from repro.pic import ParallelPIC, SequentialPIC


class TestSequentialElectrostatic:
    def test_b_field_stays_zero(self, grid, uniform_particles):
        sim = SequentialPIC(grid, uniform_particles, field_solver="electrostatic")
        sim.run(10)
        assert sim.fields.bx.sum() == 0 and sim.fields.bz.sum() == 0

    def test_e_field_from_charge(self, grid):
        parts = uniform_plasma(grid, 512, density=1.0, rng=0)
        sim = SequentialPIC(grid, parts, field_solver="electrostatic")
        sim.step()
        assert np.abs(sim.fields.ex).max() > 0

    def test_unknown_solver_rejected(self, grid, uniform_particles):
        with pytest.raises(ValueError, match="field_solver"):
            SequentialPIC(grid, uniform_particles, field_solver="darwin")

    def test_gauss_law_exact(self, grid):
        """The FFT solve satisfies the discrete Gauss law by construction."""
        parts = uniform_plasma(grid, 1024, density=1.0, rng=1)
        sim = SequentialPIC(grid, parts, field_solver="electrostatic")
        sim.run(5)
        # div(-grad phi) computed with the same centred stencil pair the
        # poisson solver's electric_field uses differs from the 5-point
        # laplacian; check energy stays bounded instead of exact zero.
        assert sim.fields.field_energy(grid) < 10 * abs(parts.kinetic_energy() + 1)


class TestParallelElectrostatic:
    @staticmethod
    def build(grid, particles, p=4, **kwargs):
        vm = VirtualMachine(p, MachineModel.cm5())
        decomp = CurveBlockDecomposition(grid, p, "hilbert")
        local = ParticlePartitioner(grid, "hilbert").initial_partition(particles, p)
        return vm, ParallelPIC(
            vm, grid, decomp, local, field_solver="electrostatic", **kwargs
        )

    def test_matches_sequential(self):
        grid = Grid2D(16, 16)
        particles = uniform_plasma(grid, 1024, density=1.0, rng=2)
        vm, pic = self.build(grid, particles)
        seq = SequentialPIC(grid, particles.copy(), dt=pic.dt, field_solver="electrostatic")
        for _ in range(10):
            pic.step()
            seq.step()
        par = pic.all_particles()
        po, so = np.argsort(par.ids), np.argsort(seq.particles.ids)
        np.testing.assert_allclose(par.x[po], seq.particles.x[so], atol=1e-9)
        np.testing.assert_allclose(par.ux[po], seq.particles.ux[so], atol=1e-9)
        np.testing.assert_allclose(pic.fields.ex, seq.fields.ex, atol=1e-9)

    def test_field_phase_has_global_communication(self):
        """The transpose is an all-to-all: far more field-phase messages
        than the 4-neighbour halo of the Maxwell solve."""
        grid = Grid2D(16, 16)
        particles = uniform_plasma(grid, 512, rng=3)
        vm_es, pic_es = self.build(grid, particles, p=4)
        pic_es.step()
        es_msgs = vm_es.stats.phase("field").total_msgs

        vm_em = VirtualMachine(4, MachineModel.cm5())
        decomp = CurveBlockDecomposition(grid, 4, "hilbert")
        local = ParticlePartitioner(grid, "hilbert").initial_partition(particles, 4)
        pic_em = ParallelPIC(vm_em, grid, decomp, local)
        pic_em.step()
        em_msgs = vm_em.stats.phase("field").total_msgs
        assert es_msgs > em_msgs

    def test_unknown_solver_rejected(self, grid, uniform_particles):
        vm = VirtualMachine(2)
        decomp = CurveBlockDecomposition(grid, 2)
        local = ParticlePartitioner(grid).initial_partition(uniform_particles, 2)
        with pytest.raises(ValueError, match="field_solver"):
            ParallelPIC(vm, grid, decomp, local, field_solver="spectral")

    def test_transpose_volume_scales_with_mesh_not_particles(self):
        """The FFT transpose moves the mesh, so its field-phase volume
        is set by m (and nearly independent of n) — the signature of a
        global solve."""
        def field_bytes(nx, ny, n):
            grid = Grid2D(nx, ny)
            particles = uniform_plasma(grid, n, rng=4)
            vm, pic = TestParallelElectrostatic.build(grid, particles, p=4)
            pic.step()
            return vm.stats.phase("field").total_bytes

        small_mesh = field_bytes(16, 16, 2048)
        large_mesh = field_bytes(32, 32, 2048)
        more_particles = field_bytes(16, 16, 8192)
        assert large_mesh > 3 * small_mesh  # ~4x mesh -> ~4x volume
        assert abs(more_particles - small_mesh) <= 0.1 * small_mesh
