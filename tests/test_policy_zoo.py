"""Tests for the extended policy zoo, the spec registry, and the three
decision-path bugfixes (registry round-trip, SAR window anchor, unknown
op-category accounting)."""

import json
import warnings

import pytest

from repro.core.policies import (
    CostModelPredictivePolicy,
    DynamicSARPolicy,
    ImbalanceThresholdPolicy,
    OnlineTunedSAR,
    OptimalPlannerPolicy,
    Param,
    PeriodicPolicy,
    RedistributionPolicy,
    StaticPolicy,
    available_policies,
    make_policy,
    policy_entry,
    policy_from_state,
    policy_spec,
    register_policy,
    replay_decision,
)
from repro.machine.model import MachineModel
from repro.machine.virtual import VirtualMachine


# ----------------------------------------------------------------------
# Bugfix 1: every policy resolves through one registry
# ----------------------------------------------------------------------
class TestRegistry:
    def test_all_zoo_policies_registered(self):
        assert set(available_policies()) >= {
            "static", "periodic", "dynamic",
            "sar-ewma", "costmodel", "imbalance", "planner",
        }

    @pytest.mark.parametrize("spec", [
        "static",
        "periodic:25",
        "dynamic",
        "sar-ewma",
        "sar-ewma:alpha=0.7",
        "costmodel:horizon=20,alpha=0.9",
        "imbalance:threshold=1.4,hysteresis=0.2",
        "planner:horizon=100,window=32",
    ])
    def test_spec_round_trips_through_registry(self, spec):
        """make_policy -> policy_spec -> make_policy is the identity on
        canonical specs — and state_dict -> policy_from_state restores
        the same class with the same canonical spec."""
        policy = make_policy(spec)
        canonical = policy_spec(policy)
        again = make_policy(canonical)
        assert type(again) is type(policy)
        assert policy_spec(again) == canonical
        restored = policy_from_state(policy.state_dict())
        assert type(restored) is type(policy)
        assert policy_spec(restored) == canonical

    def test_unregistered_instance_spec_raises(self):
        """Bugfix 1 regression: policy_spec used to fall back to
        type(policy).__name__, which make_policy then rejected — a spec
        that could never round-trip.  Now it raises with guidance."""

        class HomegrownPolicy(RedistributionPolicy):
            name = "homegrown"

            def should_redistribute(self, iteration):
                return False

        with pytest.raises(ValueError, match="register_policy"):
            policy_spec(HomegrownPolicy())

    def test_registered_custom_policy_round_trips(self):
        """A third-party @register_policy class gets spec parsing,
        canonical rendering, state restore, and replay with no extra
        wiring (the contract Bugfix 1 establishes)."""

        @register_policy
        class EveryOtherPolicy(RedistributionPolicy):
            name = "every-other-test"
            PARAMS = {"phase": Param(int, 0)}

            def __init__(self, phase=0):
                self.phase = phase

            def should_redistribute(self, iteration):
                fired = iteration % 2 == self.phase
                self._emit({"policy": self.name, "iteration": iteration,
                            "phase": self.phase, "fired": fired})
                return fired

            @classmethod
            def replay(cls, record):
                return record["iteration"] % 2 == record["phase"]

            def state_dict(self):
                return {"type": type(self).__name__, "phase": self.phase}

            def load_state(self, state):
                self.phase = int(state["phase"])

        policy = make_policy("every-other-test:phase=1")
        assert policy_spec(policy) == "every-other-test:1" or policy_spec(policy) == "every-other-test:phase=1"
        restored = policy_from_state(policy.state_dict())
        assert isinstance(restored, EveryOtherPolicy) and restored.phase == 1
        assert replay_decision({"policy": "every-other-test", "iteration": 3,
                                "phase": 1, "fired": True})

    def test_unknown_parameter_raises(self):
        with pytest.raises(ValueError, match="unknown parameter"):
            make_policy("sar-ewma:beta=2")

    def test_duplicate_parameter_raises(self):
        with pytest.raises(ValueError, match="duplicate"):
            make_policy("costmodel:horizon=5,horizon=6")

    def test_name_clash_raises(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_policy
            class Impostor(RedistributionPolicy):
                name = "dynamic"

                def should_redistribute(self, iteration):
                    return False

    def test_policy_entry_lists_alternatives(self):
        with pytest.raises(ValueError, match="registered:"):
            policy_entry("sometimes")


# ----------------------------------------------------------------------
# Bugfix 2: SAR window anchors to the minimum, not the first iteration
# ----------------------------------------------------------------------
class TestSARWindowAnchor:
    def test_slow_first_iteration_no_longer_suppresses_sar(self):
        """Regression for the t0 pin: with t0 frozen at an anomalously
        slow first post-redistribution iteration, the rise (t1 - t0)
        stayed negative forever and SAR never fired again."""
        policy = DynamicSARPolicy(initial_cost=2.0)
        policy.record_redistribution(-1, 2.0)
        policy.record_iteration(0, 10.0)  # checkpoint write / recovery blip
        policy.record_iteration(1, 1.0)   # true balanced time
        policy.record_iteration(2, 2.0)
        assert not policy.should_redistribute(2)  # rise 1 * span 1 = 1 < 2
        policy.record_iteration(3, 3.0)   # rise 2 * span 2 = 4 >= 2
        assert policy.should_redistribute(3)

    def test_minimum_anchor_matches_paper_on_monotone_series(self):
        """On a monotone-rising series (the paper's assumption) the
        minimum IS the first iteration, so Eq. 1 behaves identically."""
        policy = DynamicSARPolicy(initial_cost=4.0)
        policy.record_iteration(0, 1.0)
        policy.record_iteration(1, 2.0)
        assert not policy.should_redistribute(1)
        policy.record_iteration(2, 3.0)
        assert policy.should_redistribute(2)

    def test_anchor_state_survives_checkpoint(self):
        original = DynamicSARPolicy(initial_cost=2.0)
        original.record_iteration(0, 10.0)
        original.record_iteration(1, 1.0)
        restored = policy_from_state(json.loads(json.dumps(original.state_dict())))
        for p in (original, restored):
            p.record_iteration(2, 3.0)
        assert original.should_redistribute(2) == restored.should_redistribute(2)
        assert original.state_dict() == restored.state_dict()


# ----------------------------------------------------------------------
# Bugfix 3: unknown op categories are never silently charged
# ----------------------------------------------------------------------
class TestUnknownOpCategory:
    def test_warns_once_and_charges_unit_weight(self):
        model = MachineModel.cm5()
        with pytest.warns(UserWarning, match="unknown op category 'scatterr'"):
            cost = model.compute_cost("scatterr", 100)
        assert cost == pytest.approx(100 * model.delta)
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # second charge must stay silent
            model.compute_cost("scatterr", 100)

    def test_strict_raises(self):
        model = MachineModel.cm5()
        with pytest.raises(ValueError, match="unknown op category"):
            model.compute_cost("scatterr", 100, strict=True)

    def test_known_categories_unchanged(self):
        model = MachineModel.cm5()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert model.compute_cost("scatter", 10) == pytest.approx(
                10 * model.op_weights["scatter"] * model.delta
            )

    def test_strict_ops_machine(self):
        vm = VirtualMachine(2, MachineModel.cm5(), strict_ops=True)
        vm.charge_ops("push", 10.0)  # known: fine
        with pytest.raises(ValueError, match="unknown op category"):
            vm.charge_ops("pussh", 10.0)

    def test_simulation_strict_guards_wires_strict_ops(self):
        from repro.pic import Simulation, SimulationConfig

        sim = Simulation(SimulationConfig(
            nx=16, ny=8, nparticles=256, p=2, guards="strict"))
        assert sim.vm.strict_ops
        relaxed = Simulation(SimulationConfig(nx=16, ny=8, nparticles=256, p=2))
        assert not relaxed.vm.strict_ops


# ----------------------------------------------------------------------
# zoo policy behaviour
# ----------------------------------------------------------------------
class TestOnlineTunedSAR:
    def test_ewma_blends_costs(self):
        policy = OnlineTunedSAR(alpha=0.5)
        policy.record_redistribution(-1, 4.0)   # seed sets it directly
        assert policy.redistribution_cost == 4.0
        policy.record_redistribution(3, 8.0)    # 0.5*8 + 0.5*4
        assert policy.redistribution_cost == pytest.approx(6.0)

    def test_one_cheap_outlier_does_not_collapse_threshold(self):
        plain = DynamicSARPolicy(initial_cost=10.0)
        tuned = OnlineTunedSAR(alpha=0.3, initial_cost=10.0)
        tuned.record_redistribution(-1, 10.0)
        for p in (plain, tuned):
            p.record_redistribution(5, 0.01)   # fluke near-free redistribution
        assert plain.redistribution_cost == pytest.approx(0.01)
        assert tuned.redistribution_cost > 5.0  # EWMA keeps the history

    def test_decision_records_carry_own_name(self):
        policy = OnlineTunedSAR()
        seen = []
        policy.decision_sink = seen.append
        policy.record_iteration(0, 1.0)
        policy.should_redistribute(0)
        assert seen[0]["policy"] == "sar-ewma"
        assert replay_decision(seen[0]) == seen[0]["fired"]


class TestCostModelPredictive:
    def test_fires_when_projection_beats_cost(self):
        policy = CostModelPredictivePolicy(horizon=10, initial_cost=5.0)
        policy.record_iteration(0, 1.0)
        policy.record_iteration(1, 1.4)
        # rise 0.4 * horizon 10 = 4 < 5
        assert not policy.should_redistribute(1)
        policy.record_iteration(2, 1.6)
        # rise 0.6 * horizon 10 = 6 >= 5
        assert policy.should_redistribute(2)

    def test_model_floor_bounds_fluke_costs(self):
        policy = CostModelPredictivePolicy(horizon=10)
        vm = VirtualMachine(8, MachineModel.cm5())
        policy.bind(vm)
        policy.record_redistribution(0, 0.0)  # measured "free" — implausible
        floor = 2.0 * vm.model.tau * 7
        policy.record_iteration(1, 1.0)
        policy.record_iteration(2, 1.0 + floor / 10 / 2)  # saving = floor/2 < floor
        seen = []
        policy.decision_sink = seen.append
        assert not policy.should_redistribute(2)
        assert seen[0]["threshold"] == pytest.approx(floor)

    def test_bind_is_transient(self):
        policy = CostModelPredictivePolicy(horizon=10)
        policy.bind(VirtualMachine(8, MachineModel.cm5()))
        state = policy.state_dict()
        restored = policy_from_state(state)
        assert restored._model is None  # environment never serializes
        assert restored.state_dict() == state


class TestImbalanceThreshold:
    def test_fires_on_threshold_crossing(self):
        policy = ImbalanceThresholdPolicy(threshold=1.5, hysteresis=0.25)
        policy.record_load(0, [10, 10, 10, 10])
        assert not policy.should_redistribute(0)
        policy.record_load(1, [25, 5, 5, 5])  # imbalance 2.5
        assert policy.should_redistribute(1)

    def test_hysteresis_disarms_until_recovery(self):
        policy = ImbalanceThresholdPolicy(threshold=1.5, hysteresis=0.25)
        policy.record_load(0, [20, 4, 4, 4])   # imbalance 2.5 -> fire
        assert policy.should_redistribute(0)
        policy.record_redistribution(0, 1.0)
        policy.record_load(1, [13, 7, 6, 6])   # 1.625: still over, but disarmed
        assert not policy.should_redistribute(1)
        policy.record_load(2, [9, 8, 8, 7])    # 1.125 <= 1.25: re-arms
        policy.record_load(3, [20, 4, 4, 4])
        assert policy.should_redistribute(3)

    def test_hysteresis_rearms_on_escalation(self):
        """A rebalance that does not help must not deadlock the policy:
        the imbalance escalating past the last-fire level re-arms it."""
        policy = ImbalanceThresholdPolicy(threshold=1.5, hysteresis=0.25)
        policy.record_load(0, [20, 4, 4, 4])   # 2.5 -> fire
        assert policy.should_redistribute(0)
        policy.record_redistribution(0, 1.0)
        policy.record_load(1, [22, 4, 3, 3])   # 2.75 >= 2.5 + 0.25: re-arm
        assert policy.should_redistribute(1)

    def test_needs_load_flag(self):
        assert ImbalanceThresholdPolicy.needs_load
        assert not DynamicSARPolicy.needs_load

    def test_state_round_trip_preserves_arming(self):
        policy = ImbalanceThresholdPolicy(threshold=1.5, hysteresis=0.25)
        policy.record_load(0, [20, 4, 4, 4])
        policy.should_redistribute(0)
        policy.record_redistribution(0, 1.0)
        restored = policy_from_state(json.loads(json.dumps(policy.state_dict())))
        for p in (policy, restored):
            p.record_load(1, [13, 7, 6, 6])
        assert policy.should_redistribute(1) == restored.should_redistribute(1) == False  # noqa: E712

    def test_validates_parameters(self):
        with pytest.raises(ValueError):
            ImbalanceThresholdPolicy(threshold=0.9)
        with pytest.raises(ValueError):
            ImbalanceThresholdPolicy(hysteresis=-0.1)


class TestOptimalPlanner:
    def test_waits_for_optimal_period(self):
        # degradation slope a = 0.1 s/iter, cost C = 2.0 s
        # n* = sqrt(2C/a) = sqrt(40) ~ 6.32 -> fires at elapsed >= 6.32
        policy = OptimalPlannerPolicy(initial_cost=2.0)
        fired_at = None
        for it in range(12):
            policy.record_iteration(it, 1.0 + 0.1 * it)
            if policy.should_redistribute(it):
                fired_at = it
                break
        assert fired_at == 6  # elapsed = it + 1 = 7 >= 6.32

    def test_no_fire_without_degradation(self):
        policy = OptimalPlannerPolicy(initial_cost=2.0)
        for it in range(10):
            policy.record_iteration(it, 1.0)
            assert not policy.should_redistribute(it)

    def test_scipy_matches_closed_form(self):
        from repro.core.policies.zoo import _optimal_period

        n_star, optimizer = _optimal_period(2.0, 0.1, 200)
        assert n_star == pytest.approx((2 * 2.0 / 0.1) ** 0.5, abs=1e-3)
        # whichever path ran, the answer is the analytic optimum
        assert optimizer in ("scipy", "closed-form")

    def test_history_window_is_bounded(self):
        policy = OptimalPlannerPolicy(window=8)
        for it in range(50):
            policy.record_iteration(it, 1.0 + 0.01 * it)
        assert len(policy.state_dict()["hist_i"]) == 8

    def test_plan_survives_checkpoint(self):
        policy = OptimalPlannerPolicy(initial_cost=2.0)
        for it in range(4):
            policy.record_iteration(it, 1.0 + 0.1 * it)
        restored = policy_from_state(json.loads(json.dumps(policy.state_dict())))
        for it in range(4, 10):
            for p in (policy, restored):
                p.record_iteration(it, 1.0 + 0.1 * it)
            assert policy.should_redistribute(it) == restored.should_redistribute(it)


# ----------------------------------------------------------------------
# decision records: schema + report
# ----------------------------------------------------------------------
class TestDecisionRecords:
    def test_schema_rejects_malformed_decision(self):
        from repro.telemetry.schema import TelemetrySchemaError, validate_metrics

        lines = [
            json.dumps({"type": "header", "schema": "repro-metrics/1", "p": 2,
                        "config": {}}),
            json.dumps({"type": "iteration", "iteration": 0, "p": 2,
                        "t_iter": 0.1, "phase_time": {}, "particles_per_rank": [1, 1],
                        "imbalance": 1.0, "comm": {},
                        "sar_decisions": [{"iteration": 0, "fired": False}],
                        "redistributed": False, "redistribution_cost": 0.0}),
            json.dumps({"type": "summary", "aggregates": {}}),
        ]
        with pytest.raises(TelemetrySchemaError, match="policy"):
            validate_metrics(lines)

    def test_replay_unknown_policy_raises(self):
        with pytest.raises(ValueError, match="unknown policy"):
            replay_decision({"policy": "oracular", "iteration": 0, "fired": True})

    def test_report_renders_decision_comparison(self):
        from repro.pic import Simulation, SimulationConfig
        from repro.telemetry.report import render_decision_comparison, render_report
        from repro.telemetry.schema import validate_metrics

        runs = []
        for spec in ("dynamic", "periodic:4"):
            sim = Simulation(SimulationConfig(
                nx=16, ny=8, nparticles=512, p=2,
                distribution="irregular", policy=spec, seed=1))
            tel = sim.enable_telemetry()
            sim.run(6)
            runs.append((spec, validate_metrics(tel.metrics_lines())))
        text = render_decision_comparison(runs)
        assert "dynamic" in text and "periodic" in text
        single = render_report(runs[0][1], label="dynamic")
        assert "replay check" in single
        assert "REPLAY-MISMATCH" not in single


# ----------------------------------------------------------------------
# the bench matrix, at CI scale
# ----------------------------------------------------------------------
class TestPolicyMatrix:
    def test_smoke_matrix_runs_and_crowns_winners(self):
        from repro.bench.policy_suite import POLICY_SCHEMA, render_matrix, run_policy_matrix

        doc = run_policy_matrix(
            ("static", "dynamic", "sar-ewma"),
            ("clustered",),
            ("flat", "looped"),
            smoke=True,
            p=4,
        )
        assert doc["schema"] == POLICY_SCHEMA
        assert len(doc["cells"]) == 6
        assert doc["engine_parity"], doc["parity_failures"]
        assert doc["winners"]["clustered"]["policy"] in ("static", "dynamic", "sar-ewma")
        text = render_matrix(doc)
        assert "winner[clustered]" in text

    def test_unknown_workload_rejected(self):
        from repro.bench.policy_suite import run_policy_matrix

        with pytest.raises(ValueError, match="unknown workload"):
            run_policy_matrix(("static",), ("galactic",), ("flat",), smoke=True, p=2)


# ----------------------------------------------------------------------
# property: state_dict equivalence + record replayability on random traces
# ----------------------------------------------------------------------
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

#: one default-constructible spec per registered policy class
_PROPERTY_SPECS = (
    "static",
    "periodic:3",
    "dynamic",
    "sar-ewma:alpha=0.4",
    "costmodel:horizon=5",
    "imbalance:threshold=1.3,hysteresis=0.2",
    "planner:horizon=20,window=8",
)

_step = st.tuples(
    st.floats(min_value=0.01, max_value=100.0, allow_nan=False, allow_infinity=False),
    st.lists(st.integers(min_value=0, max_value=50), min_size=4, max_size=4).filter(
        lambda c: sum(c) > 0
    ),
    st.floats(min_value=0.0, max_value=50.0, allow_nan=False, allow_infinity=False),
)


class TestPolicyProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        spec=st.sampled_from(_PROPERTY_SPECS),
        trace=st.lists(_step, min_size=1, max_size=30),
        fork_at=st.integers(min_value=0, max_value=29),
    )
    def test_restored_policy_decides_identically(self, spec, trace, fork_at):
        """A policy restored from a (JSON-round-tripped) state_dict at any
        point of a random trace makes bit-identical decisions from there
        on, and every emitted decision record replays to its own verdict."""
        policy = make_policy(spec)
        records = []
        policy.decision_sink = records.append
        restored = None
        for it, (t_iter, counts, cost) in enumerate(trace):
            if it == fork_at:
                state = json.loads(json.dumps(policy.state_dict()))
                restored = policy_from_state(state)
                restored.decision_sink = records.append
                assert restored.state_dict() == policy.state_dict()
            targets = (policy,) if restored is None else (policy, restored)
            decisions = []
            for p in targets:
                p.record_iteration(it, t_iter)
                if p.needs_load:
                    p.record_load(it, counts)
                decisions.append(p.should_redistribute(it))
            assert len(set(decisions)) == 1, (
                f"{spec}: restored policy diverged at iteration {it}"
            )
            if decisions[0]:
                for p in targets:
                    p.record_redistribution(it, cost)
        if restored is not None:
            assert restored.state_dict() == policy.state_dict()
        for record in records:
            assert replay_decision(record) == record["fired"], record


# ----------------------------------------------------------------------
# checkpoint/resume: a zoo policy makes identical decisions after resume
# ----------------------------------------------------------------------
class TestZooPolicyResume:
    @pytest.mark.parametrize("spec", ["sar-ewma", "planner:horizon=50,window=16"])
    def test_resume_reproduces_decisions(self, spec, tmp_path):
        from repro.pic import Simulation, SimulationConfig

        cfg = SimulationConfig(
            nx=32, ny=16, nparticles=2048, p=4,
            distribution="irregular", policy=spec, seed=1)
        straight = Simulation(cfg)
        straight_result = straight.run(10)

        ck = tmp_path / "ck.npz"
        first = Simulation(cfg)
        first.run(5)
        first.checkpoint(ck)
        resumed = Simulation.from_checkpoint(ck)
        resumed_result = resumed.run(5)

        assert resumed_result.total_time == straight_result.total_time
        assert [r.redistributed for r in resumed_result.records] == [
            r.redistributed for r in straight_result.records
        ]
        assert resumed.policy.state_dict() == straight.policy.state_dict()
