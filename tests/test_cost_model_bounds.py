"""Validate the paper's §4 analytic bounds against the simulated runs.

The complexity analysis gives hard upper bounds that every simulated
iteration must respect:

* scatter messages sent/received per rank <= p - 1;
* ghost grid points per rank <= 4 * n_local (each particle touches 4
  vertices);
* field-solve halo size per rank ~ perimeter, not area, of its tile.
"""

import numpy as np
import pytest

from repro.core import ParticlePartitioner
from repro.machine import MachineModel, VirtualMachine
from repro.mesh import CurveBlockDecomposition, Grid2D, HaloSchedule
from repro.particles import gaussian_blob, uniform_plasma
from repro.pic import ParallelPIC


def run_one(grid, particles, p, scheme="hilbert", steps=5):
    vm = VirtualMachine(p, MachineModel.cm5())
    decomp = CurveBlockDecomposition(grid, p, scheme)
    local = ParticlePartitioner(grid, scheme).initial_partition(particles, p)
    pic = ParallelPIC(vm, grid, decomp, local)
    per_iter = []
    for _ in range(steps):
        pic.step()
        per_iter.append(vm.stats.snapshot_epoch())
    return vm, pic, per_iter


class TestScatterBounds:
    @pytest.mark.parametrize("dist,p", [("uniform", 8), ("blob", 8), ("blob", 16)])
    def test_messages_bounded_by_p_minus_1(self, dist, p):
        grid = Grid2D(32, 32)
        sampler = uniform_plasma if dist == "uniform" else gaussian_blob
        particles = sampler(grid, 4096, vth=0.2, rng=0)
        _, _, per_iter = run_one(grid, particles, p, steps=8)
        for epoch in per_iter:
            scatter = epoch.get("scatter")
            if scatter is None:
                continue
            assert scatter.msgs_sent.max() <= p - 1
            assert scatter.msgs_recv.max() <= p - 1

    def test_ghost_nodes_bounded_by_4n(self):
        grid = Grid2D(32, 32)
        particles = gaussian_blob(grid, 4096, vth=0.3, rng=1)
        _, pic, _ = run_one(grid, particles, 8, steps=6)
        for r in range(8):
            ghosts = sum(ids.size for ids in pic._ghost_nodes[r].values())
            assert ghosts <= 4 * pic.particles[r].n

    def test_gather_mirrors_scatter_partners(self):
        """The gather exchange is the transpose of the scatter exchange
        (paper: 'the communication behavior is just the inverse')."""
        grid = Grid2D(32, 32)
        particles = gaussian_blob(grid, 4096, rng=2)
        vm, pic, _ = run_one(grid, particles, 8, steps=1)
        # redo one step to capture matched stats
        pic.step()
        epoch = vm.stats.snapshot_epoch()
        scatter, gather = epoch["scatter"], epoch["gather"]
        assert np.array_equal(scatter.msgs_sent, gather.msgs_recv)
        assert np.array_equal(scatter.msgs_recv, gather.msgs_sent)


class TestFieldBounds:
    def test_halo_scales_as_sqrt_of_tile(self):
        """Per-rank halo ~ 4 * sqrt(m/p) for square-ish Hilbert tiles —
        the paper's field-solve message-size term."""
        for nx in (32, 64):
            grid = Grid2D(nx, nx)
            schedule = HaloSchedule(CurveBlockDecomposition(grid, 16, "hilbert"))
            tile_side = np.sqrt(grid.ncells / 16)
            mean_halo = schedule.halo_sizes().mean()
            assert mean_halo <= 6 * tile_side  # 4 sides + corner slack
            assert mean_halo >= 2 * tile_side

    def test_field_messages_constant_per_iteration(self):
        """Field-phase traffic is static (the decomposition does not
        change), unlike the growing scatter traffic."""
        grid = Grid2D(32, 32)
        particles = gaussian_blob(grid, 4096, vth=0.3, rng=3)
        _, _, per_iter = run_one(grid, particles, 8, steps=6)
        volumes = [epoch["field"].total_bytes for epoch in per_iter]
        assert len(set(volumes)) == 1


class TestTotalTimeDecomposition:
    def test_iteration_time_within_model_bounds(self):
        """Each iteration's time is at least the balanced compute time
        and at most compute + worst-case communication."""
        grid = Grid2D(32, 32)
        particles = uniform_plasma(grid, 4096, rng=4)
        p = 8
        vm = VirtualMachine(p, MachineModel.cm5())
        decomp = CurveBlockDecomposition(grid, p, "hilbert")
        local = ParticlePartitioner(grid, "hilbert").initial_partition(particles, p)
        pic = ParallelPIC(vm, grid, decomp, local)
        model = vm.model
        n_per = particles.n / p
        m_per = grid.ncells / p
        compute_floor = (
            model.compute_cost("scatter", 4 * n_per)
            + model.compute_cost("gather", 4 * n_per)
            + model.compute_cost("push", n_per)
            + model.compute_cost("field", m_per)
        )
        t0 = vm.elapsed()
        pic.step()
        t_iter = vm.elapsed() - t0
        assert t_iter >= compute_floor
        worst_comm = 3 * (2 * (p - 1) * model.tau + 2 * 4 * n_per * 40 * model.mu)
        assert t_iter <= compute_floor * 2 + worst_comm
