"""Tests of the perf-regression harness (``repro.bench``).

Covers the data model round-trip, the runner's warmup/repeat semantics,
the registry, regression gating on an injected 50% slowdown, and the
``repro bench`` CLI surface.
"""

import json

import pytest

from repro.bench import (
    SCHEMA,
    BenchCase,
    BenchObservation,
    BenchResult,
    SuiteResult,
    available_suites,
    cases_for_suite,
    compare_files,
    compare_suites,
    run_case,
    run_suite,
)
from repro.cli import main


def _result(name, wall, *, tier=1, vm=None, ops=None):
    return BenchResult(
        name=name,
        tier=tier,
        repeats=len(wall),
        warmup=0,
        wall_samples=list(wall),
        vm_seconds=vm,
        op_counts=dict(ops or {}),
    )


class TestRunner:
    def test_warmup_and_repeats_counted(self):
        calls = []
        case = BenchCase(name="t", fn=lambda ctx: calls.append(ctx), repeats=3, warmup=2)
        result = run_case(case)
        assert len(calls) == 5  # 2 warmup + 3 timed
        assert len(result.wall_samples) == 3
        assert result.wall_min <= result.wall_mean <= result.wall_max
        assert result.repeats == 3 and result.warmup == 2

    def test_setup_runs_once_and_feeds_context(self):
        built = []

        def setup():
            built.append(1)
            return {"n": 41}

        def body(ctx):
            ctx["n"] += 1
            return BenchObservation(vm_seconds=0.5, op_counts={"sort": 10.0})

        case = BenchCase(name="t", fn=body, setup=setup, repeats=2, warmup=1)
        result = run_case(case)
        assert built == [1]  # setup untimed, shared across repeats
        assert result.vm_seconds == 0.5
        assert result.op_counts == {"sort": 10.0}
        assert result.peak_rss_kb is None or result.peak_rss_kb > 0

    def test_repeat_override_and_validation(self):
        case = BenchCase(name="t", fn=lambda ctx: None, repeats=3)
        assert len(run_case(case, repeats=1, warmup=0).wall_samples) == 1
        with pytest.raises(ValueError):
            run_case(case, repeats=0)

    def test_non_observation_return_is_wall_only(self):
        case = BenchCase(name="t", fn=lambda ctx: 123, repeats=1, warmup=0)
        result = run_case(case)
        assert result.vm_seconds is None
        assert result.op_counts == {}

    def test_run_suite_progress_and_order(self):
        seen = []
        cases = [
            BenchCase(name="a", fn=lambda ctx: None, repeats=1, warmup=0),
            BenchCase(name="b", fn=lambda ctx: None, repeats=1, warmup=0),
        ]
        suite = run_suite("unit", cases, progress=seen.append)
        assert seen == ["a", "b"]
        assert [r.name for r in suite.results] == ["a", "b"]


class TestTrajectoryFormat:
    def test_round_trip(self, tmp_path):
        suite = SuiteResult(
            suite="unit",
            results=[_result("c1", [0.5, 0.25], vm=1.5, ops={"flop": 2.0})],
        )
        path = suite.save(tmp_path / "BENCH_unit.json")
        doc = json.loads(path.read_text())
        assert doc["schema"] == SCHEMA
        assert doc["suite"] == "unit"
        assert set(doc["environment"]) == {"python", "platform", "numpy"}
        case = doc["cases"]["c1"]
        assert case["wall"]["min"] == 0.25
        assert case["wall"]["mean"] == pytest.approx(0.375)
        assert case["wall"]["samples"] == [0.5, 0.25]
        assert case["vm_seconds"] == 1.5
        assert case["op_counts"] == {"flop": 2.0}

        loaded = SuiteResult.load(path)
        assert loaded.suite == "unit"
        assert loaded.results[0].wall_min == 0.25
        assert loaded.results[0].op_counts == {"flop": 2.0}

    def test_load_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"schema": "other/9", "cases": {}}))
        with pytest.raises(ValueError, match="unsupported schema"):
            SuiteResult.load(path)


class TestCompareGating:
    def test_injected_50pct_slowdown_fails_gate(self, tmp_path):
        old = SuiteResult(suite="s", results=[_result("hot", [1.0]), _result("ok", [1.0])])
        new = SuiteResult(suite="s", results=[_result("hot", [1.5]), _result("ok", [1.0])])
        cmp = compare_suites(old, new, threshold=0.2)
        assert not cmp.ok
        assert [d.name for d in cmp.regressions] == ["hot"]
        assert cmp.deltas[0].wall_ratio == pytest.approx(1.5) or True
        # Files + CLI: exit code must be non-zero.
        po = old.save(tmp_path / "old.json")
        pn = new.save(tmp_path / "new.json")
        assert compare_files(po, pn, threshold=0.2).ok is False
        assert main(["bench", "compare", str(po), str(pn)]) == 1

    def test_tier2_slowdown_not_gated(self):
        old = SuiteResult(suite="s", results=[_result("info", [1.0], tier=2)])
        new = SuiteResult(suite="s", results=[_result("info", [9.0], tier=2)])
        cmp = compare_suites(old, new, threshold=0.2)
        assert cmp.ok
        assert cmp.regressions == []

    def test_within_threshold_passes(self):
        old = SuiteResult(suite="s", results=[_result("hot", [1.0])])
        new = SuiteResult(suite="s", results=[_result("hot", [1.15])])
        assert compare_suites(old, new, threshold=0.2).ok

    def test_improvement_detected(self):
        old = SuiteResult(suite="s", results=[_result("hot", [1.0])])
        new = SuiteResult(suite="s", results=[_result("hot", [0.5])])
        cmp = compare_suites(old, new, threshold=0.2)
        assert [d.name for d in cmp.improvements] == ["hot"]

    def test_case_set_changes_reported(self):
        old = SuiteResult(suite="s", results=[_result("gone", [1.0])])
        new = SuiteResult(suite="s", results=[_result("added", [1.0])])
        cmp = compare_suites(old, new, threshold=0.2)
        assert cmp.only_old == ["gone"] and cmp.only_new == ["added"]
        assert cmp.ok  # unmatched cases never gate

    def test_vm_ratio_reported_not_gated(self):
        old = SuiteResult(suite="s", results=[_result("hot", [1.0], vm=2.0)])
        new = SuiteResult(suite="s", results=[_result("hot", [1.0], vm=4.0)])
        cmp = compare_suites(old, new, threshold=0.2)
        assert cmp.deltas[0].vm_ratio == pytest.approx(2.0)
        assert cmp.ok

    def test_bad_threshold_rejected(self):
        suite = SuiteResult(suite="s", results=[])
        with pytest.raises(ValueError):
            compare_suites(suite, suite, threshold=0.0)


class TestRegistry:
    def test_smoke_suite_has_gated_cases(self):
        cases = cases_for_suite("smoke")
        assert len(cases) >= 8
        assert all(c.tier == 1 for c in cases)
        names = {c.name for c in cases}
        assert "scatter_static" in names
        assert "incremental_resort_small_drift" in names

    def test_paper_suite_wraps_report_generators(self):
        names = {c.name for c in cases_for_suite("paper")}
        assert any(n.startswith("paper_") for n in names)
        assert all(c.tier == 2 for c in cases_for_suite("paper"))

    def test_all_and_available(self):
        suites = available_suites()
        assert {"all", "smoke", "full"} <= set(suites)
        assert len(cases_for_suite("all")) >= len(cases_for_suite("smoke"))


class TestBenchCLI:
    def test_run_single_case_writes_trajectory(self, tmp_path, capsys):
        out = tmp_path / "BENCH_one.json"
        code = main([
            "bench", "run", "--case", "ghost_table_direct",
            "--repeats", "1", "--warmup", "0", "--output", str(out), "--json",
        ])
        assert code == 0
        doc = json.loads(out.read_text())
        assert doc["schema"] == SCHEMA
        case = doc["cases"]["ghost_table_direct"]
        assert case["wall"]["min"] > 0
        assert case["vm_seconds"] > 0
        assert sum(case["op_counts"].values()) > 0
        # --json mirrors the document on stdout
        printed = json.loads(capsys.readouterr().out)
        assert printed["cases"].keys() == doc["cases"].keys()

    def test_run_unknown_case_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["bench", "run", "--case", "nope", "--output", str(tmp_path / "x.json")])

    def test_list(self, capsys):
        assert main(["bench", "list", "--suite", "smoke"]) == 0
        out = capsys.readouterr().out
        assert "scatter_static" in out and "step_eulerian" in out

    def test_compare_ok_and_json(self, tmp_path, capsys):
        suite = SuiteResult(suite="s", results=[_result("hot", [1.0])])
        po = suite.save(tmp_path / "old.json")
        pn = suite.save(tmp_path / "new.json")
        assert main(["bench", "compare", str(po), str(pn), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["cases"]["hot"]["wall_ratio"] == pytest.approx(1.0)
