"""Tests for the gather phase (CIC field interpolation)."""

import numpy as np
import pytest

from repro.mesh import FieldState, Grid2D
from repro.particles import ParticleArray, uniform_plasma
from repro.pic.interpolation import gather_from_node_values, interpolate_fields


def particle_at(x, y):
    parts = ParticleArray.empty(1)
    parts.x[:] = x
    parts.y[:] = y
    return parts


class TestGatherFromNodeValues:
    def test_shape(self):
        node_values = np.arange(24.0).reshape(2, 12)
        nodes = np.array([[0, 1, 2, 3], [4, 5, 6, 7]])
        weights = np.full((2, 4), 0.25)
        out = gather_from_node_values(node_values, nodes, weights)
        assert out.shape == (2, 2)

    def test_weighted_average(self):
        node_values = np.array([[10.0, 20.0, 30.0, 40.0]])
        nodes = np.array([[0, 1, 2, 3]])
        weights = np.array([[0.1, 0.2, 0.3, 0.4]])
        out = gather_from_node_values(node_values, nodes, weights)
        assert out[0, 0] == pytest.approx(1 + 4 + 9 + 16)


class TestInterpolateFields:
    def test_uniform_field_exact(self, grid):
        fields = FieldState.zeros(grid)
        fields.ez[:] = 3.5
        parts = uniform_plasma(grid, 100, rng=0)
        e, b = interpolate_fields(grid, fields, parts)
        assert np.allclose(e[2], 3.5)
        assert np.allclose(b, 0.0)

    def test_particle_on_node_reads_node_value(self, grid):
        fields = FieldState.zeros(grid)
        fields.ex[3, 5] = 7.0
        e, _ = interpolate_fields(grid, fields, particle_at(5.0, 3.0))
        assert e[0, 0] == pytest.approx(7.0)

    def test_linear_field_interpolated_exactly(self):
        """CIC reproduces linear variation exactly between nodes."""
        grid = Grid2D(8, 8)
        fields = FieldState.zeros(grid)
        xs = np.arange(8)
        fields.ey[:] = xs[None, :]  # Ey = ix
        e, _ = interpolate_fields(grid, fields, particle_at(2.25, 4.0))
        assert e[1, 0] == pytest.approx(2.25)

    def test_gather_is_adjoint_of_scatter(self, grid):
        """<scatter(p), f> == <charge(p), gather(f)> — the CIC pair is
        adjoint, which is what makes the PIC force self-consistent."""
        from repro.pic.deposition import deposition_entries, accumulate_entries

        rng = np.random.default_rng(3)
        parts = uniform_plasma(grid, 50, rng=4)
        field = rng.random(grid.nnodes)
        nodes, values = deposition_entries(grid, parts)
        acc = accumulate_entries(grid.nnodes, nodes, values)
        lhs = (acc[0] * field).sum()
        nodes2, weights = grid.cic_vertices_weights(parts.x, parts.y)
        gathered = gather_from_node_values(field[None, :], nodes2, weights)[0]
        rhs = (gathered * parts.w * parts.q).sum()
        assert lhs == pytest.approx(rhs)

    def test_empty_particles(self, grid):
        fields = FieldState.zeros(grid)
        e, b = interpolate_fields(grid, fields, ParticleArray.empty(0))
        assert e.shape == (3, 0) and b.shape == (3, 0)
