"""Tests for halo-exchange schedules."""

import numpy as np
import pytest

from repro.machine import MachineModel, VirtualMachine
from repro.mesh import CurveBlockDecomposition, Grid2D, HaloSchedule


@pytest.fixture
def schedule(grid):
    return HaloSchedule(CurveBlockDecomposition(grid, 4, "hilbert"))


class TestScheduleStructure:
    def test_send_recv_transpose(self, schedule):
        for r in range(4):
            for owner, ids in schedule.recv_nodes[r].items():
                assert np.array_equal(schedule.send_nodes[owner][r], ids)

    def test_recv_nodes_owned_by_sender(self, schedule):
        decomp = schedule.decomp
        for r in range(4):
            for owner, ids in schedule.recv_nodes[r].items():
                assert np.all(decomp.owner_of_nodes(ids) == owner)
                assert owner != r

    def test_recv_covers_all_offrank_neighbors(self, schedule):
        decomp = schedule.decomp
        grid = decomp.grid
        for r in range(4):
            owned = decomp.nodes_of_rank(r)
            neigh = grid.node_neighbors(owned).ravel()
            off = neigh[decomp.owner_map[neigh] != r]
            needed = np.unique(off)
            got = np.sort(np.concatenate(list(schedule.recv_nodes[r].values())))
            assert np.array_equal(got, needed)

    def test_halo_sizes_scale_with_perimeter(self):
        """Doubling the tile side should roughly double the halo, not
        quadruple it (perimeter, not area)."""
        small = HaloSchedule(CurveBlockDecomposition(Grid2D(16, 16), 4, "hilbert"))
        large = HaloSchedule(CurveBlockDecomposition(Grid2D(32, 32), 4, "hilbert"))
        ratio = large.halo_sizes().mean() / small.halo_sizes().mean()
        assert 1.5 < ratio < 2.5


class TestExchange:
    def test_received_values_match_owner_data(self, schedule):
        vm = VirtualMachine(4, MachineModel.cm5())
        nnodes = schedule.decomp.grid.nnodes
        values = np.arange(float(nnodes))
        out = schedule.exchange(vm, values)
        for r in range(4):
            for owner, payload in out[r].items():
                ids = schedule.recv_nodes[r][owner]
                assert np.array_equal(payload.ravel(), values[ids])

    def test_multi_component_exchange(self, schedule):
        vm = VirtualMachine(4, MachineModel.cm5())
        nnodes = schedule.decomp.grid.nnodes
        values = np.stack([np.arange(float(nnodes)), np.arange(float(nnodes)) * 2])
        out = schedule.exchange(vm, values, ncomponents=2)
        for r in range(4):
            for owner, payload in out[r].items():
                ids = schedule.recv_nodes[r][owner]
                assert payload.shape == (2, ids.size)
                assert np.array_equal(payload[1], values[1, ids])

    def test_exchange_charges_time(self, schedule):
        vm = VirtualMachine(4, MachineModel.cm5())
        schedule.exchange(vm, np.zeros(schedule.decomp.grid.nnodes))
        assert vm.elapsed() > 0
        assert vm.comm_time.max() > 0

    def test_wrong_size_rejected(self, schedule):
        vm = VirtualMachine(4, MachineModel.cm5())
        with pytest.raises(ValueError, match="cover all"):
            schedule.exchange(vm, np.zeros(3))

    def test_component_mismatch_rejected(self, schedule):
        vm = VirtualMachine(4, MachineModel.cm5())
        values = np.zeros((2, schedule.decomp.grid.nnodes))
        with pytest.raises(ValueError, match="components"):
            schedule.exchange(vm, values, ncomponents=3)

    def test_single_rank_no_halo(self):
        grid = Grid2D(8, 8)
        schedule = HaloSchedule(CurveBlockDecomposition(grid, 1))
        vm = VirtualMachine(1)
        out = schedule.exchange(vm, np.zeros(grid.nnodes))
        assert out == [{}]
        assert vm.elapsed() == 0.0
