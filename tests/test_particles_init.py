"""Tests for particle samplers."""

import numpy as np
import pytest

from repro.mesh import Grid2D
from repro.particles import gaussian_blob, ring_distribution, two_stream, uniform_plasma


@pytest.fixture
def grid():
    return Grid2D(32, 32)


class TestCommonProperties:
    @pytest.mark.parametrize("sampler", [uniform_plasma, gaussian_blob, ring_distribution])
    def test_positions_in_domain(self, grid, sampler):
        parts = sampler(grid, 1000, rng=0)
        assert parts.x.min() >= 0 and parts.x.max() < grid.lx
        assert parts.y.min() >= 0 and parts.y.max() < grid.ly

    @pytest.mark.parametrize("sampler", [uniform_plasma, gaussian_blob])
    def test_reproducible_with_seed(self, grid, sampler):
        a = sampler(grid, 100, rng=42)
        b = sampler(grid, 100, rng=42)
        assert np.array_equal(a.x, b.x) and np.array_equal(a.ux, b.ux)

    def test_weight_normalization(self, grid):
        parts = uniform_plasma(grid, 512, density=1.0, rng=0)
        # mean density 1 per cell: total weight == ncells
        assert parts.w.sum() == pytest.approx(grid.ncells)

    def test_default_density_weakly_coupled(self, grid):
        parts = uniform_plasma(grid, 512, rng=0)
        assert parts.w.sum() == pytest.approx(0.01 * grid.ncells)

    def test_density_rejected_nonpositive(self, grid):
        with pytest.raises(ValueError, match="density"):
            uniform_plasma(grid, 10, density=0.0, rng=0)

    def test_electron_charge_mass(self, grid):
        parts = uniform_plasma(grid, 10, rng=0)
        assert np.all(parts.q == -1.0) and np.all(parts.m == 1.0)

    def test_unique_ids(self, grid):
        parts = gaussian_blob(grid, 500, rng=0)
        assert np.unique(parts.ids).size == 500

    def test_zero_particles(self, grid):
        assert uniform_plasma(grid, 0, rng=0).n == 0

    def test_negative_count_rejected(self, grid):
        with pytest.raises(ValueError):
            uniform_plasma(grid, -1, rng=0)


class TestUniform:
    def test_roughly_uniform_occupancy(self, grid):
        parts = uniform_plasma(grid, 20000, rng=1)
        cells = grid.cell_id_of_positions(parts.x, parts.y)
        counts = np.bincount(cells, minlength=grid.ncells)
        assert counts.min() > 0  # every cell populated at ~20/cell

    def test_thermal_spread(self, grid):
        parts = uniform_plasma(grid, 50000, vth=0.1, rng=2)
        assert parts.ux.std() == pytest.approx(0.1, rel=0.05)


class TestGaussianBlob:
    def test_concentrated_at_center(self, grid):
        parts = gaussian_blob(grid, 10000, sigma_frac=0.05, rng=3)
        cx, cy = grid.lx / 2, grid.ly / 2
        r = np.hypot(parts.x - cx, parts.y - cy)
        assert np.median(r) < 0.1 * grid.lx

    def test_irregularity_vs_uniform(self, grid):
        """The blob's cell occupancy is far more skewed than uniform."""
        blob = gaussian_blob(grid, 8192, rng=4)
        unif = uniform_plasma(grid, 8192, rng=4)

        def max_count(parts):
            cells = grid.cell_id_of_positions(parts.x, parts.y)
            return np.bincount(cells, minlength=grid.ncells).max()

        assert max_count(blob) > 4 * max_count(unif)

    def test_custom_center(self, grid):
        parts = gaussian_blob(grid, 5000, center=(4.0, 4.0), sigma_frac=0.03, rng=5)
        assert abs(np.median(parts.x) - 4.0) < 1.0

    def test_bad_sigma_rejected(self, grid):
        with pytest.raises(ValueError):
            gaussian_blob(grid, 10, sigma_frac=0.0, rng=0)


class TestTwoStream:
    def test_two_beams(self, grid):
        parts = two_stream(grid, 1000, vdrift=0.3, vth=0.001, rng=6)
        assert (parts.ux > 0.2).sum() == 500
        assert (parts.ux < -0.2).sum() == 500

    def test_odd_count_rejected(self, grid):
        with pytest.raises(ValueError, match="even"):
            two_stream(grid, 7, rng=0)


class TestRing:
    def test_annulus_radius(self, grid):
        parts = ring_distribution(grid, 5000, radius_frac=0.25, width_frac=0.01, rng=7)
        r = np.hypot(parts.x - grid.lx / 2, parts.y - grid.ly / 2)
        assert np.median(r) == pytest.approx(0.25 * grid.lx, rel=0.1)
