"""Tests for grid geometry and CIC vertex/weight computation."""

import numpy as np
import pytest

from repro.mesh import Grid2D


class TestConstruction:
    def test_defaults_unit_cells(self):
        grid = Grid2D(8, 4)
        assert grid.lx == 8 and grid.dx == 1.0 and grid.dy == 1.0

    def test_custom_extent(self):
        grid = Grid2D(8, 4, lx=2.0, ly=1.0)
        assert grid.dx == pytest.approx(0.25)
        assert grid.dy == pytest.approx(0.25)

    def test_counts(self):
        grid = Grid2D(128, 64)
        assert grid.ncells == 8192 and grid.nnodes == 8192
        assert grid.shape == (64, 128)

    def test_rejects_tiny_grid(self):
        with pytest.raises(ValueError):
            Grid2D(1, 4)


class TestCellLookup:
    def test_wrap_positions(self):
        grid = Grid2D(4, 4)
        x, y = grid.wrap_positions(np.array([-0.5, 4.5]), np.array([4.0, -4.0]))
        assert np.allclose(x, [3.5, 0.5])
        assert np.allclose(y, [0.0, 0.0])

    def test_cell_of(self):
        grid = Grid2D(4, 4)
        cx, cy = grid.cell_of(np.array([0.1, 3.9]), np.array([1.5, 0.0]))
        assert cx.tolist() == [0, 3] and cy.tolist() == [1, 0]

    def test_cell_id_roundtrip(self):
        grid = Grid2D(6, 5)
        ids = np.arange(30)
        cx, cy = grid.cell_coords(ids)
        assert np.array_equal(grid.cell_id(cx, cy), ids)

    def test_cell_id_range_checks(self):
        grid = Grid2D(4, 4)
        with pytest.raises(ValueError):
            grid.cell_id(np.array([4]), np.array([0]))
        with pytest.raises(ValueError):
            grid.cell_coords(np.array([16]))

    def test_cell_id_of_positions_wraps(self):
        grid = Grid2D(4, 4)
        ids = grid.cell_id_of_positions(np.array([-0.5]), np.array([0.5]))
        assert ids.tolist() == [3]


class TestCIC:
    def test_weights_sum_to_one(self):
        grid = Grid2D(8, 8)
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 8, 100)
        y = rng.uniform(0, 8, 100)
        _, weights = grid.cic_vertices_weights(x, y)
        assert np.allclose(weights.sum(axis=1), 1.0)

    def test_particle_at_node_gets_full_weight(self):
        grid = Grid2D(8, 8)
        nodes, weights = grid.cic_vertices_weights(np.array([3.0]), np.array([2.0]))
        assert weights[0, 0] == pytest.approx(1.0)
        assert nodes[0, 0] == 2 * 8 + 3

    def test_particle_at_cell_center_equal_weights(self):
        grid = Grid2D(8, 8)
        _, weights = grid.cic_vertices_weights(np.array([3.5]), np.array([2.5]))
        assert np.allclose(weights, 0.25)

    def test_vertices_wrap_periodically(self):
        grid = Grid2D(4, 4)
        nodes, _ = grid.cic_vertices_weights(np.array([3.5]), np.array([3.5]))
        # cell (3, 3): vertices (3,3), (0,3), (3,0), (0,0)
        assert set(nodes[0].tolist()) == {15, 12, 3, 0}

    def test_vertices_are_cell_corners(self):
        grid = Grid2D(8, 4)
        nodes, _ = grid.cic_vertices_weights(np.array([2.3]), np.array([1.7]))
        expected = {1 * 8 + 2, 1 * 8 + 3, 2 * 8 + 2, 2 * 8 + 3}
        assert set(nodes[0].tolist()) == expected

    def test_weights_nonnegative(self):
        grid = Grid2D(16, 16)
        rng = np.random.default_rng(1)
        _, w = grid.cic_vertices_weights(rng.uniform(0, 16, 500), rng.uniform(0, 16, 500))
        assert w.min() >= 0


class TestNodeNeighbors:
    def test_interior_node(self):
        grid = Grid2D(4, 4)
        nbrs = grid.node_neighbors(np.array([5]))  # (ix=1, iy=1)
        assert set(nbrs[0].tolist()) == {4, 6, 1, 9}

    def test_corner_wraps(self):
        grid = Grid2D(4, 4)
        nbrs = grid.node_neighbors(np.array([0]))
        # west wraps to (3,0)=3, east 1, south wraps to (0,3)=12, north 4
        assert set(nbrs[0].tolist()) == {3, 1, 12, 4}

    def test_vectorized_shape(self):
        grid = Grid2D(8, 8)
        assert grid.node_neighbors(np.arange(64)).shape == (64, 4)
