"""Tests for the replicated-mesh baseline (Lubeck & Faber scheme)."""

import numpy as np
import pytest

from repro.core import ParticlePartitioner
from repro.machine import MachineModel, VirtualMachine
from repro.mesh import CurveBlockDecomposition, Grid2D
from repro.particles import uniform_plasma
from repro.pic import ParallelPIC, SequentialPIC
from repro.pic.replicated import ReplicatedMeshPIC


def build(grid, particles, p=4):
    vm = VirtualMachine(p, MachineModel.cm5())
    # placement is irrelevant for the replicated scheme: round-robin
    local = [particles.take(np.arange(r, particles.n, p)) for r in range(p)]
    return vm, ReplicatedMeshPIC(vm, grid, local)


class TestEquivalence:
    def test_matches_sequential(self):
        grid = Grid2D(16, 16)
        particles = uniform_plasma(grid, 1024, rng=0)
        vm, pic = build(grid, particles)
        seq = SequentialPIC(grid, particles.copy(), dt=pic.dt)
        for _ in range(8):
            pic.step()
            seq.step()
        par = pic.all_particles()
        po, so = np.argsort(par.ids), np.argsort(seq.particles.ids)
        np.testing.assert_allclose(par.x[po], seq.particles.x[so], atol=1e-9)
        np.testing.assert_allclose(pic.fields.ez, seq.fields.ez, atol=1e-9)

    def test_placement_does_not_matter_physically(self):
        grid = Grid2D(16, 8)
        particles = uniform_plasma(grid, 512, rng=1)
        _, by_roundrobin = build(grid, particles)
        vm2 = VirtualMachine(4, MachineModel.cm5())
        aligned = ParticlePartitioner(grid).initial_partition(particles, 4)
        by_curve = ReplicatedMeshPIC(vm2, grid, aligned, dt=by_roundrobin.dt)
        for _ in range(5):
            by_roundrobin.step()
            by_curve.step()
        a = by_roundrobin.all_particles()
        b = by_curve.all_particles()
        oa, ob = np.argsort(a.ids), np.argsort(b.ids)
        np.testing.assert_allclose(a.x[oa], b.x[ob], atol=1e-9)


class TestCommunicationStructure:
    def test_scatter_volume_proportional_to_mesh(self):
        """The global sum moves the whole source set regardless of how
        many particles there are."""
        particles_small = uniform_plasma(Grid2D(16, 16), 256, rng=2)
        particles_large = uniform_plasma(Grid2D(16, 16), 4096, rng=2)
        vols = []
        for particles in (particles_small, particles_large):
            vm, pic = build(Grid2D(16, 16), particles)
            pic.step()
            vols.append(vm.stats.phase("scatter").bytes_sent.max())
        assert vols[0] == vols[1]

    def test_gather_push_no_communication(self):
        grid = Grid2D(16, 16)
        particles = uniform_plasma(grid, 512, rng=3)
        vm, pic = build(grid, particles)
        pic.step()
        assert vm.stats.phase("gather").total_msgs == 0
        assert vm.stats.phase("push").total_msgs == 0

    def test_global_ops_dominate_at_scale(self):
        """The paper's point: for large p the replicated scheme's
        communication time dwarfs the distributed scheme's."""
        grid = Grid2D(32, 32)
        particles = uniform_plasma(grid, 4096, rng=4)

        def comm_time(p, scheme):
            vm = VirtualMachine(p, MachineModel.cm5())
            if scheme == "replicated":
                local = [particles.take(np.arange(r, particles.n, p)) for r in range(p)]
                pic = ReplicatedMeshPIC(vm, grid, local)
            else:
                decomp = CurveBlockDecomposition(grid, p, "hilbert")
                local = ParticlePartitioner(grid).initial_partition(particles, p)
                pic = ParallelPIC(vm, grid, decomp, local)
            for _ in range(3):
                pic.step()
            return vm.comm_time.max()

        assert comm_time(32, "replicated") > 2 * comm_time(32, "distributed")


class TestValidation:
    def test_rank_count_mismatch(self):
        grid = Grid2D(8, 8)
        vm = VirtualMachine(4)
        with pytest.raises(ValueError):
            ReplicatedMeshPIC(vm, grid, [uniform_plasma(grid, 8, rng=0)])

    def test_empty_rank_tolerated(self):
        grid = Grid2D(8, 8)
        vm = VirtualMachine(2)
        particles = uniform_plasma(grid, 64, rng=5)
        from repro.particles import ParticleArray

        pic = ReplicatedMeshPIC(vm, grid, [particles, ParticleArray.empty(0)])
        pic.step()
        assert pic.iteration == 1
