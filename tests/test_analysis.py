"""Tests for analysis helpers (efficiency, report formatting)."""

import numpy as np
import pytest

from repro.analysis import ascii_series, efficiency, format_table, speedup


class TestSpeedupEfficiency:
    def test_linear_speedup(self):
        assert speedup(100.0, 25.0) == pytest.approx(4.0)

    def test_efficiency_perfect(self):
        assert efficiency(100.0, 25.0, 4) == pytest.approx(1.0)

    def test_efficiency_sublinear(self):
        assert efficiency(100.0, 50.0, 4) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValueError):
            speedup(0.0, 1.0)
        with pytest.raises(ValueError):
            efficiency(1.0, 1.0, 0)


class TestFormatTable:
    def test_alignment_and_floats(self):
        out = format_table(["name", "t"], [["a", 1.234], ["bb", 10.0]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "1.23" in out and "10.00" in out

    def test_title(self):
        out = format_table(["x"], [[1]], title="Table 9")
        assert out.splitlines()[0] == "Table 9"

    def test_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        out = format_table(["a"], [])
        assert "a" in out


class TestAsciiSeries:
    def test_contains_extremes(self):
        out = ascii_series(np.linspace(0, 1, 50), label="ramp")
        assert "ramp" in out and "min=0" in out

    def test_empty(self):
        assert "empty" in ascii_series(np.array([]), label="x")

    def test_constant_series(self):
        out = ascii_series(np.ones(10))
        assert "*" in out

    def test_downsampling(self):
        out = ascii_series(np.sin(np.linspace(0, 10, 1000)), width=40)
        longest = max(len(line) for line in out.splitlines())
        assert longest <= 42

    def test_rejects_2d(self):
        with pytest.raises(ValueError):
            ascii_series(np.zeros((2, 2)))
