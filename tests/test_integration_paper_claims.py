"""Integration tests asserting the paper's qualitative results.

These are scaled-down versions of the evaluation runs (small meshes,
fewer iterations) that must reproduce the *shape* of every headline
claim; the benchmarks regenerate the full tables and figures.
"""

import numpy as np
import pytest

from repro.pic import Simulation, SimulationConfig


def run(policy, scheme="hilbert", dist="irregular", iters=100, p=16, **kwargs):
    params = dict(
        nx=64,
        ny=32,
        nparticles=8192,
        p=p,
        distribution=dist,
        policy=policy,
        scheme=scheme,
        seed=3,
        vth=0.08,
    )
    params.update(kwargs)
    return Simulation(SimulationConfig(**params)).run(iters)


@pytest.fixture(scope="module")
def results():
    """One shared sweep over the policies (module-scoped, ~40 s).

    250 iterations: long enough that even the most frequent period beats
    static, as in the paper's 2000-iteration Figure 16.
    """
    policies = ["static", "periodic:50", "periodic:25", "periodic:10", "periodic:5", "dynamic"]
    return {pol: run(pol, iters=250) for pol in policies}


class TestFig16StaticVsPeriodic:
    def test_every_periodic_beats_static(self, results):
        static = results["static"].total_time
        for k in (50, 25, 10, 5):
            assert results[f"periodic:{k}"].total_time < static

    def test_optimal_period_is_interior(self, results):
        """Too-frequent redistribution costs more than it saves: period 5
        must be worse than the best period (the U-shape of Fig 20)."""
        totals = {k: results[f"periodic:{k}"].total_time for k in (50, 25, 10, 5)}
        best = min(totals.values())
        assert totals[5] > best


class TestFig17to19Series:
    def test_static_series_grow(self, results):
        r = results["static"]
        t = r.iteration_times
        assert t[-10:].mean() > 1.1 * t[:10].mean()
        volumes = r.scatter_max_bytes
        assert volumes[-10:].mean() > volumes[:10].mean()
        msgs = r.scatter_max_msgs
        assert msgs[-10:].mean() >= msgs[:10].mean()

    def test_periodic_series_stay_lower(self, results):
        static = results["static"]
        periodic = results["periodic:10"]
        assert periodic.iteration_times[-10:].mean() < static.iteration_times[-10:].mean()
        assert periodic.scatter_max_bytes[-10:].mean() < static.scatter_max_bytes[-10:].mean()


class TestFig20Dynamic:
    def test_dynamic_close_to_best_periodic(self, results):
        best = min(results[f"periodic:{k}"].total_time for k in (50, 25, 10, 5))
        dynamic = results["dynamic"].total_time
        assert dynamic <= 1.05 * best

    def test_dynamic_beats_static(self, results):
        assert results["dynamic"].total_time < results["static"].total_time

    def test_dynamic_actually_redistributes(self, results):
        assert results["dynamic"].n_redistributions >= 1


class TestTable2Indexing:
    @pytest.mark.parametrize("dist", ["uniform", "irregular"])
    def test_hilbert_overhead_not_worse_than_snake(self, dist):
        hil = run("dynamic", scheme="hilbert", dist=dist, iters=60)
        snk = run("dynamic", scheme="snake", dist=dist, iters=60)
        assert hil.overhead <= 1.1 * snk.overhead

    def test_hilbert_overhead_below_snake_static(self):
        """Without any redistribution, the pure indexing-quality gap:
        Hilbert subdomains have smaller perimeters, so less scatter and
        gather traffic accumulates (overhead = execution - computation)."""
        hil = run("static", scheme="hilbert", iters=30)
        snk = run("static", scheme="snake", iters=30)
        assert hil.overhead < snk.overhead


class TestTable3Scaling:
    def test_time_decreases_with_processors(self):
        t = {}
        for p in (8, 16, 32):
            t[p] = run("dynamic", p=p, iters=40).total_time
        assert t[32] < t[16] < t[8]

    def test_constant_granularity_similar_efficiency(self):
        """n/p fixed: modeled efficiency stays within a modest band
        (the paper's scalability observation #3)."""
        cfgs = [(8, 4096), (16, 8192), (32, 16384)]
        eff = []
        for p, n in cfgs:
            r = run("dynamic", p=p, iters=40, nparticles=n)
            eff.append(r.computation_time / r.total_time)
        assert max(eff) - min(eff) < 0.2


class TestSeedRobustness:
    def test_core_ordering_holds_on_other_seeds(self):
        """The headline ordering (periodic:25 < static, dynamic <= 1.1x
        best seen) is not an artifact of the fixture seed."""
        for seed in (7, 11):
            static = run("static", iters=120, seed=seed)
            periodic = run("periodic:25", iters=120, seed=seed)
            dynamic = run("dynamic", iters=120, seed=seed)
            assert periodic.total_time < static.total_time, f"seed {seed}"
            assert dynamic.total_time < static.total_time, f"seed {seed}"
            assert dynamic.total_time <= 1.1 * periodic.total_time, f"seed {seed}"


class TestRedistributionOverheadShare:
    def test_redistribution_below_total_overhead(self, results):
        """Paper: redistribution accounted for < 20% of total overhead on
        128 processors; at our scale it must at least stay a minority
        share."""
        r = results["dynamic"]
        assert r.redistribution_time < 0.5 * r.overhead
