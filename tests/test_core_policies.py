"""Tests for redistribution decision policies (paper §5.2)."""

import pytest

from repro.core import DynamicSARPolicy, PeriodicPolicy, StaticPolicy, make_policy
from repro.core.policies import RedistributionPolicy, policy_from_state, policy_spec


class TestStatic:
    def test_never_triggers(self):
        policy = StaticPolicy()
        for it in range(100):
            policy.record_iteration(it, 1.0 + it)
            assert not policy.should_redistribute(it)


class TestPeriodic:
    def test_fires_every_k(self):
        policy = PeriodicPolicy(5)
        fired = [it for it in range(20) if policy.should_redistribute(it)]
        assert fired == [4, 9, 14, 19]

    def test_period_one_fires_always(self):
        policy = PeriodicPolicy(1)
        assert all(policy.should_redistribute(it) for it in range(5))

    def test_rejects_bad_period(self):
        with pytest.raises(ValueError):
            PeriodicPolicy(0)


class TestDynamicSAR:
    def test_no_trigger_before_observations(self):
        assert not DynamicSARPolicy().should_redistribute(0)

    def test_no_trigger_on_flat_times(self):
        policy = DynamicSARPolicy(initial_cost=1.0)
        for it in range(10):
            policy.record_iteration(it, 2.0)
        assert not policy.should_redistribute(9)

    def test_triggers_per_equation_one(self):
        """(t1 - t0) * (i1 - i0) >= T_redistribution."""
        policy = DynamicSARPolicy(initial_cost=4.0)
        policy.record_iteration(0, 1.0)  # i0 = 0, t0 = 1
        policy.record_iteration(1, 2.0)  # rise 1 * span 1 = 1 < 4
        assert not policy.should_redistribute(1)
        policy.record_iteration(2, 3.0)  # rise 2 * span 2 = 4 >= 4
        assert policy.should_redistribute(2)

    def test_cost_update_resets_window(self):
        policy = DynamicSARPolicy(initial_cost=0.5)
        policy.record_iteration(0, 1.0)
        policy.record_iteration(1, 3.0)
        assert policy.should_redistribute(1)
        policy.record_redistribution(1, 10.0)
        policy.record_iteration(2, 1.0)
        policy.record_iteration(3, 2.0)
        # rise 1 * span 1 = 1 < new cost 10
        assert not policy.should_redistribute(3)

    def test_expensive_redistribution_raises_threshold(self):
        cheap = DynamicSARPolicy(initial_cost=0.1)
        dear = DynamicSARPolicy(initial_cost=100.0)
        for policy in (cheap, dear):
            policy.record_iteration(0, 1.0)
            policy.record_iteration(1, 1.5)
        assert cheap.should_redistribute(1)
        assert not dear.should_redistribute(1)

    def test_decreasing_time_never_triggers(self):
        policy = DynamicSARPolicy(initial_cost=0.0)
        policy.record_iteration(0, 5.0)
        policy.record_iteration(1, 4.0)
        assert not policy.should_redistribute(1)

    def test_rejects_negative_cost(self):
        with pytest.raises(ValueError):
            DynamicSARPolicy(initial_cost=-1.0)


class TestMakePolicy:
    def test_specs(self):
        assert isinstance(make_policy("static"), StaticPolicy)
        assert isinstance(make_policy("dynamic"), DynamicSARPolicy)
        periodic = make_policy("periodic:25")
        assert isinstance(periodic, PeriodicPolicy) and periodic.period == 25

    def test_instance_passthrough(self):
        policy = StaticPolicy()
        assert make_policy(policy) is policy

    def test_unknown_spec(self):
        with pytest.raises(ValueError, match="unknown policy"):
            make_policy("sometimes")

    def test_bad_period_string(self):
        with pytest.raises(ValueError):
            make_policy("periodic:x")


class TestStateRoundtrip:
    """Checkpointed policy state must reproduce the same future decisions."""

    def test_dynamic_mid_history_decisions_match(self):
        original = DynamicSARPolicy(initial_cost=4.0)
        original.record_iteration(0, 1.0)
        original.record_iteration(1, 2.0)  # window now (0, 1.0), (1, 2.0)

        restored = policy_from_state(original.state_dict())
        assert isinstance(restored, DynamicSARPolicy)
        assert restored.redistribution_cost == original.redistribution_cost

        # Both see the same next observation and must agree at every step.
        for policy in (original, restored):
            policy.record_iteration(2, 3.0)  # rise 2 * span 2 = 4 >= 4
        assert original.should_redistribute(2)
        assert restored.should_redistribute(2)

    def test_dynamic_cost_and_window_survive(self):
        original = DynamicSARPolicy(initial_cost=0.5)
        original.record_iteration(0, 1.0)
        original.record_redistribution(0, 7.25)
        original.record_iteration(1, 2.0)

        state = original.state_dict()
        restored = policy_from_state(state)
        assert restored.redistribution_cost == 7.25
        assert restored.state_dict() == state

    def test_dynamic_empty_window(self):
        restored = policy_from_state(DynamicSARPolicy().state_dict())
        assert not restored.should_redistribute(0)

    def test_periodic_roundtrip(self):
        restored = policy_from_state(PeriodicPolicy(5).state_dict())
        assert isinstance(restored, PeriodicPolicy) and restored.period == 5
        fired = [it for it in range(20) if restored.should_redistribute(it)]
        assert fired == [4, 9, 14, 19]

    def test_static_roundtrip(self):
        assert isinstance(policy_from_state(StaticPolicy().state_dict()), StaticPolicy)

    def test_unknown_type_rejected(self):
        with pytest.raises(ValueError, match="unknown policy type"):
            policy_from_state({"type": "OracularPolicy"})

    def test_periodic_bad_state_rejected(self):
        with pytest.raises(ValueError):
            policy_from_state({"type": "PeriodicPolicy", "period": 0})

    def test_policy_spec_canonical(self):
        assert policy_spec(StaticPolicy()) == "static"
        assert policy_spec(PeriodicPolicy(25)) == "periodic:25"
        assert policy_spec(DynamicSARPolicy()) == "dynamic"
        # spec string feeds straight back into make_policy
        assert make_policy(policy_spec(PeriodicPolicy(7))).period == 7
