"""Tests for the FDTD Maxwell solver."""

import numpy as np
import pytest

from repro.mesh import FieldState, Grid2D
from repro.pic.maxwell import MaxwellSolver, curl


@pytest.fixture
def grid():
    return Grid2D(32, 32, lx=32.0, ly=32.0)


@pytest.fixture
def solver(grid):
    return MaxwellSolver(grid)


class TestCurl:
    def test_curl_of_constant_is_zero(self):
        f = np.ones((8, 8))
        cx, cy, cz = curl(f, f, f, 1.0, 1.0)
        assert np.all(cx == 0) and np.all(cy == 0) and np.all(cz == 0)

    def test_curl_of_linear_in_sine(self):
        """curl of fz = sin(2 pi x / L): cy = -d fz/dx."""
        n = 64
        x = np.arange(n)
        fz = np.tile(np.sin(2 * np.pi * x / n), (n, 1))
        _, cy, _ = curl(np.zeros((n, n)), np.zeros((n, n)), fz, 1.0, 1.0)
        expected = -2 * np.pi / n * np.cos(2 * np.pi * x / n)
        assert np.allclose(cy[0], expected, atol=1e-3)


class TestCFL:
    def test_limit_value(self, grid, solver):
        assert solver.cfl_limit() == pytest.approx(1.0 / np.sqrt(2.0))

    def test_validate_rejects_large_dt(self, solver):
        with pytest.raises(ValueError, match="CFL"):
            solver.validate_dt(1.0)

    def test_validate_rejects_nonpositive(self, solver):
        with pytest.raises(ValueError):
            solver.validate_dt(0.0)


class TestVacuumPropagation:
    def test_plane_wave_advects(self, grid, solver):
        """A z-polarized plane wave should propagate at c = 1."""
        fields = FieldState.zeros(grid)
        k = 2 * np.pi / grid.lx
        x = (np.arange(grid.nx) + 0.0)[None, :] * np.ones((grid.ny, 1))
        fields.ez[:] = np.sin(k * x)
        fields.by[:] = -np.sin(k * x)  # rightward-travelling combination
        dt = 0.5
        steps = 16
        for _ in range(steps):
            solver.step(fields, dt)
        shift = dt * steps  # distance travelled
        expected = np.sin(k * (x - shift))
        # modest tolerance: centred scheme has dispersion error
        err = np.abs(fields.ez - expected).max()
        assert err < 0.15

    def test_vacuum_energy_bounded(self, grid, solver):
        fields = FieldState.zeros(grid)
        rng = np.random.default_rng(0)
        fields.ez[:] = rng.normal(size=grid.shape)
        e0 = fields.field_energy(grid)
        for _ in range(200):
            solver.step(fields, 0.5)
        e1 = fields.field_energy(grid)
        assert e1 == pytest.approx(e0, rel=0.05)

    def test_zero_fields_stay_zero(self, grid, solver):
        fields = FieldState.zeros(grid)
        solver.step(fields, 0.5)
        assert fields.ex.sum() == 0 and fields.bz.sum() == 0


class TestSources:
    def test_uniform_current_with_subtraction_is_inert(self, grid, solver):
        fields = FieldState.zeros(grid)
        fields.jz[:] = 5.0
        solver.step(fields, 0.5)
        assert np.allclose(fields.ez, 0.0)

    def test_uniform_current_without_subtraction_drives_e(self, grid):
        solver = MaxwellSolver(grid, subtract_mean_current=False)
        fields = FieldState.zeros(grid)
        fields.jz[:] = 1.0
        solver.step(fields, 0.5)
        assert np.allclose(fields.ez, -0.5)

    def test_localized_current_radiates(self, grid, solver):
        fields = FieldState.zeros(grid)
        fields.jz[16, 16] = 1.0
        for _ in range(10):
            solver.step(fields, 0.5)
        assert fields.field_energy(grid) > 0

    def test_div_b_stays_zero(self, grid, solver):
        """From B = 0 initial data the discrete div B remains ~0."""
        fields = FieldState.zeros(grid)
        rng = np.random.default_rng(1)
        fields.jx[:] = rng.normal(size=grid.shape)
        fields.jy[:] = rng.normal(size=grid.shape)
        for _ in range(50):
            solver.step(fields, 0.5)
        assert solver.divergence_b(fields) < 1e-10
