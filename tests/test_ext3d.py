"""Tests for the 3-D extension (Grid3D, Hilbert decomposition, kernels)."""

import numpy as np
import pytest

from repro.ext3d import (
    CurveBlockDecomposition3D,
    Grid3D,
    ParticlePartitioner3D,
    deposit_density_3d,
    gather_field_3d,
    gaussian_blob_3d,
    uniform_positions_3d,
)
from repro.ext3d.decomposition import hilbert_keys_3d


@pytest.fixture
def grid3():
    return Grid3D(8, 8, 8)


class TestGrid3D:
    def test_counts(self, grid3):
        assert grid3.ncells == 512

    def test_rejects_thin_grid(self):
        with pytest.raises(ValueError):
            Grid3D(1, 4, 4)

    def test_cell_id_roundtrip(self, grid3):
        ids = np.arange(grid3.ncells)
        cx, cy, cz = grid3.cell_coords(ids)
        assert np.array_equal(grid3.cell_id(cx, cy, cz), ids)

    def test_wrap(self, grid3):
        x, y, z = grid3.wrap_positions(np.array([-0.5]), np.array([8.5]), np.array([16.0]))
        assert x[0] == pytest.approx(7.5)
        assert y[0] == pytest.approx(0.5)
        assert z[0] == pytest.approx(0.0)

    def test_cic_weights_sum_to_one(self, grid3):
        rng = np.random.default_rng(0)
        x, y, z = (rng.uniform(0, 8, 200) for _ in range(3))
        nodes, weights = grid3.cic_vertices_weights(x, y, z)
        assert nodes.shape == (200, 8)
        assert np.allclose(weights.sum(axis=1), 1.0)
        assert weights.min() >= 0

    def test_particle_on_node_full_weight(self, grid3):
        nodes, weights = grid3.cic_vertices_weights(
            np.array([3.0]), np.array([2.0]), np.array([5.0])
        )
        assert weights[0, 0] == pytest.approx(1.0)
        assert nodes[0, 0] == (5 * 8 + 2) * 8 + 3


class TestHilbertKeys3D:
    def test_bijective_over_cube(self, grid3):
        ids = np.arange(grid3.ncells)
        keys = hilbert_keys_3d(grid3, *grid3.cell_coords(ids))
        assert np.unique(keys).size == grid3.ncells

    def test_non_cubic_grid(self):
        grid = Grid3D(8, 4, 2)
        ids = np.arange(grid.ncells)
        keys = hilbert_keys_3d(grid, *grid.cell_coords(ids))
        assert np.unique(keys).size == grid.ncells


class TestDecomposition3D:
    def test_balanced(self, grid3):
        decomp = CurveBlockDecomposition3D(grid3, 8)
        counts = decomp.cell_counts()
        assert counts.sum() == 512
        assert counts.max() - counts.min() <= 1

    def test_hilbert_cubes_for_pow8(self, grid3):
        """p = 8 on an 8^3 grid: Hilbert runs are 4x4x4 octants."""
        decomp = CurveBlockDecomposition3D(grid3, 8)
        for r in range(8):
            cx, cy, cz = grid3.cell_coords(decomp.cells_of_rank(r))
            assert cx.max() - cx.min() == 3
            assert cy.max() - cy.min() == 3
            assert cz.max() - cz.min() == 3

    def test_hilbert_surface_below_rowmajor(self):
        grid = Grid3D(16, 16, 16)
        hil = CurveBlockDecomposition3D(grid, 16, "hilbert")
        row = CurveBlockDecomposition3D(grid, 16, "rowmajor")
        hil_surface = sum(hil.surface_area(r) for r in range(16))
        row_surface = sum(row.surface_area(r) for r in range(16))
        assert hil_surface < row_surface

    def test_unknown_scheme(self, grid3):
        with pytest.raises(ValueError):
            CurveBlockDecomposition3D(grid3, 4, "snake")


class TestPartitioner3D:
    def test_partition_is_a_partition(self, grid3):
        part = ParticlePartitioner3D(grid3, 8)
        x, y, z = uniform_positions_3d(grid3, 999, rng=1)
        assignment = part.partition(x, y, z)
        counts = [idx.size for idx in assignment]
        assert sum(counts) == 999
        assert max(counts) - min(counts) <= 1
        all_idx = np.sort(np.concatenate(assignment))
        assert np.array_equal(all_idx, np.arange(999))

    def test_alignment_high_for_uniform(self, grid3):
        part = ParticlePartitioner3D(grid3, 8)
        x, y, z = uniform_positions_3d(grid3, 8192, rng=2)
        fractions = part.alignment_fraction(x, y, z)
        assert fractions.min() > 0.6

    def test_hilbert_fewer_ghosts_than_rowmajor_blob(self):
        grid = Grid3D(16, 16, 16)
        x, y, z = gaussian_blob_3d(grid, 8192, rng=3)
        hil = ParticlePartitioner3D(grid, 16, "hilbert")
        row = ParticlePartitioner3D(grid, 16, "rowmajor")
        assert hil.ghost_vertex_count(x, y, z) < row.ghost_vertex_count(x, y, z)


class TestKernels3D:
    def test_deposition_conserves_charge(self, grid3):
        x, y, z = uniform_positions_3d(grid3, 500, rng=4)
        density = deposit_density_3d(grid3, x, y, z, charge=2.0)
        volume = grid3.dx * grid3.dy * grid3.dz
        assert density.sum() * volume == pytest.approx(1000.0)

    def test_point_deposit(self, grid3):
        density = deposit_density_3d(
            grid3, np.array([2.0]), np.array([3.0]), np.array([4.0])
        )
        node = (4 * 8 + 3) * 8 + 2
        assert density[node] == pytest.approx(1.0)
        assert np.count_nonzero(density) == 1

    def test_gather_constant_field(self, grid3):
        field = np.full(grid3.nnodes, 7.5)
        x, y, z = uniform_positions_3d(grid3, 100, rng=5)
        values = gather_field_3d(grid3, field, x, y, z)
        assert np.allclose(values, 7.5)

    def test_gather_adjoint_of_deposit(self, grid3):
        rng = np.random.default_rng(6)
        field = rng.random(grid3.nnodes)
        x, y, z = uniform_positions_3d(grid3, 64, rng=7)
        density = deposit_density_3d(grid3, x, y, z)
        volume = grid3.dx * grid3.dy * grid3.dz
        lhs = (density * field).sum() * volume
        rhs = gather_field_3d(grid3, field, x, y, z).sum()
        assert lhs == pytest.approx(rhs)

    def test_gather_shape_check(self, grid3):
        with pytest.raises(ValueError):
            gather_field_3d(grid3, np.zeros(3), np.zeros(1), np.zeros(1), np.zeros(1))


class TestDistributedDeposit3D:
    @staticmethod
    def _setup(p=8, n=4096, scheme="hilbert", seed=10):
        from repro.machine import MachineModel, VirtualMachine

        grid = Grid3D(16, 16, 16)
        x, y, z = gaussian_blob_3d(grid, n, rng=seed)
        charge = np.full(n, -1.0)
        part = ParticlePartitioner3D(grid, p, scheme)
        assignment = part.partition(x, y, z)
        positions = [(x[idx], y[idx], z[idx]) for idx in assignment]
        charges = [charge[idx] for idx in assignment]
        vm = VirtualMachine(p, MachineModel.cm5())
        return vm, grid, part.decomp, positions, charges, (x, y, z, charge)

    def test_matches_sequential(self):
        from repro.ext3d import distributed_deposit_3d

        vm, grid, decomp, positions, charges, (x, y, z, charge) = self._setup()
        parallel = distributed_deposit_3d(vm, grid, decomp, positions, charges)
        sequential = deposit_density_3d(grid, x, y, z, charge)
        np.testing.assert_allclose(parallel, sequential, atol=1e-12)

    def test_communication_charged(self):
        from repro.ext3d import distributed_deposit_3d

        vm, grid, decomp, positions, charges, _ = self._setup()
        distributed_deposit_3d(vm, grid, decomp, positions, charges)
        assert vm.stats.phase("scatter").total_msgs > 0
        assert vm.comm_time.max() > 0

    def test_hilbert_traffic_below_rowmajor(self):
        from repro.ext3d import distributed_deposit_3d

        volumes = {}
        for scheme in ("hilbert", "rowmajor"):
            vm, grid, decomp, positions, charges, _ = self._setup(scheme=scheme)
            distributed_deposit_3d(vm, grid, decomp, positions, charges)
            volumes[scheme] = vm.stats.phase("scatter").total_bytes
        assert volumes["hilbert"] < volumes["rowmajor"]

    def test_length_mismatch_rejected(self):
        from repro.ext3d import distributed_deposit_3d

        vm, grid, decomp, positions, charges, _ = self._setup(p=2)
        charges[0] = charges[0][:-1]
        with pytest.raises(ValueError, match="mismatch"):
            distributed_deposit_3d(vm, grid, decomp, positions, charges)


class TestSampling3D:
    def test_uniform_in_domain(self, grid3):
        x, y, z = uniform_positions_3d(grid3, 1000, rng=8)
        for arr, ext in ((x, grid3.lx), (y, grid3.ly), (z, grid3.lz)):
            assert arr.min() >= 0 and arr.max() < ext

    def test_blob_concentrated(self, grid3):
        x, y, z = gaussian_blob_3d(grid3, 4000, sigma_frac=0.05, rng=9)
        r = np.sqrt((x - 4) ** 2 + (y - 4) ** 2 + (z - 4) ** 2)
        assert np.median(r) < 1.0
