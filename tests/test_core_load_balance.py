"""Tests for order-maintaining load balance."""

import numpy as np
import pytest

from repro.core import order_maintaining_balance
from repro.machine import MachineModel, VirtualMachine


def unbalanced_input(p, counts, seed=0):
    rng = np.random.default_rng(seed)
    total = sum(counts)
    all_keys = np.sort(rng.integers(0, 10**6, total))
    keys, payloads = [], []
    start = 0
    for c in counts:
        k = all_keys[start : start + c]
        keys.append(k)
        payloads.append(k.reshape(-1, 1).astype(float))
        start += c
    return keys, payloads


class TestBalance:
    def test_counts_equalized(self):
        vm = VirtualMachine(4, MachineModel.cm5())
        keys, payloads = unbalanced_input(4, [100, 0, 300, 1])
        out_keys, out_payloads = order_maintaining_balance(vm, keys, payloads)
        counts = [k.size for k in out_keys]
        assert max(counts) - min(counts) <= 1
        assert sum(counts) == 401

    def test_global_order_unchanged(self):
        vm = VirtualMachine(4, MachineModel.cm5())
        keys, payloads = unbalanced_input(4, [10, 200, 5, 85], seed=1)
        before = np.concatenate(keys)
        out_keys, _ = order_maintaining_balance(vm, keys, payloads)
        assert np.array_equal(np.concatenate(out_keys), before)

    def test_payload_rides_with_keys(self):
        vm = VirtualMachine(4, MachineModel.cm5())
        keys, payloads = unbalanced_input(4, [50, 0, 0, 50], seed=2)
        out_keys, out_payloads = order_maintaining_balance(vm, keys, payloads)
        for k, m in zip(out_keys, out_payloads):
            assert np.array_equal(k.astype(float), m.ravel())

    def test_already_balanced_no_movement(self):
        vm = VirtualMachine(4, MachineModel.cm5())
        keys, payloads = unbalanced_input(4, [25, 25, 25, 25], seed=3)
        order_maintaining_balance(vm, keys, payloads)
        # allgather of counts is collective, but no point-to-point moves
        assert vm.stats.phase("default").total_msgs <= 2 * vm.p  # collective only

    def test_single_rank(self):
        vm = VirtualMachine(1, MachineModel.cm5())
        keys, payloads = unbalanced_input(1, [42], seed=4)
        out_keys, _ = order_maintaining_balance(vm, keys, payloads)
        assert out_keys[0].size == 42

    def test_all_on_one_rank(self):
        vm = VirtualMachine(4, MachineModel.cm5())
        keys, payloads = unbalanced_input(4, [400, 0, 0, 0], seed=5)
        out_keys, _ = order_maintaining_balance(vm, keys, payloads)
        assert [k.size for k in out_keys] == [100, 100, 100, 100]

    def test_wrong_length_rejected(self):
        vm = VirtualMachine(4, MachineModel.cm5())
        with pytest.raises(ValueError):
            order_maintaining_balance(vm, [np.zeros(1)], [np.zeros((1, 1))])
