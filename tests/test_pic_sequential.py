"""Tests for the sequential reference PIC."""

import numpy as np
import pytest

from repro.mesh import Grid2D
from repro.particles import two_stream, uniform_plasma
from repro.pic import SequentialPIC


class TestConstruction:
    def test_default_dt_under_cfl(self, grid, uniform_particles):
        sim = SequentialPIC(grid, uniform_particles)
        assert sim.dt <= sim.solver.cfl_limit()

    def test_explicit_dt_validated(self, grid, uniform_particles):
        with pytest.raises(ValueError, match="CFL"):
            SequentialPIC(grid, uniform_particles, dt=10.0)


class TestStep:
    def test_iteration_counter(self, grid, uniform_particles):
        sim = SequentialPIC(grid, uniform_particles)
        sim.run(5)
        assert sim.iteration == 5

    def test_negative_iterations_rejected(self, grid, uniform_particles):
        with pytest.raises(ValueError):
            SequentialPIC(grid, uniform_particles).run(-1)

    def test_charge_conserved_every_step(self, grid, uniform_particles):
        sim = SequentialPIC(grid, uniform_particles)
        for _ in range(10):
            sim.step()
            assert sim.charge_conservation_error() < 1e-12

    def test_particles_move(self, grid):
        parts = uniform_plasma(grid, 256, vth=0.1, rng=0)
        sim = SequentialPIC(grid, parts)
        x0 = sim.particles.x.copy()
        sim.run(5)
        assert not np.allclose(sim.particles.x, x0)

    def test_positions_stay_in_domain(self, grid):
        parts = uniform_plasma(grid, 256, vth=0.2, rng=1)
        sim = SequentialPIC(grid, parts)
        sim.run(20)
        assert sim.particles.x.min() >= 0 and sim.particles.x.max() < grid.lx
        assert sim.particles.y.min() >= 0 and sim.particles.y.max() < grid.ly

    def test_deterministic(self, grid):
        a = SequentialPIC(grid, uniform_plasma(grid, 128, rng=5))
        b = SequentialPIC(grid, uniform_plasma(grid, 128, rng=5))
        a.run(10)
        b.run(10)
        assert np.array_equal(a.particles.x, b.particles.x)
        assert np.array_equal(a.fields.ez, b.fields.ez)


class TestPhysics:
    def test_energy_drift_bounded(self):
        """Total (field + kinetic) energy of a quiet, Debye-resolved
        plasma must stay within a factor 2 over a few hundred steps
        (source smoothing + Marder cleaning keep self-heating small)."""
        grid = Grid2D(32, 32)
        parts = uniform_plasma(grid, 32 * 32 * 8, vth=0.02, rng=2)
        sim = SequentialPIC(grid, parts)
        e0 = sim.total_energy()
        sim.run(200)
        e1 = sim.total_energy()
        assert e1 < 2 * e0

    def test_gauss_law_maintained(self):
        """Marder cleaning keeps div E - rho small relative to rho."""
        grid = Grid2D(32, 32)
        parts = uniform_plasma(grid, 32 * 32 * 8, vth=0.05, density=1.0, rng=6)
        sim = SequentialPIC(grid, parts)
        sim.run(100)
        residual = np.abs(sim.solver.gauss_residual(sim.fields)).max()
        assert residual < 0.5 * np.abs(sim.fields.rho).max()

    def test_momentum_roughly_conserved(self):
        grid = Grid2D(16, 16)
        parts = uniform_plasma(grid, 4096, vth=0.05, rng=3)
        sim = SequentialPIC(grid, parts)
        p0 = sim.particles.momentum()
        sim.run(100)
        p1 = sim.particles.momentum()
        scale = (sim.particles.w * sim.particles.m * 0.05).sum()
        assert np.abs(p1 - p0).max() < 0.05 * scale

    def test_two_stream_instability_grows_field_energy(self):
        """The two-stream setup must pump kinetic energy into the fields —
        a canonical end-to-end PIC correctness check."""
        grid = Grid2D(64, 8, lx=64.0, ly=8.0)
        parts = two_stream(grid, 64 * 8 * 32, vdrift=0.2, vth=0.005, density=1.0, rng=4)
        sim = SequentialPIC(grid, parts, dt=0.5)
        sim.step()
        early = sim.fields.field_energy(grid)
        sim.run(300)
        late = sim.fields.field_energy(grid)
        assert late > 10 * early
