"""Tests for per-phase, per-rank communication statistics."""

import numpy as np
import pytest

from repro.machine import CommStats, PhaseComm


class TestPhaseComm:
    def test_zeros(self):
        rec = PhaseComm.zeros(4)
        assert rec.max_msgs == 0 and rec.max_bytes == 0

    def test_max_is_over_both_directions(self):
        rec = PhaseComm.zeros(3)
        rec.bytes_sent[0] = 10
        rec.bytes_recv[2] = 25
        assert rec.max_bytes == 25
        rec.msgs_sent[1] = 7
        assert rec.max_msgs == 7

    def test_add(self):
        a = PhaseComm.zeros(2)
        b = PhaseComm.zeros(2)
        a.bytes_sent[0] = 5
        b.bytes_sent[0] = 3
        a.add(b)
        assert a.bytes_sent[0] == 8

    def test_copy_is_deep(self):
        a = PhaseComm.zeros(2)
        b = a.copy()
        b.bytes_sent[0] = 99
        assert a.bytes_sent[0] == 0

    def test_totals(self):
        rec = PhaseComm.zeros(2)
        rec.bytes_sent[:] = [3, 4]
        rec.msgs_sent[:] = [1, 2]
        assert rec.total_bytes == 7 and rec.total_msgs == 3


class TestCommStats:
    def test_record_message_both_ends(self):
        stats = CommStats(4)
        stats.record_message("scatter", src=1, dst=2, nbytes=100)
        rec = stats.phase("scatter")
        assert rec.msgs_sent[1] == 1 and rec.msgs_recv[2] == 1
        assert rec.bytes_sent[1] == 100 and rec.bytes_recv[2] == 100

    def test_phases_accumulate_independently(self):
        stats = CommStats(2)
        stats.record_message("scatter", 0, 1, 10)
        stats.record_message("gather", 1, 0, 20)
        assert stats.phase("scatter").total_bytes == 10
        assert stats.phase("gather").total_bytes == 20
        assert stats.phases() == ["gather", "scatter"]

    def test_unknown_phase_is_zeros(self):
        assert CommStats(2).phase("nope").max_bytes == 0

    def test_snapshot_epoch_resets(self):
        stats = CommStats(2)
        stats.record_message("scatter", 0, 1, 10)
        snap = stats.snapshot_epoch()
        assert snap["scatter"].total_bytes == 10
        assert stats.phase("scatter").total_bytes == 0

    def test_record_collective(self):
        stats = CommStats(3)
        stats.record_collective("redistribution", np.array([10, 20, 30]))
        rec = stats.phase("redistribution")
        assert rec.bytes_sent.tolist() == [10, 20, 30]
        assert np.all(rec.bytes_recv == 60)
        assert np.all(rec.msgs_sent == 1)

    def test_rank_range_checked(self):
        with pytest.raises(ValueError):
            CommStats(2).record_message("x", 0, 5, 1)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            CommStats(2).record_message("x", 0, 1, -1)

    def test_reset(self):
        stats = CommStats(2)
        stats.record_message("x", 0, 1, 5)
        stats.reset()
        assert stats.phases() == []
