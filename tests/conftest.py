"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.machine import MachineModel, VirtualMachine
from repro.mesh import CurveBlockDecomposition, Grid2D
from repro.particles import gaussian_blob, uniform_plasma


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def grid():
    """A small power-of-two grid."""
    return Grid2D(16, 8)


@pytest.fixture
def big_grid():
    return Grid2D(64, 32)


@pytest.fixture
def vm4():
    return VirtualMachine(4, MachineModel.cm5())


@pytest.fixture
def vm8():
    return VirtualMachine(8, MachineModel.cm5())


@pytest.fixture
def decomp(grid):
    return CurveBlockDecomposition(grid, 4, "hilbert")


@pytest.fixture
def uniform_particles(grid):
    return uniform_plasma(grid, 512, rng=7)


@pytest.fixture
def blob_particles(grid):
    return gaussian_blob(grid, 512, rng=7)
