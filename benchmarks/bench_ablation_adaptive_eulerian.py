"""Ablation (future work) — adaptive Eulerian vs the paper's Lagrangian.

The paper's scheme moves particles between fixed mesh blocks (direct
Lagrangian + Hilbert redistribution).  Its modern descendants move the
*block boundaries* instead (direct Eulerian + curve rebalancing), which
keeps scatter/gather local by construction but unbalances the field
solve and pays per-step migration.  This bench runs both (plus the
never-rebalanced Eulerian baseline) on the irregular workload and
reports totals, final particle balance, and overhead.
"""

from __future__ import annotations

import numpy as np

from benchmarks._shared import write_report
from repro.analysis import format_table
from repro.core.metrics import load_imbalance
from repro.pic import Simulation, SimulationConfig
from repro.workloads import scaled_iterations

VARIANTS = [
    ("lagrangian + dynamic redistribution", dict(movement="lagrangian", partitioning="independent", policy="dynamic")),
    ("eulerian + adaptive rebalancing", dict(movement="eulerian", partitioning="adaptive", policy="dynamic")),
    ("eulerian, never rebalanced", dict(movement="eulerian", partitioning="grid", policy="static")),
]


def run_variants():
    iters = scaled_iterations(200, minimum=60)
    rows = []
    for label, overrides in VARIANTS:
        config = SimulationConfig(
            nx=64,
            ny=32,
            nparticles=8192,
            p=16,
            distribution="irregular",
            seed=3,
            vth=0.08,
            **overrides,
        )
        sim = Simulation(config)
        result = sim.run(iters)
        balance = load_imbalance(
            np.array([p.n for p in sim.pic.particles], dtype=float)
        )
        rows.append(
            [label, result.total_time, result.overhead, result.n_redistributions, balance]
        )
    return rows


def bench_ablation_adaptive_eulerian(benchmark):
    rows = benchmark.pedantic(run_variants, rounds=1, iterations=1)
    report = format_table(
        ["variant", "total (s)", "overhead (s)", "#rebalance", "final particle imbalance"],
        rows,
        title="Ablation: Lagrangian redistribution (paper) vs adaptive Eulerian "
        "(descendant codes), irregular, 16 procs",
    )
    write_report("ablation_adaptive_eulerian", report)

    by_label = {r[0]: r for r in rows}
    lag = by_label["lagrangian + dynamic redistribution"]
    ada = by_label["eulerian + adaptive rebalancing"]
    never = by_label["eulerian, never rebalanced"]
    # both managed schemes keep particle balance reasonable; the
    # unmanaged Eulerian baseline does not
    assert lag[4] < 1.2 and ada[4] < 1.5
    assert never[4] > 2.0
    # both managed schemes beat the unmanaged baseline end-to-end
    assert lag[1] < never[1]
    assert ada[1] < never[1]
