"""Paper Figure 17 — per-iteration execution time series.

Irregular distribution, 128x64 mesh, 32768 particles, 32 processors.
The static run's iteration time climbs as particle subdomains drift;
periodic redistribution repeatedly resets it.
"""

from __future__ import annotations

import functools

import numpy as np

from benchmarks._shared import run_simulation, write_report
from repro.analysis import ascii_series
from repro.workloads import FIG17_CASE, scaled_iterations


@functools.lru_cache(maxsize=None)
def fig17_series(policy: str):
    """Shared runs for Figures 17-19 (same configuration, same series)."""
    iters = scaled_iterations(FIG17_CASE.iterations, minimum=100)
    return run_simulation(policy=policy, iterations=iters, **FIG17_CASE.config_kwargs())


def bench_fig17_iteration_time(benchmark):
    results = benchmark.pedantic(
        lambda: {p: fig17_series(p) for p in ("static", "periodic:25")},
        rounds=1,
        iterations=1,
    )
    parts = []
    for policy, result in results.items():
        parts.append(
            ascii_series(
                result.iteration_times,
                label=f"Fig 17 [{policy}]: execution time per iteration (s)",
            )
        )
    write_report("fig17_iteration_time", "\n\n".join(parts))

    static = results["static"].iteration_times
    periodic = results["periodic:25"].iteration_times
    assert static[-10:].mean() > 1.1 * static[:10].mean(), "static series must grow"
    assert periodic[-10:].mean() < static[-10:].mean(), (
        "periodic redistribution must keep late iterations cheaper"
    )
