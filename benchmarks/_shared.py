"""Shared machinery for the benchmark harness.

Each ``bench_*`` file regenerates one of the paper's tables or figures:
it runs the (scaled) experiment on the virtual CM-5, prints the same
rows/series the paper reports, writes them under
``benchmarks/results/``, and asserts the qualitative shape.  The
``benchmark`` fixture wraps the experiment (``pedantic``, one round) so
``pytest benchmarks/ --benchmark-only`` also reports wall times.

Iteration counts are the paper's scaled by ``REPRO_SCALE`` (default 0.1;
export ``REPRO_SCALE=1`` for the full 2000/200-iteration runs).

Expensive sweeps (the Table 2 family feeding Table 3 and Figures 21/22)
are cached per-process so the three reports share one set of runs.
"""

from __future__ import annotations

import functools
import os
from pathlib import Path

from repro.pic import Simulation, SimulationConfig, SimulationResult
from repro.workloads import TABLE2_CASES, scaled_iterations

RESULTS_DIR = Path(__file__).parent / "results"

#: Seed used by every benchmark run (the paper's trends are not
#: seed-sensitive; fixing it makes reruns comparable).
SEED = 3

#: Thermal spread used for the policy benchmarks — warm enough that
#: subdomains drift visibly within the scaled iteration counts.
VTH = 0.08


def write_report(name: str, text: str) -> Path:
    """Print ``text`` and persist it to ``benchmarks/results/<name>.txt``."""
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.txt"
    path.write_text(text + "\n")
    print()
    print(text)
    print(f"[written to {path}]")
    return path


def run_simulation(
    *,
    nx: int,
    ny: int,
    nparticles: int,
    p: int,
    distribution: str,
    policy: str,
    scheme: str = "hilbert",
    iterations: int,
    seed: int = SEED,
    vth: float = VTH,
    **kwargs,
) -> SimulationResult:
    """Build and run one configured simulation."""
    config = SimulationConfig(
        nx=nx,
        ny=ny,
        nparticles=nparticles,
        p=p,
        distribution=distribution,
        policy=policy,
        scheme=scheme,
        seed=seed,
        vth=vth,
        **kwargs,
    )
    return Simulation(config).run(iterations)


@functools.lru_cache(maxsize=None)
def table2_run(case_name: str, scheme: str) -> SimulationResult:
    """One (case, scheme) cell of the Table 2 sweep, cached for reuse by
    Table 3 and Figures 21/22."""
    case = {c.name: c for c in TABLE2_CASES}[case_name]
    iters = scaled_iterations(case.iterations)
    return run_simulation(
        policy="dynamic",
        scheme=scheme,
        iterations=iters,
        **case.config_kwargs(),
    )


def table2_case_names(max_p: int | None = None) -> list[str]:
    """Names of the Table 2 cases, optionally capped at ``max_p`` ranks.

    ``REPRO_MAX_P`` (default 128 = everything) trims the heaviest rows
    for quick local runs.
    """
    if max_p is None:
        max_p = int(os.environ.get("REPRO_MAX_P", "128"))
    return [c.name for c in TABLE2_CASES if c.p <= max_p]
