"""Paper Figure 19 — max number of messages in the scatter phase.

Same configuration as Figure 17; the plotted quantity is the maximum
message count any processor sends or receives per iteration (driven by
how many mesh subdomains each drifting particle subdomain overlaps).
"""

from __future__ import annotations

from benchmarks._shared import write_report
from benchmarks.bench_fig17_iteration_time import fig17_series
from repro.analysis import ascii_series


def bench_fig19_max_messages(benchmark):
    results = benchmark.pedantic(
        lambda: {p: fig17_series(p) for p in ("static", "periodic:25")},
        rounds=1,
        iterations=1,
    )
    parts = []
    for policy, result in results.items():
        parts.append(
            ascii_series(
                result.scatter_max_msgs.astype(float),
                label=f"Fig 19 [{policy}]: max scatter messages sent/recv by any proc",
            )
        )
    write_report("fig19_max_messages", "\n\n".join(parts))

    static = results["static"].scatter_max_msgs
    periodic = results["periodic:25"].scatter_max_msgs
    assert static[-10:].mean() >= static[:10].mean(), "static message count must not shrink"
    assert periodic.max() <= static.max(), (
        "redistribution must cap the worst-case partner count"
    )
