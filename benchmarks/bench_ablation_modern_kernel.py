"""Ablation — the paper's distribution machinery under a modern kernel.

Runs the era loop (CIC currents + collocated FDTD + Marder, as the paper
describes) and the modern loop (Yee + zigzag, exactly charge
conserving) with the *same* Hilbert curve-block distribution, and
compares communication structure and totals.  The claim under test:
the paper's alignment strategy transfers — curve-aligned placement
beats round-robin placement by a similar factor on both kernels.
"""

from __future__ import annotations

import numpy as np

from benchmarks._shared import write_report
from repro.analysis import format_table
from repro.core import ParticlePartitioner
from repro.machine import MachineModel, VirtualMachine
from repro.mesh import CurveBlockDecomposition, Grid2D
from repro.particles import gaussian_blob
from repro.pic import ParallelPIC
from repro.pic.parallel_yee import ParallelYeePIC
from repro.workloads import scaled_iterations

P = 16


def run_kernels():
    grid = Grid2D(64, 32)
    particles = gaussian_blob(grid, 8192, rng=3)
    iters = scaled_iterations(200, minimum=20)
    rows = []
    for kernel in ("era", "modern"):
        for placement in ("aligned", "roundrobin"):
            vm = VirtualMachine(P, MachineModel.cm5())
            decomp = CurveBlockDecomposition(grid, P, "hilbert")
            if placement == "aligned":
                local = ParticlePartitioner(grid, "hilbert").initial_partition(particles, P)
            else:
                local = [particles.take(np.arange(r, particles.n, P)) for r in range(P)]
            if kernel == "era":
                pic = ParallelPIC(vm, grid, decomp, local)
            else:
                pic = ParallelYeePIC(vm, grid, decomp, local)
            for _ in range(iters):
                pic.step()
            comm = float(vm.comm_time.max())
            rows.append([kernel, placement, vm.elapsed(), comm])
    return rows


def bench_ablation_modern_kernel(benchmark):
    rows = benchmark.pedantic(run_kernels, rounds=1, iterations=1)
    report = format_table(
        ["kernel", "placement", "total (s)", "comm (s)"],
        rows,
        title="Ablation: era (CIC+collocated) vs modern (Yee+zigzag) kernels "
        f"under the paper's distribution ({P} procs, irregular)",
    )
    write_report("ablation_modern_kernel", report)

    by_key = {(r[0], r[1]): r for r in rows}
    for kernel in ("era", "modern"):
        aligned_comm = by_key[(kernel, "aligned")][3]
        scattered_comm = by_key[(kernel, "roundrobin")][3]
        assert aligned_comm < 0.6 * scattered_comm, (
            f"{kernel}: alignment must cut communication substantially"
        )
        assert by_key[(kernel, "aligned")][2] < by_key[(kernel, "roundrobin")][2]
