"""Ablation — do the paper's policy conclusions hold on the modern kernel?

Re-runs the Figure 20 comparison (periodic sweep vs dynamic SAR vs
static) with ``kernel="modern"`` (Yee + zigzag).  The redistribution
economics are kernel-independent, so the same ordering must appear:
every periodic beats static, and dynamic lands at (or near) the best
periodic with no tuning.
"""

from __future__ import annotations

from benchmarks._shared import run_simulation, write_report
from repro.analysis import format_table
from repro.workloads import scaled_iterations

PERIODS = [50, 25, 10, 5]


def run_modern_policies():
    iters = scaled_iterations(200, minimum=100)
    rows = []
    common = dict(
        nx=64,
        ny=32,
        nparticles=8192,
        p=16,
        distribution="irregular",
        kernel="modern",
        iterations=iters,
    )
    for k in PERIODS:
        result = run_simulation(policy=f"periodic:{k}", **common)
        rows.append([f"periodic:{k}", result.total_time, result.n_redistributions])
    dyn = run_simulation(policy="dynamic", **common)
    rows.append(["dynamic", dyn.total_time, dyn.n_redistributions])
    static = run_simulation(policy="static", **common)
    rows.append(["static", static.total_time, 0])
    return rows


def bench_ablation_policies_modern(benchmark):
    rows = benchmark.pedantic(run_modern_policies, rounds=1, iterations=1)
    report = format_table(
        ["policy", "total time (s)", "#redis"],
        rows,
        title="Ablation: redistribution policies on the modern (Yee + zigzag) kernel",
    )
    write_report("ablation_policies_modern", report)

    totals = {r[0]: r[1] for r in rows}
    best_periodic = min(v for k, v in totals.items() if k.startswith("periodic"))
    assert totals["dynamic"] <= 1.05 * best_periodic
    assert totals["dynamic"] < totals["static"]
    for k, v in totals.items():
        if k.startswith("periodic"):
            assert v < totals["static"], f"{k} must beat static on the modern kernel too"
