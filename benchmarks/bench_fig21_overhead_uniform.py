"""Paper Figure 21 — overhead (execution minus computation time),
uniform distribution, Hilbert vs snakelike, vs processor count.

Reuses the Table 2 sweep (cached).  Shape asserted: Hilbert overhead is
at or below snake overhead for the uniform cases.
"""

from __future__ import annotations

from benchmarks._shared import table2_case_names, table2_run, write_report
from repro.analysis import format_table
from repro.workloads import TABLE2_CASES


def overhead_rows(distribution: str):
    rows = []
    for name in table2_case_names():
        case = {c.name: c for c in TABLE2_CASES}[name]
        if case.distribution != distribution:
            continue
        hil = table2_run(name, "hilbert")
        snk = table2_run(name, "snake")
        rows.append(
            [
                f"{case.nx}x{case.ny}",
                case.nparticles,
                case.p,
                hil.overhead,
                snk.overhead,
                hil.redistribution_time,
            ]
        )
    return rows


def bench_fig21_overhead_uniform(benchmark):
    rows = benchmark.pedantic(lambda: overhead_rows("uniform"), rounds=1, iterations=1)
    report = format_table(
        ["mesh", "particles", "p", "hilbert overhead (s)", "snake overhead (s)", "hilbert redis (s)"],
        rows,
        title="Figure 21: overhead of 200 (scaled) iterations, uniform distribution",
    )
    write_report("fig21_overhead_uniform", report)
    wins = sum(1 for r in rows if r[3] <= r[4] * 1.05)
    assert wins >= 0.75 * len(rows), (
        f"Hilbert overhead should be <= snake in nearly all uniform cases ({wins}/{len(rows)})"
    )
