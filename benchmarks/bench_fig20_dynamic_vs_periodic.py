"""Paper Figure 20 — periodic vs dynamic redistribution, 200 iterations.

Sweeps the redistribution period and compares against the dynamic
Stop-At-Rise policy.  Shape asserted: total time vs period is
U-shaped-ish (an interior optimum exists) and the dynamic policy lands
within a few percent of the best period without any tuning.
"""

from __future__ import annotations

from benchmarks._shared import run_simulation, write_report
from repro.analysis import format_table
from repro.workloads import FIG20_CASE, scaled_iterations

PERIODS = [100, 50, 25, 10, 5, 2]


def run_fig20():
    iters = max(scaled_iterations(FIG20_CASE.iterations, minimum=100), 200)
    rows = []
    for k in PERIODS:
        if k > iters // 2:
            continue
        result = run_simulation(
            policy=f"periodic:{k}", iterations=iters, **FIG20_CASE.config_kwargs()
        )
        rows.append([f"periodic:{k}", result.total_time, result.n_redistributions])
    dyn = run_simulation(policy="dynamic", iterations=iters, **FIG20_CASE.config_kwargs())
    rows.append(["dynamic", dyn.total_time, dyn.n_redistributions])
    static = run_simulation(policy="static", iterations=iters, **FIG20_CASE.config_kwargs())
    rows.append(["static", static.total_time, 0])
    return rows


def bench_fig20_dynamic_vs_periodic(benchmark):
    rows = benchmark.pedantic(run_fig20, rounds=1, iterations=1)
    report = format_table(
        ["policy", "total time (s)", "#redis"],
        rows,
        title="Figure 20: periodic vs dynamic redistribution "
        f"({FIG20_CASE.nx}x{FIG20_CASE.ny}, n={FIG20_CASE.nparticles}, p={FIG20_CASE.p})",
    )
    write_report("fig20_dynamic_vs_periodic", report)

    totals = {r[0]: r[1] for r in rows}
    periodic_totals = {k: v for k, v in totals.items() if k.startswith("periodic")}
    best = min(periodic_totals.values())
    worst = max(periodic_totals.values())
    assert totals["dynamic"] <= 1.05 * best, (
        "dynamic must be close to the best periodic without tuning"
    )
    assert totals["dynamic"] < totals["static"], "dynamic must beat static"
    assert worst > 1.01 * best, "period choice must matter (tuning is non-trivial)"
