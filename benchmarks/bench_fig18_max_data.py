"""Paper Figure 18 — max data sent/received in the scatter phase.

Same configuration as Figure 17; the plotted quantity is the maximum
byte volume any processor sends or receives per iteration.
"""

from __future__ import annotations

from benchmarks._shared import write_report
from benchmarks.bench_fig17_iteration_time import fig17_series
from repro.analysis import ascii_series


def bench_fig18_max_data(benchmark):
    results = benchmark.pedantic(
        lambda: {p: fig17_series(p) for p in ("static", "periodic:25")},
        rounds=1,
        iterations=1,
    )
    parts = []
    for policy, result in results.items():
        parts.append(
            ascii_series(
                result.scatter_max_bytes.astype(float),
                label=f"Fig 18 [{policy}]: max scatter bytes sent/recv by any proc",
            )
        )
    write_report("fig18_max_data", "\n\n".join(parts))

    static = results["static"].scatter_max_bytes
    periodic = results["periodic:25"].scatter_max_bytes
    assert static[-10:].mean() > static[:10].mean(), "static volume must grow"
    assert periodic[-10:].mean() < static[-10:].mean(), (
        "redistribution must reduce late scatter volume"
    )
