"""Paper Table 1 — partitioning strategy x movement method comparison.

The paper's Table 1 is analytical; this bench regenerates it
empirically: for each (partitioning, movement) combination it reports
field-solve load balance (cells/rank), particle load balance
(particles/rank after a few iterations), and the communication volume —
confirming that only *independent partitioning + direct Lagrangian*
keeps both computations balanced.
"""

from __future__ import annotations

import numpy as np

from benchmarks._shared import run_simulation, write_report
from repro.analysis import format_table
from repro.core.metrics import load_imbalance
from repro.pic import Simulation, SimulationConfig
from repro.workloads import scaled_iterations

STRATEGIES = [
    # (label, partitioning, movement)
    ("grid + eulerian", "grid", "eulerian"),
    ("particle + lagrangian", "particle", "lagrangian"),
    ("independent + lagrangian", "independent", "lagrangian"),
]


def run_table1():
    iters = scaled_iterations(200, minimum=20)
    rows = []
    details = {}
    for label, partitioning, movement in STRATEGIES:
        config = SimulationConfig(
            nx=64,
            ny=32,
            nparticles=8192,
            p=16,
            distribution="irregular",
            partitioning=partitioning,
            movement=movement,
            policy="static",
            seed=3,
            vth=0.08,
        )
        sim = Simulation(config)
        result = sim.run(iters)
        cell_imb = sim.decomp.max_cell_imbalance()
        particle_imb = load_imbalance(
            np.array([p.n for p in sim.pic.particles], dtype=float)
        )
        rows.append(
            [label, cell_imb, particle_imb, result.total_time, result.overhead]
        )
        details[label] = result
    return rows, details


def bench_table1_strategies(benchmark):
    rows, details = benchmark.pedantic(run_table1, rounds=1, iterations=1)
    report = format_table(
        [
            "strategy",
            "cell imbalance",
            "particle imbalance",
            "total time (s)",
            "overhead (s)",
        ],
        rows,
        title="Table 1 (empirical): partitioning strategy x movement method "
        "(irregular, 16 procs)",
    )
    write_report("table1_strategies", report)

    by_label = {r[0]: r for r in rows}
    independent = by_label["independent + lagrangian"]
    grid = by_label["grid + eulerian"]
    particle = by_label["particle + lagrangian"]
    # field solve balanced only when cells are balanced
    assert independent[1] < 1.1, "independent partitioning must balance cells"
    assert particle[1] > 1.5, "particle partitioning must unbalance cells"
    # particle computation balanced only when particles are balanced
    assert independent[2] < 1.1, "independent partitioning must balance particles"
    assert grid[2] > 1.5, "grid partitioning must unbalance particles"
    # the paper's choice wins on total time
    assert independent[3] == min(r[3] for r in rows), (
        "independent + lagrangian should be fastest overall"
    )
