"""Ablation (paper Figure 8) — hash vs direct-address ghost tables.

The paper describes the trade: the direct address table saves probe
time but costs memory proportional to the whole mesh; the hash table
costs probes but only stores the touched nodes.  This bench measures
both the modeled op counts / memory and the real wall time of each
table on a scatter-phase-sized workload.
"""

from __future__ import annotations

import numpy as np

from benchmarks._shared import write_report
from repro.analysis import format_table
from repro.pic.ghost import make_ghost_table

NNODES = 512 * 256  # the paper's large mesh
ENTRIES = 4 * 131072 // 32  # per-rank particle-vertex entries at p=32


def workload(seed=0):
    rng = np.random.default_rng(seed)
    # ghost entries cluster near subdomain boundaries: draw from a
    # narrow band of node ids to mimic duplicate-heavy access
    nodes = rng.integers(0, NNODES // 64, ENTRIES).astype(np.int64)
    values = rng.normal(size=(4, ENTRIES))
    return nodes, values


def table_metrics(kind):
    nodes, values = workload()
    table = make_ghost_table(kind, NNODES)
    table.accumulate(nodes, values)
    uniq, _ = table.flush()
    return table.stats, uniq.size


def run_comparison():
    rows = []
    for kind in ("direct", "hash"):
        stats, unique = table_metrics(kind)
        rows.append([kind, stats.entries, unique, stats.ops, stats.memory_slots])
    return rows


def bench_ablation_ghost_tables(benchmark):
    # wall-time benchmark of the hash path (the default) on real data
    nodes, values = workload()

    def hash_pass():
        table = make_ghost_table("hash", NNODES)
        table.accumulate(nodes, values)
        return table.flush()

    benchmark(hash_pass)
    rows = run_comparison()
    report = format_table(
        ["table", "entries", "unique nodes", "modeled ops", "memory slots"],
        rows,
        title="Ablation: duplicate-removal table organizations (Fig 8)",
    )
    write_report("ablation_ghost_tables", report)

    direct = rows[0]
    hashed = rows[1]
    assert direct[2] == hashed[2], "both tables must agree on unique nodes"
    assert direct[3] < hashed[3], "direct table must use fewer probe ops"
    assert hashed[4] < direct[4], "hash table must use less memory"
    assert direct[4] >= NNODES, "direct table memory is proportional to the mesh"
