"""Paper Figure 22 — overhead, irregular distribution (cf. Figure 21).

Shape asserted: Hilbert overhead <= snake in the (large) majority of
irregular cases — the paper notes one exception when particles per
processor get very small — and the redistribution share of overhead
stays a minority (paper: < 20% at 128 processors).
"""

from __future__ import annotations

from benchmarks._shared import write_report
from benchmarks.bench_fig21_overhead_uniform import overhead_rows
from repro.analysis import format_table


def bench_fig22_overhead_irregular(benchmark):
    rows = benchmark.pedantic(lambda: overhead_rows("irregular"), rounds=1, iterations=1)
    report = format_table(
        ["mesh", "particles", "p", "hilbert overhead (s)", "snake overhead (s)", "hilbert redis (s)"],
        rows,
        title="Figure 22: overhead of 200 (scaled) iterations, irregular distribution",
    )
    write_report("fig22_overhead_irregular", report)

    wins = sum(1 for r in rows if r[3] <= r[4] * 1.05)
    assert wins >= 0.7 * len(rows), (
        f"Hilbert overhead should be <= snake in most irregular cases ({wins}/{len(rows)})"
    )
    for mesh, n, p, hil_ovh, _, redis in rows:
        assert redis <= 0.5 * max(hil_ovh, 1e-12), (
            f"{mesh} n={n} p={p}: redistribution should be a minority of overhead"
        )
