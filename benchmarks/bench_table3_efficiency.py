"""Paper Table 3 — efficiency of the Hilbert indexing scheme.

Efficiency = T_1 / (p * T_p), with T_1 the one-processor execution time
of the same problem.  On the virtual machine T_1 is the pure compute
time of all phases (no communication), which the cost model provides as
``computation_time`` of a p-processor run times p (compute is strictly
balanced under the Lagrangian method).

Shapes asserted: efficiencies are decent (> 0.5 everywhere at CM-5-like
compute/communication ratios) and roughly constant when the number of
particles per processor is held fixed — the paper's scalability
observation #3.
"""

from __future__ import annotations

from benchmarks._shared import table2_case_names, table2_run, write_report
from repro.analysis import efficiency, format_table
from repro.workloads import TABLE2_CASES


def run_table3():
    rows = []
    for name in table2_case_names():
        case = {c.name: c for c in TABLE2_CASES}[name]
        result = table2_run(name, "hilbert")
        t1 = result.computation_time * case.p  # balanced compute, no comm
        eff = efficiency(t1, result.total_time, case.p)
        rows.append(
            [case.distribution, f"{case.nx}x{case.ny}", case.nparticles, case.p, eff]
        )
    return rows


def bench_table3_efficiency(benchmark):
    rows = benchmark.pedantic(run_table3, rounds=1, iterations=1)
    report = format_table(
        ["distribution", "mesh", "particles", "p", "efficiency"],
        rows,
        title="Table 3: efficiency of the Hilbert indexing scheme",
    )
    write_report("table3_efficiency", report)

    assert all(r[4] > 0.5 for r in rows), "efficiencies should stay above 0.5"
    assert all(r[4] <= 1.0 + 1e-9 for r in rows), "efficiency cannot exceed 1"

    # constant granularity (particles per processor) -> similar efficiency
    by_granularity: dict[tuple, list[float]] = {}
    for dist, mesh, n, p, eff in rows:
        by_granularity.setdefault((dist, n // p), []).append(eff)
    for key, effs in by_granularity.items():
        if len(effs) > 1:
            assert max(effs) - min(effs) < 0.25, (
                f"granularity {key}: efficiency spread {effs} too wide"
            )
