"""Ablation (paper §6.3 closing remark) — machine sensitivity.

"Clearly, the CM-5 (without vector units) is not representative of a
typical parallel machine, because the ratio of unit computation to unit
communication is small.  These efficiencies would be much smaller for a
machine with more powerful nodes relative to the communication network.
Maintaining similar efficiencies on such a machine would require a
larger number of particles per processor."

This bench runs the same workload on the CM-5 preset and on a modern
preset (1000x faster nodes, far larger tau/delta ratio), at two
granularities, and checks both halves of the claim.
"""

from __future__ import annotations

from benchmarks._shared import write_report
from repro.analysis import format_table
from repro.machine import MachineModel
from repro.pic import Simulation, SimulationConfig
from repro.workloads import scaled_iterations


def efficiency_of(model: MachineModel, nparticles: int) -> float:
    config = SimulationConfig(
        nx=64,
        ny=32,
        nparticles=nparticles,
        p=32,
        distribution="irregular",
        policy="dynamic",
        model=model,
        seed=3,
        vth=0.08,
    )
    result = Simulation(config).run(scaled_iterations(200, minimum=20))
    return result.computation_time / result.total_time


def run_sensitivity():
    rows = []
    for model in (MachineModel.cm5(), MachineModel.modern()):
        for n in (8192, 65536):
            rows.append([model.name, n, n // 32, efficiency_of(model, n)])
    return rows


def bench_ablation_machine_models(benchmark):
    rows = benchmark.pedantic(run_sensitivity, rounds=1, iterations=1)
    report = format_table(
        ["machine", "particles", "particles/proc", "efficiency"],
        rows,
        title="Ablation: machine sensitivity (32 procs, irregular)",
    )
    write_report("ablation_machine_models", report)

    eff = {(r[0], r[1]): r[3] for r in rows}
    # more powerful nodes relative to the network -> lower efficiency
    assert eff[("modern", 8192)] < eff[("cm5", 8192)]
    # ... recovered by more particles per processor
    assert eff[("modern", 65536)] > eff[("modern", 8192)]
