"""Ablation (paper §3) — replicated mesh vs distributed mesh vs p.

Lubeck & Faber's replicated-mesh scheme is "efficient for small
hypercubes" but its global operations on the mesh arrays dominate at
scale.  This bench runs both implementations across processor counts
and reports total virtual time and communication time; the distributed
scheme must win at large p and the replicated scheme's communication
share must grow with p.
"""

from __future__ import annotations

import numpy as np

from benchmarks._shared import write_report
from repro.analysis import format_table
from repro.core import ParticlePartitioner
from repro.machine import MachineModel, VirtualMachine
from repro.mesh import CurveBlockDecomposition, Grid2D
from repro.particles import gaussian_blob
from repro.pic import ParallelPIC
from repro.pic.replicated import ReplicatedMeshPIC
from repro.workloads import scaled_iterations

PS = (4, 8, 16, 32, 64)


def run_comparison():
    grid = Grid2D(128, 64)
    particles = gaussian_blob(grid, 32768, rng=3)
    iters = scaled_iterations(200, minimum=10)
    rows = []
    for p in PS:
        vm_rep = VirtualMachine(p, MachineModel.cm5())
        local = [particles.take(np.arange(r, particles.n, p)) for r in range(p)]
        rep = ReplicatedMeshPIC(vm_rep, grid, local)
        for _ in range(iters):
            rep.step()

        vm_dist = VirtualMachine(p, MachineModel.cm5())
        decomp = CurveBlockDecomposition(grid, p, "hilbert")
        aligned = ParticlePartitioner(grid).initial_partition(particles, p)
        dist = ParallelPIC(vm_dist, grid, decomp, aligned, dt=rep.dt)
        for _ in range(iters):
            dist.step()

        rows.append(
            [
                p,
                vm_rep.elapsed(),
                float(vm_rep.comm_time.max()),
                vm_dist.elapsed(),
                float(vm_dist.comm_time.max()),
            ]
        )
    return rows


def bench_ablation_replicated_mesh(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    report = format_table(
        ["p", "replicated total (s)", "replicated comm (s)", "distributed total (s)", "distributed comm (s)"],
        rows,
        title="Ablation: replicated (Lubeck & Faber) vs distributed mesh "
        "(128x64, 32768 particles, irregular)",
    )
    write_report("ablation_replicated_mesh", report)

    by_p = {r[0]: r for r in rows}
    # distributed wins at the largest p
    assert by_p[PS[-1]][3] < by_p[PS[-1]][1], "distributed must win at large p"
    # the replicated scheme's absolute communication time grows with p
    # (log-depth collectives over fixed mesh volume), while per-rank
    # compute shrinks, so its communication share explodes
    rep_share = [r[2] / r[1] for r in rows]
    assert rep_share[-1] > rep_share[0], "replicated comm share must grow with p"
    # distributed total keeps dropping with p
    dist_total = [r[3] for r in rows]
    assert all(b < a for a, b in zip(dist_total, dist_total[1:]))
