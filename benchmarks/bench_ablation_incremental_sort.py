"""Ablation (paper Figure 11 claim) — incremental vs from-scratch
redistribution cost as a function of drift magnitude.

The bucket incremental sort should beat the full sample sort when few
particles changed rank, and its advantage should shrink as the drift
grows (in the limit of total shuffling everything moves anyway).
"""

from __future__ import annotations

import numpy as np

from benchmarks._shared import write_report
from repro.analysis import format_table
from repro.core.incremental_sort import BucketState, bucket_incremental_sort
from repro.machine import MachineModel, VirtualMachine
from repro.particles.sort import parallel_sample_sort

P = 16
N_PER = 2000


def build_states(seed=0):
    rng = np.random.default_rng(seed)
    all_keys = np.sort(rng.integers(0, 10**6, P * N_PER))
    states = []
    for r in range(P):
        keys = all_keys[r * N_PER : (r + 1) * N_PER]
        states.append(BucketState.build(keys, keys.reshape(-1, 1).astype(float), 16))
    return states


def run_ablation():
    rows = []
    for drift in (10, 1000, 50000, 500000):
        rng = np.random.default_rng(drift)
        states = build_states()
        new_keys = [
            np.maximum(s.keys + rng.integers(-drift, drift + 1, s.n), 0) for s in states
        ]
        vm_inc = VirtualMachine(P, MachineModel.cm5())
        _, _, stats = bucket_incremental_sort(
            vm_inc, states, [k.copy() for k in new_keys]
        )
        vm_full = VirtualMachine(P, MachineModel.cm5())
        payloads = [s.payload for s in build_states()]
        parallel_sample_sort(vm_full, [k.copy() for k in new_keys], payloads)
        moved_frac = stats.moved_rank / stats.total
        rows.append([drift, moved_frac, vm_inc.elapsed(), vm_full.elapsed()])
    return rows


def bench_ablation_incremental_sort(benchmark):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    report = format_table(
        ["drift", "fraction moved rank", "incremental (s)", "full sort (s)"],
        rows,
        title="Ablation: incremental vs from-scratch redistribution "
        f"({P} procs, {P * N_PER} elements)",
    )
    write_report("ablation_incremental_sort", report)

    for drift, moved, inc, full in rows:
        assert inc < full, f"incremental must beat full sort at drift={drift}"
    # advantage shrinks as drift grows
    ratios = [inc / full for _, _, inc, full in rows]
    assert ratios[0] < ratios[-1], "small drifts must benefit more than large ones"
    assert rows[0][1] < rows[-1][1], "moved fraction must grow with drift"
