"""Paper Table 2 — computational time, Hilbert vs snakelike indexing.

The full sweep: {uniform, irregular} x {256x128 with 32K/64K particles,
512x256 with 64K/128K} x {32, 64, 128} processors, dynamic
redistribution, both indexing schemes.  Iterations are the paper's 200
scaled by ``REPRO_SCALE``; ``REPRO_MAX_P`` trims the processor axis for
quick runs.

Shapes asserted: Hilbert total time <= snake in (nearly) all cases, and
time decreases with processor count for each case family.
"""

from __future__ import annotations

from benchmarks._shared import table2_case_names, table2_run, write_report
from repro.analysis import format_table
from repro.workloads import TABLE2_CASES


def run_table2():
    rows = []
    for name in table2_case_names():
        case = {c.name: c for c in TABLE2_CASES}[name]
        hil = table2_run(name, "hilbert")
        snk = table2_run(name, "snake")
        rows.append(
            [
                case.distribution,
                f"{case.nx}x{case.ny}",
                case.nparticles,
                case.p,
                hil.total_time,
                snk.total_time,
                hil.computation_time,
            ]
        )
    return rows


def bench_table2_indexing(benchmark):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    report = format_table(
        ["distribution", "mesh", "particles", "p", "hilbert (s)", "snake (s)", "compute (s)"],
        rows,
        title="Table 2: computational time, Hilbert vs snakelike indexing "
        "(dynamic redistribution)",
    )
    write_report("table2_indexing", report)

    hilbert_wins = sum(1 for r in rows if r[4] <= r[5] * 1.02)
    assert hilbert_wins >= 0.75 * len(rows), (
        f"Hilbert should win (or tie) nearly all cases; won {hilbert_wins}/{len(rows)}"
    )
    # strong scaling within each (distribution, mesh, particles) family
    families: dict[tuple, dict[int, float]] = {}
    for dist, mesh, n, p, hil, _, _ in rows:
        families.setdefault((dist, mesh, n), {})[p] = hil
    for family, by_p in families.items():
        ps = sorted(by_p)
        for a, b in zip(ps, ps[1:]):
            assert by_p[b] < by_p[a], f"{family}: time must drop from p={a} to p={b}"
