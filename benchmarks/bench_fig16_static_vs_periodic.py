"""Paper Figure 16 — total execution time, static vs periodic redistribution.

Three (mesh, particles) pairs on 32 virtual processors; the paper ran
2000 iterations with periods {200, 100, 50, 25, 10, 5}.  Iterations are
scaled by ``REPRO_SCALE`` (periods longer than the run are skipped).

Shape asserted: every periodic policy beats static on every case, as
the paper reports ("all the periodic redistribution methods
significantly outperform static ones").
"""

from __future__ import annotations

from benchmarks._shared import run_simulation, write_report
from repro.analysis import format_table
from repro.workloads import FIG16_CASES, scaled_iterations

PERIODS = [200, 100, 50, 25, 10, 5]


def run_fig16():
    rows = []
    for case in FIG16_CASES:
        iters = scaled_iterations(case.iterations, minimum=100)
        policies = ["static"] + [f"periodic:{k}" for k in PERIODS if k <= iters // 2]
        for policy in policies:
            result = run_simulation(
                policy=policy, iterations=iters, **case.config_kwargs()
            )
            rows.append(
                [case.name, policy, iters, result.total_time, result.n_redistributions]
            )
    return rows


def bench_fig16_static_vs_periodic(benchmark):
    rows = benchmark.pedantic(run_fig16, rounds=1, iterations=1)
    report = format_table(
        ["case", "policy", "iters", "total time (s)", "#redis"],
        rows,
        title="Figure 16: total execution time, static vs periodic "
        "(32 procs, irregular)",
    )
    write_report("fig16_static_vs_periodic", report)

    by_case: dict[str, dict[str, float]] = {}
    for case, policy, _, total, _ in rows:
        by_case.setdefault(case, {})[policy] = total
    for case, totals in by_case.items():
        static = totals["static"]
        for policy, total in totals.items():
            if policy.startswith("periodic"):
                assert total < static, (
                    f"{case}: {policy} ({total:.2f}s) should beat static ({static:.2f}s)"
                )
