"""Ablation — subdomain quality of all four indexing schemes.

Extends the paper's Hilbert-vs-snake comparison with Morton and
row-major: for equal particle slices, reports total bounding-box area,
ghost grid points, and worst-case partner counts, plus the total
subdomain perimeter of the induced mesh decomposition.
"""

from __future__ import annotations

import numpy as np

from benchmarks._shared import write_report
from repro.analysis import format_table
from repro.core import ParticlePartitioner
from repro.core.alignment import bounding_box_area, ghost_node_counts, partner_counts
from repro.mesh import CurveBlockDecomposition, Grid2D
from repro.particles import gaussian_blob

SCHEMES = ["hilbert", "morton", "snake", "rowmajor"]
P = 32


def run_quality():
    grid = Grid2D(128, 64)
    particles = gaussian_blob(grid, 32768, rng=5)
    rows = []
    for scheme in SCHEMES:
        partitioner = ParticlePartitioner(grid, scheme)
        decomp = CurveBlockDecomposition(grid, P, scheme)
        local = partitioner.initial_partition(particles, P)
        bbox = sum(bounding_box_area(lp, grid) for lp in local)
        ghosts = ghost_node_counts(local, grid, decomp)
        partners = partner_counts(local, grid, decomp)
        perimeter = sum(decomp.boundary_node_count(r) for r in range(P))
        rows.append(
            [scheme, bbox, int(ghosts.sum()), int(partners.max()), perimeter]
        )
    return rows


def bench_ablation_indexing_quality(benchmark):
    rows = benchmark.pedantic(run_quality, rounds=1, iterations=1)
    report = format_table(
        ["scheme", "sum bbox area", "ghost nodes", "max partners", "mesh perimeter"],
        rows,
        title=f"Ablation: indexing-scheme subdomain quality ({P} procs, irregular)",
    )
    write_report("ablation_indexing_quality", report)

    by_scheme = {r[0]: r for r in rows}
    # Hilbert has the smallest mesh perimeter (locality along both dims);
    # the strip orders pay full-width boundaries
    assert by_scheme["hilbert"][4] == min(r[4] for r in rows)
    assert by_scheme["snake"][4] > 2 * by_scheme["hilbert"][4]
    # ghost volume (the scatter-traffic driver): hilbert below the strip
    # orders.  (Bounding-box area is reported but NOT asserted: thin
    # strips through a central blob can have small boxes yet large
    # boundaries — ghost nodes are the honest communication proxy.)
    assert by_scheme["hilbert"][2] < by_scheme["snake"][2]
    assert by_scheme["hilbert"][2] < by_scheme["rowmajor"][2]
    assert by_scheme["hilbert"][2] < by_scheme["morton"][2]
