"""Wall-clock microbenchmarks of the hot kernels (pytest-benchmark).

These measure the *host* performance of the vectorized NumPy kernels —
useful for regression tracking, independent of the virtual-machine cost
model.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.indexing import hilbert_xy_to_d
from repro.mesh import FieldState, Grid2D
from repro.particles import uniform_plasma
from repro.pic.deposition import deposit_charge_current
from repro.pic.interpolation import interpolate_fields
from repro.pic.maxwell import MaxwellSolver
from repro.pic.push import boris_push

N = 100_000


@pytest.fixture(scope="module")
def grid():
    return Grid2D(256, 128)


@pytest.fixture(scope="module")
def particles(grid):
    return uniform_plasma(grid, N, rng=0)


def bench_kernel_deposition(benchmark, grid, particles):
    result = benchmark(deposit_charge_current, grid, particles)
    assert result[0].shape == grid.shape


def bench_kernel_interpolation(benchmark, grid, particles):
    fields = FieldState.zeros(grid)
    fields.ez[:] = 1.0
    e, b = benchmark(interpolate_fields, grid, fields, particles)
    assert e.shape == (3, N)


def bench_kernel_push(benchmark, grid, particles):
    parts = particles.copy()
    e = np.zeros((3, N))
    b = np.zeros((3, N))
    b[2] = 0.1
    benchmark(boris_push, grid, parts, e, b, 0.5)


def bench_kernel_maxwell_step(benchmark, grid):
    solver = MaxwellSolver(grid)
    fields = FieldState.zeros(grid)
    rng = np.random.default_rng(0)
    fields.ez[:] = rng.normal(size=grid.shape)
    benchmark(solver.step, fields, 0.5)


def bench_kernel_hilbert_encode(benchmark):
    rng = np.random.default_rng(0)
    x = rng.integers(0, 1 << 10, N)
    y = rng.integers(0, 1 << 10, N)
    d = benchmark(hilbert_xy_to_d, 10, x, y)
    assert d.shape == (N,)
