"""Crash-safe file writes: temp file + :func:`os.replace`, everywhere.

Every artifact this library persists — checkpoints, bench trajectories,
metrics JSONL streams, trace exports, saved results, cache entries — is
written through these helpers so a killed process can never leave a
truncated file under the target name: the payload lands in a temporary
file in the *same directory* (same filesystem, so the rename is atomic)
and is installed with :func:`os.replace`.  A crash mid-write leaves
either the previous file or a stray ``.tmp`` sibling, never a partial
artifact that a reader would accept.

The checkpoint writer (:mod:`repro.pic.checkpoint`) pioneered the
pattern; this module is the single shared implementation.
"""

from __future__ import annotations

import contextlib
import json
import os
import tempfile
from pathlib import Path
from typing import IO, Any, Iterator

__all__ = [
    "atomic_writer",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
]


@contextlib.contextmanager
def atomic_writer(path: str | Path, mode: str = "wb") -> Iterator[IO]:
    """Context manager yielding a temp-file handle atomically installed at ``path``.

    The temporary file lives next to ``path`` so the final
    :func:`os.replace` is a same-filesystem rename, and its name is
    drawn from :func:`tempfile.mkstemp` so every writer — including two
    threads of one process racing on the same target — gets a distinct
    file; concurrent writers can never truncate each other mid-flight,
    and last rename wins with a complete artifact.  On a clean exit the
    file is flushed, fsynced, and renamed into place; on an exception
    the temp file is removed and ``path`` is untouched.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.tmp."
    )
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, mode) as fh:
            yield fh
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # failed before the rename: don't leave litter
            tmp.unlink()


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Atomically write ``data`` to ``path``; returns the path."""
    path = Path(path)
    with atomic_writer(path, "wb") as fh:
        fh.write(data)
    return path


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Atomically write ``text`` (UTF-8) to ``path``; returns the path."""
    return atomic_write_bytes(path, text.encode("utf-8"))


def atomic_write_json(path: str | Path, obj: Any, *, indent: int | None = 2,
                      sort_keys: bool = False) -> Path:
    """Atomically serialize ``obj`` as JSON to ``path``; returns the path."""
    text = json.dumps(obj, indent=indent, sort_keys=sort_keys) + "\n"
    return atomic_write_text(path, text)
