"""Structured exception taxonomy for the whole library.

Every error the runtime can *recover from or reason about* derives from
:class:`ReproError`, so drivers can distinguish "the environment
misbehaved" (:class:`FaultError` and friends — retry, shrink, restore)
from "the program is wrong" (plain ``ValueError`` / ``TypeError`` from
argument validation):

* :class:`FaultError` — injected or detected machine faults.

  * :class:`RankFailure` — a rank stopped responding; carries the dead
    rank, the iteration, and the phase in which detection happened.
    ``Simulation.run`` catches this and triggers automatic recovery.
  * :class:`MessageLost` — a message could not be delivered within the
    transport's retry budget.

* :class:`SimulationIntegrityError` — an invariant guard
  (:mod:`repro.util.guards`) found corrupted physics: lost particles,
  non-conserved charge, or NaN/Inf in state arrays.
* :class:`CheckpointError` — a checkpoint file is unusable (corrupt,
  truncated, wrong version).  Subclasses ``ValueError`` as well for
  backwards compatibility with callers that caught the old type.
* :class:`InvalidRankError` — a rank index outside ``[0, p)`` reached a
  communication primitive.  Also a ``ValueError`` so pre-existing
  ``except ValueError`` call sites keep working.
* :class:`JobError` — a job in the multi-run service
  (:mod:`repro.service`) failed; carries the job name and attempt.

  * :class:`JobTimeout` — a job (or a watchdogged ``repro run``)
    exceeded its wall-clock budget and was stopped.

* :class:`CacheCorruption` — a result-cache entry failed its integrity
  check; the entry is quarantined and the job recomputed.

Every exception here is **picklable with its attributes intact** — the
job service ships errors across process boundaries, so classes with
custom constructor signatures override ``__reduce__``.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "FaultError",
    "RankFailure",
    "MessageLost",
    "SimulationIntegrityError",
    "CheckpointError",
    "InvalidRankError",
    "JobError",
    "JobTimeout",
    "CacheCorruption",
]


class ReproError(Exception):
    """Base class of every structured error raised by this library."""


class FaultError(ReproError):
    """A machine fault: injected by a fault plan or detected at runtime."""


class RankFailure(FaultError):
    """A rank stopped responding and was declared dead.

    Attributes
    ----------
    rank:
        The failed rank (numbered in the machine where it failed).
    iteration:
        Iteration at which the failure was detected (-1 outside a run).
    phase:
        Virtual-machine phase label active at detection time.
    """

    def __init__(self, rank: int, iteration: int = -1, phase: str = "default") -> None:
        self.rank = rank
        self.iteration = iteration
        self.phase = phase
        super().__init__(
            f"rank {rank} failed (detected at iteration {iteration}, phase {phase!r})"
        )

    def __reduce__(self):
        return (type(self), (self.rank, self.iteration, self.phase))


class MessageLost(FaultError):
    """A message exhausted the transport's retry budget."""

    def __init__(self, src: int, dst: int, attempts: int) -> None:
        self.src = src
        self.dst = dst
        self.attempts = attempts
        super().__init__(
            f"message {src} -> {dst} lost after {attempts} transmission attempts"
        )

    def __reduce__(self):
        return (type(self), (self.src, self.dst, self.attempts))


class SimulationIntegrityError(ReproError):
    """An invariant guard found corrupted physics state."""


class CheckpointError(ReproError, ValueError):
    """A file is not a valid repro checkpoint (corrupt, truncated, or
    missing required keys)."""


class InvalidRankError(ReproError, ValueError):
    """A destination or source rank index is outside ``[0, p)``."""


class JobError(ReproError):
    """A job in the multi-run service failed.

    Attributes
    ----------
    job:
        The job's display name (or config-hash prefix).
    attempt:
        Zero-based attempt number on which the failure happened.
    reason:
        Human-readable cause (worker traceback summary, fault kind, ...).
    """

    def __init__(self, job: str, reason: str, attempt: int = 0) -> None:
        self.job = job
        self.reason = reason
        self.attempt = attempt
        super().__init__(
            f"job {job!r} failed on attempt {attempt + 1}: {reason} "
            f"(inspect the batch report for the full failure log)"
        )

    def __reduce__(self):
        return (type(self), (self.job, self.reason, self.attempt))


class JobTimeout(JobError):
    """A job (or watchdogged run) exceeded its wall-clock budget.

    ``limit`` / ``elapsed`` are wall seconds; ``iteration`` is the last
    completed simulation iteration (-1 when unknown), so a supervisor
    can decide whether a checkpoint-based resume is worthwhile.
    """

    def __init__(
        self, job: str, limit: float, elapsed: float,
        iteration: int = -1, attempt: int = 0,
    ) -> None:
        self.limit = limit
        self.elapsed = elapsed
        self.iteration = iteration
        JobError.__init__(
            self,
            job,
            f"exceeded the {limit:g}s wall-clock limit after {elapsed:.3f}s "
            f"(last completed iteration {iteration}); raise --timeout or "
            f"shrink the job",
            attempt,
        )

    def __reduce__(self):
        return (
            type(self),
            (self.job, self.limit, self.elapsed, self.iteration, self.attempt),
        )


class CacheCorruption(ReproError):
    """A result-cache entry failed its integrity check.

    Raised (or recorded — readers usually quarantine and recompute
    instead of raising) when a cache file is unparseable, its stored
    digest does not match its payload, or its key does not match its
    location.
    """

    def __init__(self, path: str, reason: str) -> None:
        self.path = str(path)
        self.reason = reason
        super().__init__(
            f"cache entry {path} is corrupt: {reason}; the entry was "
            f"quarantined and the result will be recomputed"
        )

    def __reduce__(self):
        return (type(self), (self.path, self.reason))
