"""Structured exception taxonomy for the whole library.

Every error the runtime can *recover from or reason about* derives from
:class:`ReproError`, so drivers can distinguish "the environment
misbehaved" (:class:`FaultError` and friends — retry, shrink, restore)
from "the program is wrong" (plain ``ValueError`` / ``TypeError`` from
argument validation):

* :class:`FaultError` — injected or detected machine faults.

  * :class:`RankFailure` — a rank stopped responding; carries the dead
    rank, the iteration, and the phase in which detection happened.
    ``Simulation.run`` catches this and triggers automatic recovery.
  * :class:`MessageLost` — a message could not be delivered within the
    transport's retry budget.

* :class:`SimulationIntegrityError` — an invariant guard
  (:mod:`repro.util.guards`) found corrupted physics: lost particles,
  non-conserved charge, or NaN/Inf in state arrays.
* :class:`CheckpointError` — a checkpoint file is unusable (corrupt,
  truncated, wrong version).  Subclasses ``ValueError`` as well for
  backwards compatibility with callers that caught the old type.
* :class:`InvalidRankError` — a rank index outside ``[0, p)`` reached a
  communication primitive.  Also a ``ValueError`` so pre-existing
  ``except ValueError`` call sites keep working.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "FaultError",
    "RankFailure",
    "MessageLost",
    "SimulationIntegrityError",
    "CheckpointError",
    "InvalidRankError",
]


class ReproError(Exception):
    """Base class of every structured error raised by this library."""


class FaultError(ReproError):
    """A machine fault: injected by a fault plan or detected at runtime."""


class RankFailure(FaultError):
    """A rank stopped responding and was declared dead.

    Attributes
    ----------
    rank:
        The failed rank (numbered in the machine where it failed).
    iteration:
        Iteration at which the failure was detected (-1 outside a run).
    phase:
        Virtual-machine phase label active at detection time.
    """

    def __init__(self, rank: int, iteration: int = -1, phase: str = "default") -> None:
        self.rank = rank
        self.iteration = iteration
        self.phase = phase
        super().__init__(
            f"rank {rank} failed (detected at iteration {iteration}, phase {phase!r})"
        )


class MessageLost(FaultError):
    """A message exhausted the transport's retry budget."""

    def __init__(self, src: int, dst: int, attempts: int) -> None:
        self.src = src
        self.dst = dst
        self.attempts = attempts
        super().__init__(
            f"message {src} -> {dst} lost after {attempts} transmission attempts"
        )


class SimulationIntegrityError(ReproError):
    """An invariant guard found corrupted physics state."""


class CheckpointError(ReproError, ValueError):
    """A file is not a valid repro checkpoint (corrupt, truncated, or
    missing required keys)."""


class InvalidRankError(ReproError, ValueError):
    """A destination or source rank index is outside ``[0, p)``."""
