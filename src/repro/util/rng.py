"""Random-number-generator normalization.

Every stochastic entry point in the library accepts ``rng: int | None |
numpy.random.Generator`` and calls :func:`as_rng` exactly once, so that

* passing an ``int`` gives a reproducible stream,
* passing ``None`` gives a fresh nondeterministic stream, and
* passing a ``Generator`` threads an existing stream through (useful when
  one experiment draws several correlated workloads).
"""

from __future__ import annotations

import numpy as np

__all__ = ["as_rng"]


def as_rng(rng: int | None | np.random.Generator) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``rng``.

    Parameters
    ----------
    rng:
        ``None`` for a nondeterministic generator, an integer seed, or an
        existing generator (returned unchanged).
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None or isinstance(rng, (int, np.integer)):
        return np.random.default_rng(rng)
    raise TypeError(
        f"rng must be None, an int seed, or a numpy Generator; got {type(rng).__name__}"
    )
