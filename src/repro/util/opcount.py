"""Abstract operation accounting.

The paper's §4 cost model charges computation as (number of unit
operations) x delta.  Kernels in :mod:`repro.pic` return operation counts
through an :class:`OpCounter`; the virtual machine converts them to
seconds with the active :class:`repro.machine.model.MachineModel`.

Keeping the counts symbolic (per named category) lets the analysis layer
separate "computation time" from "overhead" exactly the way Figures 21/22
of the paper do.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterator

__all__ = ["OpCounter"]


class OpCounter:
    """Tally of abstract operation counts keyed by category name.

    Categories are free-form strings; the conventional ones used by the
    PIC kernels are ``"scatter"``, ``"gather"``, ``"field"``, ``"push"``,
    ``"sort"``, and ``"index"``.
    """

    def __init__(self) -> None:
        self._counts: dict[str, float] = defaultdict(float)

    def add(self, category: str, count: float) -> None:
        """Add ``count`` operations to ``category``."""
        if count < 0:
            raise ValueError(f"operation count must be >= 0, got {count}")
        self._counts[category] += count

    def get(self, category: str) -> float:
        """Return the total count recorded for ``category`` (0 if unseen)."""
        return self._counts.get(category, 0.0)

    def total(self) -> float:
        """Return the sum of all recorded counts."""
        return sum(self._counts.values())

    def merge(self, other: "OpCounter") -> None:
        """Accumulate another counter's tallies into this one."""
        for key, val in other._counts.items():
            self._counts[key] += val

    def reset(self) -> None:
        """Clear all tallies."""
        self._counts.clear()

    def items(self) -> Iterator[tuple[str, float]]:
        """Iterate ``(category, count)`` pairs."""
        return iter(self._counts.items())

    def as_dict(self) -> dict[str, float]:
        """Return a plain-dict snapshot of the tallies."""
        return dict(self._counts)

    def load_dict(self, counts: dict[str, float]) -> None:
        """Replace all tallies with an :meth:`as_dict` snapshot."""
        self._counts.clear()
        for key, val in counts.items():
            self.add(key, float(val))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}={v:g}" for k, v in sorted(self._counts.items()))
        return f"OpCounter({inner})"
