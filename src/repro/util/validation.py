"""Uniform argument validation helpers.

The library is a simulation substrate: most bugs show up as silently wrong
physics or cost numbers rather than crashes, so constructor arguments are
validated eagerly with precise messages.
"""

from __future__ import annotations

from typing import Any

__all__ = ["require", "require_positive", "require_type"]


def require(condition: bool, message: str) -> None:
    """Raise :class:`ValueError` with ``message`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def require_positive(value: float, name: str, *, strict: bool = True) -> None:
    """Validate that ``value`` is positive (or non-negative if not strict)."""
    if strict and not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    if not strict and not value >= 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")


def require_type(value: Any, types: type | tuple[type, ...], name: str) -> None:
    """Validate that ``value`` is an instance of ``types``."""
    if not isinstance(value, types):
        if isinstance(types, tuple):
            expect = " | ".join(t.__name__ for t in types)
        else:
            expect = types.__name__
        raise TypeError(f"{name} must be {expect}, got {type(value).__name__}")
