"""Shared utilities: RNG handling, validation, and operation accounting.

These helpers keep the rest of the library free of boilerplate:

* :func:`as_rng` normalizes seeds / generators so every stochastic entry
  point in the library is reproducible.
* :func:`require` / :func:`require_type` provide uniform argument
  validation with actionable error messages.
* :class:`OpCounter` tallies abstract operation counts that the machine
  cost model (:mod:`repro.machine.model`) converts into virtual seconds.
"""

from repro.util.rng import as_rng
from repro.util.validation import require, require_positive, require_type
from repro.util.opcount import OpCounter
from repro.util.atomic_io import (
    atomic_write_bytes,
    atomic_write_json,
    atomic_write_text,
    atomic_writer,
)
from repro.util.errors import (
    CacheCorruption,
    CheckpointError,
    FaultError,
    InvalidRankError,
    JobError,
    JobTimeout,
    MessageLost,
    RankFailure,
    ReproError,
    SimulationIntegrityError,
)

__all__ = [
    "as_rng",
    "require",
    "require_positive",
    "require_type",
    "OpCounter",
    "atomic_writer",
    "atomic_write_bytes",
    "atomic_write_text",
    "atomic_write_json",
    "ReproError",
    "FaultError",
    "RankFailure",
    "MessageLost",
    "SimulationIntegrityError",
    "CheckpointError",
    "InvalidRankError",
    "JobError",
    "JobTimeout",
    "CacheCorruption",
]
