"""Invariant guards: conservation and finiteness checks on live state.

A fault-tolerant run must never produce *silently wrong* physics: after
a transport retry, a rank failure, or a recovery the state either
satisfies the same conservation invariants as an undisturbed run or the
violation is reported.  :class:`InvariantGuard` packages the checks the
simulation driver and the parallel stepper thread through their phase
boundaries (after scatter, after push, after redistribution / recovery):

* **particle count** — the global number of particles equals the number
  the run started with (redistribution and recovery permute, never drop);
* **charge** — the global sum of particle charge is conserved to a
  relative tolerance (float reassociation across ranks moves the sum by
  a few ulps, physics loss moves it by whole particles);
* **finiteness** — no NaN/Inf in particle positions/momenta or in the
  field arrays a phase just produced.

Severity is configurable:

* ``"off"`` — the guard is not installed at all; the hot path carries
  only dormant ``is None`` branches (zero cost).
* ``"warn"`` — violations emit a :class:`UserWarning` and the run
  continues (useful to survey a chaos run end-to-end).
* ``"strict"`` — violations raise
  :class:`~repro.util.errors.SimulationIntegrityError`.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.util.errors import SimulationIntegrityError
from repro.util.validation import require

__all__ = ["InvariantGuard", "GUARD_MODES"]

#: Valid guard severities, in increasing strictness.
GUARD_MODES = ("off", "warn", "strict")

#: Relative tolerance on charge conservation: summation order changes
#: across redistributions / recoveries reassociate the float sum.
_CHARGE_RTOL = 1e-9


class InvariantGuard:
    """Conservation and finiteness checker with configurable severity.

    Parameters
    ----------
    mode:
        ``"warn"`` or ``"strict"`` (``"off"`` means "don't construct a
        guard" — the call sites skip a ``None`` attribute instead, so a
        disabled guard costs nothing).
    """

    def __init__(self, mode: str = "warn") -> None:
        require(mode in ("warn", "strict"), f"guard mode must be warn|strict, got {mode!r}")
        self.mode = mode
        self.expected_count: int | None = None
        self.expected_charge: float | None = None
        #: violations reported so far (message strings, in order)
        self.violations: list[str] = []
        #: optional telemetry sink called with each violation message
        #: (before the warning / raise); ``None`` = no telemetry attached
        self.on_violation = None

    # ------------------------------------------------------------------
    def capture(self, particles) -> None:
        """Record the conserved quantities from per-rank particle sets."""
        self.expected_count = int(sum(p.n for p in particles))
        self.expected_charge = float(sum(float(np.sum(p.q)) for p in particles))

    # ------------------------------------------------------------------
    def _fail(self, message: str) -> None:
        self.violations.append(message)
        if self.on_violation is not None:
            self.on_violation(message)
        if self.mode == "strict":
            raise SimulationIntegrityError(message)
        warnings.warn(f"invariant violation: {message}", UserWarning, stacklevel=3)

    # ------------------------------------------------------------------
    def check_particles(self, particles, where: str) -> None:
        """Count, charge, and finiteness checks on per-rank particle sets."""
        count = int(sum(p.n for p in particles))
        if self.expected_count is not None and count != self.expected_count:
            self._fail(
                f"[{where}] global particle count {count} != expected "
                f"{self.expected_count} ({self.expected_count - count} lost)"
            )
        if self.expected_charge is not None:
            charge = float(sum(float(np.sum(p.q)) for p in particles))
            tol = _CHARGE_RTOL * max(abs(self.expected_charge), 1.0)
            if not np.isfinite(charge) or abs(charge - self.expected_charge) > tol:
                self._fail(
                    f"[{where}] global charge {charge!r} != expected "
                    f"{self.expected_charge!r} (tol {tol:.3g})"
                )
        for p in particles:
            if p.n and not (
                np.isfinite(p.x).all()
                and np.isfinite(p.y).all()
                and np.isfinite(p.ux).all()
                and np.isfinite(p.uy).all()
                and np.isfinite(p.uz).all()
            ):
                self._fail(f"[{where}] non-finite particle position/momentum")
                break

    def check_fields(self, fields, where: str, *, names=("rho", "jx", "jy", "jz")) -> None:
        """Finiteness check on the named field arrays."""
        for name in names:
            arr = getattr(fields, name)
            if not np.isfinite(arr).all():
                self._fail(f"[{where}] non-finite values in field {name!r}")
                return

    # ------------------------------------------------------------------
    def after_scatter(self, pic) -> None:
        """Post-scatter hook: the deposited sources must be finite."""
        self.check_fields(pic.fields, "scatter")

    def after_push(self, pic) -> None:
        """Post-push hook: particles conserved and finite, fields finite."""
        self.check_particles(pic.particles, "push")
        self.check_fields(pic.fields, "push", names=("ex", "ey", "ez", "bx", "by", "bz"))

    def after_redistribution(self, particles) -> None:
        """Post-redistribution/recovery hook on fresh per-rank sets."""
        self.check_particles(particles, "redistribution")

    def __repr__(self) -> str:
        return f"InvariantGuard(mode={self.mode!r}, violations={len(self.violations)})"
