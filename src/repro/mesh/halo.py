"""Halo-exchange schedules for the field-solve stencil.

The field solve needs, at every owned node, the values of its four
stencil neighbours; neighbours owned by other ranks form the *halo*.
:class:`HaloSchedule` precomputes, from any
:class:`~repro.mesh.decomposition.MeshDecomposition`, who sends which
node values to whom, and executes the exchange on the virtual machine —
physically moving the boundary values so tests can check that what each
rank receives equals the owner's data.

For square tiles the per-rank halo is the tile perimeter, i.e. the
``4 * sqrt(m/p) * l_grid`` term of the paper's field-solve bound.
"""

from __future__ import annotations

import numpy as np

from repro.machine.virtual import VirtualMachine
from repro.mesh.decomposition import MeshDecomposition
from repro.util import require

__all__ = ["HaloSchedule"]


class HaloSchedule:
    """Precomputed neighbour-value exchange plan for one decomposition.

    Attributes
    ----------
    recv_nodes:
        ``recv_nodes[r]`` maps owner rank -> sorted node ids that rank
        ``r`` needs from that owner each field-solve step.
    send_nodes:
        ``send_nodes[r]`` maps destination rank -> sorted node ids rank
        ``r`` must send (the transpose of ``recv_nodes``).
    """

    def __init__(self, decomp: MeshDecomposition) -> None:
        self.decomp = decomp
        self.p = decomp.p
        grid = decomp.grid
        owner_map = decomp.owner_map
        recv_nodes: list[dict[int, np.ndarray]] = [dict() for _ in range(self.p)]
        send_nodes: list[dict[int, np.ndarray]] = [dict() for _ in range(self.p)]
        for rank in range(self.p):
            owned = decomp.nodes_of_rank(rank)
            neigh = grid.node_neighbors(owned).ravel()
            neigh_owner = owner_map[neigh]
            off = neigh_owner != rank
            if not off.any():
                continue
            needed = np.unique(neigh[off])
            owners = owner_map[needed]
            for owner in np.unique(owners):
                ids = needed[owners == owner]
                recv_nodes[rank][int(owner)] = ids
                send_nodes[int(owner)][rank] = ids
        self.recv_nodes = recv_nodes
        self.send_nodes = send_nodes

    # ------------------------------------------------------------------
    def halo_sizes(self) -> np.ndarray:
        """Number of halo nodes each rank receives per exchange."""
        return np.array(
            [sum(ids.size for ids in self.recv_nodes[r].values()) for r in range(self.p)],
            dtype=np.int64,
        )

    def exchange(
        self,
        vm: VirtualMachine,
        values: np.ndarray,
        *,
        ncomponents: int = 1,
    ) -> list[dict[int, np.ndarray]]:
        """Execute one halo exchange of node ``values`` on ``vm``.

        Parameters
        ----------
        vm:
            The virtual machine (its current phase labels the traffic).
        values:
            Flat node-value array of length ``nnodes`` (or ``(ncomp,
            nnodes)`` when exchanging several field components at once —
            pass ``ncomponents`` to size the messages accordingly).
        ncomponents:
            Number of field components packed per node (e.g. the Maxwell
            solve halo carries E and B, 6 scalars per node).

        Returns
        -------
        list of dict
            ``out[r]`` maps owner rank to the received value array(s),
            aligned with ``recv_nodes[r][owner]``.
        """
        values = np.asarray(values)
        if values.ndim > 1:
            require(
                values.shape[0] == ncomponents,
                f"values has {values.shape[0]} components, expected {ncomponents}",
            )
            flat = values.reshape(ncomponents, -1)
        else:
            require(ncomponents == 1, f"1-D values imply 1 component, got {ncomponents}")
            flat = values[None, :]
        require(
            flat.shape[1] == self.decomp.grid.nnodes,
            f"values must cover all {self.decomp.grid.nnodes} nodes",
        )
        send: list[dict[int, np.ndarray]] = []
        for rank in range(self.p):
            chunks = {
                dst: np.ascontiguousarray(flat[:, ids])
                for dst, ids in self.send_nodes[rank].items()
            }
            send.append(chunks)
        recv = vm.alltoallv(send)
        out: list[dict[int, np.ndarray]] = []
        for rank in range(self.p):
            out.append({src: payload for src, payload in recv[rank].items()})
        return out
