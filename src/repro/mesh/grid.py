"""Regular 2-D periodic grid geometry.

Conventions
-----------
* The physical domain is ``[0, lx) x [0, ly)`` with ``nx x ny`` cells of
  size ``dx = lx / nx``, ``dy = ly / ny``.
* Field *nodes* sit at cell lower-left corners; under periodic
  boundaries there are exactly ``nx * ny`` distinct nodes, so node and
  cell index spaces coincide: node/cell ``(i, j)`` has row-major id
  ``j * nx + i``.
* A particle at ``(x, y)`` lies in cell ``(floor(x/dx), floor(y/dy))``
  and couples to the 4 vertex nodes of that cell with bilinear
  (cloud-in-cell) weights — the paper's linear interpolation scheme.
"""

from __future__ import annotations

import numpy as np

from repro.util import require, require_positive

__all__ = ["Grid2D"]


class Grid2D:
    """Geometry of a periodic ``nx x ny`` cell grid over ``[0,lx) x [0,ly)``.

    Parameters
    ----------
    nx, ny:
        Number of cells along x and y (>= 2 each, so the 4 CIC vertices
        are distinct).
    lx, ly:
        Physical extents; default to ``nx`` and ``ny`` (unit cells).
    """

    def __init__(self, nx: int, ny: int, lx: float | None = None, ly: float | None = None) -> None:
        require(nx >= 2 and ny >= 2, f"grid must be at least 2x2 cells, got {nx}x{ny}")
        self.nx = int(nx)
        self.ny = int(ny)
        self.lx = float(lx) if lx is not None else float(nx)
        self.ly = float(ly) if ly is not None else float(ny)
        require_positive(self.lx, "lx")
        require_positive(self.ly, "ly")
        self.dx = self.lx / self.nx
        self.dy = self.ly / self.ny

    # ------------------------------------------------------------------
    @property
    def ncells(self) -> int:
        """Total number of cells (== number of field nodes)."""
        return self.nx * self.ny

    @property
    def nnodes(self) -> int:
        """Total number of field nodes (== cells, periodic grid)."""
        return self.nx * self.ny

    @property
    def shape(self) -> tuple[int, int]:
        """Field-array shape ``(ny, nx)``."""
        return (self.ny, self.nx)

    # ------------------------------------------------------------------
    def wrap_positions(self, x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Fold positions into the periodic domain ``[0,lx) x [0,ly)``.

        ``np.mod(-eps, L)`` can round to exactly ``L`` for tiny negative
        inputs; those hits fold back to 0 so the half-open contract holds.
        """
        xw = np.mod(x, self.lx)
        yw = np.mod(y, self.ly)
        xw = np.where(xw >= self.lx, 0.0, xw)
        yw = np.where(yw >= self.ly, 0.0, yw)
        return xw, yw

    def cell_of(self, x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Return integer cell coordinates of (already wrapped) positions."""
        cx = np.floor(np.asarray(x) / self.dx).astype(np.int64)
        cy = np.floor(np.asarray(y) / self.dy).astype(np.int64)
        # Positions exactly at the upper boundary (possible after a wrap
        # that returns lx due to float rounding) fold to the last cell.
        np.clip(cx, 0, self.nx - 1, out=cx)
        np.clip(cy, 0, self.ny - 1, out=cy)
        return cx, cy

    def cell_id(self, cx: np.ndarray, cy: np.ndarray) -> np.ndarray:
        """Row-major cell ids of integer cell coordinates."""
        cx = np.asarray(cx, dtype=np.int64)
        cy = np.asarray(cy, dtype=np.int64)
        if cx.size and (cx.min() < 0 or cx.max() >= self.nx):
            raise ValueError(f"cx out of range [0, {self.nx})")
        if cy.size and (cy.min() < 0 or cy.max() >= self.ny):
            raise ValueError(f"cy out of range [0, {self.ny})")
        return cy * np.int64(self.nx) + cx

    def cell_coords(self, cell_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Inverse of :meth:`cell_id`: return ``(cx, cy)``."""
        cell_ids = np.asarray(cell_ids, dtype=np.int64)
        if cell_ids.size and (cell_ids.min() < 0 or cell_ids.max() >= self.ncells):
            raise ValueError(f"cell id out of range [0, {self.ncells})")
        cy, cx = np.divmod(cell_ids, np.int64(self.nx))
        return cx, cy

    def cell_id_of_positions(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Row-major cell ids of positions (wrapping applied)."""
        xw, yw = self.wrap_positions(x, y)
        cx, cy = self.cell_of(xw, yw)
        return self.cell_id(cx, cy)

    # ------------------------------------------------------------------
    def cic_vertices_weights(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Cloud-in-cell vertex nodes and bilinear weights for positions.

        Returns
        -------
        nodes:
            int64 array of shape ``(n, 4)`` — row-major node ids of the
            4 cell vertices (lower-left, lower-right, upper-left,
            upper-right), wrapped periodically.
        weights:
            float64 array of shape ``(n, 4)`` — bilinear weights, summing
            to 1 per particle.
        """
        xw, yw = self.wrap_positions(np.asarray(x, float), np.asarray(y, float))
        fx = xw / self.dx
        fy = yw / self.dy
        cx = np.floor(fx).astype(np.int64)
        cy = np.floor(fy).astype(np.int64)
        np.clip(cx, 0, self.nx - 1, out=cx)
        np.clip(cy, 0, self.ny - 1, out=cy)
        tx = fx - cx  # fractional offsets in [0, 1)
        ty = fy - cy
        cx1 = (cx + 1) % self.nx
        cy1 = (cy + 1) % self.ny
        nodes = np.stack(
            [
                cy * self.nx + cx,
                cy * self.nx + cx1,
                cy1 * self.nx + cx,
                cy1 * self.nx + cx1,
            ],
            axis=-1,
        ).astype(np.int64)
        weights = np.stack(
            [
                (1.0 - tx) * (1.0 - ty),
                tx * (1.0 - ty),
                (1.0 - tx) * ty,
                tx * ty,
            ],
            axis=-1,
        )
        return nodes, weights

    def node_neighbors(self, node_ids: np.ndarray) -> np.ndarray:
        """Return the four stencil neighbours of each node.

        Shape ``(n, 4)``: west, east, south (iy-1), north (iy+1), with
        periodic wrap — the access pattern of the field-solve stencil.
        """
        node_ids = np.asarray(node_ids, dtype=np.int64)
        iy, ix = np.divmod(node_ids, np.int64(self.nx))
        west = iy * self.nx + (ix - 1) % self.nx
        east = iy * self.nx + (ix + 1) % self.nx
        south = ((iy - 1) % self.ny) * self.nx + ix
        north = ((iy + 1) % self.ny) * self.nx + ix
        return np.stack([west, east, south, north], axis=-1)

    def __repr__(self) -> str:
        return f"Grid2D({self.nx}x{self.ny}, lx={self.lx:g}, ly={self.ly:g})"
