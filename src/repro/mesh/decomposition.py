"""Domain decompositions of the mesh over processors.

A decomposition is an ownership function: every cell (and field node —
the two index spaces coincide on the periodic grid) belongs to exactly
one rank, and every rank owns a nearly equal number.

* :class:`CurveBlockDecomposition` orders cells along a space-filling
  curve and gives each rank one contiguous run — the paper's Figure 10
  when the curve is Hilbert (square-ish tiles, processor order following
  the curve), and high-aspect-ratio strips when it is snakelike.
* :class:`BlockDecomposition` is the classic ``pr x pc`` tiling.

Both expose vectorized ``owner_of_cells`` plus per-rank cell lists, from
which halo schedules and ghost tables are derived.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from functools import cached_property

import numpy as np

from repro.indexing import IndexingScheme, get_scheme
from repro.machine.topology import best_process_grid
from repro.mesh.grid import Grid2D
from repro.util import require

__all__ = [
    "MeshDecomposition",
    "CurveBlockDecomposition",
    "BlockDecomposition",
    "ScatterDecomposition",
    "balanced_splits",
]


def balanced_splits(n: int, p: int) -> np.ndarray:
    """Boundaries of a balanced split of ``n`` items into ``p`` runs.

    Returns an int64 array of length ``p + 1``; run ``r`` is
    ``[out[r], out[r+1])``.  The first ``n % p`` runs get one extra item.
    """
    require(n >= 0 and p >= 1, f"need n >= 0 and p >= 1, got n={n}, p={p}")
    base, extra = divmod(n, p)
    sizes = np.full(p, base, dtype=np.int64)
    sizes[:extra] += 1
    return np.concatenate([[0], np.cumsum(sizes)])


class MeshDecomposition(ABC):
    """Ownership of mesh cells/nodes by ranks."""

    def __init__(self, grid: Grid2D, p: int) -> None:
        require(p >= 1, f"p must be >= 1, got {p}")
        require(
            grid.ncells >= p,
            f"cannot give {p} ranks at least one of {grid.ncells} cells",
        )
        self.grid = grid
        self.p = p

    @abstractmethod
    def owner_of_cells(self, cell_ids: np.ndarray) -> np.ndarray:
        """Rank owning each row-major cell id (vectorized)."""

    def owner_of_nodes(self, node_ids: np.ndarray) -> np.ndarray:
        """Rank owning each field node (node ids == cell ids)."""
        return self.owner_of_cells(node_ids)

    @cached_property
    def owner_map(self) -> np.ndarray:
        """Dense rank-per-cell array of length ``ncells``."""
        return self.owner_of_cells(np.arange(self.grid.ncells, dtype=np.int64))

    def cells_of_rank(self, rank: int) -> np.ndarray:
        """Sorted row-major cell ids owned by ``rank``."""
        require(0 <= rank < self.p, f"rank {rank} out of range")
        return np.flatnonzero(self.owner_map == rank).astype(np.int64)

    def nodes_of_rank(self, rank: int) -> np.ndarray:
        """Sorted node ids owned by ``rank`` (== cells)."""
        return self.cells_of_rank(rank)

    def cell_counts(self) -> np.ndarray:
        """Number of cells per rank."""
        return np.bincount(self.owner_map, minlength=self.p).astype(np.int64)

    def node_counts(self) -> np.ndarray:
        """Number of field nodes per rank."""
        return self.cell_counts()

    def max_cell_imbalance(self) -> float:
        """``max / mean`` cell-count ratio — 1.0 is perfectly balanced."""
        counts = self.cell_counts()
        return float(counts.max() / counts.mean())

    def boundary_node_count(self, rank: int) -> int:
        """Number of owned nodes with at least one off-rank stencil neighbour.

        Proportional to the rank's field-solve halo traffic; for square
        tiles this is the paper's ``4 * sqrt(m/p)`` perimeter.
        """
        nodes = self.nodes_of_rank(rank)
        neigh = self.grid.node_neighbors(nodes)
        off = self.owner_map[neigh] != rank
        return int(np.count_nonzero(off.any(axis=1)))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(grid={self.grid!r}, p={self.p})"


class CurveBlockDecomposition(MeshDecomposition):
    """Equal contiguous runs of cells along a space-filling curve.

    Parameters
    ----------
    grid, p:
        Mesh and rank count.
    scheme:
        Indexing scheme instance or name (default ``"hilbert"``).
    """

    def __init__(
        self,
        grid: Grid2D,
        p: int,
        scheme: str | IndexingScheme = "hilbert",
        *,
        bounds: np.ndarray | None = None,
    ) -> None:
        super().__init__(grid, p)
        self.scheme = get_scheme(scheme)
        # positions[c] = curve position of cell c; contiguous curve runs
        # map to ranks.  Explicit `bounds` (length p + 1, monotone, over
        # [0, ncells]) carve unbalanced runs — used by the *particle
        # partitioning* strategy, where mesh splits follow particle
        # quantiles and some ranks may own few or no cells.
        positions = self.scheme.positions(grid.nx, grid.ny)
        if bounds is None:
            bounds = balanced_splits(grid.ncells, p)
        else:
            bounds = np.asarray(bounds, dtype=np.int64)
            require(bounds.shape == (p + 1,), f"bounds must have length p+1={p + 1}")
            require(bounds[0] == 0 and bounds[-1] == grid.ncells, "bounds must span [0, ncells]")
            require(bool(np.all(np.diff(bounds) >= 0)), "bounds must be non-decreasing")
        owner = (np.searchsorted(bounds, positions, side="right") - 1).astype(np.int64)
        # Elements exactly at an empty rank's zero-width boundary fall
        # through to the next non-empty rank below; clip into range.
        np.clip(owner, 0, p - 1, out=owner)
        self._owner = owner
        self._curve_bounds = bounds

    @property
    def curve_bounds(self) -> np.ndarray:
        """Curve-position boundaries of each rank's run (length p+1)."""
        return self._curve_bounds.copy()

    def owner_of_cells(self, cell_ids: np.ndarray) -> np.ndarray:
        cell_ids = np.asarray(cell_ids, dtype=np.int64)
        if cell_ids.size and (cell_ids.min() < 0 or cell_ids.max() >= self.grid.ncells):
            raise ValueError(f"cell id out of range [0, {self.grid.ncells})")
        return self._owner[cell_ids]

    @cached_property
    def owner_map(self) -> np.ndarray:
        return self._owner

    def __repr__(self) -> str:
        return f"CurveBlockDecomposition(grid={self.grid!r}, p={self.p}, scheme={self.scheme.name!r})"


class BlockDecomposition(MeshDecomposition):
    """Classic rectangular ``pr x pc`` tiling of the cell grid.

    Ranks are row-major over the processor grid.  ``pr``/``pc`` default
    to the most-square factorization of ``p``.
    """

    def __init__(self, grid: Grid2D, p: int, pr: int | None = None, pc: int | None = None) -> None:
        super().__init__(grid, p)
        if pr is None or pc is None:
            pr, pc = best_process_grid(p)
        require(pr * pc == p, f"pr * pc must equal p: {pr} * {pc} != {p}")
        require(pr <= grid.ny and pc <= grid.nx, "more processor rows/cols than cells")
        self.pr = pr
        self.pc = pc
        self._row_bounds = balanced_splits(grid.ny, pr)
        self._col_bounds = balanced_splits(grid.nx, pc)

    def tile(self, rank: int) -> tuple[int, int, int, int]:
        """Return ``(iy0, iy1, ix0, ix1)`` cell bounds of ``rank``'s tile."""
        require(0 <= rank < self.p, f"rank {rank} out of range")
        prow, pcol = divmod(rank, self.pc)
        return (
            int(self._row_bounds[prow]),
            int(self._row_bounds[prow + 1]),
            int(self._col_bounds[pcol]),
            int(self._col_bounds[pcol + 1]),
        )

    def owner_of_cells(self, cell_ids: np.ndarray) -> np.ndarray:
        cell_ids = np.asarray(cell_ids, dtype=np.int64)
        cx, cy = self.grid.cell_coords(cell_ids)
        prow = np.searchsorted(self._row_bounds, cy, side="right") - 1
        pcol = np.searchsorted(self._col_bounds, cx, side="right") - 1
        return (prow * self.pc + pcol).astype(np.int64)

    def __repr__(self) -> str:
        return f"BlockDecomposition(grid={self.grid!r}, p={self.p}, {self.pr}x{self.pc})"


class ScatterDecomposition(MeshDecomposition):
    """2-D cyclic (scatter) assignment of cells to ranks.

    Cell ``(ix, iy)`` belongs to rank ``(iy % pr) * pc + (ix % pc)``
    over a near-square ``pr x pc`` processor grid — the scatter
    decomposition used by Hoshino et al.'s grid-partitioning codes
    (paper §3.1).  It spreads any spatial load pattern evenly (each
    rank's cells tile the domain like a comb) but destroys locality:
    every stencil neighbour and particle vertex is off-rank, so the
    field-solve and scatter/gather communication are maximal.  Included
    as the anti-locality baseline.
    """

    def __init__(self, grid: Grid2D, p: int) -> None:
        super().__init__(grid, p)
        self.pr, self.pc = best_process_grid(p)

    def owner_of_cells(self, cell_ids: np.ndarray) -> np.ndarray:
        cell_ids = np.asarray(cell_ids, dtype=np.int64)
        if cell_ids.size and (cell_ids.min() < 0 or cell_ids.max() >= self.grid.ncells):
            raise ValueError(f"cell id out of range [0, {self.grid.ncells})")
        cx, cy = self.grid.cell_coords(cell_ids)
        return (cy % self.pr) * np.int64(self.pc) + (cx % self.pc)
