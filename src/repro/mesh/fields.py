"""Electromagnetic field storage on the mesh.

:class:`FieldState` holds the full 2D3V field set — ``E = (Ex, Ey, Ez)``,
``B = (Bx, By, Bz)`` — plus the source terms deposited by particles
(current density ``J`` and charge density ``rho``), each as a
``(ny, nx)`` array over the periodic node grid.

Normalized units are used throughout (``c = eps0 = mu0 = 1``), the usual
choice for PIC kernels; the paper's evaluation is insensitive to the
unit system.
"""

from __future__ import annotations

from dataclasses import dataclass, fields as dataclass_fields

import numpy as np

from repro.mesh.grid import Grid2D
from repro.util import require

__all__ = ["FieldState"]

_COMPONENTS = ("ex", "ey", "ez", "bx", "by", "bz", "jx", "jy", "jz", "rho")


@dataclass
class FieldState:
    """All field components over a grid, each shaped ``(ny, nx)``."""

    ex: np.ndarray
    ey: np.ndarray
    ez: np.ndarray
    bx: np.ndarray
    by: np.ndarray
    bz: np.ndarray
    jx: np.ndarray
    jy: np.ndarray
    jz: np.ndarray
    rho: np.ndarray

    @classmethod
    def zeros(cls, grid: Grid2D) -> "FieldState":
        """All-zero fields over ``grid``."""
        return cls(*(np.zeros(grid.shape) for _ in _COMPONENTS))

    def __post_init__(self) -> None:
        shapes = {getattr(self, name).shape for name in _COMPONENTS}
        require(len(shapes) == 1, f"all components must share one shape, got {shapes}")

    @property
    def shape(self) -> tuple[int, int]:
        """Common ``(ny, nx)`` array shape."""
        return self.ex.shape

    def copy(self) -> "FieldState":
        """Deep copy."""
        return FieldState(*(getattr(self, name).copy() for name in _COMPONENTS))

    def clear_sources(self) -> None:
        """Zero the deposited sources (J, rho) before a new scatter phase."""
        for name in ("jx", "jy", "jz", "rho"):
            getattr(self, name).fill(0.0)

    # ------------------------------------------------------------------
    # diagnostics
    # ------------------------------------------------------------------
    def field_energy(self, grid: Grid2D) -> float:
        """Total electromagnetic field energy, ``(E^2 + B^2)/2`` summed
        over nodes times the cell area (normalized units)."""
        e2 = self.ex**2 + self.ey**2 + self.ez**2
        b2 = self.bx**2 + self.by**2 + self.bz**2
        return float(0.5 * (e2 + b2).sum() * grid.dx * grid.dy)

    def total_charge(self, grid: Grid2D) -> float:
        """Total deposited charge (``rho`` integrated over the domain)."""
        return float(self.rho.sum() * grid.dx * grid.dy)

    def allclose(self, other: "FieldState", *, rtol: float = 1e-10, atol: float = 1e-12) -> bool:
        """Component-wise comparison, used by the parallel == sequential tests."""
        return all(
            np.allclose(getattr(self, f.name), getattr(other, f.name), rtol=rtol, atol=atol)
            for f in dataclass_fields(self)
        )
