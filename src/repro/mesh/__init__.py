"""Mesh substrate: grid geometry, field storage, and domain decomposition.

The PIC mesh is a regular 2-D grid of cells with one field node per cell
(periodic boundaries), BLOCK-distributed over processors (paper §1).
Two decomposition families are provided:

* :class:`CurveBlockDecomposition` — cells ordered along a space-filling
  curve and split into ``p`` equal contiguous runs.  With the Hilbert
  scheme this is exactly the paper's Figure 10 (square-ish tiles whose
  processor order follows the curve); with the snake scheme it yields
  the high-aspect-ratio row strips the paper compares against.
* :class:`BlockDecomposition` — classic ``pr x pc`` rectangular tiles.

Halo exchange schedules for the 5-point field stencil are derived from
the decomposition's ownership function, so they work for any of the
above.
"""

from repro.mesh.grid import Grid2D
from repro.mesh.fields import FieldState
from repro.mesh.decomposition import (
    BlockDecomposition,
    CurveBlockDecomposition,
    MeshDecomposition,
    ScatterDecomposition,
)
from repro.mesh.halo import HaloSchedule

__all__ = [
    "Grid2D",
    "FieldState",
    "MeshDecomposition",
    "BlockDecomposition",
    "CurveBlockDecomposition",
    "ScatterDecomposition",
    "HaloSchedule",
]
