"""Snakelike (boustrophedon) grid ordering.

Rows are traversed alternately left-to-right and right-to-left so the
curve is continuous, but subdomains carved out of it are long row strips
with high aspect ratio (paper §6.3): larger perimeters, hence more
communication than Hilbert subdomains.  This is the comparison scheme in
the paper's Table 2 and Figures 21/22.
"""

from __future__ import annotations

import numpy as np

from repro.indexing.base import IndexingScheme

__all__ = ["SnakeIndexing"]


class SnakeIndexing(IndexingScheme):
    """Snakelike ordering: even rows run ``+x``, odd rows run ``-x``."""

    name = "snake"

    def keys(self, ix: np.ndarray, iy: np.ndarray, nx: int, ny: int) -> np.ndarray:
        ix, iy = self._validate(ix, iy, nx, ny)
        forward = iy % 2 == 0
        col = np.where(forward, ix, np.int64(nx) - 1 - ix)
        return iy * np.int64(nx) + col
