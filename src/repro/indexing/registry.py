"""Name-based registry of indexing schemes.

Experiments are configured with scheme *names* (``"hilbert"``,
``"snake"``...) so that sweeps like Table 2 are data-driven.  Users can
register custom schemes with :func:`register_scheme`.
"""

from __future__ import annotations

from repro.indexing.base import IndexingScheme
from repro.indexing.hilbert import HilbertIndexing
from repro.indexing.morton import MortonIndexing
from repro.indexing.rowmajor import RowMajorIndexing
from repro.indexing.snake import SnakeIndexing

__all__ = ["get_scheme", "register_scheme", "available_schemes"]

_REGISTRY: dict[str, type[IndexingScheme]] = {}


def register_scheme(cls: type[IndexingScheme]) -> type[IndexingScheme]:
    """Register an :class:`IndexingScheme` subclass under ``cls.name``.

    Usable as a decorator.  Re-registering a name overwrites the previous
    entry (deliberately, so tests can stub schemes).
    """
    if not (isinstance(cls, type) and issubclass(cls, IndexingScheme)):
        raise TypeError(f"expected an IndexingScheme subclass, got {cls!r}")
    if not cls.name or cls.name == "abstract":
        raise ValueError("scheme class must define a non-default `name`")
    _REGISTRY[cls.name] = cls
    return cls


def get_scheme(name: str | IndexingScheme) -> IndexingScheme:
    """Return an instance of the scheme registered under ``name``.

    An :class:`IndexingScheme` instance is passed through unchanged, so
    APIs can accept either form.
    """
    if isinstance(name, IndexingScheme):
        return name
    try:
        return _REGISTRY[name]()
    except KeyError:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown indexing scheme {name!r}; known schemes: {known}") from None


def available_schemes() -> list[str]:
    """Return the sorted names of all registered schemes."""
    return sorted(_REGISTRY)


for _cls in (HilbertIndexing, SnakeIndexing, RowMajorIndexing, MortonIndexing):
    register_scheme(_cls)
