"""Row-major (lexicographic) grid ordering.

Keeps proximity only along rows (paper §5.1, Figure 9a); included as the
weakest baseline for the indexing-quality ablation.
"""

from __future__ import annotations

import numpy as np

from repro.indexing.base import IndexingScheme

__all__ = ["RowMajorIndexing"]


class RowMajorIndexing(IndexingScheme):
    """Row-major ordering: ``key = iy * nx + ix``."""

    name = "rowmajor"

    def keys(self, ix: np.ndarray, iy: np.ndarray, nx: int, ny: int) -> np.ndarray:
        ix, iy = self._validate(ix, iy, nx, ny)
        return iy * np.int64(nx) + ix
