"""Morton (Z-order) grid ordering.

Not evaluated in the paper; included as an ablation point between
row-major/snake (1-D locality) and Hilbert (2-D locality with no jumps):
Morton preserves 2-D locality on average but has long diagonal jumps.
"""

from __future__ import annotations

import numpy as np

from repro.indexing.base import IndexingScheme
from repro.indexing.hilbert import hilbert_order_for
from repro.util import require

__all__ = ["MortonIndexing", "morton_encode_2d"]


def _part1by1(v: np.ndarray) -> np.ndarray:
    """Spread the low 31 bits of ``v`` so a zero sits between each pair."""
    v = v.astype(np.int64) & np.int64(0x7FFFFFFF)
    v = (v | (v << 16)) & np.int64(0x0000FFFF0000FFFF)
    v = (v | (v << 8)) & np.int64(0x00FF00FF00FF00FF)
    v = (v | (v << 4)) & np.int64(0x0F0F0F0F0F0F0F0F)
    v = (v | (v << 2)) & np.int64(0x3333333333333333)
    v = (v | (v << 1)) & np.int64(0x5555555555555555)
    return v


def morton_encode_2d(x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Interleave the bits of ``x`` and ``y`` into Morton codes.

    Both inputs must be non-negative and fit in 31 bits.
    """
    x = np.asarray(x, dtype=np.int64)
    y = np.asarray(y, dtype=np.int64)
    if x.size and (x.min() < 0 or x.max() >= (1 << 31)):
        raise ValueError("x out of range [0, 2^31)")
    if y.size and (y.min() < 0 or y.max() >= (1 << 31)):
        raise ValueError("y out of range [0, 2^31)")
    return _part1by1(x) | (_part1by1(y) << 1)


class MortonIndexing(IndexingScheme):
    """Morton/Z-order: bit-interleaved ``(ix, iy)``."""

    name = "morton"

    def keys(self, ix: np.ndarray, iy: np.ndarray, nx: int, ny: int) -> np.ndarray:
        ix, iy = self._validate(ix, iy, nx, ny)
        require(hilbert_order_for(nx, ny) <= 31, "grid too large for Morton keys")
        return morton_encode_2d(ix, iy)
