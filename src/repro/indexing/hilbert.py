"""Vectorized Hilbert space-filling-curve transforms.

Implements the classic iterative 2-D Hilbert transform (after the
public-domain algorithm popularized on Wikipedia) fully vectorized over
NumPy arrays, and the n-dimensional transpose algorithm of John Skilling
("Programming the Hilbert curve", AIP Conf. Proc. 707, 2004), likewise
vectorized.

Non-power-of-two grids are supported by embedding the grid into the
smallest enclosing ``2^k x 2^k`` curve: the resulting keys are not dense
but remain a total order that preserves spatial proximity, which is all
the partitioner (:mod:`repro.core.partitioner`) needs.
"""

from __future__ import annotations

import numpy as np

from repro.indexing.base import IndexingScheme
from repro.util import require

__all__ = [
    "hilbert_order_for",
    "hilbert_xy_to_d",
    "hilbert_d_to_xy",
    "hilbert_encode_nd",
    "hilbert_decode_nd",
    "HilbertIndexing",
]


def hilbert_order_for(nx: int, ny: int) -> int:
    """Return the curve order ``k`` of the smallest ``2^k`` square enclosing ``nx x ny``."""
    require(nx >= 1 and ny >= 1, f"grid extent must be >= 1, got {nx}x{ny}")
    side = max(nx, ny)
    return max(1, int(np.ceil(np.log2(side)))) if side > 1 else 1


def hilbert_xy_to_d(order: int, x: np.ndarray, y: np.ndarray) -> np.ndarray:
    """Map 2-D coordinates to distances along a Hilbert curve of ``order`` bits.

    Parameters
    ----------
    order:
        Number of bits per dimension; the curve covers ``2^order x 2^order``.
    x, y:
        Integer coordinate arrays (broadcast together), each in
        ``[0, 2^order)``.

    Returns
    -------
    numpy.ndarray
        int64 distances ``d`` in ``[0, 4^order)``.
    """
    require(1 <= order <= 31, f"order must be in [1, 31], got {order}")
    n = np.int64(1) << order
    xb, yb = np.broadcast_arrays(np.asarray(x, np.int64), np.asarray(y, np.int64))
    x = np.array(xb, dtype=np.int64, copy=True)
    y = np.array(yb, dtype=np.int64, copy=True)
    if x.size and (x.min() < 0 or x.max() >= n or y.min() < 0 or y.max() >= n):
        raise ValueError(f"coordinates out of range [0, {n}) for order {order}")
    d = np.zeros_like(x)
    s = n >> 1
    while s > 0:
        rx = ((x & s) > 0).astype(np.int64)
        ry = ((y & s) > 0).astype(np.int64)
        d += s * s * ((3 * rx) ^ ry)
        # Rotate quadrant: applies where ry == 0.
        rot = ry == 0
        flip = rot & (rx == 1)
        np.subtract(s - 1, x, out=x, where=flip)
        np.subtract(s - 1, y, out=y, where=flip)
        xt = np.where(rot, y, x)
        y = np.where(rot, x, y)
        x = xt
        s >>= 1
    return d


def hilbert_d_to_xy(order: int, d: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Inverse of :func:`hilbert_xy_to_d`: map curve distances to coordinates.

    Returns ``(x, y)`` int64 arrays.
    """
    require(1 <= order <= 31, f"order must be in [1, 31], got {order}")
    n = np.int64(1) << order
    d = np.asarray(d, dtype=np.int64)
    if d.size and (d.min() < 0 or d.max() >= n * n):
        raise ValueError(f"distance out of range [0, {n * n}) for order {order}")
    t = d.copy()
    x = np.zeros_like(d)
    y = np.zeros_like(d)
    s = np.int64(1)
    while s < n:
        rx = 1 & (t // 2)
        ry = 1 & (t ^ rx)
        # Rotate (inverse of encode rotation), where ry == 0.
        rot = ry == 0
        flip = rot & (rx == 1)
        xf = s - 1 - x
        yf = s - 1 - y
        x = np.where(flip, xf, x)
        y = np.where(flip, yf, y)
        xt = np.where(rot, y, x)
        y = np.where(rot, x, y)
        x = xt
        x += s * rx
        y += s * ry
        t //= 4
        s <<= 1
    return x, y


def hilbert_encode_nd(coords: np.ndarray, order: int) -> np.ndarray:
    """Encode n-D integer coordinates along a Hilbert curve (Skilling's transform).

    Parameters
    ----------
    coords:
        Integer array of shape ``(npoints, ndim)`` with entries in
        ``[0, 2^order)``.
    order:
        Bits per dimension.  ``ndim * order`` must be <= 62 so keys fit
        in int64.

    Returns
    -------
    numpy.ndarray
        int64 curve distances of shape ``(npoints,)``.
    """
    coords = np.asarray(coords, dtype=np.int64)
    require(coords.ndim == 2, f"coords must be (npoints, ndim), got shape {coords.shape}")
    npoints, ndim = coords.shape
    require(ndim >= 1, "ndim must be >= 1")
    require(1 <= order <= 62 and ndim * order <= 62, f"ndim*order must be <= 62, got {ndim * order}")
    if npoints and (coords.min() < 0 or coords.max() >= (1 << order)):
        raise ValueError(f"coordinates out of range [0, {1 << order}) for order {order}")
    X = coords.T.copy()  # shape (ndim, npoints)
    m = np.int64(1) << (order - 1)
    # Inverse undo excess work (Skilling, AxestoTranspose).
    q = m
    while q > 1:
        p = q - 1
        for i in range(ndim):
            hi = (X[i] & q) != 0
            # where hi: X[0] ^= p ; else swap low bits of X[0], X[i] under mask p
            t = (X[0] ^ X[i]) & p
            X[0] = np.where(hi, X[0] ^ p, X[0] ^ t)
            X[i] = np.where(hi, X[i], X[i] ^ t)
        q >>= 1
    # Gray encode.
    for i in range(1, ndim):
        X[i] ^= X[i - 1]
    t = np.zeros(npoints, dtype=np.int64)
    q = m
    while q > 1:
        t = np.where((X[ndim - 1] & q) != 0, t ^ (q - 1), t)
        q >>= 1
    for i in range(ndim):
        X[i] ^= t
    # Interleave the transposed bits into a single key, most significant first.
    d = np.zeros(npoints, dtype=np.int64)
    for bit in range(order - 1, -1, -1):
        for i in range(ndim):
            d = (d << 1) | ((X[i] >> bit) & 1)
    return d


def hilbert_decode_nd(d: np.ndarray, order: int, ndim: int) -> np.ndarray:
    """Inverse of :func:`hilbert_encode_nd`.

    Returns int64 coordinates of shape ``(npoints, ndim)``.
    """
    d = np.asarray(d, dtype=np.int64)
    require(d.ndim == 1, f"d must be 1-D, got shape {d.shape}")
    require(ndim >= 1, "ndim must be >= 1")
    require(1 <= order <= 62 and ndim * order <= 62, f"ndim*order must be <= 62, got {ndim * order}")
    npoints = d.size
    if npoints and (d.min() < 0 or d.max() >= (np.int64(1) << (ndim * order))):
        raise ValueError("distance out of range for given order/ndim")
    # De-interleave into transposed form.
    X = np.zeros((ndim, npoints), dtype=np.int64)
    pos = ndim * order
    for bit in range(order - 1, -1, -1):
        for i in range(ndim):
            pos -= 1
            X[i] |= ((d >> pos) & 1) << bit
    # Skilling TransposetoAxes.
    n2 = np.int64(2) << (order - 1)
    # Gray decode by H ^ (H/2).
    t = X[ndim - 1] >> 1
    for i in range(ndim - 1, 0, -1):
        X[i] ^= X[i - 1]
    X[0] ^= t
    # Undo excess work.
    q = np.int64(2)
    while q != n2:
        p = q - 1
        for i in range(ndim - 1, -1, -1):
            hi = (X[i] & q) != 0
            t = (X[0] ^ X[i]) & p
            X[0] = np.where(hi, X[0] ^ p, X[0] ^ t)
            X[i] = np.where(hi, X[i], X[i] ^ t)
        q <<= 1
    return X.T.copy()


class HilbertIndexing(IndexingScheme):
    """Hilbert space-filling-curve ordering of a 2-D cell grid.

    Maintains spatial proximity along *both* dimensions, which is what
    keeps particle subdomains compact (paper §5.1, Figure 9c).
    """

    name = "hilbert"

    def keys(self, ix: np.ndarray, iy: np.ndarray, nx: int, ny: int) -> np.ndarray:
        ix, iy = self._validate(ix, iy, nx, ny)
        order = hilbert_order_for(nx, ny)
        return hilbert_xy_to_d(order, ix, iy)
