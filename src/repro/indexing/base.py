"""Abstract interface for 2-D grid indexing schemes.

An indexing scheme maps integer cell coordinates ``(ix, iy)`` of an
``nx x ny`` grid to scalar *keys* whose total order defines the curve.
Keys need not be dense (the Hilbert scheme embeds non-power-of-two grids
into an enclosing power-of-two curve) — only their relative order is
used by the partitioner.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.util import require

__all__ = ["IndexingScheme"]


class IndexingScheme(ABC):
    """Orders the cells of a 2-D grid along a 1-D curve.

    Subclasses implement :meth:`keys`; :meth:`ordering` and
    :meth:`positions` are derived.
    """

    #: Registry name of the scheme (e.g. ``"hilbert"``).
    name: str = "abstract"

    @abstractmethod
    def keys(self, ix: np.ndarray, iy: np.ndarray, nx: int, ny: int) -> np.ndarray:
        """Return int64 sort keys for cells ``(ix, iy)`` of an ``nx x ny`` grid.

        Parameters
        ----------
        ix, iy:
            Integer cell coordinates, ``0 <= ix < nx`` and ``0 <= iy < ny``.
            Arbitrary (broadcastable) array shapes are accepted.
        nx, ny:
            Grid extent in cells.
        """

    def _validate(self, ix: np.ndarray, iy: np.ndarray, nx: int, ny: int) -> tuple[np.ndarray, np.ndarray]:
        require(nx >= 1 and ny >= 1, f"grid extent must be >= 1, got {nx}x{ny}")
        ix = np.asarray(ix, dtype=np.int64)
        iy = np.asarray(iy, dtype=np.int64)
        if ix.size and (ix.min() < 0 or ix.max() >= nx):
            raise ValueError(f"ix out of range [0, {nx}): [{ix.min()}, {ix.max()}]")
        if iy.size and (iy.min() < 0 or iy.max() >= ny):
            raise ValueError(f"iy out of range [0, {ny}): [{iy.min()}, {iy.max()}]")
        return ix, iy

    def ordering(self, nx: int, ny: int) -> np.ndarray:
        """Return row-major cell ids sorted along the curve.

        ``ordering(nx, ny)[k]`` is the row-major id (``iy * nx + ix``) of
        the ``k``-th cell along the curve.
        """
        iy, ix = np.divmod(np.arange(nx * ny, dtype=np.int64), nx)
        keys = self.keys(ix, iy, nx, ny)
        return np.argsort(keys, kind="stable").astype(np.int64)

    def positions(self, nx: int, ny: int) -> np.ndarray:
        """Return the curve position (rank) of every cell, row-major order.

        This is the inverse permutation of :meth:`ordering`: cell ``c``
        (row-major id) is the ``positions(...)[c]``-th cell along the curve.
        """
        order = self.ordering(nx, ny)
        pos = np.empty_like(order)
        pos[order] = np.arange(order.size, dtype=np.int64)
        return pos

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
