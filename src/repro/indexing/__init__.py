"""Space-filling-curve indexing schemes for cells and processors.

The paper's central mechanism (its §5.1) is to linearize the 2-D cell
grid with an index that preserves spatial proximity, assign each particle
the index of its enclosing cell, and distribute the sorted particle array
in equal contiguous slices.  This package provides the index schemes the
paper evaluates — Hilbert and snakelike — plus row-major and Morton
orders for ablation, all vectorized over NumPy arrays.

Public API
----------
* :class:`IndexingScheme` — abstract interface (``keys``, ``ordering``).
* :class:`HilbertIndexing`, :class:`SnakeIndexing`,
  :class:`RowMajorIndexing`, :class:`MortonIndexing` — concrete schemes.
* :func:`get_scheme` — look a scheme up by name (``"hilbert"`` etc.).
* Low-level transforms: :func:`hilbert_xy_to_d`, :func:`hilbert_d_to_xy`,
  :func:`hilbert_encode_nd`, :func:`hilbert_decode_nd`.
"""

from repro.indexing.base import IndexingScheme
from repro.indexing.hilbert import (
    HilbertIndexing,
    hilbert_d_to_xy,
    hilbert_decode_nd,
    hilbert_encode_nd,
    hilbert_xy_to_d,
)
from repro.indexing.morton import MortonIndexing, morton_encode_2d
from repro.indexing.rowmajor import RowMajorIndexing
from repro.indexing.snake import SnakeIndexing
from repro.indexing.registry import available_schemes, get_scheme, register_scheme

__all__ = [
    "IndexingScheme",
    "HilbertIndexing",
    "SnakeIndexing",
    "RowMajorIndexing",
    "MortonIndexing",
    "hilbert_xy_to_d",
    "hilbert_d_to_xy",
    "hilbert_encode_nd",
    "hilbert_decode_nd",
    "morton_encode_2d",
    "get_scheme",
    "register_scheme",
    "available_schemes",
]
