"""Experiment workload configurations (the paper's evaluation setups)."""

from repro.workloads.scenarios import (
    FIG16_CASES,
    FIG17_CASE,
    FIG20_CASE,
    TABLE2_CASES,
    PaperCase,
    scaled_iterations,
)

__all__ = [
    "PaperCase",
    "FIG16_CASES",
    "FIG17_CASE",
    "FIG20_CASE",
    "TABLE2_CASES",
    "scaled_iterations",
]
