"""The paper's experimental configurations, as data.

Mesh/particle pairs, distributions, processor counts, and iteration
counts from §6 of the paper:

* Figure 16 — 2000 iterations, 32 nodes, three (mesh, particles) pairs,
  static vs periodic k in {200, 100, 50, 25, 10, 5}.
* Figures 17–19 — irregular, 128x64 mesh, 32768 particles, 32 nodes.
* Figure 20 — 200 iterations, periodic vs dynamic.
* Table 2 / Figures 21–22 — 200 iterations, Hilbert vs snake, uniform
  and irregular, meshes 256x128 and 512x256, 32/64/128 processors.

Because a pure-Python virtual machine pays real wall-clock for every
virtual iteration, benchmark drivers scale the iteration counts by
``REPRO_SCALE`` (default 0.1; set 1 to reproduce the paper's full
counts) via :func:`scaled_iterations`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

__all__ = [
    "PaperCase",
    "FIG16_CASES",
    "FIG17_CASE",
    "FIG20_CASE",
    "TABLE2_CASES",
    "scaled_iterations",
    "repro_scale",
]


@dataclass(frozen=True)
class PaperCase:
    """One experimental configuration from the paper's §6."""

    name: str
    nx: int
    ny: int
    nparticles: int
    p: int
    distribution: str
    iterations: int

    def config_kwargs(self) -> dict:
        """Keyword arguments for :class:`repro.pic.SimulationConfig`."""
        return dict(
            nx=self.nx,
            ny=self.ny,
            nparticles=self.nparticles,
            p=self.p,
            distribution=self.distribution,
        )


#: Figure 16 — static vs periodic, 2000 iterations on 32 nodes.  The
#: paper shows three (grid, particle) pairs; it names 128x64 with 32768
#: particles explicitly (Figs 17-19 use it), we pair it with the two
#: smaller/larger combinations of its Table 2 family.
FIG16_CASES: tuple[PaperCase, ...] = (
    PaperCase("mesh64x32-n16384", 64, 32, 16384, 32, "irregular", 2000),
    PaperCase("mesh128x64-n32768", 128, 64, 32768, 32, "irregular", 2000),
    PaperCase("mesh128x64-n65536", 128, 64, 65536, 32, "irregular", 2000),
)

#: Figures 17, 18, 19 — per-iteration series.
FIG17_CASE = PaperCase("fig17", 128, 64, 32768, 32, "irregular", 2000)

#: Figure 20 — periodic vs dynamic over 200 iterations.
FIG20_CASE = PaperCase("fig20", 128, 64, 32768, 32, "irregular", 200)

#: Table 2 / Figures 21-22 — indexing comparison over 200 iterations.
#: (distribution x mesh x particles x processors sweep; the paper pairs
#: mesh 256x128 with 32768/65536 particles and 512x256 with
#: 65536/131072.)
TABLE2_CASES: tuple[PaperCase, ...] = tuple(
    PaperCase(
        f"{dist}-{nx}x{ny}-n{n}-p{p}",
        nx,
        ny,
        n,
        p,
        dist,
        200,
    )
    for dist in ("uniform", "irregular")
    for (nx, ny, n) in ((256, 128, 32768), (256, 128, 65536), (512, 256, 65536), (512, 256, 131072))
    for p in (32, 64, 128)
)


def repro_scale(default: float = 0.1) -> float:
    """Iteration scale factor from the ``REPRO_SCALE`` env var."""
    try:
        value = float(os.environ.get("REPRO_SCALE", default))
    except ValueError:
        raise ValueError(f"REPRO_SCALE must be a number, got {os.environ['REPRO_SCALE']!r}")
    if value <= 0:
        raise ValueError(f"REPRO_SCALE must be > 0, got {value}")
    return value


def scaled_iterations(case_iterations: int, *, minimum: int = 20, default_scale: float = 0.1) -> int:
    """Scale a paper iteration count by ``REPRO_SCALE`` (floor ``minimum``)."""
    return max(minimum, int(round(case_iterations * repro_scale(default_scale))))
