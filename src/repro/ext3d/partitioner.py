"""3-D curve-index particle partitioning (paper §5.1, generalized)."""

from __future__ import annotations

import numpy as np

from repro.ext3d.decomposition import CurveBlockDecomposition3D
from repro.ext3d.grid import Grid3D
from repro.mesh.decomposition import balanced_splits
from repro.util import require

__all__ = ["ParticlePartitioner3D"]


class ParticlePartitioner3D:
    """Distribute 3-D particle positions by curve index.

    Positions are plain arrays (the 3-D extension carries no momenta —
    the distribution machinery only needs coordinates).
    """

    def __init__(self, grid: Grid3D, p: int, scheme: str = "hilbert") -> None:
        require(p >= 1, "p must be >= 1")
        self.grid = grid
        self.p = p
        self.decomp = CurveBlockDecomposition3D(grid, p, scheme)

    def keys(self, x: np.ndarray, y: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Curve positions of the particles' cells."""
        cells = self.grid.cell_id_of_positions(x, y, z)
        return self.decomp.cell_positions(cells)

    def partition(
        self, x: np.ndarray, y: np.ndarray, z: np.ndarray
    ) -> list[np.ndarray]:
        """Return, per rank, the sorted indices of its particles.

        Ranks get equal contiguous slices of the curve-sorted order, so
        the per-rank index lists partition ``arange(n)``.
        """
        keys = self.keys(x, y, z)
        order = np.argsort(keys, kind="stable")
        bounds = balanced_splits(order.size, self.p)
        return [order[bounds[r] : bounds[r + 1]] for r in range(self.p)]

    def alignment_fraction(
        self, x: np.ndarray, y: np.ndarray, z: np.ndarray
    ) -> np.ndarray:
        """Per-rank fraction of assigned particles whose cell the rank
        owns (1.0 = perfectly aligned)."""
        assignment = self.partition(x, y, z)
        cells = self.grid.cell_id_of_positions(x, y, z)
        owners = self.decomp.owner_of_cells(cells)
        out = np.zeros(self.p)
        for r, idx in enumerate(assignment):
            out[r] = float((owners[idx] == r).mean()) if idx.size else 1.0
        return out

    def ghost_vertex_count(
        self, x: np.ndarray, y: np.ndarray, z: np.ndarray
    ) -> int:
        """Total unique off-rank CIC vertices across ranks (comm proxy)."""
        assignment = self.partition(x, y, z)
        nodes, _ = self.grid.cic_vertices_weights(x, y, z)
        total = 0
        for r, idx in enumerate(assignment):
            mine = nodes[idx].ravel()
            owners = self.decomp.owner_of_nodes(mine)
            total += np.unique(mine[owners != r]).size
        return total
