"""Periodic 3-D grid geometry with trilinear (CIC) coupling.

The 3-D analogue of :class:`repro.mesh.grid.Grid2D`: a particle couples
to the 8 vertex nodes of its cell with trilinear weights, so the
scatter/gather communication structure is the same as in 2-D with 8
instead of 4 vertices — exactly the generalization the paper's §4
alludes to.
"""

from __future__ import annotations

import numpy as np

from repro.util import require, require_positive

__all__ = ["Grid3D"]


class Grid3D:
    """Geometry of a periodic ``nx x ny x nz`` cell grid.

    Node/cell ids are row-major with x fastest:
    ``id = (iz * ny + iy) * nx + ix``.
    """

    def __init__(
        self,
        nx: int,
        ny: int,
        nz: int,
        lx: float | None = None,
        ly: float | None = None,
        lz: float | None = None,
    ) -> None:
        require(nx >= 2 and ny >= 2 and nz >= 2, f"grid must be >= 2 cells per axis, got {nx}x{ny}x{nz}")
        self.nx, self.ny, self.nz = int(nx), int(ny), int(nz)
        self.lx = float(lx) if lx is not None else float(nx)
        self.ly = float(ly) if ly is not None else float(ny)
        self.lz = float(lz) if lz is not None else float(nz)
        for name in ("lx", "ly", "lz"):
            require_positive(getattr(self, name), name)
        self.dx = self.lx / self.nx
        self.dy = self.ly / self.ny
        self.dz = self.lz / self.nz

    @property
    def ncells(self) -> int:
        """Total number of cells (== nodes on the periodic grid)."""
        return self.nx * self.ny * self.nz

    nnodes = ncells

    # ------------------------------------------------------------------
    def wrap_positions(
        self, x: np.ndarray, y: np.ndarray, z: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Fold positions into the periodic domain (half-open: a float-mod
        result landing exactly on the period folds back to 0)."""
        xw = np.mod(x, self.lx)
        yw = np.mod(y, self.ly)
        zw = np.mod(z, self.lz)
        xw = np.where(xw >= self.lx, 0.0, xw)
        yw = np.where(yw >= self.ly, 0.0, yw)
        zw = np.where(zw >= self.lz, 0.0, zw)
        return xw, yw, zw

    def cell_of(
        self, x: np.ndarray, y: np.ndarray, z: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Integer cell coordinates of (wrapped) positions."""
        cx = np.clip(np.floor(np.asarray(x) / self.dx).astype(np.int64), 0, self.nx - 1)
        cy = np.clip(np.floor(np.asarray(y) / self.dy).astype(np.int64), 0, self.ny - 1)
        cz = np.clip(np.floor(np.asarray(z) / self.dz).astype(np.int64), 0, self.nz - 1)
        return cx, cy, cz

    def cell_id(self, cx: np.ndarray, cy: np.ndarray, cz: np.ndarray) -> np.ndarray:
        """Row-major (x fastest) cell ids."""
        cx = np.asarray(cx, dtype=np.int64)
        cy = np.asarray(cy, dtype=np.int64)
        cz = np.asarray(cz, dtype=np.int64)
        for arr, n, name in ((cx, self.nx, "cx"), (cy, self.ny, "cy"), (cz, self.nz, "cz")):
            if arr.size and (arr.min() < 0 or arr.max() >= n):
                raise ValueError(f"{name} out of range [0, {n})")
        return (cz * self.ny + cy) * self.nx + cx

    def cell_coords(self, cell_ids: np.ndarray) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Inverse of :meth:`cell_id`."""
        cell_ids = np.asarray(cell_ids, dtype=np.int64)
        if cell_ids.size and (cell_ids.min() < 0 or cell_ids.max() >= self.ncells):
            raise ValueError(f"cell id out of range [0, {self.ncells})")
        rest, cx = np.divmod(cell_ids, np.int64(self.nx))
        cz, cy = np.divmod(rest, np.int64(self.ny))
        return cx, cy, cz

    def cell_id_of_positions(self, x: np.ndarray, y: np.ndarray, z: np.ndarray) -> np.ndarray:
        """Cell ids of positions (wrapping applied)."""
        xw, yw, zw = self.wrap_positions(x, y, z)
        return self.cell_id(*self.cell_of(xw, yw, zw))

    # ------------------------------------------------------------------
    def cic_vertices_weights(
        self, x: np.ndarray, y: np.ndarray, z: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Trilinear vertex nodes and weights.

        Returns ``(nodes, weights)`` with shape ``(n, 8)`` each; weights
        sum to 1 per particle.
        """
        xw, yw, zw = self.wrap_positions(
            np.asarray(x, float), np.asarray(y, float), np.asarray(z, float)
        )
        fx, fy, fz = xw / self.dx, yw / self.dy, zw / self.dz
        cx = np.clip(np.floor(fx).astype(np.int64), 0, self.nx - 1)
        cy = np.clip(np.floor(fy).astype(np.int64), 0, self.ny - 1)
        cz = np.clip(np.floor(fz).astype(np.int64), 0, self.nz - 1)
        tx, ty, tz = fx - cx, fy - cy, fz - cz
        cx1 = (cx + 1) % self.nx
        cy1 = (cy + 1) % self.ny
        cz1 = (cz + 1) % self.nz
        nodes = []
        weights = []
        for dzb, czv, wz in ((0, cz, 1.0 - tz), (1, cz1, tz)):
            for dyb, cyv, wy in ((0, cy, 1.0 - ty), (1, cy1, ty)):
                for dxb, cxv, wx in ((0, cx, 1.0 - tx), (1, cx1, tx)):
                    nodes.append((czv * self.ny + cyv) * self.nx + cxv)
                    weights.append(wx * wy * wz)
        return (
            np.stack(nodes, axis=-1).astype(np.int64),
            np.stack(weights, axis=-1),
        )

    def __repr__(self) -> str:
        return f"Grid3D({self.nx}x{self.ny}x{self.nz})"
