"""Three-dimensional extension of the distribution machinery.

The paper works in 2-D but notes that Hilbert indexing "can be
generalized to n-dimensions" (§5.1) and that the cost analysis of "the
three-dimensional case is similar" (§4).  This package extends the
*contribution* — curve-index-based particle distribution, alignment, and
redistribution — to 3-D:

* :class:`Grid3D` — periodic 3-D cell grid with trilinear (CIC) vertex
  weights (8 vertices per particle).
* :class:`CurveBlockDecomposition3D` — cells ordered by the n-D Hilbert
  transform (or row-major for comparison) and split into equal runs.
* :class:`ParticlePartitioner3D` — index, sort, split, exactly as in 2-D.
* :func:`deposit_density_3d` / :func:`gather_field_3d` — the 3-D
  scatter/gather kernels whose vertex sets drive communication.

The full 3-D electromagnetic field solve is out of scope (the paper
evaluates only the 2-D code); the kernels here are what the alignment
and distribution experiments need.
"""

from repro.ext3d.grid import Grid3D
from repro.ext3d.decomposition import CurveBlockDecomposition3D
from repro.ext3d.partitioner import ParticlePartitioner3D
from repro.ext3d.kernels import deposit_density_3d, gather_field_3d
from repro.ext3d.parallel import distributed_deposit_3d
from repro.ext3d.sampling import gaussian_blob_3d, uniform_positions_3d

__all__ = [
    "Grid3D",
    "CurveBlockDecomposition3D",
    "ParticlePartitioner3D",
    "deposit_density_3d",
    "gather_field_3d",
    "distributed_deposit_3d",
    "uniform_positions_3d",
    "gaussian_blob_3d",
]
