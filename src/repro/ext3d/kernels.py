"""3-D scatter/gather kernels (trilinear CIC)."""

from __future__ import annotations

import numpy as np

from repro.ext3d.grid import Grid3D
from repro.util import require

__all__ = ["deposit_density_3d", "gather_field_3d"]


def deposit_density_3d(
    grid: Grid3D,
    x: np.ndarray,
    y: np.ndarray,
    z: np.ndarray,
    charge: np.ndarray | float = 1.0,
) -> np.ndarray:
    """Deposit per-particle ``charge`` onto the 3-D node grid (CIC).

    Returns a flat array of length ``nnodes`` in density units
    (per cell volume).
    """
    nodes, weights = grid.cic_vertices_weights(x, y, z)
    charge = np.broadcast_to(np.asarray(charge, float), (nodes.shape[0],))
    amounts = weights * charge[:, None]
    out = np.bincount(nodes.ravel(), weights=amounts.ravel(), minlength=grid.nnodes)
    return out / (grid.dx * grid.dy * grid.dz)


def gather_field_3d(
    grid: Grid3D,
    node_values: np.ndarray,
    x: np.ndarray,
    y: np.ndarray,
    z: np.ndarray,
) -> np.ndarray:
    """Interpolate flat node data to particle positions (CIC).

    ``node_values`` has length ``nnodes``; returns one value per
    particle.
    """
    node_values = np.asarray(node_values, float)
    require(node_values.shape == (grid.nnodes,), f"node_values must have length {grid.nnodes}")
    nodes, weights = grid.cic_vertices_weights(x, y, z)
    return (node_values[nodes] * weights).sum(axis=1)
