"""3-D position samplers for the extension experiments."""

from __future__ import annotations

import numpy as np

from repro.ext3d.grid import Grid3D
from repro.util import as_rng, require

__all__ = ["uniform_positions_3d", "gaussian_blob_3d"]


def uniform_positions_3d(
    grid: Grid3D, n: int, rng: int | None | np.random.Generator = None
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Uniformly distributed positions over the 3-D domain."""
    require(n >= 0, "n must be >= 0")
    gen = as_rng(rng)
    return (
        gen.uniform(0, grid.lx, n),
        gen.uniform(0, grid.ly, n),
        gen.uniform(0, grid.lz, n),
    )


def gaussian_blob_3d(
    grid: Grid3D,
    n: int,
    *,
    sigma_frac: float = 0.08,
    rng: int | None | np.random.Generator = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Centre-concentrated positions — the paper's irregular case in 3-D."""
    require(n >= 0, "n must be >= 0")
    require(sigma_frac > 0, "sigma_frac must be > 0")
    gen = as_rng(rng)
    x = np.mod(gen.normal(grid.lx / 2, sigma_frac * grid.lx, n), grid.lx)
    y = np.mod(gen.normal(grid.ly / 2, sigma_frac * grid.ly, n), grid.ly)
    z = np.mod(gen.normal(grid.lz / 2, sigma_frac * grid.lz, n), grid.lz)
    return x, y, z
