"""Distributed 3-D charge deposition over the virtual machine.

The 3-D analogue of the 2-D parallel scatter phase: each rank deposits
its particles' trilinear contributions, off-rank vertices pass through
a ghost table (duplicate removal + coalescing), and one message per
destination delivers the sums.  Used to demonstrate that the alignment
results carry to 3-D with 8 vertices per particle instead of 4.
"""

from __future__ import annotations

import numpy as np

from repro.ext3d.decomposition import CurveBlockDecomposition3D
from repro.ext3d.grid import Grid3D
from repro.machine.virtual import VirtualMachine
from repro.pic.ghost import make_ghost_table
from repro.util import require

__all__ = ["distributed_deposit_3d"]


def distributed_deposit_3d(
    vm: VirtualMachine,
    grid: Grid3D,
    decomp: CurveBlockDecomposition3D,
    positions: list[tuple[np.ndarray, np.ndarray, np.ndarray]],
    charges: list[np.ndarray],
    *,
    ghost_table: str = "hash",
) -> np.ndarray:
    """Deposit per-rank particle charges onto the 3-D grid with ghost
    communication.

    Parameters
    ----------
    vm, grid, decomp:
        Machine, geometry, and cell ownership.
    positions:
        Per-rank ``(x, y, z)`` arrays.
    charges:
        Per-rank charge arrays aligned with the positions.

    Returns
    -------
    numpy.ndarray
        Flat density (per cell volume) over all nodes — identical (to
        float tolerance) to a sequential
        :func:`repro.ext3d.kernels.deposit_density_3d` of the union.
    """
    require(len(positions) == vm.p and len(charges) == vm.p, "need one set per rank")
    nnodes = grid.nnodes
    owner_map = decomp.owner_map
    acc = np.zeros(nnodes)
    with vm.phase("scatter"):
        sends: list[dict[int, tuple[np.ndarray, np.ndarray]]] = []
        counts = np.zeros(vm.p)
        for r in range(vm.p):
            x, y, z = positions[r]
            charge = np.asarray(charges[r], float)
            require(charge.shape == x.shape, f"rank {r}: charge/position mismatch")
            counts[r] = x.shape[0]
            nodes, weights = grid.cic_vertices_weights(x, y, z)
            values = (weights * charge[:, None]).ravel()
            flat = nodes.ravel()
            owners = owner_map[flat]
            mine = owners == r
            acc += np.bincount(flat[mine], weights=values[mine], minlength=nnodes)
            table = make_ghost_table(ghost_table, nnodes, 1)
            table.accumulate(flat[~mine], values[~mine][None, :])
            uniq, summed = table.flush()
            chunk: dict[int, tuple[np.ndarray, np.ndarray]] = {}
            if uniq.size:
                ghost_owner = owner_map[uniq]
                for owner in np.unique(ghost_owner):
                    sel = ghost_owner == owner
                    chunk[int(owner)] = (uniq[sel], np.ascontiguousarray(summed[:, sel]))
            sends.append(chunk)
        vm.charge_ops("scatter", 8.0 * counts)  # 8 vertices per particle in 3-D
        recv = vm.alltoallv(sends)
        for r in range(vm.p):
            for _, (ids, vals) in sorted(recv[r].items()):
                acc += np.bincount(ids, weights=vals[0], minlength=nnodes)
    return acc / (grid.dx * grid.dy * grid.dz)
