"""3-D curve-block decomposition via the n-D Hilbert transform."""

from __future__ import annotations

from functools import cached_property

import numpy as np

from repro.ext3d.grid import Grid3D
from repro.indexing.hilbert import hilbert_encode_nd
from repro.mesh.decomposition import balanced_splits
from repro.util import require

__all__ = ["CurveBlockDecomposition3D", "hilbert_keys_3d"]


def hilbert_keys_3d(grid: Grid3D, cx: np.ndarray, cy: np.ndarray, cz: np.ndarray) -> np.ndarray:
    """Hilbert keys of 3-D cell coordinates (embedding in the enclosing
    power-of-two cube)."""
    side = max(grid.nx, grid.ny, grid.nz)
    order = max(1, int(np.ceil(np.log2(side)))) if side > 1 else 1
    coords = np.stack(
        [np.asarray(cx, np.int64), np.asarray(cy, np.int64), np.asarray(cz, np.int64)],
        axis=-1,
    )
    return hilbert_encode_nd(coords.reshape(-1, 3), order)


class CurveBlockDecomposition3D:
    """Equal contiguous Hilbert-curve runs of 3-D cells per rank.

    ``scheme`` is ``"hilbert"`` (default) or ``"rowmajor"`` (the 3-D
    strip baseline, x-fastest lexicographic order).
    """

    def __init__(self, grid: Grid3D, p: int, scheme: str = "hilbert") -> None:
        require(p >= 1, "p must be >= 1")
        require(grid.ncells >= p, "cannot give every rank a cell")
        require(scheme in ("hilbert", "rowmajor"), f"unknown 3-D scheme {scheme!r}")
        self.grid = grid
        self.p = p
        self.scheme = scheme
        ids = np.arange(grid.ncells, dtype=np.int64)
        if scheme == "hilbert":
            cx, cy, cz = grid.cell_coords(ids)
            keys = hilbert_keys_3d(grid, cx, cy, cz)
        else:
            keys = ids
        positions = np.empty(grid.ncells, dtype=np.int64)
        positions[np.argsort(keys, kind="stable")] = np.arange(grid.ncells)
        self._positions = positions
        bounds = balanced_splits(grid.ncells, p)
        self._owner = (np.searchsorted(bounds, positions, side="right") - 1).astype(np.int64)

    @cached_property
    def owner_map(self) -> np.ndarray:
        """Dense rank-per-cell array."""
        return self._owner

    def cell_positions(self, cell_ids: np.ndarray) -> np.ndarray:
        """Curve position of each cell (dense ranks along the curve)."""
        return self._positions[np.asarray(cell_ids, dtype=np.int64)]

    def owner_of_cells(self, cell_ids: np.ndarray) -> np.ndarray:
        """Rank owning each cell id."""
        cell_ids = np.asarray(cell_ids, dtype=np.int64)
        if cell_ids.size and (cell_ids.min() < 0 or cell_ids.max() >= self.grid.ncells):
            raise ValueError("cell id out of range")
        return self._owner[cell_ids]

    owner_of_nodes = owner_of_cells

    def cells_of_rank(self, rank: int) -> np.ndarray:
        """Sorted cell ids owned by ``rank``."""
        require(0 <= rank < self.p, "rank out of range")
        return np.flatnonzero(self._owner == rank).astype(np.int64)

    def cell_counts(self) -> np.ndarray:
        """Cells per rank."""
        return np.bincount(self._owner, minlength=self.p).astype(np.int64)

    def surface_area(self, rank: int) -> int:
        """Number of owned cells with at least one off-rank face neighbour
        (the 3-D communication-perimeter analogue)."""
        cells = self.cells_of_rank(rank)
        cx, cy, cz = self.grid.cell_coords(cells)
        g = self.grid
        boundary = np.zeros(cells.size, dtype=bool)
        for dx, dy, dz in ((1, 0, 0), (-1, 0, 0), (0, 1, 0), (0, -1, 0), (0, 0, 1), (0, 0, -1)):
            nid = g.cell_id((cx + dx) % g.nx, (cy + dy) % g.ny, (cz + dz) % g.nz)
            boundary |= self._owner[nid] != rank
        return int(boundary.sum())

    def __repr__(self) -> str:
        return f"CurveBlockDecomposition3D({self.grid!r}, p={self.p}, scheme={self.scheme!r})"
