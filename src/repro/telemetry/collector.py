"""Run-level telemetry orchestration: spans + metrics + JSONL export.

:class:`RunTelemetry` is the single object a
:class:`~repro.pic.simulation.Simulation` owns when telemetry is
enabled.  It bundles

* a :class:`~repro.telemetry.spans.SpanTracer` attached to the virtual
  machine (``vm.tracer``) that captures every (iteration, phase, rank)
  interval on the virtual clocks,
* a :class:`~repro.telemetry.metrics.MetricsRegistry` of run-wide
  counters / gauges / histograms, and
* an ordered stream of per-iteration records and one-off events that
  :meth:`save_metrics` writes as JSONL — one JSON object per line,
  schema ``repro-metrics/1``:

  - line 1: a ``header`` record (schema marker, rank count, config);
  - one ``iteration`` record per completed iteration — phase time
    increments, per-rank particle counts and load imbalance, per-phase
    message/byte tallies, ghost-table hit stats, op-count deltas,
    redistribution-decision records, redistribution outcome;
  - ``event`` records (checkpoint written, rank failure, recovery,
    machine shrink) interleaved in occurrence order;
  - a final ``summary`` record with the registry snapshot and totals.

The zero-cost contract: nothing in this module reads or charges the
virtual clocks, so a run with telemetry attached produces bit-identical
``vm.elapsed()`` / ``vm.ops`` / result summaries to one without.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.core.metrics import load_imbalance
from repro.telemetry.metrics import MetricsRegistry
from repro.telemetry.spans import SpanTracer

__all__ = ["RunTelemetry", "METRICS_SCHEMA"]

#: Schema marker on the first line of every metrics JSONL stream.
METRICS_SCHEMA = "repro-metrics/1"


def _comm_dict(epochs: list[dict]) -> dict:
    """Merge per-phase ``PhaseComm`` snapshots into plain JSON tallies."""
    out: dict[str, dict] = {}
    for epoch in epochs:
        for phase, rec in epoch.items():
            tallies = rec.to_dict()
            entry = out.get(phase)
            if entry is None:
                out[phase] = tallies
            else:
                entry["msgs"] += tallies["msgs"]
                entry["bytes"] += tallies["bytes"]
                entry["max_msgs"] = max(entry["max_msgs"], tallies["max_msgs"])
                entry["max_bytes"] = max(entry["max_bytes"], tallies["max_bytes"])
    return out


class RunTelemetry:
    """Telemetry state for one simulation run.

    Parameters
    ----------
    p:
        Rank count of the machine at enable time.
    config:
        JSON-serializable run configuration embedded in the metrics
        header (``config_to_dict`` output); optional.
    degraded:
        Multicore-fallback marker (``Simulation.degraded``); embedded in
        the header when not ``None`` so stream readers can distinguish a
        true multicore run from a silent in-process fallback.
    correlation:
        Batch identity (``{"batch_id", "job_id", "attempt"}``) stamped
        by the job service; embedded in the header and the trace export
        so per-job artifacts join with the batch's service stream.
    """

    def __init__(
        self,
        p: int,
        *,
        config: dict | None = None,
        degraded: dict | None = None,
        correlation: dict | None = None,
    ) -> None:
        #: live rank count (lowered by :meth:`on_shrink`)
        self.p = int(p)
        #: rank count at enable time — the metrics header pins this one,
        #: and shrink events walk readers to the live count from there
        self.initial_p = int(p)
        self.config = config
        self.degraded = degraded
        self.correlation = dict(correlation) if correlation is not None else None
        self.tracer = SpanTracer()
        self.tracer.note_ranks(p)
        self.tracer.correlation = self.correlation
        self.registry = MetricsRegistry()
        #: ordered stream of iteration + event records (JSONL body)
        self.records: list[dict] = []
        self._pending_sar: list[dict] = []
        self._iter_t0: float | None = None
        self._iter_ops: dict[str, float] = {}
        self._iter_ghost: tuple[float, float] | None = None
        self.enabled_iterations = 0

    # ------------------------------------------------------------------
    # iteration lifecycle (driven by Simulation.run)
    # ------------------------------------------------------------------
    def set_iteration(self, iteration: int) -> None:
        """Advance the current-iteration tag (spans + SAR records)."""
        self.tracer.set_iteration(iteration)

    def begin_iteration(self, vm, pic) -> None:
        """Capture the baselines an iteration record is a delta against."""
        self._iter_t0 = vm.elapsed()
        self._iter_ops = vm.ops.as_dict()
        self._iter_ghost = self._ghost_totals(pic)

    @staticmethod
    def _ghost_totals(pic) -> tuple[float, float] | None:
        tables = getattr(pic, "ghost_tables", None)
        if not tables:
            return None
        entries = float(sum(t.stats.entries for t in tables))
        ops = float(sum(t.stats.ops for t in tables))
        return entries, ops

    def end_iteration(
        self,
        vm,
        pic,
        *,
        iteration: int,
        phase_time: dict[str, float],
        comm_epochs: list[dict],
        redistributed: bool,
        redistribution_cost: float,
    ) -> dict:
        """Assemble, store, and return this iteration's metrics record.

        ``phase_time`` is the iteration's per-phase time increment (a
        :class:`~repro.machine.trace.PhaseTrace` snapshot row);
        ``comm_epochs`` are the :meth:`CommStats.snapshot_epoch` dicts
        popped during the iteration (step traffic plus, separately, any
        redistribution traffic).
        """
        t_end = vm.elapsed()
        t_start = self._iter_t0 if self._iter_t0 is not None else t_end
        counts = [int(parts.n) for parts in pic.particles]
        imbalance = load_imbalance(np.asarray(counts))
        ops_now = vm.ops.as_dict()
        ops_delta = {
            k: v - self._iter_ops.get(k, 0.0)
            for k, v in ops_now.items()
            if v - self._iter_ops.get(k, 0.0) > 0.0
        }
        record = {
            "type": "iteration",
            "iteration": int(iteration),
            "p": vm.p,
            "t_start": t_start,
            "t_end": t_end,
            "t_iter": t_end - t_start,
            "phase_time": {k: v for k, v in sorted(phase_time.items()) if v != 0.0},
            "particles_per_rank": counts,
            "imbalance": imbalance,
            "comm": _comm_dict(comm_epochs),
            "ops": ops_delta,
            "sar_decisions": self._pending_sar,
            "redistributed": bool(redistributed),
            "redistribution_cost": float(redistribution_cost),
        }
        ghost_now = self._ghost_totals(pic)
        if ghost_now is not None:
            g0 = self._iter_ghost or (0.0, 0.0)
            entries = ghost_now[0] - g0[0]
            unique = float(
                sum(t.stats.unique_nodes for t in getattr(pic, "ghost_tables", []))
            )
            record["ghost"] = {
                "entries": entries,
                "unique_nodes": unique,
                "table_ops": ghost_now[1] - g0[1],
                "hit_ratio": (1.0 - unique / entries) if entries > 0 else 0.0,
            }
            self.registry.counter("ghost.entries").inc(max(entries, 0.0))
        self._pending_sar = []
        self.records.append(record)
        self.enabled_iterations += 1

        # -- registry aggregates ----------------------------------------
        reg = self.registry
        reg.counter("iterations").inc()
        reg.histogram("iteration.time").observe(record["t_iter"])
        reg.histogram("load.imbalance").observe(imbalance)
        reg.gauge("load.imbalance.last").set(imbalance)
        reg.gauge("ranks.live").set(vm.p)
        for phase, tallies in record["comm"].items():
            reg.counter(f"comm.{phase}.msgs").inc(tallies["msgs"])
            reg.counter(f"comm.{phase}.bytes").inc(tallies["bytes"])
        if redistributed:
            reg.counter("redistribution.count").inc()
            reg.histogram("redistribution.cost").observe(redistribution_cost)

        # -- counter tracks on the trace timeline -------------------------
        self.tracer.record_counters(
            "load imbalance", t_end, {"max/mean": imbalance}
        )
        self.tracer.record_counters(
            "particles", t_end, {"max_per_rank": max(counts, default=0)}
        )
        return record

    # ------------------------------------------------------------------
    # decision + event feeds
    # ------------------------------------------------------------------
    def record_sar_decision(self, decision: dict) -> None:
        """Sink for redistribution-policy decision records.

        Wired as ``policy.decision_sink``; one call per
        ``should_redistribute`` evaluation.  Records accumulate on the
        pending list and are attached to the iteration record being
        assembled.
        """
        self._pending_sar.append(dict(decision))
        self.registry.counter("sar.evaluations").inc()
        if decision.get("fired"):
            self.registry.counter("sar.fired").inc()

    def record_guard_violation(self, message: str) -> None:
        """Sink for invariant-guard violations (warn mode keeps running)."""
        self.registry.counter("guard.violations").inc()
        self.records.append({"type": "event", "kind": "guard_violation", "message": message})

    def record_event(self, kind: str, *, t: float, iteration: int, **fields) -> None:
        """Record a one-off event (checkpoint / failure / recovery / shrink)."""
        self.records.append(
            {"type": "event", "kind": kind, "iteration": int(iteration), "t": float(t), **fields}
        )
        self.tracer.set_iteration(iteration)
        self.tracer.record_instant(kind, t, **fields)

    def on_shrink(self, p_new: int, dead_rank: int, iteration: int, t: float) -> None:
        """The machine shrank to ``p_new`` ranks after ``dead_rank`` died.

        Subsequent iteration records carry ``p_new``-length per-rank
        arrays; the trace marks the transition so readers never mix lane
        widths (the no-stale-rank-columns contract).
        """
        self.p = int(p_new)
        self.tracer.note_ranks(p_new)
        self.registry.counter("recovery.count").inc()
        self.record_event(
            "shrink", t=t, iteration=iteration, dead_rank=int(dead_rank), p=int(p_new)
        )

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def aggregates(self) -> dict:
        """Final aggregate block (registry snapshot keyed by instrument)."""
        return self.registry.snapshot()

    def set_correlation(self, correlation: dict | None) -> None:
        """Stamp (or clear) the batch identity on header + trace export."""
        self.correlation = dict(correlation) if correlation is not None else None
        self.tracer.correlation = self.correlation

    def header(self) -> dict:
        """The JSONL header record."""
        rec = {"type": "header", "schema": METRICS_SCHEMA, "p": self.initial_p}
        if self.config is not None:
            rec["config"] = self.config
        if self.degraded is not None:
            rec["degraded"] = self.degraded
        if self.correlation is not None:
            rec["correlation"] = self.correlation
        return rec

    def summary_record(self) -> dict:
        """The closing JSONL summary record."""
        return {
            "type": "summary",
            "iterations": self.enabled_iterations,
            "aggregates": self.aggregates(),
        }

    def metrics_lines(self) -> list[str]:
        """The full JSONL stream as a list of serialized lines."""
        stream = [self.header(), *self.records, self.summary_record()]
        return [json.dumps(rec) for rec in stream]

    def save_metrics(self, path: str | Path) -> Path:
        """Atomically write the metrics JSONL stream to ``path``.

        The stream is finalized in one atomic install (temp file +
        ``os.replace``), so a reader never sees a half-written JSONL
        file — the last line is always the ``summary`` record.
        """
        from repro.util.atomic_io import atomic_write_text

        return atomic_write_text(Path(path), "\n".join(self.metrics_lines()) + "\n")

    def save_trace(self, path: str | Path) -> Path:
        """Write the Perfetto/Chrome trace JSON to ``path`` and return it."""
        return self.tracer.save(path)

    def __repr__(self) -> str:
        return (
            f"RunTelemetry(p={self.p}, iterations={self.enabled_iterations}, "
            f"records={len(self.records)})"
        )
