"""Metrics registry: named counters, gauges, and histograms.

A :class:`MetricsRegistry` is the aggregate half of the telemetry layer
(the :mod:`~repro.telemetry.spans` tracer is the timeline half): the
simulation driver, the redistribution policies, and the guard / fault
machinery feed monotonic totals (bytes, messages, redistribution counts,
recoveries, SAR verdicts), last-value gauges (current imbalance), and
distribution summaries (per-iteration time, redistribution durations)
into it.  :meth:`MetricsRegistry.snapshot` renders everything as one
JSON-serializable dict — the ``telemetry`` block of
``SimulationResult.to_dict()`` and the closing ``summary`` record of a
metrics JSONL stream.

Instruments are plain Python accumulators: no clocks are read and no
virtual cost is charged, so feeding the registry never perturbs a run.
"""

from __future__ import annotations

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry"]


class Counter:
    """A monotonically increasing total."""

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount

    def snapshot(self) -> float:
        return self.value


class Gauge:
    """A last-value-wins scalar."""

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float | None = None

    def set(self, value: float) -> None:
        self.value = float(value)

    def snapshot(self) -> float | None:
        return self.value


class Histogram:
    """A streaming distribution summary (count / sum / min / max / mean).

    Keeps O(1) state rather than raw samples: enough for the report's
    aggregate rows without unbounded growth on long runs.
    """

    kind = "histogram"

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: float | None = None
        self.max: float | None = None

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> dict:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricsRegistry:
    """Lazily-created named instruments, one namespace per run.

    ``registry.counter("comm.bytes_total").inc(4096)`` — instruments are
    created on first use and an instrument name is pinned to one kind
    (asking for an existing counter as a gauge raises).
    """

    def __init__(self) -> None:
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}

    def _get(self, name: str, cls):
        inst = self._instruments.get(name)
        if inst is None:
            inst = cls(name)
            self._instruments[name] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {name!r} is a {inst.kind}, not a {cls.kind}"
            )
        return inst

    def counter(self, name: str) -> Counter:
        """The counter named ``name`` (created on first use)."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name`` (created on first use)."""
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        """The histogram named ``name`` (created on first use)."""
        return self._get(name, Histogram)

    def names(self) -> list[str]:
        """All instrument names, sorted."""
        return sorted(self._instruments)

    def snapshot(self) -> dict:
        """All instruments rendered as ``{name: {kind, value}}``, sorted."""
        return {
            name: {"kind": inst.kind, "value": inst.snapshot()}
            for name, inst in sorted(self._instruments.items())
        }

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def __repr__(self) -> str:
        return f"MetricsRegistry({len(self._instruments)} instruments)"
