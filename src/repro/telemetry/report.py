"""Render run telemetry files as terminal reports (``repro report``).

Consumes the artifacts a traced run leaves behind — a metrics JSONL
stream (``--metrics``) and optionally a Chrome-trace JSON (``--trace``)
— and renders:

* run header + totals (iterations, time, redistributions, recoveries);
* the per-phase execution profile, reusing
  :meth:`repro.machine.trace.PhaseTrace.render`'s stacked-bar view on
  the phase-time rows recovered from the metrics stream;
* the load-imbalance trajectory as an ASCII sparkline + summary stats;
* the redistribution-decision log: one line per SAR evaluation with the
  inputs of Eq. 1 (``t1-t0``, ``i1-i0``, measured ``T_redistribution``)
  and the fire/skip verdict, plus periodic/static outcomes;
* recovery / checkpoint / shrink events.

With two or more metrics files, a side-by-side comparison table of
phase totals and run totals is appended — the view used to compare the
flat vs looped engines or a fault-recovered run against its fault-free
twin.

This module is also the home of the generic text-rendering primitives
(:func:`format_table`, :func:`ascii_series`) shared by the bench
harness, the job-service report, and the batch rollup —
``repro.analysis.report`` re-exports them for backwards compatibility.
"""

from __future__ import annotations

from collections.abc import Sequence
from pathlib import Path

import numpy as np

from repro.machine.trace import PhaseTrace
from repro.telemetry.schema import ParsedMetrics, validate_metrics, validate_trace
from repro.util import require

__all__ = [
    "render_report",
    "render_comparison",
    "render_decision_comparison",
    "report_from_files",
    "format_table",
    "ascii_series",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence], *, title: str | None = None) -> str:
    """Render rows as an aligned monospace table.

    Floats are shown with 2 decimals; other values via ``str``.
    """
    def fmt(v) -> str:
        if isinstance(v, float):
            return f"{v:.2f}"
        return str(v)

    str_rows = [[fmt(v) for v in row] for row in rows]
    for row in str_rows:
        require(len(row) == len(headers), "row width must match headers")
    widths = [
        max(len(headers[j]), *(len(r[j]) for r in str_rows)) if str_rows else len(headers[j])
        for j in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[j]) for j, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(row[j].rjust(widths[j]) for j in range(len(headers))))
    return "\n".join(lines)


def ascii_series(
    values: np.ndarray,
    *,
    width: int = 72,
    height: int = 12,
    label: str = "",
) -> str:
    """Render a 1-D series as a small ASCII chart (for figure benches)."""
    values = np.asarray(values, dtype=float)
    require(values.ndim == 1, "values must be 1-D")
    if values.size == 0:
        return f"{label} (empty series)"
    # Downsample to the chart width by block means.
    if values.size > width:
        edges = np.linspace(0, values.size, width + 1).astype(int)
        sampled = np.array([values[a:b].mean() for a, b in zip(edges[:-1], edges[1:])])
    else:
        sampled = values
    lo, hi = float(sampled.min()), float(sampled.max())
    span = hi - lo if hi > lo else 1.0
    rows = np.clip(((sampled - lo) / span * (height - 1)).round().astype(int), 0, height - 1)
    canvas = [[" "] * sampled.size for _ in range(height)]
    for col, row in enumerate(rows):
        canvas[height - 1 - row][col] = "*"
    out = []
    if label:
        out.append(f"{label}  [min={lo:.4g}, max={hi:.4g}, n={values.size}]")
    out.extend("|" + "".join(line) for line in canvas)
    out.append("+" + "-" * sampled.size)
    return "\n".join(out)

_SPARK_GLYPHS = " .:-=+*#%@"


def _sparkline(values: list[float], width: int = 60) -> str:
    """Bucket ``values`` to at most ``width`` columns of density glyphs."""
    if not values:
        return "(no data)"
    if len(values) > width:
        # mean-pool into `width` buckets
        pooled = []
        for c in range(width):
            a = c * len(values) // width
            b = max((c + 1) * len(values) // width, a + 1)
            pooled.append(sum(values[a:b]) / (b - a))
        values = pooled
    lo, hi = min(values), max(values)
    span = hi - lo
    if span <= 0:
        return _SPARK_GLYPHS[1] * len(values)
    steps = len(_SPARK_GLYPHS) - 1
    return "".join(
        _SPARK_GLYPHS[1 + int((v - lo) / span * (steps - 1))] for v in values
    )


def _totals(metrics: ParsedMetrics) -> dict:
    iters = metrics.iterations
    phase_totals: dict[str, float] = {}
    for rec in iters:
        for phase, dt in rec["phase_time"].items():
            phase_totals[phase] = phase_totals.get(phase, 0.0) + dt
    comm_bytes = sum(
        tallies["bytes"] for rec in iters for tallies in rec["comm"].values()
    )
    comm_msgs = sum(
        tallies["msgs"] for rec in iters for tallies in rec["comm"].values()
    )
    return {
        "iterations": len(iters),
        "total_time": sum(rec["t_iter"] for rec in iters),
        "phase_totals": phase_totals,
        "comm_bytes": comm_bytes,
        "comm_msgs": comm_msgs,
        "redistributions": sum(1 for rec in iters if rec["redistributed"]),
        "redistribution_time": sum(rec["redistribution_cost"] for rec in iters),
        "recoveries": sum(
            1 for ev in metrics.events if ev.get("kind") == "recovery"
        ),
    }


#: decision-record fields not shown in the per-evaluation detail column
_DECISION_META = ("policy", "iteration", "fired", "reason")


def _decision_detail(d: dict) -> str:
    """Render one decision record's inputs, whatever the policy emitted."""
    if d.get("reason") is not None:
        return f"({d['reason']})"
    parts = []
    for key, value in d.items():
        if key in _DECISION_META or value is None:
            continue
        if isinstance(value, float):
            parts.append(f"{key}={value:.4g}")
        else:
            parts.append(f"{key}={value}")
    return "  ".join(parts)


def _decision_lines(metrics: ParsedMetrics, *, limit: int = 40) -> list[str]:
    """One line per policy evaluation, plus an offline replay cross-check.

    Every record is re-derived through
    :func:`repro.core.policies.replay_decision`; records whose replayed
    verdict disagrees with the logged ``fired`` flag (or whose policy is
    unknown to this build) are flagged — the §5.6 audit the report
    exists to make visible.
    """
    from repro.core.policies import replay_decision

    lines: list[str] = []
    mismatches = 0
    unknown = 0
    total = 0
    for rec in metrics.iterations:
        for d in rec["sar_decisions"]:
            total += 1
            verdict = "FIRE" if d.get("fired") else "skip"
            flag = ""
            try:
                if replay_decision(d) != bool(d.get("fired")):
                    mismatches += 1
                    flag = "  REPLAY-MISMATCH"
            except (ValueError, KeyError, NotImplementedError):
                unknown += 1
            policy = d.get("policy", "?")
            lines.append(
                f"  it {rec['iteration']:>4d}  [{policy:<9s}] {verdict:<4s}  "
                f"{_decision_detail(d)}{flag}"
            )
    if len(lines) > limit:
        hidden = len(lines) - limit
        lines = lines[:limit] + [f"  ... {hidden} more evaluation(s) elided"]
    if total:
        check = (
            f"  replay check: {total - mismatches - unknown}/{total} verdicts reproduced"
        )
        if mismatches:
            check += f", {mismatches} MISMATCH(ES)"
        if unknown:
            check += f", {unknown} not replayable here"
        lines.append(check)
    return lines


def render_report(
    metrics: ParsedMetrics, *, label: str = "run", trace: dict | None = None
) -> str:
    """Render one run's telemetry as a terminal report string."""
    out: list[str] = []
    t = _totals(metrics)
    cfg = metrics.header.get("config") or {}
    desc = ", ".join(
        f"{key}={cfg[key]}"
        for key in ("scheme", "policy", "movement", "engine", "kernel")
        if key in cfg
    )
    out.append(f"=== telemetry report: {label} ===")
    out.append(f"ranks: {metrics.p}" + (f"  ({desc})" if desc else ""))
    out.append(
        f"iterations: {t['iterations']}   total time: {t['total_time']:.4f} s   "
        f"comm: {t['comm_msgs']:.0f} msgs / {t['comm_bytes']:.0f} bytes"
    )
    out.append(
        f"redistributions: {t['redistributions']} "
        f"({t['redistribution_time']:.4f} s)   recoveries: {t['recoveries']}"
    )

    # -- phase profile (PhaseTrace stacked bars over the recovered rows) --
    rows = [rec["phase_time"] for rec in metrics.iterations]
    if any(rows):
        out.append("")
        out.append(PhaseTrace.from_rows(rows).render())
        out.append("phase totals:")
        for phase, seconds in sorted(
            t["phase_totals"].items(), key=lambda kv: -kv[1]
        ):
            share = seconds / t["total_time"] * 100 if t["total_time"] > 0 else 0.0
            out.append(f"  {phase:<15s} {seconds:10.4f} s  ({share:5.1f}%)")

    # -- imbalance trajectory -------------------------------------------
    imbalances = [rec["imbalance"] for rec in metrics.iterations]
    if imbalances:
        out.append("")
        out.append(
            f"load imbalance (max/mean): first={imbalances[0]:.3f} "
            f"last={imbalances[-1]:.3f} peak={max(imbalances):.3f}"
        )
        out.append(f"  [{_sparkline(imbalances)}]")

    # -- redistribution decision log ------------------------------------
    decisions = _decision_lines(metrics)
    if decisions:
        out.append("")
        out.append("redistribution decisions:")
        out.extend(decisions)

    # -- events ----------------------------------------------------------
    shown_events = [
        ev for ev in metrics.events if ev.get("kind") != "guard_violation"
    ]
    violations = len(metrics.events) - len(shown_events)
    if shown_events or violations:
        out.append("")
        out.append("events:")
        for ev in shown_events:
            extra = {
                k: v
                for k, v in ev.items()
                if k not in ("type", "kind", "iteration", "t")
            }
            detail = "  ".join(f"{k}={v}" for k, v in extra.items())
            out.append(
                f"  it {ev.get('iteration', '?'):>4}  {ev['kind']:<12s} "
                f"t={ev.get('t', 0.0):.4f}s  {detail}"
            )
        if violations:
            out.append(f"  guard violations: {violations}")

    # -- trace cross-check -----------------------------------------------
    if trace is not None:
        events = trace.get("traceEvents", [])
        nspans = sum(1 for ev in events if ev.get("ph") == "X")
        out.append("")
        out.append(
            f"trace: {nspans} spans across "
            f"{len({ev.get('tid') for ev in events if ev.get('ph') == 'X'})} rank lanes "
            f"(load the file in https://ui.perfetto.dev)"
        )
    return "\n".join(out)


def render_comparison(runs: list[tuple[str, ParsedMetrics]]) -> str:
    """Side-by-side phase totals + run totals for two or more runs."""
    labels = [label for label, _ in runs]
    totals = [_totals(metrics) for _, metrics in runs]
    phases = sorted({p for t in totals for p in t["phase_totals"]})
    colw = max(12, *(len(label) for label in labels)) + 2
    out = ["=== side-by-side comparison ==="]
    header = f"{'quantity':<18s}" + "".join(f"{label:>{colw}s}" for label in labels)
    out.append(header)
    out.append("-" * len(header))
    for phase in phases:
        out.append(
            f"{phase:<18s}"
            + "".join(
                f"{t['phase_totals'].get(phase, 0.0):>{colw}.4f}" for t in totals
            )
        )
    for key, fmt in (
        ("total_time", ".4f"),
        ("iterations", "d"),
        ("redistributions", "d"),
        ("redistribution_time", ".4f"),
        ("recoveries", "d"),
        ("comm_msgs", ".0f"),
        ("comm_bytes", ".3g"),
    ):
        out.append(
            f"{key:<18s}" + "".join(f"{t[key]:>{colw}{fmt}}" for t in totals)
        )
    return "\n".join(out)


def render_decision_comparison(runs: list[tuple[str, ParsedMetrics]]) -> str:
    """Decision behaviour of several runs side by side.

    One row per run: which policy decided, how often it was evaluated,
    how often it fired, when it first fired, and what the run paid —
    the view that crowns a winner when the runs cover the same workload
    under different policies (``repro bench policy`` feeds this).
    """
    out = ["=== decision comparison ==="]
    header = (
        f"{'run':<24s} {'policy':<12s} {'evals':>6s} {'fired':>6s} "
        f"{'first':>6s} {'redist t':>10s} {'total t':>10s}"
    )
    out.append(header)
    out.append("-" * len(header))
    for label, metrics in runs:
        t = _totals(metrics)
        decisions = [d for rec in metrics.iterations for d in rec["sar_decisions"]]
        fired = [d for d in decisions if d.get("fired")]
        policy = decisions[0]["policy"] if decisions else (
            (metrics.header.get("config") or {}).get("policy", "?")
        )
        first = str(fired[0]["iteration"]) if fired else "-"
        out.append(
            f"{label:<24.24s} {str(policy):<12.12s} {len(decisions):>6d} "
            f"{len(fired):>6d} {first:>6s} {t['redistribution_time']:>10.4f} "
            f"{t['total_time']:>10.4f}"
        )
    return "\n".join(out)


def report_from_files(
    metrics_paths: list[str | Path], trace_path: str | Path | None = None
) -> str:
    """Validate the given files and render the full report text."""
    runs: list[tuple[str, ParsedMetrics]] = []
    for path in metrics_paths:
        runs.append((Path(path).name, validate_metrics(path)))
    trace = validate_trace(trace_path) if trace_path is not None else None
    sections = [
        render_report(metrics, label=label, trace=trace if i == 0 else None)
        for i, (label, metrics) in enumerate(runs)
    ]
    if len(runs) > 1:
        sections.append(render_comparison(runs))
        sections.append(render_decision_comparison(runs))
    return "\n\n".join(sections)
