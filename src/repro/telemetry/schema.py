"""Schema validation for exported telemetry files.

Three artifact kinds leave a run or a batch:

* **trace** — Chrome Trace Event JSON (``repro run --trace``), loadable
  by Perfetto; validated by :func:`validate_trace`;
* **metrics** — JSONL, one record per line (``repro run --metrics``),
  schema ``repro-metrics/1``; validated by :func:`validate_metrics`;
* **service** — the job scheduler's batch event stream (``repro submit
  --telemetry`` / ``--obs-dir``), schema ``repro-service/1`` or ``/2``;
  validated by :func:`validate_service`.

All validators raise :class:`TelemetrySchemaError` naming the first
offending record, and return the parsed content so callers (the report
CLI, the CI ``telemetry`` job, the tests) never parse twice.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.telemetry.collector import METRICS_SCHEMA
from repro.telemetry.spans import TRACE_SCHEMA

__all__ = [
    "TelemetrySchemaError",
    "validate_trace",
    "validate_metrics",
    "validate_service",
    "ParsedMetrics",
    "ParsedService",
]

#: Chrome-trace phase codes the exporter emits.
_TRACE_PHASES = {"X", "i", "C", "M"}


class TelemetrySchemaError(ValueError):
    """A telemetry artifact does not conform to its schema."""


def _fail(message: str) -> None:
    raise TelemetrySchemaError(message)


def validate_trace(source: str | Path | dict) -> dict:
    """Validate a Chrome-trace export; return the parsed document.

    ``source`` is a file path or an already-parsed dict.  Checks the
    envelope (``traceEvents`` list, schema marker) and every event's
    required fields per its phase code — the structural subset Perfetto
    requires to load the file.
    """
    if isinstance(source, dict):
        doc = source
    else:
        path = Path(source)
        try:
            doc = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            _fail(f"{path} is not valid JSON: {exc}")
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        _fail("trace must be an object with a 'traceEvents' list")
    other = doc.get("otherData", {})
    if other.get("schema") != TRACE_SCHEMA:
        _fail(
            f"trace otherData.schema is {other.get('schema')!r}, expected {TRACE_SCHEMA!r}"
        )
    for i, ev in enumerate(doc["traceEvents"]):
        if not isinstance(ev, dict):
            _fail(f"traceEvents[{i}] is not an object")
        ph = ev.get("ph")
        if ph not in _TRACE_PHASES:
            _fail(f"traceEvents[{i}] has unknown phase code {ph!r}")
        for key in ("name", "pid", "tid"):
            if key not in ev:
                _fail(f"traceEvents[{i}] ({ph}) is missing {key!r}")
        if ph in ("X", "i", "C") and not isinstance(ev.get("ts"), (int, float)):
            _fail(f"traceEvents[{i}] ({ph}) needs a numeric 'ts'")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                _fail(f"traceEvents[{i}] (X) needs a non-negative numeric 'dur'")
            args = ev.get("args", {})
            if "iteration" not in args:
                _fail(f"traceEvents[{i}] (X) args must carry the iteration tag")
        if ph == "C" and not isinstance(ev.get("args"), dict):
            _fail(f"traceEvents[{i}] (C) needs an 'args' object of series values")
    return doc


class ParsedMetrics:
    """Structured view of a validated metrics JSONL stream."""

    def __init__(self, header: dict, iterations: list[dict], events: list[dict], summary: dict | None) -> None:
        self.header = header
        self.iterations = iterations
        self.events = events
        self.summary = summary

    @property
    def p(self) -> int:
        """Rank count at the start of the run."""
        return int(self.header["p"])


def _check_decision(dec, ctx: str) -> None:
    """One policy decision record (DESIGN.md §5.6 replayability contract)."""
    if not isinstance(dec, dict):
        _fail(f"{ctx} is not an object")
    if not isinstance(dec.get("policy"), str) or not dec["policy"]:
        _fail(f"{ctx} needs a non-empty 'policy' name")
    if not isinstance(dec.get("iteration"), int):
        _fail(f"{ctx} needs an integer 'iteration'")
    if not isinstance(dec.get("fired"), bool):
        _fail(f"{ctx} needs a boolean 'fired' verdict")


_ITERATION_KEYS = (
    "iteration",
    "p",
    "t_iter",
    "phase_time",
    "particles_per_rank",
    "imbalance",
    "comm",
    "sar_decisions",
    "redistributed",
    "redistribution_cost",
)


def validate_metrics(source: str | Path | list[str]) -> ParsedMetrics:
    """Validate a metrics JSONL stream; return a :class:`ParsedMetrics`.

    ``source`` is a file path or a list of JSONL lines.  Checks the
    header schema marker, every iteration record's required keys, the
    per-rank array length against the live rank count (which ``shrink``
    events may lower mid-stream — stale rank columns are an error), and
    the presence of a closing summary record.
    """
    if isinstance(source, list):
        lines = source
        where = "<lines>"
    else:
        path = Path(source)
        lines = path.read_text().splitlines()
        where = str(path)
    records = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            _fail(f"{where}:{lineno} is not valid JSON: {exc}")
    if not records:
        _fail(f"{where} is empty")
    header = records[0]
    if header.get("type") != "header" or header.get("schema") != METRICS_SCHEMA:
        _fail(
            f"{where}: first record must be a header with schema "
            f"{METRICS_SCHEMA!r}, got {header.get('schema')!r}"
        )
    if not isinstance(header.get("p"), int) or header["p"] < 1:
        _fail(f"{where}: header 'p' must be a positive integer")
    live_p = header["p"]
    iterations: list[dict] = []
    events: list[dict] = []
    summary: dict | None = None
    for i, rec in enumerate(records[1:], start=2):
        kind = rec.get("type")
        if kind == "iteration":
            for key in _ITERATION_KEYS:
                if key not in rec:
                    _fail(f"{where}: iteration record {i} is missing {key!r}")
            if rec["p"] != live_p:
                _fail(
                    f"{where}: iteration {rec['iteration']} reports p={rec['p']} "
                    f"but the live rank count is {live_p}"
                )
            counts = rec["particles_per_rank"]
            if not isinstance(counts, list) or len(counts) != live_p:
                _fail(
                    f"{where}: iteration {rec['iteration']} has "
                    f"{len(counts) if isinstance(counts, list) else '??'} rank "
                    f"columns, expected {live_p} (stale ranks?)"
                )
            if not isinstance(rec["sar_decisions"], list):
                _fail(f"{where}: iteration {rec['iteration']} sar_decisions must be a list")
            for j, dec in enumerate(rec["sar_decisions"]):
                _check_decision(dec, f"{where}: iteration {rec['iteration']} decision {j}")
            iterations.append(rec)
        elif kind == "event":
            if rec.get("kind") == "shrink":
                live_p = int(rec["p"])
            events.append(rec)
        elif kind == "summary":
            summary = rec
            if "aggregates" not in rec:
                _fail(f"{where}: summary record is missing 'aggregates'")
        else:
            _fail(f"{where}: record {i} has unknown type {kind!r}")
    if summary is None:
        _fail(f"{where}: no closing summary record")
    return ParsedMetrics(header, iterations, events, summary)


# ----------------------------------------------------------------------
# service (batch) stream
# ----------------------------------------------------------------------
#: Accepted batch-stream schema versions.  The writer
#: (:data:`repro.service.telemetry.SERVICE_SCHEMA`) emits the newest;
#: ``/1`` streams from older runs stay readable.
_SERVICE_SCHEMAS = ("repro-service/1", "repro-service/2")

#: Event kinds scoped to one job — in ``/2`` these must carry the
#: correlation identity (``job_id`` + ``attempt``) next to ``job``.
_JOB_EVENT_KINDS = frozenset(
    {
        "job_launched",
        "job_progress",
        "job_done",
        "job_retry",
        "job_failed",
        "job_timeout",
        "heartbeat_lost",
        "worker_lost",
        "job_cancelled",
    }
)


class ParsedService:
    """Structured view of a validated service (batch) JSONL stream."""

    def __init__(self, header: dict, events: list[dict], summary: dict | None) -> None:
        self.header = header
        self.events = events
        self.summary = summary

    @property
    def schema(self) -> str:
        return str(self.header["schema"])

    @property
    def batch_id(self) -> str | None:
        """The batch identity (None on ``/1`` streams)."""
        return self.header.get("batch_id")

    def job_events(self) -> list[dict]:
        """The job-scoped subset of :attr:`events`, in stream order."""
        return [ev for ev in self.events if ev.get("kind") in _JOB_EVENT_KINDS]


def validate_service(source: str | Path | list[str]) -> ParsedService:
    """Validate a service batch stream; return a :class:`ParsedService`.

    ``source`` is a file path or a list of JSONL lines.  Checks the
    header schema marker (``repro-service/1`` or ``/2``), the monotonic
    non-negative event timestamps (the §5.8 contract), the per-event
    required fields — on ``/2``, the ``batch_id``/``started_at`` header
    fields and the ``job_id``/``attempt`` correlation stamp on every
    job-scoped event — and the presence of a closing summary.  A live
    stream being tailed mid-batch has no summary yet and is therefore
    *invalid* by design: completeness is part of the contract.
    """
    if isinstance(source, list):
        lines = source
        where = "<lines>"
    else:
        path = Path(source)
        lines = path.read_text().splitlines()
        where = str(path)
    records = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            records.append(json.loads(line))
        except json.JSONDecodeError as exc:
            _fail(f"{where}:{lineno} is not valid JSON: {exc}")
    if not records:
        _fail(f"{where} is empty")
    header = records[0]
    if header.get("type") != "header" or header.get("schema") not in _SERVICE_SCHEMAS:
        _fail(
            f"{where}: first record must be a header with schema in "
            f"{list(_SERVICE_SCHEMAS)}, got {header.get('schema')!r}"
        )
    v2 = header["schema"] == "repro-service/2"
    for key in ("jobs", "workers"):
        if not isinstance(header.get(key), int) or header[key] < 0:
            _fail(f"{where}: header {key!r} must be a non-negative integer")
    if v2:
        if not isinstance(header.get("batch_id"), str) or not header["batch_id"]:
            _fail(f"{where}: /2 header needs a non-empty 'batch_id'")
        if not isinstance(header.get("started_at"), (int, float)):
            _fail(f"{where}: /2 header needs a numeric 'started_at'")
    events: list[dict] = []
    summary: dict | None = None
    last_t = 0.0
    for i, rec in enumerate(records[1:], start=2):
        kind = rec.get("type")
        if kind == "event":
            if summary is not None:
                _fail(f"{where}: record {i} follows the summary record")
            name = rec.get("kind")
            if not isinstance(name, str) or not name:
                _fail(f"{where}: event record {i} needs a 'kind' name")
            t = rec.get("t")
            if not isinstance(t, (int, float)) or t < 0:
                _fail(f"{where}: event record {i} needs a non-negative numeric 't'")
            if t < last_t:
                _fail(
                    f"{where}: event record {i} has t={t} before the previous "
                    f"event's t={last_t} (timestamps must be monotonic)"
                )
            last_t = float(t)
            if name in _JOB_EVENT_KINDS:
                if not isinstance(rec.get("job"), str):
                    _fail(f"{where}: {name} record {i} needs a 'job' name")
                if v2:
                    if not isinstance(rec.get("job_id"), str) or not rec["job_id"]:
                        _fail(f"{where}: /2 {name} record {i} needs a 'job_id'")
                    attempt = rec.get("attempt")
                    if not isinstance(attempt, int) or attempt < 0:
                        _fail(
                            f"{where}: /2 {name} record {i} needs a "
                            f"non-negative integer 'attempt'"
                        )
            events.append(rec)
        elif kind == "summary":
            if summary is not None:
                _fail(f"{where}: duplicate summary record at {i}")
            if "aggregates" not in rec:
                _fail(f"{where}: summary record is missing 'aggregates'")
            summary = rec
        elif kind == "header":
            _fail(f"{where}: duplicate header record at {i}")
        else:
            _fail(f"{where}: record {i} has unknown type {kind!r}")
    if summary is None:
        _fail(f"{where}: no closing summary record (incomplete stream?)")
    return ParsedService(header, events, summary)
