"""Unified run telemetry: span tracer, metrics registry, exports, report.

The observability layer of the reproduction (DESIGN.md §5.4).  One
:class:`RunTelemetry` per run bundles

* a :class:`SpanTracer` of (iteration, phase, rank) intervals on the
  virtual clocks, exported as Perfetto-loadable Chrome-trace JSON;
* a :class:`MetricsRegistry` of counters / gauges / histograms fed by
  the simulation driver, the redistribution policies, and the guard /
  fault layer;
* a per-iteration metrics JSONL stream (schema ``repro-metrics/1``)
  covering phase times, per-rank load, comm traffic, ghost-table hit
  stats, and every SAR redistribution decision.

Telemetry is strictly opt-in and zero-cost when off: a run without it
carries only dormant ``is None`` branches and produces bit-identical
``vm.elapsed()`` / ``vm.ops`` / summary JSON.
"""

from repro.telemetry.collector import METRICS_SCHEMA, RunTelemetry
from repro.telemetry.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.telemetry.report import (
    ascii_series,
    format_table,
    render_comparison,
    render_report,
    report_from_files,
)
from repro.telemetry.schema import (
    ParsedMetrics,
    ParsedService,
    TelemetrySchemaError,
    validate_metrics,
    validate_service,
    validate_trace,
)
from repro.telemetry.spans import TRACE_SCHEMA, Span, SpanTracer

__all__ = [
    "RunTelemetry",
    "SpanTracer",
    "Span",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "ParsedMetrics",
    "ParsedService",
    "TelemetrySchemaError",
    "validate_trace",
    "validate_metrics",
    "validate_service",
    "render_report",
    "render_comparison",
    "report_from_files",
    "format_table",
    "ascii_series",
    "TRACE_SCHEMA",
    "METRICS_SCHEMA",
]
