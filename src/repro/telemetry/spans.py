"""Span-based tracing of virtual-machine phases (Chrome-trace export).

:class:`SpanTracer` records one :class:`Span` per (iteration, phase,
rank) interval on the *virtual* clocks: the machine's
:meth:`~repro.machine.virtual.VirtualMachine.phase` context manager
captures the per-rank clock values at entry and exit and hands them to
:meth:`SpanTracer.record_phase`.  Because spans are measured on the
virtual clocks, a trace is fully deterministic — two runs of the same
configuration produce byte-identical trace files.

The export format is the Chrome Trace Event JSON (the ``traceEvents``
array form), which Perfetto (https://ui.perfetto.dev) and
``chrome://tracing`` both load directly:

* each rank maps to one thread lane (``tid = rank``) in process 0;
* phase intervals are complete events (``"ph": "X"``) with microsecond
  timestamps (virtual seconds × 1e6) and ``args`` carrying the
  iteration number;
* one-off occurrences (checkpoints, rank failures, recoveries) are
  instant events (``"ph": "i"``);
* per-iteration scalars (load imbalance, particle counts) are counter
  events (``"ph": "C"``) charted on their own tracks;
* metadata events (``"ph": "M"``) name the process and the rank lanes.

Nothing here charges the virtual clocks: attaching a tracer never
changes ``vm.elapsed()``, ``vm.ops``, or any result quantity.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

__all__ = ["Span", "SpanTracer", "TRACE_SCHEMA"]

#: Schema marker embedded in exported traces (``otherData.schema``).
TRACE_SCHEMA = "repro-trace/1"


@dataclass
class Span:
    """One (iteration, phase, rank) interval on the virtual clocks."""

    name: str  #: phase label (scatter / field / gather / push / ...)
    rank: int
    iteration: int
    t0: float  #: virtual seconds at phase entry (this rank's clock)
    t1: float  #: virtual seconds at phase exit
    depth: int = 1  #: phase-stack depth (1 = outermost)

    @property
    def duration(self) -> float:
        """Span length in virtual seconds."""
        return self.t1 - self.t0


@dataclass
class InstantEvent:
    """A zero-duration marker (checkpoint written, rank failed, ...)."""

    name: str
    t: float  #: virtual seconds
    iteration: int
    args: dict = field(default_factory=dict)


@dataclass
class CounterSample:
    """One sample of a counter track (imbalance, particle counts, ...)."""

    name: str
    t: float  #: virtual seconds
    values: dict  #: series name -> float


class SpanTracer:
    """Collects spans / instants / counter samples from a run.

    The tracer is attached to a machine as ``vm.tracer``; the machine's
    ``phase`` context manager feeds it via :meth:`record_phase`.  The
    simulation driver advances :attr:`iteration` once per step so every
    span is tagged with the iteration it belongs to.
    """

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self.instants: list[InstantEvent] = []
        self.counters: list[CounterSample] = []
        self.iteration = -1  #: -1 = before the first simulation iteration
        #: rank-count history: list of (iteration, p) entries; recovery
        #: shrink appends so lane metadata can mark dead ranks.
        self.rank_history: list[tuple[int, int]] = []
        #: batch identity stamped into ``otherData.correlation`` of the
        #: export (None for standalone runs — key then absent)
        self.correlation: dict | None = None

    # ------------------------------------------------------------------
    # recording
    # ------------------------------------------------------------------
    def set_iteration(self, iteration: int) -> None:
        """Tag subsequently recorded spans with ``iteration``."""
        self.iteration = int(iteration)

    def record_phase(
        self, name: str, t_start: np.ndarray, t_end: np.ndarray, *, depth: int = 1
    ) -> None:
        """Record one phase interval from per-rank entry/exit clocks.

        Ranks whose clock did not advance inside the phase are skipped —
        they did not participate, and zero-width slices only clutter the
        timeline.
        """
        it = self.iteration
        for rank in range(len(t_start)):
            t0 = float(t_start[rank])
            t1 = float(t_end[rank])
            if t1 > t0:
                self.spans.append(Span(name, rank, it, t0, t1, depth))

    def record_instant(self, name: str, t: float, **args) -> None:
        """Record a zero-duration marker at virtual time ``t``."""
        self.instants.append(InstantEvent(name, float(t), self.iteration, dict(args)))

    def record_counters(self, name: str, t: float, values: dict) -> None:
        """Record one sample of counter track ``name`` at virtual time ``t``."""
        self.counters.append(
            CounterSample(name, float(t), {k: float(v) for k, v in values.items()})
        )

    def note_ranks(self, p: int) -> None:
        """Record that the machine has ``p`` live ranks from now on."""
        self.rank_history.append((self.iteration, int(p)))

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def max_rank(self) -> int:
        """Highest rank id that ever appears in the trace."""
        ranks = [s.rank for s in self.spans]
        ranks.extend(p - 1 for _, p in self.rank_history)
        return max(ranks, default=0)

    def to_chrome(self) -> dict:
        """Export as a Chrome Trace Event / Perfetto JSON object."""
        events: list[dict] = [
            {
                "name": "process_name",
                "ph": "M",
                "pid": 0,
                "tid": 0,
                "args": {"name": "repro virtual machine"},
            }
        ]
        for rank in range(self.max_rank() + 1):
            events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 0,
                    "tid": rank,
                    "args": {"name": f"rank {rank}"},
                }
            )
        for span in self.spans:
            events.append(
                {
                    "name": span.name,
                    "cat": "phase",
                    "ph": "X",
                    "pid": 0,
                    "tid": span.rank,
                    "ts": span.t0 * 1e6,
                    "dur": span.duration * 1e6,
                    "args": {"iteration": span.iteration, "depth": span.depth},
                }
            )
        for inst in self.instants:
            events.append(
                {
                    "name": inst.name,
                    "cat": "event",
                    "ph": "i",
                    "s": "g",  # global scope: full-height marker line
                    "pid": 0,
                    "tid": 0,
                    "ts": inst.t * 1e6,
                    "args": {"iteration": inst.iteration, **inst.args},
                }
            )
        for sample in self.counters:
            events.append(
                {
                    "name": sample.name,
                    "cat": "metric",
                    "ph": "C",
                    "pid": 0,
                    "tid": 0,
                    "ts": sample.t * 1e6,
                    "args": sample.values,
                }
            )
        other = {
            "schema": TRACE_SCHEMA,
            "clock": "virtual",
            "rank_history": [list(entry) for entry in self.rank_history],
        }
        if self.correlation is not None:
            other["correlation"] = dict(self.correlation)
        return {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": other,
        }

    def save(self, path: str | Path) -> Path:
        """Atomically write the Chrome-trace JSON to ``path`` and return it."""
        from repro.util.atomic_io import atomic_write_text

        return atomic_write_text(Path(path), json.dumps(self.to_chrome()) + "\n")

    def __repr__(self) -> str:
        return (
            f"SpanTracer(spans={len(self.spans)}, instants={len(self.instants)}, "
            f"counters={len(self.counters)})"
        )
