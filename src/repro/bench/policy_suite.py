"""The policy bench matrix (``repro bench policy``).

Runs every registered zoo policy over the three workload classes the
paper's figures distinguish — uniform, clustered (the gaussian blob of
Figure 15), and drifting (two-stream) — at p=32 on both execution
engines, with telemetry enabled so every redistribution decision is
recorded, schema-validated, and replayed offline.  The output document
(``BENCH_policies.json``, schema ``repro-policy-bench/1``) carries one
cell per (policy, workload, engine) plus a crowned winner per workload
class, and feeds ``repro report``'s decision-comparison view.

The matrix is a *behavioural* benchmark: its axis is virtual machine
time (which is deterministic), so the winners table is stable across
hosts and reruns — unlike the wall-clock suites in
:mod:`repro.bench.suites`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable

from repro.core.policies import (
    available_policies,
    make_policy,
    policy_spec,
    replay_decision,
)
from repro.pic.simulation import Simulation, SimulationConfig, config_from_dict, config_to_dict
from repro.telemetry.schema import validate_metrics

__all__ = [
    "POLICY_SCHEMA",
    "ZOO_SPECS",
    "WORKLOADS",
    "ENGINES",
    "run_policy_cell",
    "run_policy_matrix",
    "render_matrix",
    "save_matrix",
]

POLICY_SCHEMA = "repro-policy-bench/1"

#: The default competitor field: every registered policy, with tuned
#: spec arguments where the defaults target longer runs than the matrix.
ZOO_SPECS = (
    "static",
    "periodic:25",
    "dynamic",
    "sar-ewma",
    "costmodel:horizon=50",
    "imbalance:threshold=1.4,hysteresis=0.2",
    "planner",
)

#: Workload class -> particle distribution sampler name.
WORKLOADS = {
    "uniform": "uniform",
    "clustered": "irregular",
    "drifting": "two_stream",
}

ENGINES = ("flat", "looped")

_P = 32
_NX, _NY = 64, 32
_SEED = 3


def run_policy_cell(
    policy: str,
    workload: str,
    engine: str,
    *,
    p: int = _P,
    nparticles: int = 8192,
    iterations: int = 40,
    seed: int = _SEED,
) -> dict:
    """Run one (policy, workload, engine) cell and audit its decisions.

    The cell runs with telemetry on, validates the metrics stream
    against ``repro-metrics/1`` (which now covers every decision
    record), replays every decision offline, and checks the config
    round-trips through its serialized form.  Returns the cell summary
    dict; raises ``RuntimeError`` on any replay mismatch — a policy
    whose logged decisions cannot be reproduced from the records alone
    has broken the §5.6 contract and must not be crowned.
    """
    distribution = WORKLOADS[workload]
    cfg = SimulationConfig(
        nx=_NX,
        ny=_NY,
        nparticles=nparticles,
        p=p,
        distribution=distribution,
        policy=policy,
        engine=engine,
        seed=seed,
    )
    # config round-trip: the serialized form must rebuild to the same
    # canonical spec (default-valued params canonicalize away)
    rebuilt = config_from_dict(config_to_dict(cfg))
    if policy_spec(rebuilt.policy) != policy_spec(cfg.policy):
        raise RuntimeError(
            f"config round-trip changed the policy spec: "
            f"{cfg.policy!r} -> {rebuilt.policy!r}"
        )
    sim = Simulation(cfg)
    telemetry = sim.enable_telemetry()
    result = sim.run(iterations)
    parsed = validate_metrics(telemetry.metrics_lines())
    decisions = [d for rec in parsed.iterations for d in rec["sar_decisions"]]
    mismatches = [d for d in decisions if replay_decision(d) != d["fired"]]
    if mismatches:
        raise RuntimeError(
            f"cell ({policy}, {workload}, {engine}): "
            f"{len(mismatches)}/{len(decisions)} decision record(s) do not "
            f"replay to their logged verdict; first: {mismatches[0]}"
        )
    imbalances = [rec["imbalance"] for rec in parsed.iterations]
    return {
        "policy": policy,
        "workload": workload,
        "engine": engine,
        "total_time": result.total_time,
        "computation_time": result.computation_time,
        "overhead": result.overhead,
        "n_redistributions": result.n_redistributions,
        "redistribution_time": result.redistribution_time,
        "peak_imbalance": max(imbalances) if imbalances else 1.0,
        "final_imbalance": imbalances[-1] if imbalances else 1.0,
        "decisions": len(decisions),
        "fires": sum(1 for d in decisions if d["fired"]),
    }


def run_policy_matrix(
    policies: tuple[str, ...] | list[str] = ZOO_SPECS,
    workloads: tuple[str, ...] | list[str] | None = None,
    engines: tuple[str, ...] | list[str] = ENGINES,
    *,
    smoke: bool = False,
    p: int = _P,
    progress: Callable[[str], None] | None = None,
) -> dict:
    """Run the full policy × workload × engine matrix.

    ``smoke`` shrinks the particle count and iteration budget to CI
    scale without changing the matrix shape.  Per workload class the
    flat-engine cells crown a ``winner`` (minimum deterministic virtual
    ``total_time``), and every (policy, workload) pair is checked for
    engine parity — the two engines must agree on virtual time, so a
    split would mean the policy consumed engine-dependent observations.
    """
    workloads = tuple(workloads) if workloads is not None else tuple(WORKLOADS)
    for w in workloads:
        if w not in WORKLOADS:
            known = ", ".join(sorted(WORKLOADS))
            raise ValueError(f"unknown workload class {w!r}; known: {known}")
    for spec in policies:
        make_policy(spec)  # fail fast on typos before running anything
    nparticles = 4096 if smoke else 8192
    iterations = 10 if smoke else 40
    cells: list[dict] = []
    for workload in workloads:
        for policy in policies:
            for engine in engines:
                if progress is not None:
                    progress(f"{workload:<10s} {policy:<40s} engine={engine}")
                cells.append(
                    run_policy_cell(
                        policy,
                        workload,
                        engine,
                        p=p,
                        nparticles=nparticles,
                        iterations=iterations,
                    )
                )
    parity_failures = []
    for workload in workloads:
        for policy in policies:
            times = {
                c["engine"]: c["total_time"]
                for c in cells
                if c["workload"] == workload and c["policy"] == policy
            }
            if len(set(times.values())) > 1:
                parity_failures.append(
                    {"workload": workload, "policy": policy, "times": times}
                )
    winners = {}
    for workload in workloads:
        ranked = sorted(
            (c for c in cells if c["workload"] == workload and c["engine"] == engines[0]),
            key=lambda c: c["total_time"],
        )
        if ranked:
            best = ranked[0]
            winners[workload] = {
                "policy": best["policy"],
                "total_time": best["total_time"],
                "margin": (
                    (ranked[1]["total_time"] - best["total_time"])
                    / best["total_time"]
                    if len(ranked) > 1 and best["total_time"] > 0
                    else 0.0
                ),
            }
    return {
        "schema": POLICY_SCHEMA,
        "p": p,
        "nparticles": nparticles,
        "iterations": iterations,
        "smoke": smoke,
        "available_policies": available_policies(),
        "cells": cells,
        "winners": winners,
        "engine_parity": not parity_failures,
        "parity_failures": parity_failures,
    }


def render_matrix(doc: dict) -> str:
    """Terminal table of a :func:`run_policy_matrix` document."""
    out = [
        f"=== policy matrix (p={doc['p']}, {doc['iterations']} iterations, "
        f"{doc['nparticles']} particles{', smoke' if doc.get('smoke') else ''}) ==="
    ]
    header = (
        f"{'workload':<11s} {'policy':<40s} {'total t':>10s} {'overhead':>10s} "
        f"{'redists':>8s} {'fires':>6s} {'peak imb':>9s}"
    )
    out.append(header)
    out.append("-" * len(header))
    shown = [c for c in doc["cells"] if c["engine"] == doc["cells"][0]["engine"]]
    for cell in shown:
        mark = (
            " *"
            if doc["winners"].get(cell["workload"], {}).get("policy") == cell["policy"]
            else ""
        )
        out.append(
            f"{cell['workload']:<11s} {cell['policy']:<40.40s} "
            f"{cell['total_time']:>10.4f} {cell['overhead']:>10.4f} "
            f"{cell['n_redistributions']:>8d} {cell['fires']:>6d} "
            f"{cell['peak_imbalance']:>9.3f}{mark}"
        )
    out.append("")
    for workload, win in doc["winners"].items():
        out.append(
            f"winner[{workload}]: {win['policy']}  "
            f"(t={win['total_time']:.4f}s, {win['margin'] * 100:.1f}% ahead)"
        )
    out.append(
        "engine parity: OK"
        if doc["engine_parity"]
        else f"engine parity: FAILED ({doc['parity_failures']})"
    )
    return "\n".join(out)


def save_matrix(doc: dict, path: str | Path) -> Path:
    """Write the matrix document to ``path`` as JSON; returns the path."""
    path = Path(path)
    from repro.util.atomic_io import atomic_write_json

    atomic_write_json(path, doc, sort_keys=True)
    return path
