"""Diff two ``BENCH_<suite>.json`` trajectory files and gate regressions.

``compare_suites`` pairs cases by name and computes the wall-clock ratio
``new.wall.min / old.wall.min``.  Tier-1 cases whose ratio exceeds
``1 + threshold`` are **regressions** and make the comparison fail —
the perf analogue of a failing unit test.  Virtual-machine time and op
counts are diffed as well: they are deterministic, so any change there
is a behavioral change, reported but not gated (a legitimate algorithm
improvement shifts them on purpose).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.bench.core import BenchResult, SuiteResult

__all__ = ["CaseDelta", "Comparison", "compare_suites", "compare_files"]


@dataclass
class CaseDelta:
    """Old-vs-new measurements of one case present in both files."""

    name: str
    tier: int
    old_wall: float
    new_wall: float
    old_vm: float | None
    new_vm: float | None

    @property
    def wall_ratio(self) -> float:
        """``new / old`` minimum wall-clock (1.0 = unchanged)."""
        if self.old_wall <= 0:
            return float("inf") if self.new_wall > 0 else 1.0
        return self.new_wall / self.old_wall

    @property
    def vm_ratio(self) -> float | None:
        """``new / old`` virtual time, or None when either side lacks it."""
        if not self.old_vm or self.new_vm is None:
            return None
        return self.new_vm / self.old_vm

    def regressed(self, threshold: float) -> bool:
        """True when wall-clock slowed by more than ``threshold``."""
        return self.wall_ratio > 1.0 + threshold

    def improved(self, threshold: float) -> bool:
        """True when wall-clock sped up by more than ``threshold``."""
        return self.wall_ratio < 1.0 - threshold


@dataclass
class Comparison:
    """Outcome of one old-vs-new diff."""

    deltas: list[CaseDelta]
    threshold: float
    only_old: list[str]
    only_new: list[str]

    @property
    def regressions(self) -> list[CaseDelta]:
        """Tier-1 cases slower than the gate allows."""
        return [d for d in self.deltas if d.tier <= 1 and d.regressed(self.threshold)]

    @property
    def improvements(self) -> list[CaseDelta]:
        """Cases faster by more than the threshold (any tier)."""
        return [d for d in self.deltas if d.improved(self.threshold)]

    @property
    def ok(self) -> bool:
        """True when no gated case regressed."""
        return not self.regressions

    def to_dict(self) -> dict:
        """Machine-readable report for ``bench compare --json``."""
        return {
            "threshold": self.threshold,
            "ok": self.ok,
            "cases": {
                d.name: {
                    "tier": d.tier,
                    "old_wall_min": d.old_wall,
                    "new_wall_min": d.new_wall,
                    "wall_ratio": d.wall_ratio,
                    "old_vm_seconds": d.old_vm,
                    "new_vm_seconds": d.new_vm,
                    "vm_ratio": d.vm_ratio,
                    "regressed": d.regressed(self.threshold),
                    "improved": d.improved(self.threshold),
                }
                for d in self.deltas
            },
            "only_old": list(self.only_old),
            "only_new": list(self.only_new),
        }


def compare_suites(
    old: SuiteResult, new: SuiteResult, *, threshold: float = 0.2
) -> Comparison:
    """Pair cases by name and compute wall/vm deltas."""
    if threshold <= 0:
        raise ValueError(f"threshold must be > 0, got {threshold}")
    old_by: dict[str, BenchResult] = {r.name: r for r in old.results}
    new_by: dict[str, BenchResult] = {r.name: r for r in new.results}
    deltas = [
        CaseDelta(
            name=name,
            tier=min(old_by[name].tier, new_by[name].tier),
            old_wall=old_by[name].wall_min,
            new_wall=new_by[name].wall_min,
            old_vm=old_by[name].vm_seconds,
            new_vm=new_by[name].vm_seconds,
        )
        for name in old_by
        if name in new_by
    ]
    return Comparison(
        deltas=deltas,
        threshold=threshold,
        only_old=sorted(set(old_by) - set(new_by)),
        only_new=sorted(set(new_by) - set(old_by)),
    )


def compare_files(
    old_path: str | Path, new_path: str | Path, *, threshold: float = 0.2
) -> Comparison:
    """Load two trajectory files and compare them."""
    return compare_suites(
        SuiteResult.load(old_path), SuiteResult.load(new_path), threshold=threshold
    )
