"""Execute registered cases: warmup, repeats, and observable collection.

Timing uses ``time.perf_counter`` around the case body only (setup is
untimed).  Garbage collection is paused during timed sections so a
collection triggered by an earlier case cannot be billed to a later one.
Peak RSS comes from ``resource.getrusage`` where available (Linux
reports KiB; macOS bytes are normalized to KiB) and covers the whole
process tree: reaped children via ``RUSAGE_CHILDREN`` plus any *live*
multicore-backend workers via ``/proc/<pid>/status`` — a multicore
bench case must not under-report memory just because its particle pool
lives in worker processes.
"""

from __future__ import annotations

import gc
import sys
import time

from repro.bench.core import BenchCase, BenchObservation, BenchResult, SuiteResult

__all__ = ["peak_rss_kb", "run_case", "run_suite"]


def _live_children_peak_kb() -> int:
    """Summed VmHWM (KiB) of live backend worker processes, 0 elsewhere."""
    try:
        from repro.parallel_exec import live_worker_pids
    except Exception:  # pragma: no cover - partial install
        return 0
    total = 0
    for pid in live_worker_pids():
        try:
            with open(f"/proc/{pid}/status") as fh:
                for line in fh:
                    if line.startswith("VmHWM:"):
                        total += int(line.split()[1])
                        break
        except (OSError, ValueError, IndexError):  # pragma: no cover - racing exit
            continue
    return total


def peak_rss_kb() -> int | None:
    """Peak resident-set size in KiB across the process tree, or ``None``.

    ``RUSAGE_SELF`` covers the bench process, ``RUSAGE_CHILDREN`` covers
    already-reaped children (their maxima fold in at wait time), and
    live worker processes of the multicore flat backend are sampled from
    ``/proc`` since rusage only sees them after they exit.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover - non-posix
        return None
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    peak += resource.getrusage(resource.RUSAGE_CHILDREN).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - macOS reports bytes
        peak //= 1024
    return int(peak) + _live_children_peak_kb()


def run_case(
    case: BenchCase,
    *,
    repeats: int | None = None,
    warmup: int | None = None,
) -> BenchResult:
    """Run one case with warmup + repeats and collect its observables.

    The observation (vm time, op counts) is taken from the final timed
    repeat; wall-clock statistics cover all timed repeats.
    """
    repeats = case.repeats if repeats is None else repeats
    warmup = case.warmup if warmup is None else warmup
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    context = case.setup() if case.setup is not None else None
    for _ in range(warmup):
        case.fn(context)
    samples: list[float] = []
    observation = None
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(repeats):
            t0 = time.perf_counter()
            observation = case.fn(context)
            samples.append(time.perf_counter() - t0)
    finally:
        if gc_was_enabled:
            gc.enable()
    if not isinstance(observation, BenchObservation):
        observation = BenchObservation()
    return BenchResult(
        name=case.name,
        tier=case.tier,
        repeats=repeats,
        warmup=warmup,
        wall_samples=samples,
        vm_seconds=observation.vm_seconds,
        op_counts=dict(observation.op_counts),
        peak_rss_kb=peak_rss_kb(),
        extra=dict(observation.extra),
    )


def run_suite(
    suite: str,
    cases: list[BenchCase],
    *,
    repeats: int | None = None,
    warmup: int | None = None,
    progress=None,
    walltime: float | None = None,
) -> SuiteResult:
    """Run every case of a suite (in registration order).

    ``progress`` is an optional ``callable(case_name)`` invoked before
    each case — the CLI uses it for live status lines.

    ``walltime`` (host seconds, default off) is the suite watchdog:
    before each case the elapsed wall-clock is checked, and on expiry a
    :class:`~repro.util.errors.JobTimeout` is raised whose ``partial``
    attribute holds the :class:`SuiteResult` of the cases that did
    complete — the CLI saves it so a timed-out CI run still yields a
    usable (if incomplete) trajectory.
    """
    results = []
    t0 = time.monotonic()
    for case in cases:
        if walltime is not None and (elapsed := time.monotonic() - t0) >= walltime:
            from repro.util.errors import JobTimeout

            exc = JobTimeout(f"bench suite {suite!r}", walltime, elapsed)
            exc.partial = SuiteResult(suite=suite, results=results)
            exc.remaining = [c.name for c in cases[len(results):]]
            raise exc
        if progress is not None:
            progress(case.name)
        results.append(run_case(case, repeats=repeats, warmup=warmup))
    return SuiteResult(suite=suite, results=results)
