"""Data model of the perf-regression harness.

A :class:`BenchCase` is a named, registered piece of hot-path work; the
runner (:mod:`repro.bench.runner`) executes it with warmup + repeats and
produces a :class:`BenchResult` carrying four observables:

* **wall-clock** — min/mean/max over the repeats (host seconds);
* **virtual-machine time** — the cost-model seconds of the run, when
  the case exercises a :class:`repro.machine.VirtualMachine`;
* **op counts** — the machine-independent abstract-operation tallies
  (:class:`repro.util.opcount.OpCounter` categories);
* **peak RSS** — the process high-water memory mark.

A :class:`SuiteResult` aggregates cases and serializes to the
``BENCH_<suite>.json`` trajectory format that ``repro bench compare``
diffs across commits (schema ``repro-bench/1``).
"""

from __future__ import annotations

import json
import platform
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable

__all__ = [
    "SCHEMA",
    "BenchObservation",
    "BenchCase",
    "BenchResult",
    "SuiteResult",
]

#: Version tag written into every trajectory file.
SCHEMA = "repro-bench/1"


@dataclass
class BenchObservation:
    """What one execution of a case reports back to the runner.

    Case functions may return one of these (preferred), or any other
    value (wall-clock only is then recorded).
    """

    vm_seconds: float | None = None  #: virtual-machine elapsed seconds
    op_counts: dict[str, float] = field(default_factory=dict)  #: abstract op tallies
    extra: dict[str, float] = field(default_factory=dict)  #: free-form numeric metadata


@dataclass(frozen=True)
class BenchCase:
    """One registered benchmark.

    Parameters
    ----------
    name:
        Unique registry key (also the JSON key).
    fn:
        ``fn(context) -> BenchObservation | Any``; the timed body.
    setup:
        Optional untimed factory whose return value is passed to ``fn``
        on every repeat (shared across repeats).
    suites:
        Suite names this case belongs to (e.g. ``("smoke", "full")``).
    tier:
        1 = regression-gated by ``bench compare``; 2 = informational.
    repeats, warmup:
        Default timed / untimed execution counts.
    description:
        One-line summary shown by ``bench list``.
    """

    name: str
    fn: Callable[[Any], Any]
    setup: Callable[[], Any] | None = None
    suites: tuple[str, ...] = ("full",)
    tier: int = 2
    repeats: int = 3
    warmup: int = 1
    description: str = ""


@dataclass
class BenchResult:
    """Measured outcome of one case."""

    name: str
    tier: int
    repeats: int
    warmup: int
    wall_samples: list[float]
    vm_seconds: float | None = None
    op_counts: dict[str, float] = field(default_factory=dict)
    peak_rss_kb: int | None = None
    extra: dict[str, float] = field(default_factory=dict)

    @property
    def wall_min(self) -> float:
        """Fastest repeat — the low-noise statistic ``compare`` gates on."""
        return min(self.wall_samples)

    @property
    def wall_mean(self) -> float:
        """Mean over the repeats."""
        return sum(self.wall_samples) / len(self.wall_samples)

    @property
    def wall_max(self) -> float:
        """Slowest repeat."""
        return max(self.wall_samples)

    def to_dict(self) -> dict:
        """JSON form (one entry of ``SuiteResult.cases``)."""
        return {
            "tier": self.tier,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "wall": {
                "min": self.wall_min,
                "mean": self.wall_mean,
                "max": self.wall_max,
                "samples": list(self.wall_samples),
            },
            "vm_seconds": self.vm_seconds,
            "op_counts": dict(self.op_counts),
            "peak_rss_kb": self.peak_rss_kb,
            "extra": dict(self.extra),
        }

    @classmethod
    def from_dict(cls, name: str, data: dict) -> "BenchResult":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=name,
            tier=int(data.get("tier", 2)),
            repeats=int(data.get("repeats", 1)),
            warmup=int(data.get("warmup", 0)),
            wall_samples=list(data["wall"]["samples"]),
            vm_seconds=data.get("vm_seconds"),
            op_counts=dict(data.get("op_counts", {})),
            peak_rss_kb=data.get("peak_rss_kb"),
            extra=dict(data.get("extra", {})),
        )


@dataclass
class SuiteResult:
    """All case results of one suite run, serializable to ``BENCH_<suite>.json``."""

    suite: str
    results: list[BenchResult]

    def to_dict(self) -> dict:
        """The full ``repro-bench/1`` document."""
        import numpy

        return {
            "schema": SCHEMA,
            "suite": self.suite,
            "environment": {
                "python": platform.python_version(),
                "platform": platform.platform(),
                "numpy": numpy.__version__,
            },
            "cases": {r.name: r.to_dict() for r in self.results},
        }

    def save(self, path: str | Path) -> Path:
        """Write the JSON document to ``path`` (atomically)."""
        from repro.util.atomic_io import atomic_write_json

        return atomic_write_json(Path(path), self.to_dict())

    @classmethod
    def load(cls, path: str | Path) -> "SuiteResult":
        """Read a trajectory file written by :meth:`save`."""
        data = json.loads(Path(path).read_text())
        if data.get("schema") != SCHEMA:
            raise ValueError(
                f"{path}: unsupported schema {data.get('schema')!r}; expected {SCHEMA!r}"
            )
        results = [
            BenchResult.from_dict(name, case) for name, case in data["cases"].items()
        ]
        return cls(suite=data.get("suite", "unknown"), results=results)
