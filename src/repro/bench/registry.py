"""Case registry: decorator-registered cases plus paper-benchmark wrappers.

The hot-path cases live in :mod:`repro.bench.suites` and register
themselves with :func:`register`.  The legacy report generators under
``benchmarks/bench_*.py`` (one per paper figure/table/ablation) are
wrapped automatically: each module's top-level ``run_*`` entry point
becomes a tier-2 case in the ``paper`` suite, so the whole paper
reproduction can be timed and archived with
``python -m repro bench run --suite paper``.
"""

from __future__ import annotations

import importlib
import pkgutil
from typing import Any, Callable

from repro.bench.core import BenchCase, BenchObservation

__all__ = [
    "register",
    "register_case",
    "all_cases",
    "cases_for_suite",
    "available_suites",
    "ensure_registered",
]

_REGISTRY: dict[str, BenchCase] = {}
_BOOTSTRAPPED = False


def register_case(case: BenchCase) -> BenchCase:
    """Add a fully-built case to the registry (name must be unique)."""
    if case.name in _REGISTRY:
        raise ValueError(f"bench case {case.name!r} already registered")
    _REGISTRY[case.name] = case
    return case


def register(
    name: str,
    *,
    suites: tuple[str, ...] = ("full",),
    tier: int = 2,
    repeats: int = 3,
    warmup: int = 1,
    setup: Callable[[], Any] | None = None,
    description: str = "",
) -> Callable:
    """Decorator form of :func:`register_case` for plain functions."""

    def decorator(fn: Callable[[Any], Any]) -> Callable[[Any], Any]:
        register_case(
            BenchCase(
                name=name,
                fn=fn,
                setup=setup,
                suites=tuple(suites),
                tier=tier,
                repeats=repeats,
                warmup=warmup,
                description=description or (fn.__doc__ or "").strip().splitlines()[0]
                if (description or fn.__doc__)
                else "",
            )
        )
        return fn

    return decorator


def all_cases() -> list[BenchCase]:
    """Every registered case, in registration order."""
    ensure_registered()
    return list(_REGISTRY.values())


def cases_for_suite(suite: str) -> list[BenchCase]:
    """Cases belonging to ``suite`` (``"all"`` selects everything)."""
    if suite == "all":
        return all_cases()
    return [c for c in all_cases() if suite in c.suites]


def available_suites() -> list[str]:
    """Sorted names of all suites any case belongs to."""
    names = {s for c in all_cases() for s in c.suites}
    return sorted(names | {"all"})


def _wrap_paper_module(module_name: str, run_fn: Callable[[], Any]) -> BenchCase:
    short = module_name.rsplit(".", 1)[-1].removeprefix("bench_")

    def body(context: Any) -> BenchObservation:
        run_fn()
        return BenchObservation()

    return BenchCase(
        name=f"paper_{short}",
        fn=body,
        suites=("paper",),
        tier=2,
        repeats=1,
        warmup=0,
        description=f"full report generator benchmarks/{module_name.rsplit('.', 1)[-1]}.py",
    )


def _register_paper_benchmarks() -> None:
    """Wrap every ``benchmarks/bench_*.py`` top-level ``run_*`` entry point.

    The ``benchmarks`` package sits at the repo root (not inside
    ``repro``), so it is importable only when running from a checkout;
    installed-package use skips these cases silently.
    """
    try:
        import benchmarks
    except ImportError:
        return
    for info in pkgutil.iter_modules(benchmarks.__path__):
        if not info.name.startswith("bench_"):
            continue
        try:
            module = importlib.import_module(f"benchmarks.{info.name}")
        except Exception:  # pragma: no cover - a broken report module
            continue
        runners = [
            fn
            for attr in sorted(vars(module))
            if attr.startswith("run_")
            and callable(fn := getattr(module, attr))
            and getattr(fn, "__module__", None) == module.__name__
        ]
        if len(runners) == 1:
            case = _wrap_paper_module(f"benchmarks.{info.name}", runners[0])
            if case.name not in _REGISTRY:
                register_case(case)


def ensure_registered() -> None:
    """Import all case-defining modules exactly once."""
    global _BOOTSTRAPPED
    if _BOOTSTRAPPED:
        return
    _BOOTSTRAPPED = True
    import repro.bench.suites  # noqa: F401  (registers the smoke/full cases)

    _register_paper_benchmarks()
