"""The registered hot-path cases (suites ``smoke`` and ``full``).

Every case here runs on a :class:`~repro.machine.VirtualMachine` so it
reports all three regression axes: host wall-clock, cost-model virtual
seconds, and abstract op counts.  Sizes are chosen so one ``smoke`` run
finishes in a few seconds — cheap enough to gate every PR — while still
exercising the real vectorized kernels on non-trivial data.

Cases are tier 1 (regression-gated) unless noted; the heavyweight paper
report generators are wrapped separately into the ``paper`` suite by
:mod:`repro.bench.registry`.
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

import numpy as np

from repro.bench.core import BenchObservation
from repro.bench.registry import register
from repro.core.incremental_sort import BucketState, bucket_incremental_sort
from repro.core.redistribution import Redistributor
from repro.core.partitioner import ParticlePartitioner
from repro.indexing import hilbert_xy_to_d
from repro.machine import MachineModel, VirtualMachine
from repro.mesh import CurveBlockDecomposition, Grid2D
from repro.particles import gaussian_blob
from repro.particles.sort import parallel_sample_sort
from repro.pic import ParallelPIC, Simulation, SimulationConfig
from repro.pic.checkpoint import load_checkpoint
from repro.pic.ghost import make_ghost_table

#: Shared problem size of the PIC-phase cases.  p = 32 with 256
#: particles per rank is the regime the flat engine exists for: per-rank
#: Python loop overhead dominates the looped engine there, so the
#: looped-baseline-vs-flat comparison shows the pooled kernels' >= 1.5x
#: wall-clock advantage at byte-identical virtual time.
_P = 32
_NX, _NY = 64, 32
_NPART = 8192
_SEED = 3


#: Problem size of the multicore flat-backend cases: enough particles
#: per rank that kernel math dominates worker dispatch overhead.
_NPART_MC = 262_144


def _engine() -> str:
    """Execution engine the PIC cases run under.

    The committed ``BENCH_baseline.json`` is recorded with
    ``REPRO_BENCH_ENGINE=looped`` so a default (flat) run compared
    against it demonstrates — and gates — the pooled engine's wall-clock
    advantage at identical virtual time and op counts.
    """
    return os.environ.get("REPRO_BENCH_ENGINE", "flat")


def _workers() -> int:
    """Worker count of the multicore cases (``REPRO_BENCH_WORKERS``).

    The committed baseline is recorded at the default (0 = in-process
    flat), so a run with ``REPRO_BENCH_WORKERS=4`` compared against it
    measures the multicore backend's wall speedup at a vm_ratio of
    exactly 1.0 — the backend is accounting-invariant by contract.
    """
    from repro.parallel_exec import resolve_workers

    return resolve_workers(os.environ.get("REPRO_BENCH_WORKERS", "0"))


def _observe(vm: VirtualMachine, body) -> BenchObservation:
    """Run ``body`` and report the vm-time / op-count deltas it caused."""
    ops_before = vm.ops.as_dict()
    t0 = vm.elapsed()
    body()
    ops_after = vm.ops.as_dict()
    deltas = {
        k: v - ops_before.get(k, 0.0)
        for k, v in ops_after.items()
        if v - ops_before.get(k, 0.0) > 0.0
    }
    return BenchObservation(vm_seconds=vm.elapsed() - t0, op_counts=deltas)


def _build_pic(movement: str = "lagrangian", p: int = _P, **kwargs) -> ParallelPIC:
    grid = Grid2D(_NX, _NY)
    particles = gaussian_blob(grid, _NPART, rng=_SEED)
    vm = VirtualMachine(p, MachineModel.cm5())
    decomp = CurveBlockDecomposition(grid, p, "hilbert")
    if movement == "eulerian":
        cells = grid.cell_id_of_positions(particles.x, particles.y)
        owners = decomp.owner_of_cells(cells)
        local = [particles.take(np.flatnonzero(owners == r)) for r in range(p)]
    else:
        local = ParticlePartitioner(grid, "hilbert").initial_partition(particles, p)
    return ParallelPIC(vm, grid, decomp, local, movement=movement, engine=_engine(), **kwargs)


# ----------------------------------------------------------------------
# PIC phase cases
# ----------------------------------------------------------------------
@register(
    "scatter_static",
    suites=("smoke", "full"),
    tier=1,
    description="parallel scatter (deposition + ghost exchange), static partition",
    setup=_build_pic,
)
def _scatter_static(pic: ParallelPIC) -> BenchObservation:
    return _observe(pic.vm, pic.scatter)


@register(
    "gather_push_static",
    suites=("smoke", "full"),
    tier=1,
    description="parallel gather + push, static partition",
    setup=lambda: (lambda pic: (pic.scatter(), pic.field_solve(), pic)[-1])(_build_pic()),
)
def _gather_push_static(pic: ParallelPIC) -> BenchObservation:
    return _observe(pic.vm, pic.gather_push)


@register(
    "step_static_lagrangian",
    suites=("smoke", "full"),
    tier=1,
    description="one full PIC step (scatter/field/gather/push), Lagrangian",
    setup=_build_pic,
)
def _step_static(pic: ParallelPIC) -> BenchObservation:
    return _observe(pic.vm, pic.step)


@register(
    "step_eulerian",
    suites=("smoke", "full"),
    tier=1,
    description="one full PIC step with Eulerian per-step migration",
    setup=lambda: _build_pic("eulerian"),
)
def _step_eulerian(pic: ParallelPIC) -> BenchObservation:
    return _observe(pic.vm, pic.step)


def _build_pic_mc() -> ParallelPIC:
    """Large flat-engine fixture for the multicore-backend cases.

    Always ``engine="flat"`` (the backend only exists there); the worker
    count comes from ``REPRO_BENCH_WORKERS`` so the same case measures
    the serial flat baseline and the sharded backend.
    """
    grid = Grid2D(_NX, _NY)
    particles = gaussian_blob(grid, _NPART_MC, rng=_SEED)
    vm = VirtualMachine(_P, MachineModel.cm5())
    decomp = CurveBlockDecomposition(grid, _P, "hilbert")
    local = ParticlePartitioner(grid, "hilbert").initial_partition(particles, _P)
    return ParallelPIC(
        vm, grid, decomp, local, movement="lagrangian", engine="flat", workers=_workers()
    )


@register(
    "scatter_workers4_p32",
    suites=("smoke", "full"),
    tier=1,
    description="parallel scatter at 262k particles, flat engine, "
    "REPRO_BENCH_WORKERS processes (0 = in-process)",
    setup=_build_pic_mc,
)
def _scatter_workers(pic: ParallelPIC) -> BenchObservation:
    return _observe(pic.vm, pic.scatter)


@register(
    "flat_workers4_step_p32",
    suites=("smoke", "full"),
    tier=1,
    description="one full PIC step at 262k particles, flat engine, "
    "REPRO_BENCH_WORKERS processes (0 = in-process)",
    setup=_build_pic_mc,
)
def _step_workers(pic: ParallelPIC) -> BenchObservation:
    return _observe(pic.vm, pic.step)


def _electrostatic_fixture() -> ParallelPIC:
    pic = _build_pic(p=32, field_solver="electrostatic")
    pic.scatter()  # populate rho so the solve works on real sources
    return pic


@register(
    "field_solve_electrostatic_p32",
    suites=("smoke", "full"),
    tier=1,
    description="global FFT Poisson solve with all-to-all transpose, p=32",
    setup=_electrostatic_fixture,
)
def _field_solve_electrostatic(pic: ParallelPIC) -> BenchObservation:
    return _observe(pic.vm, pic.field_solve)


def _migration_fixture() -> ParallelPIC:
    pic = _build_pic("eulerian", p=32)
    pic.scatter()
    pic.field_solve()
    return pic


@register(
    "eulerian_migration_p32",
    suites=("smoke", "full"),
    tier=1,
    description="gather + push + Eulerian cell-owner migration, p=32",
    setup=_migration_fixture,
)
def _eulerian_migration(pic: ParallelPIC) -> BenchObservation:
    return _observe(pic.vm, pic.gather_push)


# ----------------------------------------------------------------------
# redistribution-core cases
# ----------------------------------------------------------------------
def _sort_fixture(drift: int, p: int = 16, n_per: int = 4000):
    rng = np.random.default_rng(_SEED)
    all_keys = np.sort(rng.integers(0, 10**6, p * n_per))
    states = []
    for r in range(p):
        keys = all_keys[r * n_per : (r + 1) * n_per]
        payload = np.repeat(keys, 7).reshape(-1, 7).astype(float)
        states.append(BucketState.build(keys, payload, 16))
    new_keys = [
        np.maximum(s.keys + rng.integers(-drift, drift + 1, s.n), 0) for s in states
    ]
    return VirtualMachine(p, MachineModel.cm5()), states, new_keys


@register(
    "incremental_resort_small_drift",
    suites=("smoke", "full"),
    tier=1,
    description="bucket incremental sort, ~1% of elements change rank",
    setup=lambda: _sort_fixture(drift=200),
)
def _resort_small(ctx) -> BenchObservation:
    vm, states, new_keys = ctx
    return _observe(vm, lambda: bucket_incremental_sort(vm, states, new_keys))


@register(
    "incremental_resort_large_drift",
    suites=("smoke", "full"),
    tier=1,
    description="bucket incremental sort under heavy drift",
    setup=lambda: _sort_fixture(drift=100_000),
)
def _resort_large(ctx) -> BenchObservation:
    vm, states, new_keys = ctx
    return _observe(vm, lambda: bucket_incremental_sort(vm, states, new_keys))


@register(
    "from_scratch_sample_sort",
    suites=("smoke", "full"),
    tier=1,
    description="parallel sample sort of the same keyed rows (baseline)",
    setup=lambda: _sort_fixture(drift=200),
)
def _sample_sort(ctx) -> BenchObservation:
    vm, states, new_keys = ctx
    payloads = [s.payload for s in states]
    return _observe(vm, lambda: parallel_sample_sort(vm, new_keys, payloads))


def _redistributor_fixture():
    grid = Grid2D(_NX, _NY)
    particles = gaussian_blob(grid, _NPART, rng=_SEED)
    vm = VirtualMachine(_P, MachineModel.cm5())
    partitioner = ParticlePartitioner(grid, "hilbert")
    redis = Redistributor(partitioner, nbuckets=16)
    local = partitioner.initial_partition(particles, _P)
    result = redis.initialize(vm, local)
    rng = np.random.default_rng(_SEED)
    return {"vm": vm, "redis": redis, "particles": result.particles, "rng": rng, "grid": grid}


@register(
    "redistributor_epoch_drift",
    suites=("smoke", "full"),
    tier=1,
    description="full Redistributor epoch (index + incremental sort + balance) under small drift",
    setup=_redistributor_fixture,
)
def _redistributor_epoch(ctx) -> BenchObservation:
    vm, redis, rng, grid = ctx["vm"], ctx["redis"], ctx["rng"], ctx["grid"]
    for parts in ctx["particles"]:
        parts.x[:] = np.mod(parts.x + rng.normal(0.0, 0.05 * grid.dx, parts.n), grid.lx)

    def body():
        result = redis.redistribute(vm, ctx["particles"])
        ctx["particles"] = result.particles

    return _observe(vm, body)


# ----------------------------------------------------------------------
# kernel / table micro-cases
# ----------------------------------------------------------------------
@register(
    "hilbert_cell_keys",
    suites=("smoke", "full"),
    tier=1,
    description="2-D Hilbert indexing of 200k cell coordinates",
    setup=lambda: (
        VirtualMachine(1, MachineModel.cm5()),
        np.random.default_rng(_SEED).integers(0, 256, 200_000),
        np.random.default_rng(_SEED + 1).integers(0, 256, 200_000),
    ),
)
def _hilbert_keys(ctx) -> BenchObservation:
    vm, x, y = ctx

    def body():
        hilbert_xy_to_d(8, x, y)
        vm.charge_ops("index", float(x.size))

    return _observe(vm, body)


def _ghost_fixture(kind: str):
    grid = Grid2D(128, 64)
    rng = np.random.default_rng(_SEED)
    nodes = rng.integers(0, grid.nnodes, 60_000)
    values = rng.random((4, nodes.size))
    table = make_ghost_table(kind, grid.nnodes, 4)
    return VirtualMachine(1, MachineModel.cm5()), table, nodes, values


def _ghost_body(ctx) -> BenchObservation:
    vm, table, nodes, values = ctx

    def body():
        before = table.stats.ops
        table.accumulate(nodes, values)
        table.flush()
        vm.charge_ops("table", table.stats.ops - before)

    return _observe(vm, body)


register(
    "ghost_table_hash",
    suites=("smoke", "full"),
    tier=1,
    description="hash ghost table: accumulate + duplicate-removal flush",
    setup=lambda: _ghost_fixture("hash"),
)(_ghost_body)

register(
    "ghost_table_direct",
    suites=("smoke", "full"),
    tier=1,
    description="direct-address ghost table: accumulate + flush",
    setup=lambda: _ghost_fixture("direct"),
)(_ghost_body)


# ----------------------------------------------------------------------
# end-to-end simulation case
# ----------------------------------------------------------------------
@register(
    "simulation_smoke_dynamic",
    suites=("smoke", "full"),
    tier=1,
    repeats=3,
    description="10 iterations of the full Simulation driver, dynamic policy",
    setup=lambda: Simulation(
        SimulationConfig(
            nx=32,
            ny=16,
            nparticles=2048,
            p=4,
            distribution="irregular",
            policy="dynamic",
            seed=_SEED,
        )
    ),
)
def _simulation_smoke(sim: Simulation) -> BenchObservation:
    return _observe(sim.vm, lambda: sim.run(10))


def _checkpoint_fixture() -> tuple[Simulation, Path]:
    sim = Simulation(
        SimulationConfig(
            nx=_NX,
            ny=_NY,
            nparticles=_NPART,
            p=_P,
            distribution="irregular",
            policy="dynamic",
            seed=_SEED,
            engine=_engine(),
        )
    )
    sim.run(2)  # accumulate vm / policy / record state worth serializing
    path = Path(tempfile.mkdtemp(prefix="repro_bench_ck_")) / "ck.npz"
    return sim, path


@register(
    "checkpoint_roundtrip_p32",
    suites=("smoke", "full"),
    tier=1,
    repeats=3,
    description="v2 checkpoint save + load of a p=32 run (full run state)",
    setup=_checkpoint_fixture,
)
def _checkpoint_roundtrip(ctx) -> BenchObservation:
    sim, path = ctx

    def body():
        sim.checkpoint(path)
        load_checkpoint(path)

    return _observe(sim.vm, body)


def _telemetry_config() -> SimulationConfig:
    return SimulationConfig(
        nx=_NX,
        ny=_NY,
        nparticles=_NPART,
        p=_P,
        distribution="irregular",
        policy="dynamic",
        seed=_SEED,
        engine=_engine(),
    )


@register(
    "telemetry_overhead_p32",
    suites=("smoke", "full"),
    tier=1,
    repeats=3,
    description="6 iterations twice: telemetry off, then traced (spans + metrics); "
    "gates the enabled-mode overhead",
    setup=lambda: None,
)
def _telemetry_overhead(_ctx) -> BenchObservation:
    # Both runs live in the timed body so the case's wall-clock tracks
    # the *sum* of the plain and the instrumented run — a telemetry hot
    # path that stops being near-free shows up as a tier-1 wall
    # regression here.  The virtual axes come from the traced run, which
    # must match the plain one exactly (zero-cost contract).
    plain = Simulation(_telemetry_config())
    traced = Simulation(_telemetry_config())
    traced.enable_telemetry()
    plain.run(6)
    traced.run(6)
    assert traced.vm.elapsed() == plain.vm.elapsed()
    traced.telemetry.metrics_lines()
    traced.telemetry.tracer.to_chrome()
    return BenchObservation(
        vm_seconds=traced.vm.elapsed(), op_counts=traced.vm.ops.as_dict()
    )


@register(
    "obs_overhead_p32",
    suites=("smoke", "full"),
    tier=1,
    repeats=3,
    description="6 iterations twice: bare, then fully observed (telemetry + "
    "kernel profiling); reports the profiled/bare wall ratio and gates the "
    "<5% attribution-overhead budget",
    setup=lambda: None,
)
def _obs_overhead(_ctx) -> BenchObservation:
    # Same both-runs-in-the-timed-body structure as telemetry_overhead:
    # the tier-1 wall gate catches a hot-path section that stops being
    # cheap.  The per-run walls are also measured separately so the
    # observation reports the overhead *fraction* in `extra` — CI pins
    # it under 5% on the min-over-repeats walls.
    from time import perf_counter

    plain = Simulation(_telemetry_config())
    observed = Simulation(_telemetry_config())
    observed.enable_telemetry()
    observed.enable_profiling()
    t0 = perf_counter()
    plain.run(6)
    t_plain = perf_counter() - t0
    t0 = perf_counter()
    observed.run(6)
    t_observed = perf_counter() - t0
    # zero-cost contract: profiling + telemetry never touch the virtual
    # axes or the physics
    assert observed.vm.elapsed() == plain.vm.elapsed()
    assert observed.vm.ops.as_dict() == plain.vm.ops.as_dict()
    assert observed.profiler is not None and observed.profiler.samples
    return BenchObservation(
        vm_seconds=observed.vm.elapsed(),
        op_counts=observed.vm.ops.as_dict(),
        extra={
            "wall_plain": t_plain,
            "wall_observed": t_observed,
            "overhead_frac": (t_observed - t_plain) / t_plain if t_plain > 0 else 0.0,
        },
    )


def _recovery_fixture() -> Path:
    # The body builds and runs the whole faulted simulation (the bench
    # runner calls setup once but times every repeat, so the kill +
    # recovery must happen inside the body); setup only provides a
    # scratch checkpoint location.
    return Path(tempfile.mkdtemp(prefix="repro_bench_rec_")) / "ck.npz"


@register(
    "recovery_smoke_p32",
    suites=("smoke", "full"),
    tier=1,
    repeats=3,
    description="p=32 run with a rank kill at iteration 4: detect, shrink, restore, replay",
    setup=_recovery_fixture,
)
def _recovery_smoke(path: Path) -> BenchObservation:
    from repro.machine.faults import FaultEvent, FaultPlan

    sim = Simulation(
        SimulationConfig(
            nx=_NX,
            ny=_NY,
            nparticles=_NPART,
            p=_P,
            distribution="irregular",
            policy="dynamic",
            seed=_SEED,
            engine=_engine(),
        )
    )
    sim.install_faults(FaultPlan(events=(FaultEvent(kind="kill", rank=5, iteration=4),)))
    result = sim.run(6, checkpoint_every=2, checkpoint_path=path)
    assert result.n_recoveries == 1
    # recovery swapped sim.vm for the shrunk machine (which carried the
    # old elapsed/ops forward), so report its cumulative totals directly
    return BenchObservation(vm_seconds=sim.vm.elapsed(), op_counts=sim.vm.ops.as_dict())


def _service_cache_fixture() -> dict:
    # The cold batch runs once in setup (untimed): three p=32 jobs
    # through the supervised scheduler, populating a scratch result
    # cache.  The timed body is the warm resubmission, so the case's
    # wall-clock IS the cache-hit path — lookup, digest verification,
    # and report assembly, with zero worker processes launched.
    import time

    from repro.service import JobSpec, Scheduler

    root = Path(tempfile.mkdtemp(prefix="repro_bench_svc_"))
    jobs = [
        JobSpec(
            config=dict(
                nx=_NX,
                ny=_NY,
                nparticles=_NPART,
                p=_P,
                distribution="irregular",
                policy="dynamic",
                seed=seed,
                engine=_engine(),
            ),
            iterations=4,
            name=f"bench-seed={seed}",
        )
        for seed in range(3)
    ]
    t0 = time.monotonic()
    report = Scheduler(workers=2, cache=root / "cache", workdir=root / "work").run(jobs)
    cold_wall = time.monotonic() - t0
    if not report["ok"]:
        raise RuntimeError(f"cold service batch failed: {report['counters']}")
    return {"root": root, "jobs": jobs, "cold_wall": cold_wall}


@register(
    "service_cache_hit_p32",
    suites=("smoke", "full"),
    tier=1,
    repeats=3,
    description="warm resubmission of a 3-job p=32 batch served entirely from "
    "the result cache; reports warm_fraction (the <1% warm/cold contract is "
    "asserted by tests/test_chaos_service.py, not in the timed body)",
    setup=_service_cache_fixture,
)
def _service_cache_hit(ctx: dict) -> BenchObservation:
    import time

    from repro.service import Scheduler

    t0 = time.monotonic()
    report = Scheduler(
        workers=2, cache=ctx["root"] / "cache", workdir=ctx["root"] / "work"
    ).run(ctx["jobs"])
    warm_wall = time.monotonic() - t0
    # correctness checks raise explicitly (an `assert` vanishes under -O);
    # the timing contract itself is NOT enforced here — a loaded machine
    # must yield a comparable observation, not crash the bench run
    if not report["ok"]:
        raise RuntimeError(f"warm service batch failed: {report['counters']}")
    hits = report["counters"]["cache_hits"]
    if hits != len(ctx["jobs"]):
        raise RuntimeError(
            f"expected {len(ctx['jobs'])} cache hits, got {hits}"
        )
    return BenchObservation(
        extra={
            "cold_wall": ctx["cold_wall"],
            "warm_wall": warm_wall,
            "warm_fraction": warm_wall / ctx["cold_wall"],
        }
    )
