"""Unified perf-regression harness (``python -m repro bench ...``).

The subsystem has four layers:

* :mod:`repro.bench.core` — the :class:`BenchCase` / :class:`BenchResult`
  data model and the ``BENCH_<suite>.json`` trajectory schema;
* :mod:`repro.bench.runner` — warmup + repeats execution collecting
  wall-clock, virtual-machine time, op counts, and peak RSS;
* :mod:`repro.bench.registry` — named case registry, including wrappers
  for the ``benchmarks/bench_*.py`` paper report generators;
* :mod:`repro.bench.compare` — trajectory diffing with a tier-1
  regression gate.
"""

from repro.bench.compare import CaseDelta, Comparison, compare_files, compare_suites
from repro.bench.core import (
    SCHEMA,
    BenchCase,
    BenchObservation,
    BenchResult,
    SuiteResult,
)
from repro.bench.registry import (
    all_cases,
    available_suites,
    cases_for_suite,
    ensure_registered,
    register,
    register_case,
)
from repro.bench.policy_suite import (
    POLICY_SCHEMA,
    render_matrix,
    run_policy_cell,
    run_policy_matrix,
    save_matrix,
)
from repro.bench.runner import peak_rss_kb, run_case, run_suite

__all__ = [
    "POLICY_SCHEMA",
    "run_policy_cell",
    "run_policy_matrix",
    "render_matrix",
    "save_matrix",
    "SCHEMA",
    "BenchCase",
    "BenchObservation",
    "BenchResult",
    "SuiteResult",
    "CaseDelta",
    "Comparison",
    "compare_files",
    "compare_suites",
    "register",
    "register_case",
    "all_cases",
    "available_suites",
    "cases_for_suite",
    "ensure_registered",
    "run_case",
    "run_suite",
    "peak_rss_kb",
]
