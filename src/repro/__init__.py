"""repro — dynamic alignment and distribution of irregularly coupled
data arrays for scalable parallel PIC.

A from-scratch reproduction of Liao, Ou & Ranka (IPPS 1996): a 2-D
relativistic electromagnetic particle-in-cell code parallelized with
Hilbert-index-based particle distribution, incremental redistribution,
and static / periodic / dynamic (Stop-At-Rise) redistribution policies,
evaluated on a simulated CM-5-class distributed-memory machine.

Quickstart
----------
>>> from repro import Simulation, SimulationConfig
>>> cfg = SimulationConfig(nx=64, ny=32, nparticles=8192, p=8,
...                        distribution="irregular", policy="dynamic")
>>> result = Simulation(cfg).run(50)
>>> result.total_time > 0 and result.overhead >= 0
True

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from repro.indexing import (
    HilbertIndexing,
    IndexingScheme,
    MortonIndexing,
    RowMajorIndexing,
    SnakeIndexing,
    available_schemes,
    get_scheme,
)
from repro.machine import BlockTopology, CommStats, MachineModel, VirtualMachine
from repro.mesh import (
    BlockDecomposition,
    CurveBlockDecomposition,
    FieldState,
    Grid2D,
    HaloSchedule,
)
from repro.particles import (
    ParticleArray,
    gaussian_blob,
    ring_distribution,
    two_stream,
    uniform_plasma,
)
from repro.pic import (
    ParallelPIC,
    SequentialPIC,
    Simulation,
    SimulationConfig,
    SimulationResult,
)
from repro.core import (
    CostModelPredictivePolicy,
    DynamicSARPolicy,
    ImbalanceThresholdPolicy,
    OnlineTunedSAR,
    OptimalPlannerPolicy,
    ParticlePartitioner,
    PeriodicPolicy,
    Redistributor,
    StaticPolicy,
    available_policies,
    make_policy,
    policy_spec,
    register_policy,
    replay_decision,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # indexing
    "IndexingScheme",
    "HilbertIndexing",
    "SnakeIndexing",
    "RowMajorIndexing",
    "MortonIndexing",
    "get_scheme",
    "available_schemes",
    # machine
    "MachineModel",
    "VirtualMachine",
    "CommStats",
    "BlockTopology",
    # mesh
    "Grid2D",
    "FieldState",
    "CurveBlockDecomposition",
    "BlockDecomposition",
    "HaloSchedule",
    # particles
    "ParticleArray",
    "uniform_plasma",
    "gaussian_blob",
    "two_stream",
    "ring_distribution",
    # pic
    "SequentialPIC",
    "ParallelPIC",
    "Simulation",
    "SimulationConfig",
    "SimulationResult",
    # core
    "ParticlePartitioner",
    "Redistributor",
    "StaticPolicy",
    "PeriodicPolicy",
    "DynamicSARPolicy",
    "OnlineTunedSAR",
    "CostModelPredictivePolicy",
    "ImbalanceThresholdPolicy",
    "OptimalPlannerPolicy",
    "register_policy",
    "available_policies",
    "make_policy",
    "policy_spec",
    "replay_decision",
]
