"""Index-based particle partitioning (paper §5.1).

``ParticlePartitioner`` implements the two-step distribution algorithm:

1. **Particle indexing** — each particle is assigned the index of its
   enclosing cell under the chosen space-filling curve (Hilbert by
   default).
2. **Sorting** — particles are globally sorted by index and split into
   ``p`` equal contiguous slices, one per processor.

Because the mesh is decomposed along the *same* curve
(:class:`repro.mesh.decomposition.CurveBlockDecomposition`), a close to
uniform particle distribution automatically aligns each rank's particle
subdomain with its mesh subdomain.
"""

from __future__ import annotations

import numpy as np

from repro.indexing import IndexingScheme, get_scheme
from repro.machine.virtual import VirtualMachine
from repro.mesh.decomposition import balanced_splits
from repro.mesh.grid import Grid2D
from repro.particles.arrays import ParticleArray
from repro.particles.sort import parallel_sample_sort
from repro.core.load_balance import order_maintaining_balance
from repro.util import require

__all__ = ["ParticlePartitioner"]


class ParticlePartitioner:
    """Curve-index-based distributor of a particle array over ranks.

    Parameters
    ----------
    grid:
        Mesh geometry — supplies the cell of each particle.
    scheme:
        Indexing scheme (instance or registry name).
    """

    def __init__(self, grid: Grid2D, scheme: str | IndexingScheme = "hilbert") -> None:
        self.grid = grid
        self.scheme = get_scheme(scheme)
        # Curve *position* of each cell (dense rank along the curve), so
        # particle keys are comparable to mesh-decomposition curve bounds.
        self._cell_positions = self.scheme.positions(grid.nx, grid.ny)

    # ------------------------------------------------------------------
    def particle_keys(self, particles: ParticleArray) -> np.ndarray:
        """Curve position of each particle's enclosing cell."""
        cells = self.grid.cell_id_of_positions(particles.x, particles.y)
        return self._cell_positions[cells]

    def charge_indexing(self, vm: VirtualMachine, counts: np.ndarray) -> None:
        """Charge the per-rank cost of indexing ``counts`` particles."""
        vm.charge_ops("index", np.asarray(counts, dtype=float))

    # ------------------------------------------------------------------
    def initial_partition(self, particles: ParticleArray, p: int) -> list[ParticleArray]:
        """Sequential (setup-time) distribution: sort globally, split equally.

        Used to create the t=0 assignment; runtime redistribution goes
        through :class:`repro.core.redistribution.Redistributor`.
        """
        require(p >= 1, "p must be >= 1")
        keys = self.particle_keys(particles)
        ordered = particles.sorted_by(keys)
        bounds = balanced_splits(ordered.n, p)
        return [
            ordered.take(np.arange(bounds[r], bounds[r + 1]))
            for r in range(p)
        ]

    def distribute(
        self,
        vm: VirtualMachine,
        local_particles: list[ParticleArray],
    ) -> list[ParticleArray]:
        """Full runtime distribution: index, parallel sample sort, balance.

        This is the from-scratch algorithm (paper §5.1 "Sorting"); the
        cheaper incremental path is
        :meth:`repro.core.redistribution.Redistributor.redistribute`.
        """
        require(len(local_particles) == vm.p, "need one particle set per rank")
        keys = [self.particle_keys(parts) for parts in local_particles]
        counts = np.array([parts.n for parts in local_particles], dtype=float)
        self.charge_indexing(vm, counts)
        payloads = [parts.to_matrix() for parts in local_particles]
        keys_out, payloads_out, _ = parallel_sample_sort(vm, keys, payloads)
        keys_bal, payloads_bal = order_maintaining_balance(vm, keys_out, payloads_out)
        return [ParticleArray.from_matrix(m) for m in payloads_bal]
