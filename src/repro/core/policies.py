"""Redistribution decision policies (paper §5.2).

* :class:`StaticPolicy` — never redistribute (the paper's "static"
  baseline in Figure 16).
* :class:`PeriodicPolicy` — redistribute every ``k`` iterations; needs
  the impractical pre-runtime tuning of ``k`` the paper criticizes.
* :class:`DynamicSARPolicy` — the Stop-At-Rise heuristic adapted to
  communication growth (Eq. 1): redistribute when the projected time
  saved, ``(t1 - t0) * (i1 - i0)``, exceeds the expected redistribution
  cost (taken from the previous redistribution).

Policies observe per-iteration execution times through
:meth:`RedistributionPolicy.record_iteration` and are queried with
:meth:`RedistributionPolicy.should_redistribute` after every iteration.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.util import require, require_positive

__all__ = [
    "RedistributionPolicy",
    "StaticPolicy",
    "PeriodicPolicy",
    "DynamicSARPolicy",
    "make_policy",
    "policy_spec",
    "policy_from_state",
]


class RedistributionPolicy(ABC):
    """Decides, after each iteration, whether to redistribute particles."""

    name: str = "abstract"

    @abstractmethod
    def should_redistribute(self, iteration: int) -> bool:
        """Return True to trigger redistribution after ``iteration``."""

    def record_iteration(self, iteration: int, t_iter: float) -> None:
        """Observe the execution time of ``iteration`` (seconds)."""

    def record_redistribution(self, iteration: int, cost: float) -> None:
        """Observe that a redistribution costing ``cost`` ran after ``iteration``."""

    # -- exact-resume checkpoint support --------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the policy's mutable state.

        A policy restored from this snapshot must make the same
        :meth:`should_redistribute` decisions as the uninterrupted
        instance — subclasses with internal history override this and
        :meth:`load_state`.
        """
        return {"type": type(self).__name__}

    def load_state(self, state: dict) -> None:
        """Restore mutable state from a :meth:`state_dict` snapshot."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class StaticPolicy(RedistributionPolicy):
    """Never redistribute."""

    name = "static"

    def should_redistribute(self, iteration: int) -> bool:
        return False


class PeriodicPolicy(RedistributionPolicy):
    """Redistribute every ``period`` iterations (after iterations
    ``period - 1``, ``2 * period - 1``, ...)."""

    name = "periodic"

    def __init__(self, period: int) -> None:
        require(period >= 1, f"period must be >= 1, got {period}")
        self.period = period

    def should_redistribute(self, iteration: int) -> bool:
        return (iteration + 1) % self.period == 0

    def state_dict(self) -> dict:
        return {"type": type(self).__name__, "period": self.period}

    def load_state(self, state: dict) -> None:
        period = int(state["period"])
        require(period >= 1, f"period must be >= 1, got {period}")
        self.period = period

    def __repr__(self) -> str:
        return f"PeriodicPolicy(period={self.period})"


class DynamicSARPolicy(RedistributionPolicy):
    """Stop-At-Rise policy (paper Eq. 1).

    With ``i0`` the iteration right after the last redistribution,
    ``t0`` its execution time, and ``t1`` the current iteration's time,
    trigger when ``(t1 - t0) * (i1 - i0) >= T_redistribution``.

    ``initial_cost`` seeds ``T_redistribution`` before the first
    redistribution has been measured; the simulation driver passes the
    cost of the setup distribution.
    """

    name = "dynamic"

    def __init__(self, initial_cost: float = 0.0) -> None:
        require_positive(initial_cost, "initial_cost", strict=False)
        self.redistribution_cost = float(initial_cost)
        self._i0: int | None = None
        self._t0: float | None = None
        self._t1: float | None = None
        self._i1: int | None = None

    def record_iteration(self, iteration: int, t_iter: float) -> None:
        if self._i0 is None:
            self._i0 = iteration
            self._t0 = t_iter
        self._i1 = iteration
        self._t1 = t_iter

    def should_redistribute(self, iteration: int) -> bool:
        if self._i0 is None or self._i1 is None:
            return False
        if self._i1 <= self._i0:
            return False  # need at least one iteration since the last redistribution
        rise = self._t1 - self._t0
        if rise <= 0.0:
            return False
        saved = rise * (self._i1 - self._i0)
        return saved >= self.redistribution_cost

    def record_redistribution(self, iteration: int, cost: float) -> None:
        self.redistribution_cost = float(cost)
        self._i0 = None
        self._t0 = None
        self._i1 = None
        self._t1 = None

    def state_dict(self) -> dict:
        return {
            "type": type(self).__name__,
            "redistribution_cost": self.redistribution_cost,
            "i0": self._i0,
            "t0": self._t0,
            "i1": self._i1,
            "t1": self._t1,
        }

    def load_state(self, state: dict) -> None:
        self.redistribution_cost = float(state["redistribution_cost"])
        self._i0 = None if state["i0"] is None else int(state["i0"])
        self._t0 = None if state["t0"] is None else float(state["t0"])
        self._i1 = None if state["i1"] is None else int(state["i1"])
        self._t1 = None if state["t1"] is None else float(state["t1"])

    def __repr__(self) -> str:
        return f"DynamicSARPolicy(T_redistribution={self.redistribution_cost:g})"


def make_policy(spec: str | RedistributionPolicy) -> RedistributionPolicy:
    """Build a policy from a spec string.

    Accepted forms: ``"static"``, ``"dynamic"``, ``"periodic:<k>"`` (e.g.
    ``"periodic:25"``); an existing policy instance passes through.
    """
    if isinstance(spec, RedistributionPolicy):
        return spec
    if spec == "static":
        return StaticPolicy()
    if spec == "dynamic":
        return DynamicSARPolicy()
    if spec.startswith("periodic:"):
        return PeriodicPolicy(int(spec.split(":", 1)[1]))
    raise ValueError(
        f"unknown policy spec {spec!r}; expected 'static', 'dynamic', or 'periodic:<k>'"
    )


def policy_spec(policy: str | RedistributionPolicy) -> str:
    """Canonical spec string of a policy (inverse of :func:`make_policy`)."""
    if isinstance(policy, str):
        return policy
    if isinstance(policy, StaticPolicy):
        return "static"
    if isinstance(policy, PeriodicPolicy):
        return f"periodic:{policy.period}"
    if isinstance(policy, DynamicSARPolicy):
        return "dynamic"
    return type(policy).__name__


def policy_from_state(state: dict) -> RedistributionPolicy:
    """Rebuild a policy instance from a :meth:`~RedistributionPolicy.state_dict`
    snapshot, restoring all mutable internals."""
    classes = {cls.__name__: cls for cls in (StaticPolicy, DynamicSARPolicy)}
    kind = state.get("type")
    if kind in classes:
        policy = classes[kind]()
    elif kind == PeriodicPolicy.__name__:
        policy = PeriodicPolicy(int(state["period"]))
    else:
        known = sorted([*classes, PeriodicPolicy.__name__])
        raise ValueError(f"unknown policy type {kind!r} in checkpoint; known: {known}")
    policy.load_state(state)
    return policy
