"""Redistribution decision policies (paper §5.2).

* :class:`StaticPolicy` — never redistribute (the paper's "static"
  baseline in Figure 16).
* :class:`PeriodicPolicy` — redistribute every ``k`` iterations; needs
  the impractical pre-runtime tuning of ``k`` the paper criticizes.
* :class:`DynamicSARPolicy` — the Stop-At-Rise heuristic adapted to
  communication growth (Eq. 1): redistribute when the projected time
  saved, ``(t1 - t0) * (i1 - i0)``, exceeds the expected redistribution
  cost (taken from the previous redistribution).

Policies observe per-iteration execution times through
:meth:`RedistributionPolicy.record_iteration` and are queried with
:meth:`RedistributionPolicy.should_redistribute` after every iteration.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.util import require, require_positive

__all__ = [
    "RedistributionPolicy",
    "StaticPolicy",
    "PeriodicPolicy",
    "DynamicSARPolicy",
    "make_policy",
]


class RedistributionPolicy(ABC):
    """Decides, after each iteration, whether to redistribute particles."""

    name: str = "abstract"

    @abstractmethod
    def should_redistribute(self, iteration: int) -> bool:
        """Return True to trigger redistribution after ``iteration``."""

    def record_iteration(self, iteration: int, t_iter: float) -> None:
        """Observe the execution time of ``iteration`` (seconds)."""

    def record_redistribution(self, iteration: int, cost: float) -> None:
        """Observe that a redistribution costing ``cost`` ran after ``iteration``."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class StaticPolicy(RedistributionPolicy):
    """Never redistribute."""

    name = "static"

    def should_redistribute(self, iteration: int) -> bool:
        return False


class PeriodicPolicy(RedistributionPolicy):
    """Redistribute every ``period`` iterations (after iterations
    ``period - 1``, ``2 * period - 1``, ...)."""

    name = "periodic"

    def __init__(self, period: int) -> None:
        require(period >= 1, f"period must be >= 1, got {period}")
        self.period = period

    def should_redistribute(self, iteration: int) -> bool:
        return (iteration + 1) % self.period == 0

    def __repr__(self) -> str:
        return f"PeriodicPolicy(period={self.period})"


class DynamicSARPolicy(RedistributionPolicy):
    """Stop-At-Rise policy (paper Eq. 1).

    With ``i0`` the iteration right after the last redistribution,
    ``t0`` its execution time, and ``t1`` the current iteration's time,
    trigger when ``(t1 - t0) * (i1 - i0) >= T_redistribution``.

    ``initial_cost`` seeds ``T_redistribution`` before the first
    redistribution has been measured; the simulation driver passes the
    cost of the setup distribution.
    """

    name = "dynamic"

    def __init__(self, initial_cost: float = 0.0) -> None:
        require_positive(initial_cost, "initial_cost", strict=False)
        self.redistribution_cost = float(initial_cost)
        self._i0: int | None = None
        self._t0: float | None = None
        self._t1: float | None = None
        self._i1: int | None = None

    def record_iteration(self, iteration: int, t_iter: float) -> None:
        if self._i0 is None:
            self._i0 = iteration
            self._t0 = t_iter
        self._i1 = iteration
        self._t1 = t_iter

    def should_redistribute(self, iteration: int) -> bool:
        if self._i0 is None or self._i1 is None:
            return False
        if self._i1 <= self._i0:
            return False  # need at least one iteration since the last redistribution
        rise = self._t1 - self._t0
        if rise <= 0.0:
            return False
        saved = rise * (self._i1 - self._i0)
        return saved >= self.redistribution_cost

    def record_redistribution(self, iteration: int, cost: float) -> None:
        self.redistribution_cost = float(cost)
        self._i0 = None
        self._t0 = None
        self._i1 = None
        self._t1 = None

    def __repr__(self) -> str:
        return f"DynamicSARPolicy(T_redistribution={self.redistribution_cost:g})"


def make_policy(spec: str | RedistributionPolicy) -> RedistributionPolicy:
    """Build a policy from a spec string.

    Accepted forms: ``"static"``, ``"dynamic"``, ``"periodic:<k>"`` (e.g.
    ``"periodic:25"``); an existing policy instance passes through.
    """
    if isinstance(spec, RedistributionPolicy):
        return spec
    if spec == "static":
        return StaticPolicy()
    if spec == "dynamic":
        return DynamicSARPolicy()
    if spec.startswith("periodic:"):
        return PeriodicPolicy(int(spec.split(":", 1)[1]))
    raise ValueError(
        f"unknown policy spec {spec!r}; expected 'static', 'dynamic', or 'periodic:<k>'"
    )
