"""Redistribution decision policies (paper §5.2).

* :class:`StaticPolicy` — never redistribute (the paper's "static"
  baseline in Figure 16).
* :class:`PeriodicPolicy` — redistribute every ``k`` iterations; needs
  the impractical pre-runtime tuning of ``k`` the paper criticizes.
* :class:`DynamicSARPolicy` — the Stop-At-Rise heuristic adapted to
  communication growth (Eq. 1): redistribute when the projected time
  saved, ``(t1 - t0) * (i1 - i0)``, exceeds the expected redistribution
  cost (taken from the previous redistribution).

Policies observe per-iteration execution times through
:meth:`RedistributionPolicy.record_iteration` and are queried with
:meth:`RedistributionPolicy.should_redistribute` after every iteration.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.util import require, require_positive

__all__ = [
    "RedistributionPolicy",
    "StaticPolicy",
    "PeriodicPolicy",
    "DynamicSARPolicy",
    "make_policy",
    "policy_spec",
    "policy_from_state",
]


class RedistributionPolicy(ABC):
    """Decides, after each iteration, whether to redistribute particles."""

    name: str = "abstract"

    #: Optional telemetry sink: a callable receiving one dict per
    #: :meth:`should_redistribute` evaluation (the decision inputs and
    #: the verdict).  ``None`` (the default) keeps the decision path on
    #: a single dormant branch — policies never pay for telemetry that
    #: is not attached.  The sink is transient observer state: it is
    #: *not* serialized by :meth:`state_dict` and must be re-wired after
    #: a checkpoint restore.
    decision_sink = None

    @abstractmethod
    def should_redistribute(self, iteration: int) -> bool:
        """Return True to trigger redistribution after ``iteration``."""

    def record_iteration(self, iteration: int, t_iter: float) -> None:
        """Observe the execution time of ``iteration`` (seconds)."""

    def record_redistribution(self, iteration: int, cost: float) -> None:
        """Observe that a redistribution costing ``cost`` ran after ``iteration``."""

    # -- exact-resume checkpoint support --------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the policy's mutable state.

        A policy restored from this snapshot must make the same
        :meth:`should_redistribute` decisions as the uninterrupted
        instance — subclasses with internal history override this and
        :meth:`load_state`.
        """
        return {"type": type(self).__name__}

    def load_state(self, state: dict) -> None:
        """Restore mutable state from a :meth:`state_dict` snapshot."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class StaticPolicy(RedistributionPolicy):
    """Never redistribute."""

    name = "static"

    def should_redistribute(self, iteration: int) -> bool:
        return False


class PeriodicPolicy(RedistributionPolicy):
    """Redistribute every ``period`` iterations (after iterations
    ``period - 1``, ``2 * period - 1``, ...)."""

    name = "periodic"

    def __init__(self, period: int) -> None:
        require(period >= 1, f"period must be >= 1, got {period}")
        self.period = period

    def should_redistribute(self, iteration: int) -> bool:
        fired = (iteration + 1) % self.period == 0
        if self.decision_sink is not None:
            self.decision_sink(
                {
                    "policy": self.name,
                    "iteration": iteration,
                    "period": self.period,
                    "fired": fired,
                }
            )
        return fired

    def state_dict(self) -> dict:
        return {"type": type(self).__name__, "period": self.period}

    def load_state(self, state: dict) -> None:
        period = int(state["period"])
        require(period >= 1, f"period must be >= 1, got {period}")
        self.period = period

    def __repr__(self) -> str:
        return f"PeriodicPolicy(period={self.period})"


class DynamicSARPolicy(RedistributionPolicy):
    """Stop-At-Rise policy (paper Eq. 1).

    With ``i0`` the iteration right after the last redistribution,
    ``t0`` its execution time, and ``t1`` the current iteration's time,
    trigger when ``(t1 - t0) * (i1 - i0) >= T_redistribution``.

    ``initial_cost`` seeds ``T_redistribution`` before the first
    redistribution has been measured; the simulation driver passes the
    cost of the setup distribution.
    """

    name = "dynamic"

    def __init__(self, initial_cost: float = 0.0) -> None:
        require_positive(initial_cost, "initial_cost", strict=False)
        self.redistribution_cost = float(initial_cost)
        self._i0: int | None = None
        self._t0: float | None = None
        self._t1: float | None = None
        self._i1: int | None = None

    def record_iteration(self, iteration: int, t_iter: float) -> None:
        if self._i0 is None:
            self._i0 = iteration
            self._t0 = t_iter
        self._i1 = iteration
        self._t1 = t_iter

    def should_redistribute(self, iteration: int) -> bool:
        fired = False
        rise: float | None = None
        saved: float | None = None
        window: int | None = None
        if self._i0 is None or self._i1 is None:
            reason = "no iteration observed since the last redistribution"
        elif self._i1 <= self._i0:
            reason = "window too short: need an iteration after i0"
        else:
            rise = self._t1 - self._t0
            window = self._i1 - self._i0
            if rise <= 0.0:
                reason = "iteration time has not risen"
            else:
                saved = rise * window
                fired = saved >= self.redistribution_cost
                reason = None
        if self.decision_sink is not None:
            # One record per evaluation, carrying every Eq. 1 input so a
            # reader can replay `(t1 - t0)(i1 - i0) >= T_redistribution`
            # and reproduce the verdict exactly.
            self.decision_sink(
                {
                    "policy": self.name,
                    "iteration": iteration,
                    "i0": self._i0,
                    "i1": self._i1,
                    "t0": self._t0,
                    "t1": self._t1,
                    "rise": rise,
                    "window": window,
                    "projected_saving": saved,
                    "threshold": self.redistribution_cost,
                    "fired": fired,
                    "reason": reason,
                }
            )
        return fired

    def record_redistribution(self, iteration: int, cost: float) -> None:
        self.redistribution_cost = float(cost)
        self._i0 = None
        self._t0 = None
        self._i1 = None
        self._t1 = None

    def state_dict(self) -> dict:
        return {
            "type": type(self).__name__,
            "redistribution_cost": self.redistribution_cost,
            "i0": self._i0,
            "t0": self._t0,
            "i1": self._i1,
            "t1": self._t1,
        }

    def load_state(self, state: dict) -> None:
        self.redistribution_cost = float(state["redistribution_cost"])
        self._i0 = None if state["i0"] is None else int(state["i0"])
        self._t0 = None if state["t0"] is None else float(state["t0"])
        self._i1 = None if state["i1"] is None else int(state["i1"])
        self._t1 = None if state["t1"] is None else float(state["t1"])

    def __repr__(self) -> str:
        return f"DynamicSARPolicy(T_redistribution={self.redistribution_cost:g})"


def make_policy(spec: str | RedistributionPolicy) -> RedistributionPolicy:
    """Build a policy from a spec string.

    Accepted forms: ``"static"``, ``"dynamic"``, ``"periodic:<k>"`` (e.g.
    ``"periodic:25"``); an existing policy instance passes through.
    """
    if isinstance(spec, RedistributionPolicy):
        return spec
    if spec == "static":
        return StaticPolicy()
    if spec == "dynamic":
        return DynamicSARPolicy()
    if spec.startswith("periodic:"):
        return PeriodicPolicy(int(spec.split(":", 1)[1]))
    raise ValueError(
        f"unknown policy spec {spec!r}; expected 'static', 'dynamic', or 'periodic:<k>'"
    )


def policy_spec(policy: str | RedistributionPolicy) -> str:
    """Canonical spec string of a policy (inverse of :func:`make_policy`)."""
    if isinstance(policy, str):
        return policy
    if isinstance(policy, StaticPolicy):
        return "static"
    if isinstance(policy, PeriodicPolicy):
        return f"periodic:{policy.period}"
    if isinstance(policy, DynamicSARPolicy):
        return "dynamic"
    return type(policy).__name__


def policy_from_state(state: dict) -> RedistributionPolicy:
    """Rebuild a policy instance from a :meth:`~RedistributionPolicy.state_dict`
    snapshot, restoring all mutable internals."""
    classes = {cls.__name__: cls for cls in (StaticPolicy, DynamicSARPolicy)}
    kind = state.get("type")
    if kind in classes:
        policy = classes[kind]()
    elif kind == PeriodicPolicy.__name__:
        policy = PeriodicPolicy(int(state["period"]))
    else:
        known = sorted([*classes, PeriodicPolicy.__name__])
        raise ValueError(f"unknown policy type {kind!r} in checkpoint; known: {known}")
    policy.load_state(state)
    return policy
