"""Alignment metrics between particle and mesh subdomains (paper Fig. 5).

Under independent partitioning each rank holds a particle subdomain
(the region spanned by its particles) and a mesh subdomain (its owned
cells).  Communication in the scatter/gather phases is proportional to
how far the particle subdomain sticks out of the mesh subdomain, so
these metrics quantify distribution quality:

* :func:`bounding_box_area` — compactness of a rank's particles;
* :func:`subdomain_overlap_fraction` — how much of a rank's particle
  mass lies on its own cells;
* :func:`partner_counts` — how many other ranks each rank must talk to
  in the scatter phase (message-count driver, paper Figure 19);
* :func:`ghost_node_counts` — unique off-rank vertex nodes per rank
  (data-volume driver, paper Figure 18).
"""

from __future__ import annotations

import numpy as np

from repro.mesh.decomposition import MeshDecomposition
from repro.mesh.grid import Grid2D
from repro.particles.arrays import ParticleArray

__all__ = [
    "bounding_box_area",
    "subdomain_overlap_fraction",
    "partner_counts",
    "ghost_node_counts",
]


def bounding_box_area(particles: ParticleArray, grid: Grid2D) -> float:
    """Area of the axis-aligned bounding box of the particles.

    Returns 0 for empty sets.  Compact (Hilbert-ordered) subdomains have
    area close to ``n / density``; snake-ordered strips and drifted
    Lagrangian subdomains blow up.
    """
    if particles.n == 0:
        return 0.0
    x, y = grid.wrap_positions(particles.x, particles.y)
    return float((x.max() - x.min()) * (y.max() - y.min()))


def subdomain_overlap_fraction(
    particles: ParticleArray, rank: int, grid: Grid2D, decomp: MeshDecomposition
) -> float:
    """Fraction of a rank's particles whose cell the rank itself owns.

    1.0 means perfect alignment (no scatter/gather communication);
    empty particle sets report 1.0.
    """
    if particles.n == 0:
        return 1.0
    cells = grid.cell_id_of_positions(particles.x, particles.y)
    owners = decomp.owner_of_cells(cells)
    return float((owners == rank).mean())


def _offrank_vertex_owners(
    particles: ParticleArray, rank: int, grid: Grid2D, decomp: MeshDecomposition
) -> tuple[np.ndarray, np.ndarray]:
    """(off-rank vertex node ids, their owners) for one rank's particles."""
    if particles.n == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    nodes, _ = grid.cic_vertices_weights(particles.x, particles.y)
    flat = nodes.ravel()
    owners = decomp.owner_of_nodes(flat)
    off = owners != rank
    return flat[off], owners[off]


def partner_counts(
    local_particles: list[ParticleArray], grid: Grid2D, decomp: MeshDecomposition
) -> np.ndarray:
    """Number of distinct ranks each rank sends scatter messages to."""
    out = np.zeros(len(local_particles), dtype=np.int64)
    for rank, parts in enumerate(local_particles):
        _, owners = _offrank_vertex_owners(parts, rank, grid, decomp)
        out[rank] = np.unique(owners).size
    return out


def ghost_node_counts(
    local_particles: list[ParticleArray], grid: Grid2D, decomp: MeshDecomposition
) -> np.ndarray:
    """Unique off-rank vertex nodes (ghost grid points) per rank."""
    out = np.zeros(len(local_particles), dtype=np.int64)
    for rank, parts in enumerate(local_particles):
        nodes, _ = _offrank_vertex_owners(parts, rank, grid, decomp)
        out[rank] = np.unique(nodes).size
    return out
