"""Runtime particle redistribution driver (paper Figure 12, top level).

``Particle_Redistribution`` in the paper is: Hilbert-base indexing →
bucket incremental sorting → order-maintaining load balance → rebuild
bucket boundaries.  :class:`Redistributor` packages that pipeline,
carries the per-rank :class:`~repro.core.incremental_sort.BucketState`
between epochs, and measures each redistribution's virtual cost (the
``T_redistribution`` the dynamic policy trades against).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.incremental_sort import (
    BucketState,
    IncrementalSortStats,
    bucket_incremental_sort,
)
from repro.core.load_balance import order_maintaining_balance
from repro.core.partitioner import ParticlePartitioner
from repro.machine.virtual import VirtualMachine
from repro.particles.arrays import ParticleArray
from repro.util import require

__all__ = ["Redistributor", "RedistributionResult"]


@dataclass
class RedistributionResult:
    """Outcome of one redistribution epoch."""

    particles: list[ParticleArray]  #: new per-rank particle sets
    cost: float  #: virtual seconds spent (compute + communication)
    stats: IncrementalSortStats  #: classification tallies (incremental path)


class Redistributor:
    """Maintains sorted order and rebalances particles across ranks.

    Parameters
    ----------
    partitioner:
        Supplies particle keys (cell curve positions).
    nbuckets:
        ``L`` buckets per rank for the incremental sort (paper Fig 12).
    classifier:
        Optional classification hook forwarded to
        :func:`bucket_incremental_sort` (the multicore backend's chunked
        workers); bit-identical results either way.
    """

    def __init__(
        self,
        partitioner: ParticlePartitioner,
        *,
        nbuckets: int = 16,
        classifier=None,
    ) -> None:
        require(nbuckets >= 1, "nbuckets must be >= 1")
        self.partitioner = partitioner
        self.nbuckets = nbuckets
        self.classifier = classifier
        self._states: list[BucketState] | None = None

    # ------------------------------------------------------------------
    def initialize(self, vm: VirtualMachine, local_particles: list[ParticleArray]) -> RedistributionResult:
        """Set up epoch 0 with the from-scratch distribution algorithm.

        Runs the full index + parallel sample sort + balance pipeline on
        ``vm`` (charged under phase ``"redistribution"``) and installs
        the bucket states.  The measured cost seeds the dynamic policy's
        ``T_redistribution`` estimate.
        """
        t0 = vm.elapsed()
        with vm.phase("redistribution"):
            particles = self.partitioner.distribute(vm, local_particles)
            self._install_states(particles)
        return RedistributionResult(particles, vm.elapsed() - t0, IncrementalSortStats())

    def _install_states(self, particles: list[ParticleArray]) -> None:
        states = []
        for parts in particles:
            keys = self.partitioner.particle_keys(parts)
            if keys.size > 1 and np.any(np.diff(keys) < 0):  # pragma: no cover - invariant
                raise AssertionError("distribution must produce key-sorted ranks")
            states.append(BucketState.build(keys, parts.to_matrix(), self.nbuckets))
        self._states = states

    # ------------------------------------------------------------------
    def redistribute(self, vm: VirtualMachine, local_particles: list[ParticleArray]) -> RedistributionResult:
        """Incremental redistribution of the current particle sets.

        ``local_particles`` must be the same sets (same order) produced
        by the previous epoch — their rows correspond to the stored
        bucket states; only the *positions* (hence keys) have changed.
        """
        require(self._states is not None, "initialize() must run before redistribute()")
        states = self._states
        require(len(local_particles) == vm.p, "need one particle set per rank")
        t0 = vm.elapsed()
        with vm.phase("redistribution"):
            new_keys = []
            counts = np.zeros(vm.p)
            for r, parts in enumerate(local_particles):
                require(
                    parts.n == states[r].n,
                    f"rank {r}: particle count changed outside redistribution",
                )
                # Refresh the payload matrix: positions/momenta moved.
                states[r].payload = parts.to_matrix()
                new_keys.append(self.partitioner.particle_keys(parts))
                counts[r] = parts.n
            self.partitioner.charge_indexing(vm, counts)
            keys_out, payloads_out, stats = bucket_incremental_sort(
                vm, states, new_keys, classifier=self.classifier
            )
            keys_bal, payloads_bal = order_maintaining_balance(vm, keys_out, payloads_out)
            particles = [ParticleArray.from_matrix(mat) for mat in payloads_bal]
            self._states = [
                BucketState.build(keys_bal[r], payloads_bal[r], self.nbuckets)
                for r in range(vm.p)
            ]
        return RedistributionResult(particles, vm.elapsed() - t0, stats)

    # ------------------------------------------------------------------
    # exact-resume checkpoint support
    # ------------------------------------------------------------------
    def export_keys(self) -> list[np.ndarray] | None:
        """Per-rank build-time sort keys of the current bucket states.

        These are the keys as of the last (re)distribution epoch — they
        cannot be recomputed from current particle positions (the
        particles have moved since), so checkpoints must carry them for
        a resumed run's incremental sort to classify identically.
        Returns ``None`` before :meth:`initialize`.
        """
        if self._states is None:
            return None
        return [state.keys.copy() for state in self._states]

    def restore_keys(
        self, keys: list[np.ndarray], local_particles: list[ParticleArray]
    ) -> None:
        """Rebuild the bucket states from checkpointed build-time keys.

        ``local_particles`` are the restored per-rank sets; their rows
        are in the same order as at the epoch that produced ``keys``
        (redistribution is the only thing that reorders a rank, and it
        rebuilds the states).  Bucket offsets and key ranges are derived
        from the keys exactly as :meth:`BucketState.build` did
        originally, so classification decisions are bit-identical.
        """
        require(len(keys) == len(local_particles), "need one key array per rank")
        states = []
        for rank_keys, parts in zip(keys, local_particles):
            rank_keys = np.asarray(rank_keys)
            require(
                rank_keys.shape[0] == parts.n,
                f"restored keys ({rank_keys.shape[0]}) and particles ({parts.n}) disagree",
            )
            states.append(BucketState.build(rank_keys, parts.to_matrix(), self.nbuckets))
        self._states = states

    def full_redistribute(self, vm: VirtualMachine, local_particles: list[ParticleArray]) -> RedistributionResult:
        """From-scratch redistribution (sample sort), for comparison runs."""
        t0 = vm.elapsed()
        with vm.phase("redistribution"):
            particles = self.partitioner.distribute(vm, local_particles)
            self._install_states(particles)
        return RedistributionResult(particles, vm.elapsed() - t0, IncrementalSortStats())
