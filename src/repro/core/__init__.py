"""The paper's contribution: dynamic alignment and distribution of the
irregularly coupled particle and mesh arrays.

* :mod:`repro.core.partitioner` — Hilbert (or any curve) index-based
  particle distribution: index, sort, split equally (paper §5.1).
* :mod:`repro.core.incremental_sort` — bucket-based incremental sorting
  that reuses the previous epoch's order (paper Figure 12).
* :mod:`repro.core.load_balance` — order-maintaining load balance.
* :mod:`repro.core.policies` — static / periodic / dynamic (SAR, Eq. 1)
  redistribution decision policies (paper §5.2).
* :mod:`repro.core.redistribution` — the full redistribution driver.
* :mod:`repro.core.alignment` — particle/mesh subdomain overlap metrics
  (paper Figure 5).
* :mod:`repro.core.metrics` — load-imbalance and overhead accounting.
"""

from repro.core.alignment import (
    bounding_box_area,
    partner_counts,
    subdomain_overlap_fraction,
)
from repro.core.incremental_sort import BucketState, bucket_incremental_sort
from repro.core.load_balance import order_maintaining_balance
from repro.core.metrics import load_imbalance, particle_counts
from repro.core.partitioner import ParticlePartitioner
from repro.core.policies import (
    CostModelPredictivePolicy,
    DynamicSARPolicy,
    ImbalanceThresholdPolicy,
    OnlineTunedSAR,
    OptimalPlannerPolicy,
    PeriodicPolicy,
    RedistributionPolicy,
    StaticPolicy,
    available_policies,
    make_policy,
    policy_spec,
    register_policy,
    replay_decision,
)
from repro.core.redistribution import Redistributor

__all__ = [
    "ParticlePartitioner",
    "BucketState",
    "bucket_incremental_sort",
    "order_maintaining_balance",
    "RedistributionPolicy",
    "StaticPolicy",
    "PeriodicPolicy",
    "DynamicSARPolicy",
    "OnlineTunedSAR",
    "CostModelPredictivePolicy",
    "ImbalanceThresholdPolicy",
    "OptimalPlannerPolicy",
    "register_policy",
    "available_policies",
    "make_policy",
    "policy_spec",
    "replay_decision",
    "Redistributor",
    "bounding_box_area",
    "subdomain_overlap_fraction",
    "partner_counts",
    "load_imbalance",
    "particle_counts",
]
