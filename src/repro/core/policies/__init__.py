"""Redistribution policies (paper §5.2) and the policy-spec registry.

Importing this package registers the full zoo: the paper's three
classic policies (:mod:`repro.core.policies.classic`) and the extended
alternatives (:mod:`repro.core.policies.zoo`).  Third-party policies
join the same machinery by subclassing :class:`RedistributionPolicy`
and decorating with :func:`register_policy` — after which
:func:`make_policy`, :func:`policy_spec`, :func:`policy_from_state`,
and :func:`replay_decision` all handle them with no further wiring.
"""

from repro.core.policies.base import Param, REQUIRED, RedistributionPolicy
from repro.core.policies.registry import (
    available_policies,
    make_policy,
    policy_entry,
    policy_from_state,
    policy_spec,
    register_policy,
    replay_decision,
)
from repro.core.policies.classic import (
    DynamicSARPolicy,
    PeriodicPolicy,
    StaticPolicy,
)
from repro.core.policies.zoo import (
    CostModelPredictivePolicy,
    ImbalanceThresholdPolicy,
    OnlineTunedSAR,
    OptimalPlannerPolicy,
)

__all__ = [
    "RedistributionPolicy",
    "Param",
    "REQUIRED",
    "StaticPolicy",
    "PeriodicPolicy",
    "DynamicSARPolicy",
    "OnlineTunedSAR",
    "CostModelPredictivePolicy",
    "ImbalanceThresholdPolicy",
    "OptimalPlannerPolicy",
    "register_policy",
    "available_policies",
    "policy_entry",
    "make_policy",
    "policy_spec",
    "policy_from_state",
    "replay_decision",
]
