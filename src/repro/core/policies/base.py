"""Base class and spec-parameter model of the redistribution-policy zoo.

A :class:`RedistributionPolicy` decides, after each iteration, whether
the driver should redistribute particles.  Policies observe the run
through three feeds — per-iteration execution times
(:meth:`~RedistributionPolicy.record_iteration`), per-rank particle
counts (:meth:`~RedistributionPolicy.record_load`, only called when the
policy sets ``needs_load``), and measured redistribution costs
(:meth:`~RedistributionPolicy.record_redistribution`) — and are queried
with :meth:`~RedistributionPolicy.should_redistribute` after every
iteration.

Every concrete policy lives in the spec registry
(:mod:`repro.core.policies.registry`): its :attr:`PARAMS` table defines
the ``name:key=value,...`` spec grammar, its :meth:`state_dict` /
:meth:`load_state` pair defines exact-resume checkpointing, and its
:meth:`replay` classmethod re-derives a decision record's verdict from
the record's own inputs (the replayability contract of DESIGN.md §5.6).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable

__all__ = ["Param", "REQUIRED", "RedistributionPolicy"]

#: Sentinel default for spec parameters that must be given explicitly.
REQUIRED = object()


def _default_fmt(value) -> str:
    """Render a parameter value into spec-string form (round-trippable)."""
    if isinstance(value, float):
        return repr(value)
    return str(value)


@dataclass(frozen=True)
class Param:
    """One entry of a policy's :attr:`RedistributionPolicy.PARAMS` table.

    Parameters
    ----------
    convert:
        Callable turning a spec-string token (or an already-typed value
        from a ``state_dict``) into the parameter's type.
    default:
        Value used when the spec omits the parameter; :data:`REQUIRED`
        makes the parameter mandatory.
    fmt:
        Value-to-string renderer for canonical specs.
    help:
        One-line description for ``repro policies``.
    """

    convert: Callable
    default: object = REQUIRED
    fmt: Callable = field(default=_default_fmt)
    help: str = ""

    @property
    def required(self) -> bool:
        return self.default is REQUIRED


class RedistributionPolicy(ABC):
    """Decides, after each iteration, whether to redistribute particles."""

    #: Registry/spec name (set by concrete classes).
    name: str = "abstract"

    #: Declarative spec parameters: ``{constructor kwarg: Param}``.  The
    #: registry derives parsing (``make_policy``), canonical rendering
    #: (``policy_spec``), and default construction (``policy_from_state``)
    #: from this table.
    PARAMS: dict[str, Param] = {}

    #: Name of the parameter accepted positionally (``periodic:25``);
    #: ``None`` means key=value form only.
    POSITIONAL: str | None = None

    #: Whether the driver should feed per-rank particle counts through
    #: :meth:`record_load` every iteration.  ``False`` keeps the hot
    #: loop free of per-iteration count gathering for policies that
    #: never look at it.
    needs_load: bool = False

    #: Optional telemetry sink: a callable receiving one dict per
    #: :meth:`should_redistribute` evaluation (the decision inputs and
    #: the verdict).  ``None`` (the default) keeps the decision path on
    #: a single dormant branch — policies never pay for telemetry that
    #: is not attached.  The sink is transient observer state: it is
    #: *not* serialized by :meth:`state_dict` and must be re-wired after
    #: a checkpoint restore.
    decision_sink = None

    @abstractmethod
    def should_redistribute(self, iteration: int) -> bool:
        """Return True to trigger redistribution after ``iteration``."""

    def record_iteration(self, iteration: int, t_iter: float) -> None:
        """Observe the execution time of ``iteration`` (seconds)."""

    def record_load(self, iteration: int, counts: list[int]) -> None:
        """Observe per-rank particle counts (only if ``needs_load``)."""

    def record_redistribution(self, iteration: int, cost: float) -> None:
        """Observe that a redistribution costing ``cost`` ran after ``iteration``."""

    def bind(self, vm) -> None:
        """Attach the policy to the machine it will advise.

        Called by the driver at construction and again after checkpoint
        restore or rank-failure recovery (the machine may have shrunk).
        Whatever a policy keeps from here is transient environment — it
        must not enter :meth:`state_dict`, and decisions must replay
        identically from the emitted records alone.
        """

    # -- decision telemetry ---------------------------------------------
    def _emit(self, record: dict) -> None:
        """Send one decision record to the sink (dormant when unset)."""
        if self.decision_sink is not None:
            self.decision_sink(record)

    @classmethod
    def replay(cls, record: dict) -> bool:
        """Re-derive the fire/skip verdict from a decision record.

        Must depend only on the record's own fields (never on live
        policy state), so any logged decision can be audited offline.
        """
        raise NotImplementedError(f"{cls.__name__} does not define replay()")

    # -- exact-resume checkpoint support --------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable snapshot of the policy's mutable state.

        A policy restored from this snapshot must make the same
        :meth:`should_redistribute` decisions as the uninterrupted
        instance — subclasses with internal history override this and
        :meth:`load_state`.
        """
        return {"type": type(self).__name__}

    def load_state(self, state: dict) -> None:
        """Restore mutable state from a :meth:`state_dict` snapshot."""

    @classmethod
    def from_state(cls, state: dict) -> "RedistributionPolicy":
        """Instantiate from a :meth:`state_dict` snapshot.

        The default implementation constructs the policy from its
        :attr:`PARAMS` defaults — pulling required parameters out of the
        snapshot — and then applies :meth:`load_state`.
        """
        kwargs = {}
        for pname, param in cls.PARAMS.items():
            if pname in state:
                kwargs[pname] = param.convert(state[pname])
            elif param.required:
                raise ValueError(
                    f"policy state for {cls.__name__} is missing required "
                    f"parameter {pname!r}"
                )
        policy = cls(**kwargs)
        policy.load_state(state)
        return policy

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"
