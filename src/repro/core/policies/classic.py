"""The paper's three redistribution policies (§5.2).

* :class:`StaticPolicy` — never redistribute (the paper's "static"
  baseline in Figure 16).
* :class:`PeriodicPolicy` — redistribute every ``k`` iterations; needs
  the impractical pre-runtime tuning of ``k`` the paper criticizes.
* :class:`DynamicSARPolicy` — the Stop-At-Rise heuristic adapted to
  communication growth (Eq. 1): redistribute when the projected time
  saved, ``(t1 - t0) * (i1 - i0)``, exceeds the expected redistribution
  cost (taken from the previous redistribution).
"""

from __future__ import annotations

from repro.core.policies.base import Param, RedistributionPolicy
from repro.core.policies.registry import register_policy
from repro.util import require, require_positive

__all__ = ["StaticPolicy", "PeriodicPolicy", "DynamicSARPolicy"]


@register_policy
class StaticPolicy(RedistributionPolicy):
    """Never redistribute."""

    name = "static"

    def should_redistribute(self, iteration: int) -> bool:
        self._emit({"policy": self.name, "iteration": iteration, "fired": False})
        return False

    @classmethod
    def replay(cls, record: dict) -> bool:
        return False


@register_policy
class PeriodicPolicy(RedistributionPolicy):
    """Redistribute every ``period`` iterations (after iterations
    ``period - 1``, ``2 * period - 1``, ...)."""

    name = "periodic"
    PARAMS = {
        "period": Param(int, help="redistribute after every <period> iterations"),
    }
    POSITIONAL = "period"

    def __init__(self, period: int) -> None:
        require(period >= 1, f"period must be >= 1, got {period}")
        self.period = period

    def should_redistribute(self, iteration: int) -> bool:
        fired = (iteration + 1) % self.period == 0
        self._emit(
            {
                "policy": self.name,
                "iteration": iteration,
                "period": self.period,
                "fired": fired,
            }
        )
        return fired

    @classmethod
    def replay(cls, record: dict) -> bool:
        return (record["iteration"] + 1) % record["period"] == 0

    def state_dict(self) -> dict:
        return {"type": type(self).__name__, "period": self.period}

    def load_state(self, state: dict) -> None:
        period = int(state["period"])
        require(period >= 1, f"period must be >= 1, got {period}")
        self.period = period

    def __repr__(self) -> str:
        return f"PeriodicPolicy(period={self.period})"


@register_policy
class DynamicSARPolicy(RedistributionPolicy):
    """Stop-At-Rise policy (paper Eq. 1).

    With ``(i0, t0)`` the *fastest* iteration observed since the last
    redistribution and ``(i1, t1)`` the current one, trigger when
    ``(t1 - t0) * (i1 - i0) >= T_redistribution``.

    The window anchor is the minimum, not simply the first post-
    redistribution iteration: the paper's ``t0`` is the balanced
    execution time, and an anomalously slow first iteration (a
    checkpoint write, a recovery, a fault slowdown) would otherwise
    understate — or permanently negate — the rise and suppress the
    trigger for the rest of the run.

    ``initial_cost`` seeds ``T_redistribution`` before the first
    redistribution has been measured; the simulation driver passes the
    cost of the setup distribution.
    """

    name = "dynamic"

    def __init__(self, initial_cost: float = 0.0) -> None:
        require_positive(initial_cost, "initial_cost", strict=False)
        self.redistribution_cost = float(initial_cost)
        self._i0: int | None = None
        self._t0: float | None = None
        self._t1: float | None = None
        self._i1: int | None = None

    def record_iteration(self, iteration: int, t_iter: float) -> None:
        if self._t0 is None or t_iter < self._t0:
            self._i0 = iteration
            self._t0 = t_iter
        self._i1 = iteration
        self._t1 = t_iter

    def should_redistribute(self, iteration: int) -> bool:
        fired = False
        rise: float | None = None
        saved: float | None = None
        window: int | None = None
        if self._i0 is None or self._i1 is None:
            reason = "no iteration observed since the last redistribution"
        elif self._i1 <= self._i0:
            reason = "window too short: need an iteration after i0"
        else:
            rise = self._t1 - self._t0
            window = self._i1 - self._i0
            if rise <= 0.0:
                reason = "iteration time has not risen"
            else:
                saved = rise * window
                fired = saved >= self.redistribution_cost
                reason = None
        # One record per evaluation, carrying every Eq. 1 input so a
        # reader can replay `(t1 - t0)(i1 - i0) >= T_redistribution`
        # and reproduce the verdict exactly.
        self._emit(
            {
                "policy": self.name,
                "iteration": iteration,
                "i0": self._i0,
                "i1": self._i1,
                "t0": self._t0,
                "t1": self._t1,
                "rise": rise,
                "window": window,
                "projected_saving": saved,
                "threshold": self.redistribution_cost,
                "fired": fired,
                "reason": reason,
            }
        )
        return fired

    @classmethod
    def replay(cls, record: dict) -> bool:
        if record.get("reason") is not None:
            return False
        return record["projected_saving"] >= record["threshold"]

    def record_redistribution(self, iteration: int, cost: float) -> None:
        self.redistribution_cost = float(cost)
        self._i0 = None
        self._t0 = None
        self._i1 = None
        self._t1 = None

    def state_dict(self) -> dict:
        return {
            "type": type(self).__name__,
            "redistribution_cost": self.redistribution_cost,
            "i0": self._i0,
            "t0": self._t0,
            "i1": self._i1,
            "t1": self._t1,
        }

    def load_state(self, state: dict) -> None:
        self.redistribution_cost = float(state["redistribution_cost"])
        self._i0 = None if state["i0"] is None else int(state["i0"])
        self._t0 = None if state["t0"] is None else float(state["t0"])
        self._i1 = None if state["i1"] is None else int(state["i1"])
        self._t1 = None if state["t1"] is None else float(state["t1"])

    def __repr__(self) -> str:
        return f"DynamicSARPolicy(T_redistribution={self.redistribution_cost:g})"
