"""The extended redistribution-policy zoo (beyond the paper's three).

The paper's Stop-At-Rise rule is one point in a large policy space;
Sauget & Latu (2011) and Miller et al. (2020) both show the winning
rebalancing strategy is workload-dependent.  This module adds the
competitive alternatives the bench matrix (``repro bench policy``)
judges per workload class:

* :class:`OnlineTunedSAR` (``sar-ewma``) — Stop-At-Rise with
  ``T_redistribution`` adapted from *all* observed redistribution costs
  through an exponentially weighted moving average, instead of trusting
  the single most recent sample.
* :class:`CostModelPredictivePolicy` (``costmodel``) — fires when the
  §4 machine model projects a net reduction of ``vm.elapsed()`` over a
  lookahead horizon: staying unbalanced costs ``rise`` extra seconds on
  each of the next ``horizon`` iterations, rebalancing costs the
  EWMA-smoothed measured redistribution time (floored by the model's
  communication lower bound).
* :class:`ImbalanceThresholdPolicy` (``imbalance``) — fires on the
  observed max/mean particle-count imbalance crossing a threshold, with
  hysteresis so a marginal rebalance cannot oscillate.
* :class:`OptimalPlannerPolicy` (``planner``) — fits the measured
  degradation rate, then picks the next redistribution iteration by
  minimizing the projected per-iteration overhead ``C/n + a(n-1)/2``
  with ``scipy.optimize`` (closed form ``sqrt(2C/a)`` when scipy is
  unavailable).

Every policy emits one replayable decision record per evaluation and
round-trips through the spec registry and ``state_dict`` like the
classic three.
"""

from __future__ import annotations

from repro.core.policies.base import Param, RedistributionPolicy
from repro.core.policies.classic import DynamicSARPolicy
from repro.core.policies.registry import register_policy
from repro.util import require

__all__ = [
    "OnlineTunedSAR",
    "CostModelPredictivePolicy",
    "ImbalanceThresholdPolicy",
    "OptimalPlannerPolicy",
]


class _EwmaCost:
    """Shared EWMA smoothing of measured redistribution costs.

    ``self.redistribution_cost`` holds the smoothed estimate; the first
    observation seeds it directly so an arbitrary constructor default
    never dilutes real measurements.
    """

    def _init_ewma(self, alpha: float) -> None:
        require(0.0 < alpha <= 1.0, f"alpha must be in (0, 1], got {alpha}")
        self.alpha = float(alpha)
        self._cost_seeded = False

    def _blend_cost(self, cost: float) -> float:
        if not self._cost_seeded:
            self._cost_seeded = True
            return float(cost)
        return self.alpha * float(cost) + (1.0 - self.alpha) * self.redistribution_cost

    def _ewma_state(self) -> dict:
        return {"alpha": self.alpha, "cost_seeded": self._cost_seeded}

    def _load_ewma(self, state: dict) -> None:
        self.alpha = float(state["alpha"])
        self._cost_seeded = bool(state["cost_seeded"])


@register_policy
class OnlineTunedSAR(_EwmaCost, DynamicSARPolicy):
    """Stop-At-Rise with an online-tuned ``T_redistribution``.

    Identical trigger condition to :class:`DynamicSARPolicy`, but the
    threshold is the EWMA of *every* measured redistribution cost rather
    than the last sample alone — one anomalously cheap (or expensive)
    redistribution no longer swings the trigger for the rest of the run
    (Miller et al. 2020 tune cadence against a smoothed cost model the
    same way).
    """

    name = "sar-ewma"
    PARAMS = {
        "alpha": Param(float, 0.3, help="EWMA weight of the newest cost sample"),
    }

    def __init__(self, alpha: float = 0.3, initial_cost: float = 0.0) -> None:
        super().__init__(initial_cost)
        self._init_ewma(alpha)

    def record_redistribution(self, iteration: int, cost: float) -> None:
        super().record_redistribution(iteration, self._blend_cost(cost))

    def state_dict(self) -> dict:
        return {**super().state_dict(), **self._ewma_state()}

    def load_state(self, state: dict) -> None:
        super().load_state(state)
        self._load_ewma(state)

    def __repr__(self) -> str:
        return (
            f"OnlineTunedSAR(alpha={self.alpha:g}, "
            f"T_redistribution={self.redistribution_cost:g})"
        )


@register_policy
class CostModelPredictivePolicy(_EwmaCost, DynamicSARPolicy):
    """Fire when the machine model projects a net ``vm.elapsed()`` win.

    Projection over a lookahead of ``horizon`` iterations: without a
    redistribution every future iteration keeps paying the observed
    rise ``t1 - t0`` over the balanced (window-minimum) time, so the
    imbalance tax is ``rise * horizon``; a redistribution costs the
    EWMA-smoothed measured cost, floored by the §4 model's all-to-all
    start-up lower bound ``2 τ (p - 1)`` (so a fluke near-zero measured
    cost cannot make redistribution look free).  Fire when the tax
    exceeds the cost.  The model/rank count arrive through
    :meth:`bind` and are transient — every decision record carries the
    evaluated threshold, so records replay without the machine.
    """

    name = "costmodel"
    PARAMS = {
        "horizon": Param(int, 50, help="lookahead iterations the projection covers"),
        "alpha": Param(float, 0.5, help="EWMA weight of the newest cost sample"),
    }

    def __init__(self, horizon: int = 50, alpha: float = 0.5, initial_cost: float = 0.0) -> None:
        require(horizon >= 1, f"horizon must be >= 1, got {horizon}")
        super().__init__(initial_cost)
        self.horizon = int(horizon)
        self._init_ewma(alpha)
        self._model = None
        self._p = 0

    def bind(self, vm) -> None:
        self._model = vm.model
        self._p = vm.p

    def _model_floor(self) -> float:
        if self._model is None or self._p < 2:
            return 0.0
        return 2.0 * self._model.tau * (self._p - 1)

    def should_redistribute(self, iteration: int) -> bool:
        fired = False
        rise: float | None = None
        saved: float | None = None
        floor = self._model_floor()
        threshold = max(self.redistribution_cost, floor)
        if self._i0 is None or self._i1 is None:
            reason = "no iteration observed since the last redistribution"
        elif self._i1 <= self._i0:
            reason = "window too short: need an iteration after i0"
        else:
            rise = self._t1 - self._t0
            if rise <= 0.0:
                reason = "iteration time has not risen"
            else:
                saved = rise * self.horizon
                fired = saved >= threshold
                reason = None
        self._emit(
            {
                "policy": self.name,
                "iteration": iteration,
                "i0": self._i0,
                "i1": self._i1,
                "t0": self._t0,
                "t1": self._t1,
                "rise": rise,
                "horizon": self.horizon,
                "projected_saving": saved,
                "threshold": threshold,
                "model_floor": floor,
                "fired": fired,
                "reason": reason,
            }
        )
        return fired

    def record_redistribution(self, iteration: int, cost: float) -> None:
        super().record_redistribution(iteration, self._blend_cost(cost))

    def state_dict(self) -> dict:
        return {
            **super().state_dict(),
            **self._ewma_state(),
            "horizon": self.horizon,
        }

    def load_state(self, state: dict) -> None:
        super().load_state(state)
        self._load_ewma(state)
        self.horizon = int(state["horizon"])

    def __repr__(self) -> str:
        return (
            f"CostModelPredictivePolicy(horizon={self.horizon}, "
            f"alpha={self.alpha:g}, T_redistribution={self.redistribution_cost:g})"
        )


@register_policy
class ImbalanceThresholdPolicy(RedistributionPolicy):
    """Fire when max/mean particle-count imbalance crosses a threshold.

    Hysteresis prevents oscillation: after firing, the policy disarms
    until the imbalance either recovers below ``threshold -
    hysteresis`` (the rebalance worked) or escalates ``hysteresis``
    beyond the level that triggered the last fire (the rebalance did
    not help enough, so waiting longer would only lose time).
    """

    name = "imbalance"
    PARAMS = {
        "threshold": Param(float, 1.5, help="max/mean imbalance that triggers"),
        "hysteresis": Param(float, 0.25, help="re-arm band below/above the trigger"),
    }
    needs_load = True

    def __init__(self, threshold: float = 1.5, hysteresis: float = 0.25) -> None:
        require(threshold > 1.0, f"threshold must be > 1 (max/mean), got {threshold}")
        require(hysteresis >= 0.0, f"hysteresis must be >= 0, got {hysteresis}")
        self.threshold = float(threshold)
        self.hysteresis = float(hysteresis)
        self._imbalance: float | None = None
        self._armed = True
        self._fired_at: float | None = None

    def record_load(self, iteration: int, counts: list[int]) -> None:
        total = sum(counts)
        if total <= 0 or not counts:
            imbalance = 1.0
        else:
            imbalance = max(counts) * len(counts) / total
        self._imbalance = float(imbalance)
        if not self._armed:
            recovered = imbalance <= self.threshold - self.hysteresis
            escalated = (
                self._fired_at is not None
                and imbalance >= self._fired_at + self.hysteresis
            )
            if recovered or escalated:
                self._armed = True

    def should_redistribute(self, iteration: int) -> bool:
        fired = False
        if self._imbalance is None:
            reason = "no load observation yet"
        elif not self._armed:
            reason = "hysteresis: disarmed until the imbalance recovers or escalates"
        elif self._imbalance < self.threshold:
            reason = "imbalance below threshold"
        else:
            fired = True
            reason = None
        self._emit(
            {
                "policy": self.name,
                "iteration": iteration,
                "imbalance": self._imbalance,
                "threshold": self.threshold,
                "hysteresis": self.hysteresis,
                "armed": self._armed,
                "fired": fired,
                "reason": reason,
            }
        )
        return fired

    @classmethod
    def replay(cls, record: dict) -> bool:
        if record.get("imbalance") is None or not record.get("armed"):
            return False
        return record["imbalance"] >= record["threshold"]

    def record_redistribution(self, iteration: int, cost: float) -> None:
        self._fired_at = self._imbalance
        self._armed = False

    def state_dict(self) -> dict:
        return {
            "type": type(self).__name__,
            "threshold": self.threshold,
            "hysteresis": self.hysteresis,
            "imbalance": self._imbalance,
            "armed": self._armed,
            "fired_at": self._fired_at,
        }

    def load_state(self, state: dict) -> None:
        self.threshold = float(state["threshold"])
        self.hysteresis = float(state["hysteresis"])
        self._imbalance = None if state["imbalance"] is None else float(state["imbalance"])
        self._armed = bool(state["armed"])
        self._fired_at = None if state["fired_at"] is None else float(state["fired_at"])

    def __repr__(self) -> str:
        return (
            f"ImbalanceThresholdPolicy(threshold={self.threshold:g}, "
            f"hysteresis={self.hysteresis:g})"
        )


#: Cached ``scipy.optimize.minimize_scalar`` (``False`` = unavailable).
_MINIMIZE_SCALAR = None


def _minimize_scalar():
    global _MINIMIZE_SCALAR
    if _MINIMIZE_SCALAR is None:
        try:
            from scipy.optimize import minimize_scalar

            _MINIMIZE_SCALAR = minimize_scalar
        except ImportError:  # pragma: no cover - scipy is in the base image
            _MINIMIZE_SCALAR = False
    return _MINIMIZE_SCALAR


def _optimal_period(cost: float, slope: float, horizon: int) -> tuple[float, str]:
    """Period ``n`` minimizing the projected per-iteration overhead.

    With a linear degradation rate ``slope`` and redistribution cost
    ``cost``, redistributing every ``n`` iterations costs on average
    ``f(n) = cost/n + slope * (n - 1) / 2`` extra seconds per iteration.
    Returns ``(n*, optimizer)`` with ``n*`` clamped to ``[1, horizon]``.
    """
    if cost <= 0.0:
        return 1.0, "closed-form"
    minimize = _minimize_scalar()
    if minimize:
        res = minimize(
            lambda n: cost / n + slope * (n - 1.0) / 2.0,
            bounds=(1.0, float(horizon)),
            method="bounded",
        )
        return float(res.x), "scipy"
    n_star = (2.0 * cost / slope) ** 0.5
    return min(max(n_star, 1.0), float(horizon)), "closed-form"


@register_policy
class OptimalPlannerPolicy(_EwmaCost, RedistributionPolicy):
    """Plan the next redistribution iteration by optimization.

    Fits a linear degradation rate ``a`` to the iteration times observed
    since the last redistribution (least squares over a sliding window),
    smooths the redistribution cost ``C`` with an EWMA, and solves for
    the period ``n*`` minimizing the projected per-iteration overhead
    ``C/n + a (n - 1) / 2`` — the continuous optimum of the classic
    rebalance-cadence trade-off (``scipy.optimize.minimize_scalar``,
    bounded on ``[1, horizon]``; the analytic ``sqrt(2C/a)`` when scipy
    is missing).  Fires once ``n*`` iterations have elapsed since the
    last redistribution.  The plan is refit at every evaluation from
    serialized history, so restored runs re-derive identical decisions.
    """

    name = "planner"
    PARAMS = {
        "horizon": Param(int, 200, help="longest period the planner will schedule"),
        "window": Param(int, 64, help="iteration-time samples kept for the fit"),
        "alpha": Param(float, 0.5, help="EWMA weight of the newest cost sample"),
    }

    def __init__(self, horizon: int = 200, window: int = 64, alpha: float = 0.5,
                 initial_cost: float = 0.0) -> None:
        require(horizon >= 1, f"horizon must be >= 1, got {horizon}")
        require(window >= 2, f"window must be >= 2, got {window}")
        require(initial_cost >= 0.0, f"initial_cost must be >= 0, got {initial_cost}")
        self.horizon = int(horizon)
        self.window = int(window)
        self.redistribution_cost = float(initial_cost)
        self._init_ewma(alpha)
        self._hist_i: list[int] = []
        self._hist_t: list[float] = []
        self._epoch_start: int | None = None

    def record_iteration(self, iteration: int, t_iter: float) -> None:
        if self._epoch_start is None:
            self._epoch_start = iteration
        self._hist_i.append(int(iteration))
        self._hist_t.append(float(t_iter))
        if len(self._hist_i) > self.window:
            del self._hist_i[0]
            del self._hist_t[0]

    def _fit_slope(self) -> float:
        """Least-squares degradation rate over the history window."""
        n = len(self._hist_i)
        x0 = self._hist_i[0]
        xs = [float(i - x0) for i in self._hist_i]
        mean_x = sum(xs) / n
        mean_t = sum(self._hist_t) / n
        var = sum((x - mean_x) ** 2 for x in xs)
        if var == 0.0:
            return 0.0
        cov = sum((x - mean_x) * (t - mean_t) for x, t in zip(xs, self._hist_t))
        return cov / var

    def should_redistribute(self, iteration: int) -> bool:
        fired = False
        slope: float | None = None
        n_star: float | None = None
        elapsed: int | None = None
        optimizer: str | None = None
        if len(self._hist_i) < 2:
            reason = "need >= 2 observations to fit the degradation rate"
        else:
            elapsed = self._hist_i[-1] - self._epoch_start + 1
            slope = self._fit_slope()
            if slope <= 0.0:
                reason = "no degradation trend"
            else:
                n_star, optimizer = _optimal_period(
                    self.redistribution_cost, slope, self.horizon
                )
                fired = elapsed >= n_star
                reason = None
        self._emit(
            {
                "policy": self.name,
                "iteration": iteration,
                "n_obs": len(self._hist_i),
                "slope": slope,
                "cost": self.redistribution_cost,
                "n_star": n_star,
                "elapsed": elapsed,
                "horizon": self.horizon,
                "optimizer": optimizer,
                "fired": fired,
                "reason": reason,
            }
        )
        return fired

    @classmethod
    def replay(cls, record: dict) -> bool:
        if record.get("reason") is not None:
            return False
        return record["elapsed"] >= record["n_star"]

    def record_redistribution(self, iteration: int, cost: float) -> None:
        self.redistribution_cost = self._blend_cost(cost)
        self._hist_i.clear()
        self._hist_t.clear()
        self._epoch_start = None

    def state_dict(self) -> dict:
        return {
            "type": type(self).__name__,
            "horizon": self.horizon,
            "window": self.window,
            "redistribution_cost": self.redistribution_cost,
            "hist_i": list(self._hist_i),
            "hist_t": list(self._hist_t),
            "epoch_start": self._epoch_start,
            **self._ewma_state(),
        }

    def load_state(self, state: dict) -> None:
        self.horizon = int(state["horizon"])
        self.window = int(state["window"])
        self.redistribution_cost = float(state["redistribution_cost"])
        self._hist_i = [int(i) for i in state["hist_i"]]
        self._hist_t = [float(t) for t in state["hist_t"]]
        self._epoch_start = (
            None if state["epoch_start"] is None else int(state["epoch_start"])
        )
        self._load_ewma(state)

    def __repr__(self) -> str:
        return (
            f"OptimalPlannerPolicy(horizon={self.horizon}, window={self.window}, "
            f"alpha={self.alpha:g}, T_redistribution={self.redistribution_cost:g})"
        )
