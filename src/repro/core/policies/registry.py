"""The policy spec registry: one grammar for configs, checkpoints, CLI.

Every concrete policy class registers here (``@register_policy``), and
the three public entry points — :func:`make_policy` (spec string →
instance), :func:`policy_spec` (instance → canonical spec string), and
:func:`policy_from_state` (checkpoint snapshot → instance) — all resolve
through the same table.  Specs, configs, and checkpoints therefore
round-trip by construction: anything :func:`policy_spec` emits,
:func:`make_policy` accepts, and any registered policy's
``state_dict()`` restores through :func:`policy_from_state`, including
policies added after a checkpoint format froze.

Spec grammar::

    name                     e.g.  "static", "dynamic"
    name:<value>             e.g.  "periodic:25"        (positional param)
    name:k=v[,k=v...]        e.g.  "costmodel:horizon=50,alpha=0.5"

Unknown names, unknown parameter keys, and unparseable values all raise
``ValueError`` naming the offender and the registered alternatives.
"""

from __future__ import annotations

from repro.core.policies.base import Param, RedistributionPolicy

__all__ = [
    "register_policy",
    "make_policy",
    "policy_spec",
    "policy_from_state",
    "replay_decision",
    "available_policies",
    "policy_entry",
]

#: spec name -> policy class
_REGISTRY: dict[str, type[RedistributionPolicy]] = {}
#: class __name__ -> policy class (checkpoint ``type`` key)
_BY_CLASS: dict[str, type[RedistributionPolicy]] = {}


def register_policy(cls: type[RedistributionPolicy]) -> type[RedistributionPolicy]:
    """Class decorator adding ``cls`` to the spec registry.

    The class must define a unique :attr:`~RedistributionPolicy.name`
    and a :attr:`~RedistributionPolicy.PARAMS` table whose keys are
    valid constructor keyword arguments.  Re-registering the same name
    with a different class raises; registering the identical class
    twice is a no-op (import-order safety).
    """
    name = getattr(cls, "name", None)
    if not isinstance(name, str) or not name or name == "abstract":
        raise ValueError(f"{cls.__name__} must define a non-empty spec name")
    existing = _REGISTRY.get(name)
    if existing is not None and existing is not cls:
        raise ValueError(
            f"policy name {name!r} already registered to {existing.__name__}"
        )
    if cls.POSITIONAL is not None and cls.POSITIONAL not in cls.PARAMS:
        raise ValueError(
            f"{cls.__name__}.POSITIONAL={cls.POSITIONAL!r} is not in PARAMS"
        )
    for pname, param in cls.PARAMS.items():
        if not isinstance(param, Param):
            raise TypeError(f"{cls.__name__}.PARAMS[{pname!r}] is not a Param")
    _REGISTRY[name] = cls
    _BY_CLASS[cls.__name__] = cls
    return cls


def available_policies() -> list[str]:
    """Sorted spec names of every registered policy."""
    return sorted(_REGISTRY)


def policy_entry(name: str) -> type[RedistributionPolicy]:
    """The registered class for spec name ``name``."""
    cls = _REGISTRY.get(name)
    if cls is None:
        known = ", ".join(repr(n) for n in available_policies())
        raise ValueError(f"unknown policy spec {name!r}; registered: {known}")
    return cls


def _parse_args(cls: type[RedistributionPolicy], rest: str, spec: str) -> dict:
    """Parse the ``rest`` of ``name:rest`` into constructor kwargs."""
    kwargs: dict = {}
    if "=" not in rest:
        if cls.POSITIONAL is None:
            raise ValueError(
                f"policy {cls.name!r} takes key=value arguments, got {spec!r}"
            )
        items = [(cls.POSITIONAL, rest)]
    else:
        items = []
        for token in rest.split(","):
            key, sep, value = token.partition("=")
            if not sep or not key:
                raise ValueError(f"bad policy argument {token!r} in spec {spec!r}")
            items.append((key.strip(), value.strip()))
    for key, value in items:
        param = cls.PARAMS.get(key)
        if param is None:
            known = ", ".join(cls.PARAMS) or "(none)"
            raise ValueError(
                f"unknown parameter {key!r} for policy {cls.name!r}; known: {known}"
            )
        if key in kwargs:
            raise ValueError(f"duplicate parameter {key!r} in spec {spec!r}")
        try:
            kwargs[key] = param.convert(value)
        except (TypeError, ValueError) as exc:
            raise ValueError(
                f"bad value {value!r} for {cls.name}:{key} — {exc}"
            ) from None
    return kwargs


def make_policy(spec: str | RedistributionPolicy) -> RedistributionPolicy:
    """Build a policy from a spec string (see the module grammar).

    An existing policy instance passes through unchanged.
    """
    if isinstance(spec, RedistributionPolicy):
        return spec
    if not isinstance(spec, str):
        raise TypeError(f"policy spec must be a string or policy, got {type(spec).__name__}")
    name, sep, rest = spec.partition(":")
    cls = policy_entry(name)
    kwargs = _parse_args(cls, rest, spec) if sep else {}
    missing = [p for p, param in cls.PARAMS.items() if param.required and p not in kwargs]
    if missing:
        raise ValueError(
            f"policy {name!r} requires parameter(s) {', '.join(missing)} "
            f"(e.g. {name!r} + ':<value>' or ':{missing[0]}=<value>')"
        )
    return cls(**kwargs)


def policy_spec(policy: str | RedistributionPolicy) -> str:
    """Canonical spec string of a policy (inverse of :func:`make_policy`).

    A spec string canonicalizes through a parse, so typos surface here
    rather than at deserialization time.  Unregistered policy instances
    raise — a spec the registry cannot load back is never emitted (the
    round-trip-by-construction contract).
    """
    if isinstance(policy, str):
        return policy_spec(make_policy(policy))
    cls = _BY_CLASS.get(type(policy).__name__)
    if cls is None or getattr(policy, "name", None) not in _REGISTRY:
        raise ValueError(
            f"policy {type(policy).__name__} is not registered; decorate it "
            f"with @register_policy so configs and checkpoints can round-trip"
        )
    parts = []
    for pname, param in cls.PARAMS.items():
        value = getattr(policy, pname)
        if not param.required and value == param.default:
            continue
        parts.append((pname, param.fmt(value)))
    if not parts:
        return cls.name
    if cls.POSITIONAL is not None and [p for p, _ in parts] == [cls.POSITIONAL]:
        return f"{cls.name}:{parts[0][1]}"
    return f"{cls.name}:" + ",".join(f"{k}={v}" for k, v in parts)


def policy_from_state(state: dict) -> RedistributionPolicy:
    """Rebuild a policy instance from a :meth:`~RedistributionPolicy.state_dict`
    snapshot, restoring all mutable internals.

    The ``type`` key is resolved through the registry (by class name,
    falling back to spec name), so every registered policy — including
    ones added after a checkpoint was written — restores without a
    hard-coded class list.
    """
    kind = state.get("type")
    cls = _BY_CLASS.get(kind) or _REGISTRY.get(kind)
    if cls is None:
        known = sorted(_BY_CLASS)
        raise ValueError(f"unknown policy type {kind!r} in checkpoint; known: {known}")
    return cls.from_state(state)


def replay_decision(record: dict) -> bool:
    """Re-derive a decision record's fire/skip verdict from its inputs.

    Dispatches on the record's ``policy`` field; raises ``ValueError``
    for unregistered policy names.  ``replay_decision(r) == r["fired"]``
    for every record a registered policy emits — the audit contract the
    telemetry tests and ``repro report`` rely on.
    """
    name = record.get("policy")
    cls = _REGISTRY.get(name)
    if cls is None:
        known = ", ".join(repr(n) for n in available_policies())
        raise ValueError(f"decision record names unknown policy {name!r}; registered: {known}")
    return bool(cls.replay(record))
