"""Bucket-based incremental sorting (paper Figure 12, after [10]).

Redistribution does not sort from scratch: particle movement is
incremental, so the previous epoch's sorted order and bucket boundaries
classify most particles cheaply:

* **same bucket** — the new key still falls inside the element's
  previous bucket: O(1) classification, no movement;
* **same rank, different bucket** — binary search over the rank's ``L``
  local bucket boundaries: O(log L);
* **off-rank** — binary search over the ``p`` global rank boundaries
  (the previous epoch's partition): O(log p), and the element joins the
  all-to-many exchange.

Only the off-rank elements are communicated; received elements are
sorted and merged with the (per-bucket re-sorted) kept elements.  The
cost advantage over the from-scratch sample sort is property-tested and
measured by ``benchmarks/bench_ablation_incremental_sort.py``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.machine.collectives import exchange_by_destination
from repro.machine.virtual import VirtualMachine
from repro.mesh.decomposition import balanced_splits
from repro.util import require

__all__ = ["BucketState", "bucket_incremental_sort", "IncrementalSortStats"]


@dataclass
class IncrementalSortStats:
    """Classification tallies of one incremental sort epoch (all ranks)."""

    same_bucket: int = 0
    moved_bucket: int = 0
    moved_rank: int = 0

    @property
    def total(self) -> int:
        """All classified elements."""
        return self.same_bucket + self.moved_bucket + self.moved_rank


@dataclass
class BucketState:
    """Per-rank sorted run divided into ``L`` buckets.

    Attributes
    ----------
    keys:
        Sorted keys of the rank's elements (as of the last epoch).
    payload:
        Rows aligned with ``keys``.
    bucket_offsets:
        Element-index boundaries of the buckets, length ``L + 1``.
    bucket_lows, bucket_highs:
        Key ranges covered by each bucket at build time.
    """

    keys: np.ndarray
    payload: np.ndarray
    bucket_offsets: np.ndarray
    bucket_lows: np.ndarray
    bucket_highs: np.ndarray

    def __post_init__(self) -> None:
        # Per-element key range of the bucket each element sat in at
        # build time.  Classification (Fig 12 line 10) only ever asks
        # "is my new key still inside my old bucket's range?", so these
        # expanded arrays replace a per-epoch searchsorted over all
        # elements with two vectorized comparisons.
        sizes = np.diff(self.bucket_offsets)
        buckets = np.repeat(np.arange(sizes.shape[0]), sizes)
        self.elem_lows = self.bucket_lows[buckets]
        self.elem_highs = self.bucket_highs[buckets]

    @classmethod
    def build(cls, keys: np.ndarray, payload: np.ndarray, nbuckets: int) -> "BucketState":
        """Divide a sorted run into ``nbuckets`` equal buckets (Fig 12 lines 4–6)."""
        require(nbuckets >= 1, "nbuckets must be >= 1")
        keys = np.asarray(keys)
        require(keys.ndim == 1, "keys must be 1-D")
        require(payload.shape[0] == keys.shape[0], "keys/payload length mismatch")
        if keys.size > 1 and np.any(np.diff(keys) < 0):
            raise ValueError("BucketState.build requires sorted keys")
        offsets = balanced_splits(keys.shape[0], nbuckets)
        lows = np.empty(nbuckets, dtype=keys.dtype if keys.size else np.int64)
        highs = np.empty_like(lows)
        for b in range(nbuckets):
            lo, hi = offsets[b], offsets[b + 1]
            if hi > lo:
                lows[b] = keys[lo]
                highs[b] = keys[hi - 1]
            else:  # empty bucket: impossible range so nothing matches it
                lows[b] = 1
                highs[b] = 0
        return cls(keys, payload, offsets, lows, highs)

    @property
    def n(self) -> int:
        """Number of elements."""
        return int(self.keys.shape[0])

    @property
    def nbuckets(self) -> int:
        """Number of buckets ``L``."""
        return int(self.bucket_offsets.shape[0] - 1)

    @property
    def upper_key(self) -> np.ndarray:
        """The rank's top key (``localBound[L-1]``), or ``-inf`` if empty."""
        return self.keys[-1] if self.n else np.int64(np.iinfo(np.int64).min)


def bucket_incremental_sort(
    vm: VirtualMachine,
    states: list[BucketState],
    new_keys: list[np.ndarray],
    *,
    classifier=None,
) -> tuple[list[np.ndarray], list[np.ndarray], IncrementalSortStats]:
    """One epoch of incremental redistribution (paper Figure 12).

    Parameters
    ----------
    vm:
        Virtual machine; classification/sort compute and the all-to-many
        exchange are charged under its current phase.
    states:
        Per-rank :class:`BucketState` from the previous epoch.
    new_keys:
        Per-rank freshly computed keys, aligned with each state's rows
        (same length and order as ``state.keys``).
    classifier:
        Optional ``(keys, rank_of, lows, highs, splitters) ->
        (dest, same)`` hook replacing the in-process classification pass
        (the multicore backend's chunked workers).  Classification is
        pure per-element integer work, so any implementation chunking is
        bit-identical to the serial pass — results and charges do not
        depend on it.

    Returns
    -------
    (keys, payloads, stats):
        Per-rank sorted keys and payload rows whose rank-order
        concatenation is globally sorted, plus classification tallies.
        Counts are generally unbalanced; follow with
        :func:`repro.core.load_balance.order_maintaining_balance`.
    """
    p = vm.p
    require(len(states) == p and len(new_keys) == p, "need one state/keys per rank")

    # Line 1 of Bucket_incremental_sorting: global concatenation of the
    # previous epoch's rank boundaries.
    uppers = vm.allgather([state.upper_key for state in states])[0]
    uppers = np.asarray(uppers, dtype=np.int64)
    # Forward-fill empty ranks so boundaries are monotone.
    uppers = np.maximum.accumulate(uppers)
    splitters = uppers[: p - 1]

    # Classification (Fig 12 lines 8-19), pooled: every rank's new keys
    # are concatenated into one flat array with segment offsets and the
    # searchsorted / bucket-range tests run once over the pool instead of
    # p times.  The charged per-rank op counts are computed from the same
    # formula on bincount tallies, so accounting is identical to the
    # per-rank loop this replaces.
    stats = IncrementalSortStats()
    per_rank_keys: list[np.ndarray] = []
    for r in range(p):
        keys_r = np.asarray(new_keys[r])
        require(keys_r.shape[0] == states[r].n, f"rank {r}: new_keys length mismatch")
        per_rank_keys.append(keys_r)
    counts = np.array([state.n for state in states], dtype=np.int64)
    offsets = np.concatenate([np.zeros(1, dtype=np.int64), np.cumsum(counts)])
    keys_all = np.concatenate(per_rank_keys)
    rank_of = np.repeat(np.arange(p, dtype=np.int64), counts)
    lows_all = np.concatenate([state.elem_lows for state in states])
    highs_all = np.concatenate([state.elem_highs for state in states])
    if classifier is not None:
        dest_all, same_all = classifier(keys_all, rank_of, lows_all, highs_all, splitters)
        off_all = dest_all != rank_of
    else:
        dest_all = np.searchsorted(splitters, keys_all, side="left").astype(np.int64)
        off_all = dest_all != rank_of
        same_all = ~off_all & (keys_all >= lows_all) & (keys_all <= highs_all)
    n_off_arr = np.bincount(rank_of[off_all], minlength=p).astype(np.int64)
    n_same_arr = np.bincount(rank_of[same_all], minlength=p).astype(np.int64)
    n_moved_arr = counts - n_off_arr - n_same_arr
    nb_arr = np.maximum([state.nbuckets for state in states], 2)
    stats.same_bucket = int(n_same_arr.sum())
    stats.moved_bucket = int(n_moved_arr.sum())
    stats.moved_rank = int(n_off_arr.sum())
    class_ops = (
        n_same_arr.astype(float)
        + n_moved_arr.astype(float) * np.log2(nb_arr)
        + n_off_arr.astype(float) * np.log2(max(p, 2))
    )

    kept_keys: list[np.ndarray] = []
    kept_payloads: list[np.ndarray] = []
    send_keys: list[np.ndarray] = []
    send_payloads: list[np.ndarray] = []
    send_dests: list[np.ndarray] = []
    for r in range(p):
        state = states[r]
        keys = per_rank_keys[r]
        off = off_all[offsets[r] : offsets[r + 1]]
        dest = dest_all[offsets[r] : offsets[r + 1]]
        if n_off_arr[r]:
            off_idx = np.flatnonzero(off)
            keep_idx = np.flatnonzero(~off)
            kept_keys.append(keys.take(keep_idx))
            kept_payloads.append(state.payload.take(keep_idx, axis=0))
            send_keys.append(keys.take(off_idx).reshape(-1, 1))
            send_payloads.append(state.payload.take(off_idx, axis=0))
            send_dests.append(dest.take(off_idx))
        else:
            kept_keys.append(keys)
            kept_payloads.append(state.payload)
            send_keys.append(keys[:0].reshape(-1, 1))
            send_payloads.append(state.payload[:0])
            send_dests.append(dest[:0])
    vm.charge_ops("sort", class_ops)

    # All-to-many exchange of the off-rank elements (line 20).
    recv_payloads = exchange_by_destination(vm, send_payloads, send_dests)
    recv_keys = exchange_by_destination(vm, send_keys, send_dests)

    # Per-bucket re-sort of kept elements + sort of received + merge
    # (lines 21-24).  The real arrays are sorted outright; the *charged*
    # cost reflects the bucket algorithm: kept elements pay log of the
    # bucket size, received pay a full sort, the merge pays linear work.
    out_keys: list[np.ndarray] = []
    out_payloads: list[np.ndarray] = []
    sort_ops = np.zeros(p)
    for r in range(p):
        rkeys = recv_keys[r].reshape(-1)
        rpay = recv_payloads[r]
        if rpay.ndim == 1:
            rpay = rpay.reshape(0, states[r].payload.shape[1])
        keys = np.concatenate([kept_keys[r], rkeys])
        pay = np.concatenate([kept_payloads[r], rpay])
        if keys.shape[0] > 1 and np.any(keys[1:] < keys[:-1]):
            order = np.argsort(keys, kind="stable")
            keys = keys.take(order)
            pay = pay.take(order, axis=0)
        out_keys.append(keys)
        out_payloads.append(pay)
        nb = max(states[r].nbuckets, 2)
        bucket_size = max(kept_keys[r].shape[0] / nb, 2.0)
        sort_ops[r] = (
            kept_keys[r].shape[0] * np.log2(bucket_size)
            + rkeys.shape[0] * np.log2(max(rkeys.shape[0], 2))
            + keys.shape[0]  # merge
        )
    vm.charge_ops("sort", sort_ops)
    return out_keys, out_payloads, stats
