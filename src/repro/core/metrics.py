"""Load-balance and overhead accounting helpers."""

from __future__ import annotations

import numpy as np

from repro.particles.arrays import ParticleArray

__all__ = ["particle_counts", "load_imbalance"]


def particle_counts(local_particles: list[ParticleArray]) -> np.ndarray:
    """Per-rank particle counts."""
    return np.array([parts.n for parts in local_particles], dtype=np.int64)


def load_imbalance(counts: np.ndarray) -> float:
    """``max / mean`` of a per-rank count array (1.0 = perfectly balanced).

    Returns ``inf`` when some rank has work but the mean is 0 is
    impossible; an all-zero array reports 1.0.
    """
    counts = np.asarray(counts, dtype=float)
    mean = counts.mean()
    if mean == 0:
        return 1.0
    return float(counts.max() / mean)
