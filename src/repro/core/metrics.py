"""Load-balance and overhead accounting helpers."""

from __future__ import annotations

import numpy as np

from repro.particles.arrays import ParticleArray

__all__ = ["particle_counts", "load_imbalance"]


def particle_counts(local_particles: list[ParticleArray]) -> np.ndarray:
    """Per-rank particle counts."""
    return np.array([parts.n for parts in local_particles], dtype=np.int64)


def load_imbalance(counts: np.ndarray) -> float:
    """``max / mean`` of a per-rank count array (1.0 = perfectly balanced).

    A positive mean is guaranteed whenever any rank has work, so the
    ratio is always finite; an all-zero array (no work anywhere) is
    perfectly balanced by convention and reports 1.0.  A single rank
    holding everything reports ``p`` (the rank count).
    """
    counts = np.asarray(counts, dtype=float)
    mean = counts.mean()
    if mean == 0:
        return 1.0
    return float(counts.max() / mean)
