"""Adaptive mesh rebalancing: the Eulerian answer to load imbalance.

The paper balances particle load by *moving particles between fixed
mesh blocks* (direct Lagrangian + redistribution).  The dual approach —
which the descendants of this work (WarpX, PIConGPU) adopted — keeps
particles with their cells (direct Eulerian, so scatter/gather are
always local) and instead *moves the block boundaries along the
space-filling curve* so every rank owns an (approximately) equal number
of particles.

:class:`AdaptiveMeshRebalancer` implements that: given the current
per-cell particle counts it computes new curve bounds at the particle
quantiles, migrates the field values of reassigned nodes (physically,
through the machine), and installs the new decomposition into a running
:class:`~repro.pic.parallel.ParallelPIC`.  The particles follow at the
next Eulerian migration step.

The price, relative to the paper's scheme, is field imbalance: cells
per rank become unequal (bounded by ``max_cell_ratio``), so the field
solve slows on crowded ranks — the trade the paper's Table 1 row
"particle partitioning" describes.  The ablation benchmark
``bench_ablation_adaptive_eulerian.py`` compares both schemes
end-to-end.
"""

from __future__ import annotations

import numpy as np

from repro.indexing import IndexingScheme, get_scheme
from repro.machine.virtual import VirtualMachine
from repro.mesh.decomposition import CurveBlockDecomposition, balanced_splits
from repro.mesh.grid import Grid2D
from repro.pic.parallel import ParallelPIC
from repro.util import require

__all__ = ["AdaptiveMeshRebalancer"]


class AdaptiveMeshRebalancer:
    """Recomputes curve-block mesh bounds from particle load.

    Parameters
    ----------
    grid, scheme:
        Mesh geometry and the space-filling curve (shared with the
        decomposition being rebalanced).
    max_cell_ratio:
        Upper bound on ``cells(rank) / mean`` after rebalancing; quantile
        bounds are relaxed toward the balanced split until satisfied, so
        the field solve can never degrade past this factor.
    """

    def __init__(
        self,
        grid: Grid2D,
        scheme: str | IndexingScheme = "hilbert",
        *,
        max_cell_ratio: float = 4.0,
    ) -> None:
        require(max_cell_ratio >= 1.0, "max_cell_ratio must be >= 1")
        self.grid = grid
        self.scheme = get_scheme(scheme)
        self.max_cell_ratio = max_cell_ratio
        # curve position of every cell, and cells in curve order
        self._positions = self.scheme.positions(grid.nx, grid.ny)
        order = np.empty(grid.ncells, dtype=np.int64)
        order[self._positions] = np.arange(grid.ncells)
        self._cells_in_curve_order = order

    # ------------------------------------------------------------------
    def quantile_bounds(self, cell_particle_counts: np.ndarray, p: int) -> np.ndarray:
        """Curve-position bounds putting ~equal particles in each run.

        ``cell_particle_counts`` is indexed by row-major cell id.
        """
        counts = np.asarray(cell_particle_counts, dtype=np.int64)
        require(counts.shape == (self.grid.ncells,), "need one count per cell")
        along_curve = counts[self._cells_in_curve_order]
        cumulative = np.cumsum(along_curve)
        total = int(cumulative[-1]) if cumulative.size else 0
        bounds = np.empty(p + 1, dtype=np.int64)
        bounds[0] = 0
        bounds[p] = self.grid.ncells
        if total == 0:
            return balanced_splits(self.grid.ncells, p)
        targets = (np.arange(1, p) * total) / p
        bounds[1:p] = np.searchsorted(cumulative, targets, side="left") + 1
        bounds = np.maximum.accumulate(np.clip(bounds, 0, self.grid.ncells))
        return self._enforce_cell_ratio(bounds, p)

    def _enforce_cell_ratio(self, bounds: np.ndarray, p: int) -> np.ndarray:
        """Clamp run widths to ``max_cell_ratio * mean`` with two passes.

        The forward pass caps each run from the left; the backward pass
        raises lower bounds so the tail runs also respect the cap.
        Quantile positions are preserved wherever feasible — only
        oversized (particle-poor) runs shrink.
        """
        cap = int(np.ceil(self.max_cell_ratio * self.grid.ncells / p))
        out = bounds.astype(np.int64).copy()
        for r in range(1, p + 1):
            out[r] = min(max(out[r], out[r - 1]), out[r - 1] + cap)
        out[p] = self.grid.ncells
        for r in range(p - 1, 0, -1):
            out[r] = max(out[r], out[r + 1] - cap)
        return out

    # ------------------------------------------------------------------
    def rebalance(self, pic: ParallelPIC) -> float:
        """Rebalance a running Eulerian :class:`ParallelPIC` in place.

        Measures (and returns) the virtual cost: counting, the bounds
        collective, migration of reassigned field nodes, and the
        particle migration that realigns ownership.
        """
        vm = pic.vm
        require(pic.movement == "eulerian", "adaptive rebalancing requires Eulerian movement")
        t0 = vm.elapsed()
        with vm.phase("rebalance"):
            # per-rank cell occupancy of local particles -> global counts
            partial = []
            for r in range(vm.p):
                parts = pic.particles[r]
                cells = self.grid.cell_id_of_positions(parts.x, parts.y)
                partial.append(np.bincount(cells, minlength=self.grid.ncells))
            vm.charge_ops("index", np.array([float(p.n) for p in pic.particles]))
            counts = vm.allreduce(partial, op="sum")[0]

            bounds = self.quantile_bounds(counts, vm.p)
            new_decomp = CurveBlockDecomposition(
                self.grid, vm.p, self.scheme, bounds=bounds
            )

            # physically migrate field node values whose owner changed
            old_owner = pic.node_owner
            new_owner = new_decomp.owner_map
            moved = np.flatnonzero(old_owner != new_owner)
            if moved.size:
                node_values = np.concatenate(
                    [pic._field_node_values(), pic.fields.rho.ravel()[None, :]]
                )
                send: list[dict[int, np.ndarray]] = [dict() for _ in range(vm.p)]
                for src in range(vm.p):
                    mine = moved[old_owner[moved] == src]
                    if not mine.size:
                        continue
                    dests = new_owner[mine]
                    for dst in np.unique(dests):
                        ids = mine[dests == dst]
                        send[src][int(dst)] = (ids, np.ascontiguousarray(node_values[:, ids]))
                vm.alltoallv(send)

            pic.set_decomposition(new_decomp)
            # realign particle ownership with the new cell owners
            pic._migrate_eulerian()
        return vm.elapsed() - t0
