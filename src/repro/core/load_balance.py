"""Order-maintaining load balance (paper §5.1, after [10]).

After a (sample or incremental) sort the per-rank counts are only
approximately equal.  The order-maintaining balance step moves surplus
elements to neighbouring positions of the *global concatenated order* so
that every rank ends with the balanced count and the global order is
unchanged: element ``g`` of the concatenation simply moves to the rank
whose balanced slice contains ``g``.
"""

from __future__ import annotations

import numpy as np

from repro.machine.collectives import exchange_by_destination
from repro.machine.virtual import VirtualMachine
from repro.mesh.decomposition import balanced_splits
from repro.util import require

__all__ = ["order_maintaining_balance"]


def order_maintaining_balance(
    vm: VirtualMachine,
    keys: list[np.ndarray],
    payloads: list[np.ndarray],
) -> tuple[list[np.ndarray], list[np.ndarray]]:
    """Equalize per-rank counts without disturbing the global order.

    Parameters
    ----------
    vm:
        Virtual machine (costs charged under the current phase).
    keys:
        Per-rank sorted key arrays whose rank-order concatenation is
        globally sorted.
    payloads:
        Per-rank 2-D row payloads aligned with ``keys``.

    Returns
    -------
    (keys, payloads):
        Re-balanced per-rank arrays: counts differ by at most one and
        the global concatenation is unchanged.
    """
    p = vm.p
    require(len(keys) == p and len(payloads) == p, "need one keys/payload per rank")
    counts = np.array([k.shape[0] for k in keys], dtype=np.int64)
    # Every rank learns all counts (global concatenation of scalars).
    gathered = vm.allgather([int(c) for c in counts])[0]
    counts = np.asarray(gathered, dtype=np.int64)
    total = int(counts.sum())
    offsets = np.concatenate([[0], np.cumsum(counts)])
    target_bounds = balanced_splits(total, p)

    # Destination of each element by its global position.
    dests = []
    for r in range(p):
        gpos = offsets[r] + np.arange(counts[r], dtype=np.int64)
        dests.append((np.searchsorted(target_bounds, gpos, side="right") - 1).astype(np.int64))
    vm.charge_ops("sort", counts.astype(float))  # position computation

    new_payloads = exchange_by_destination(vm, payloads, dests)
    new_keys_2d = exchange_by_destination(vm, [k.reshape(-1, 1) for k in keys], dests)
    new_keys = [k.reshape(-1) for k in new_keys_2d]

    # exchange_by_destination concatenates in source-rank order, and
    # within a source the stable split preserves order, so each rank's
    # slice is exactly its balanced run of the old global order.
    for r in range(p):
        expected = int(target_bounds[r + 1] - target_bounds[r])
        got = new_keys[r].shape[0]
        if got != expected:  # pragma: no cover - invariant guard
            raise AssertionError(f"rank {r}: balance produced {got} elements, expected {expected}")
    return new_keys, new_payloads
