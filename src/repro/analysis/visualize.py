"""ASCII visualization of densities, decompositions, and assignments.

Terminal-friendly renderings used by the examples and handy for
debugging distribution quality:

* :func:`density_map` — particle occupancy as a shaded character grid;
* :func:`ownership_map` — which rank owns each cell (the Figure 10 view);
* :func:`particle_assignment_map` — the dominant *particle* owner per
  cell, so misalignment between particle and mesh subdomains is visible
  as disagreement with :func:`ownership_map`.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.decomposition import MeshDecomposition
from repro.mesh.grid import Grid2D
from repro.particles.arrays import ParticleArray
from repro.util import require

__all__ = ["density_map", "ownership_map", "particle_assignment_map"]

_SHADES = " .:-=+*#%@"
_RANK_GLYPHS = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"


def _downsample(cellgrid: np.ndarray, max_width: int) -> np.ndarray:
    """Block-average a (ny, nx) array down to at most ``max_width`` columns."""
    ny, nx = cellgrid.shape
    if nx <= max_width:
        return cellgrid
    factor = int(np.ceil(nx / max_width))
    pad_x = (-nx) % factor
    pad_y = (-ny) % factor
    padded = np.pad(cellgrid, ((0, pad_y), (0, pad_x)), mode="edge")
    h, w = padded.shape
    return padded.reshape(h // factor, factor, w // factor, factor).mean(axis=(1, 3))


def density_map(
    grid: Grid2D,
    particles: ParticleArray,
    *,
    max_width: int = 64,
) -> str:
    """Render particle occupancy per cell as shaded characters.

    Rows are printed with y increasing downward (matrix order).
    """
    cells = grid.cell_id_of_positions(particles.x, particles.y)
    counts = np.bincount(cells, minlength=grid.ncells).reshape(grid.ny, grid.nx)
    counts = _downsample(counts.astype(float), max_width)
    peak = counts.max()
    if peak == 0:
        levels = np.zeros_like(counts, dtype=int)
    else:
        levels = np.clip(
            (counts / peak * (len(_SHADES) - 1)).round().astype(int),
            0,
            len(_SHADES) - 1,
        )
    lines = ["".join(_SHADES[v] for v in row) for row in levels]
    header = f"particle density ({particles.n} particles, peak {int(peak)}/cell-block)"
    return "\n".join([header] + lines)


def ownership_map(decomp: MeshDecomposition, *, max_width: int = 64) -> str:
    """Render the rank owning each cell (one glyph per rank, mod 62)."""
    grid = decomp.grid
    owners = decomp.owner_map.reshape(grid.ny, grid.nx)
    block = _downsample(owners.astype(float), max_width)
    # after downsampling show the (rounded) dominant rank
    glyphs = np.mod(np.round(block).astype(int), len(_RANK_GLYPHS))
    lines = ["".join(_RANK_GLYPHS[v] for v in row) for row in glyphs]
    return "\n".join([f"mesh ownership ({decomp.p} ranks)"] + lines)


def particle_assignment_map(
    grid: Grid2D,
    local_particles: list[ParticleArray],
    *,
    max_width: int = 64,
) -> str:
    """Render the dominant particle-owner rank per cell ('.' = empty).

    Compare with :func:`ownership_map` of the mesh decomposition: cells
    whose glyphs disagree hold particles that will generate scatter and
    gather communication.
    """
    require(len(local_particles) >= 1, "need at least one rank")
    ncells = grid.ncells
    best_count = np.zeros(ncells, dtype=np.int64)
    best_rank = np.full(ncells, -1, dtype=np.int64)
    for r, parts in enumerate(local_particles):
        if parts.n == 0:
            continue
        cells = grid.cell_id_of_positions(parts.x, parts.y)
        counts = np.bincount(cells, minlength=ncells)
        better = counts > best_count
        best_count[better] = counts[better]
        best_rank[better] = r
    shaped = best_rank.reshape(grid.ny, grid.nx)
    if grid.nx > max_width:
        # downsample by dominant value: use rounded block mean of ranks,
        # masking empties as the block's most common state
        shaped = np.round(_downsample(shaped.astype(float), max_width)).astype(int)
    lines = []
    for row in shaped:
        lines.append(
            "".join(
                "." if v < 0 else _RANK_GLYPHS[v % len(_RANK_GLYPHS)] for v in row
            )
        )
    return "\n".join([f"dominant particle owner ({len(local_particles)} ranks)"] + lines)
