"""Deprecated location of the text-rendering primitives.

:func:`format_table` and :func:`ascii_series` moved to
:mod:`repro.telemetry.report` (the single home of all terminal
rendering); this module remains as a compatibility re-export and may be
removed in a future cleanup.  Import from ``repro.telemetry.report``
(or the ``repro.telemetry`` package) instead.
"""

from __future__ import annotations

from repro.telemetry.report import ascii_series, format_table

__all__ = ["format_table", "ascii_series"]
