"""Plain-text rendering of result tables and series.

The benchmark harness prints the same rows/series the paper's tables and
figures report; these helpers keep that output aligned and readable in a
terminal / CI log.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.util import require

__all__ = ["format_table", "ascii_series"]


def format_table(headers: Sequence[str], rows: Sequence[Sequence], *, title: str | None = None) -> str:
    """Render rows as an aligned monospace table.

    Floats are shown with 2 decimals; other values via ``str``.
    """
    def fmt(v) -> str:
        if isinstance(v, float):
            return f"{v:.2f}"
        return str(v)

    str_rows = [[fmt(v) for v in row] for row in rows]
    for row in str_rows:
        require(len(row) == len(headers), "row width must match headers")
    widths = [
        max(len(headers[j]), *(len(r[j]) for r in str_rows)) if str_rows else len(headers[j])
        for j in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(widths[j]) for j, h in enumerate(headers)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(row[j].rjust(widths[j]) for j in range(len(headers))))
    return "\n".join(lines)


def ascii_series(
    values: np.ndarray,
    *,
    width: int = 72,
    height: int = 12,
    label: str = "",
) -> str:
    """Render a 1-D series as a small ASCII chart (for figure benches)."""
    values = np.asarray(values, dtype=float)
    require(values.ndim == 1, "values must be 1-D")
    if values.size == 0:
        return f"{label} (empty series)"
    # Downsample to the chart width by block means.
    if values.size > width:
        edges = np.linspace(0, values.size, width + 1).astype(int)
        sampled = np.array([values[a:b].mean() for a, b in zip(edges[:-1], edges[1:])])
    else:
        sampled = values
    lo, hi = float(sampled.min()), float(sampled.max())
    span = hi - lo if hi > lo else 1.0
    rows = np.clip(((sampled - lo) / span * (height - 1)).round().astype(int), 0, height - 1)
    canvas = [[" "] * sampled.size for _ in range(height)]
    for col, row in enumerate(rows):
        canvas[height - 1 - row][col] = "*"
    out = []
    if label:
        out.append(f"{label}  [min={lo:.4g}, max={hi:.4g}, n={values.size}]")
    out.extend("|" + "".join(line) for line in canvas)
    out.append("+" + "-" * sampled.size)
    return "\n".join(out)
