"""Speedup / efficiency computations (paper Table 3).

The paper defines efficiency relative to the single-processor run of
the same problem; with the virtual machine the 1-processor time is the
pure compute time of all four phases (no communication), which the cost
model yields directly.
"""

from __future__ import annotations

from repro.util import require_positive

__all__ = ["speedup", "efficiency"]


def speedup(t1: float, tp: float) -> float:
    """Classical speedup ``T_1 / T_p``."""
    require_positive(t1, "t1")
    require_positive(tp, "tp")
    return t1 / tp


def efficiency(t1: float, tp: float, p: int) -> float:
    """Parallel efficiency ``T_1 / (p * T_p)``."""
    if p < 1:
        raise ValueError(f"p must be >= 1, got {p}")
    return speedup(t1, tp) / p
