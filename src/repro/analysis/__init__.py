"""Analysis and reporting: efficiency tables, text rendering of figures."""

from repro.analysis.efficiency import efficiency, speedup
from repro.analysis.report import ascii_series, format_table
from repro.analysis.visualize import density_map, ownership_map, particle_assignment_map

__all__ = [
    "speedup",
    "efficiency",
    "format_table",
    "ascii_series",
    "density_map",
    "ownership_map",
    "particle_assignment_map",
]
