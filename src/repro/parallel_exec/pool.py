"""Persistent fork-once worker pool for the multicore flat backend.

Workers are forked once per backend (not per phase), hold a
:class:`~repro.parallel_exec.shm.ShmAttachCache`, and receive tiny task
messages — a handler name plus :class:`ShmArray` descriptors and small
scalars — over per-worker pipes.  Bulk particle/grid data never crosses
a pipe; handlers operate directly on the shared-memory segments.

Task handlers implement the worker side of the four parallel phases
(scatter, gather+push, Eulerian migration partitioning, incremental-sort
classification) on contiguous rank-segment slices of the particle pool,
using the chunk-deterministic kernels of
:mod:`repro.parallel_exec.kernels`.  A worker caches its segment's CIC
vertex evaluation between the scatter and the gather of one iteration,
keyed by ``(pool version, segment range)``, mirroring the serial flat
engine's pooled CIC cache.
"""

from __future__ import annotations

import multiprocessing
import signal
import traceback
import weakref

import numpy as np

from repro.parallel_exec.kernels import (
    fill_sorted_matrix,
    gather_push_slice,
    classify_chunk,
    partition_segment_by_dest,
    scatter_segment,
)
from repro.parallel_exec.shm import ShmAttachCache, disable_resource_tracking
from repro.particles.arrays import ParticleArray

__all__ = ["WorkerPool", "WorkerError", "live_worker_pids"]

#: Live pools, for the bench runner's child-process RSS accounting.
_LIVE_POOLS: "weakref.WeakSet[WorkerPool]" = weakref.WeakSet()


def live_worker_pids() -> list[int]:
    """PIDs of every live worker process spawned by any active pool."""
    pids: list[int] = []
    for pool in list(_LIVE_POOLS):
        pids.extend(pool.pids)
    return pids


class WorkerError(RuntimeError):
    """A worker process died or raised while executing a task."""


# ----------------------------------------------------------------------
# worker-side task handlers
# ----------------------------------------------------------------------
def _attach_pool_slice(cache: ShmAttachCache, cols: dict, lo: int, hi: int) -> ParticleArray:
    """Particle view of pool rows ``[lo, hi)`` from column descriptors."""
    return ParticleArray(
        **{name: cache.get(cols[name])[lo:hi] for name in ParticleArray.__slots__}
    )


def _h_scatter(state, *, cols, offsets, r0, r1, owner, nnodes, rows, version):
    cache = state["cache"]
    lo, hi = int(offsets[r0]), int(offsets[r1])
    parts = _attach_pool_slice(cache, cols, lo, hi)
    counts = np.diff(offsets[r0 : r1 + 1])
    node_owner = cache.get(owner)
    out_rows = cache.get(rows)[r0:r1]
    cic, entries, uniq, messages = scatter_segment(
        state["grid"], parts, counts, r0, node_owner, nnodes, out_rows
    )
    state["cic"] = (version, r0, r1, cic)
    return entries, uniq, messages


def _h_gather_push(state, *, cols, offsets, r0, r1, node_values, dt, version):
    cache = state["cache"]
    lo, hi = int(offsets[r0]), int(offsets[r1])
    parts = _attach_pool_slice(cache, cols, lo, hi)
    cached = state["cic"]
    cic = cached[3] if cached is not None and cached[:3] == (version, r0, r1) else None
    state["cic"] = None  # positions change in the push below
    gather_push_slice(state["grid"], parts, cache.get(node_values), float(dt), cic)
    return None


def _h_migrate(state, *, cols, offsets, r0, r1, owner, scratch):
    cache = state["cache"]
    grid = state["grid"]
    cell_owner = cache.get(owner)
    out = cache.get(scratch)
    result = []
    for r in range(r0, r1):
        lo, hi = int(offsets[r]), int(offsets[r + 1])
        parts = _attach_pool_slice(cache, cols, lo, hi)
        cells = grid.cell_id_of_positions(parts.x, parts.y)
        dest = cell_owner[cells]
        order, uniq, starts = partition_segment_by_dest(dest)
        fill_sorted_matrix(parts, order, out[lo:hi])
        result.append((uniq, starts))
    return result


def _h_classify(state, *, keys, rank_of, lows, highs, splitters, lo, hi, dest, same):
    cache = state["cache"]
    lo, hi = int(lo), int(hi)
    d, s = classify_chunk(
        cache.get(keys)[lo:hi],
        cache.get(rank_of)[lo:hi],
        cache.get(lows)[lo:hi],
        cache.get(highs)[lo:hi],
        splitters,
    )
    cache.get(dest)[lo:hi] = d
    cache.get(same)[lo:hi] = s
    return None


def _h_ping(state):
    return "pong"


def _h_set_profile(state, *, enabled):
    """Toggle in-worker handler timing (resets accumulated samples)."""
    state["profile"] = bool(enabled)
    state["prof_samples"] = {}
    return None


def _h_drain_profile(state):
    """Return and clear this worker's ``{handler: [count, seconds]}``."""
    samples = state["prof_samples"]
    state["prof_samples"] = {}
    return samples


_HANDLERS = {
    "scatter": _h_scatter,
    "gather_push": _h_gather_push,
    "migrate": _h_migrate,
    "classify": _h_classify,
    "ping": _h_ping,
    "set_profile": _h_set_profile,
    "drain_profile": _h_drain_profile,
}

#: handlers whose bodies are timed when profiling is on (control
#: messages are not — they are not part of the hot path)
_PROFILED = frozenset({"scatter", "gather_push", "migrate", "classify"})


def _worker_main(conn, grid_params: tuple) -> None:
    """Worker loop: reconstruct the grid, serve tasks until sentinel."""
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    disable_resource_tracking()
    from repro.mesh.grid import Grid2D

    nx, ny, lx, ly = grid_params
    state = {
        "grid": Grid2D(int(nx), int(ny), float(lx), float(ly)),
        "cache": ShmAttachCache(capacity=12),
        "cic": None,
        "profile": False,  #: dormant until a "set_profile" control message
        "prof_samples": {},
    }
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if msg is None:
                break
            fn, kwargs = msg
            try:
                if state["profile"] and fn in _PROFILED:
                    from time import perf_counter

                    t0 = perf_counter()
                    out = _HANDLERS[fn](state, **kwargs)
                    dt = perf_counter() - t0
                    cell = state["prof_samples"].setdefault(fn, [0, 0.0])
                    cell[0] += 1
                    cell[1] += dt
                else:
                    out = _HANDLERS[fn](state, **kwargs)
                reply = ("ok", out)
            except BaseException as exc:  # report, keep serving
                reply = ("err", f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}")
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):
                break
    finally:
        state["cache"].close()
        conn.close()


# ----------------------------------------------------------------------
# main-process side
# ----------------------------------------------------------------------
class WorkerPool:
    """``nworkers`` forked task servers with one pipe each.

    Tasks are addressed to a *specific* worker (``run`` takes
    ``(worker, handler, kwargs)`` triples) so segment affinity holds
    across phases — the worker that scattered a pool slice also gathers
    it and can reuse its cached CIC evaluation.
    """

    def __init__(self, nworkers: int, grid_params: tuple) -> None:
        ctx = multiprocessing.get_context("fork")
        self._procs = []
        self._conns = []
        self._closed = False
        for _ in range(int(nworkers)):
            parent, child = ctx.Pipe()
            proc = ctx.Process(target=_worker_main, args=(child, grid_params), daemon=True)
            proc.start()
            child.close()
            self._procs.append(proc)
            self._conns.append(parent)
        _LIVE_POOLS.add(self)

    @property
    def nworkers(self) -> int:
        return len(self._procs)

    @property
    def pids(self) -> list[int]:
        """PIDs of the live worker processes."""
        if self._closed:
            return []
        return [p.pid for p in self._procs if p.is_alive()]

    def run(self, tasks: list[tuple[int, str, dict]]) -> list:
        """Dispatch tasks and gather results (aligned with ``tasks``).

        All sends complete before the first receive, so workers execute
        concurrently; a worker exception or death raises
        :class:`WorkerError` in the main process.
        """
        if self._closed:
            raise WorkerError("worker pool is closed")
        for w, fn, kwargs in tasks:
            self._conns[w].send((fn, kwargs))
        out = []
        for w, fn, _ in tasks:
            try:
                status, payload = self._conns[w].recv()
            except (EOFError, OSError):
                raise WorkerError(f"worker {w} died while executing {fn!r}") from None
            if status != "ok":
                raise WorkerError(f"worker {w} failed in {fn!r}:\n{payload}")
            out.append(payload)
        return out

    def set_profiling(self, enabled: bool) -> None:
        """Toggle handler timing in every worker (resets their samples)."""
        self.run(
            [
                (w, "set_profile", {"enabled": bool(enabled)})
                for w in range(self.nworkers)
            ]
        )

    def drain_profile(self) -> dict:
        """Collect and clear all workers' handler timings.

        Returns ``{handler: [count, seconds]}`` summed over workers —
        the per-handler CPU-time footprint of the pool since profiling
        was enabled (or last drained).
        """
        merged: dict[str, list] = {}
        per_worker = self.run(
            [(w, "drain_profile", {}) for w in range(self.nworkers)]
        )
        for samples in per_worker:
            for fn, (count, wall) in samples.items():
                cell = merged.setdefault(fn, [0, 0.0])
                cell[0] += int(count)
                cell[1] += float(wall)
        return merged

    def close(self) -> None:
        """Stop the workers (sentinel, join, terminate stragglers)."""
        if self._closed:
            return
        self._closed = True
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=2.0)
            if proc.is_alive():  # pragma: no cover - hung worker
                proc.terminate()
                proc.join(timeout=1.0)
        for conn in self._conns:
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass
        self._procs.clear()
        self._conns.clear()
        _LIVE_POOLS.discard(self)

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass
