"""Segment kernels shared by the serial flat path and the worker pool.

Every function here operates on a contiguous *rank-segment range* of the
particle pool and is written so that running it once over ``[0, p)``
(the serial flat engine) produces bit-identical results to running it
over any partition of ``[0, p)`` into shards (the worker backend) —
the determinism contract of DESIGN.md §5.5:

* per-element kernels (CIC vertices, deposition entries, field gather,
  Boris push, key classification) are chunk-oblivious by construction;
* the only true floating-point reductions — on-rank deposition
  accumulation and ghost duplicate-removal sums — are decomposed at
  **rank granularity**: each rank's partial accumulates its entries in
  pool order, and partials are reduced in ascending rank order by
  :func:`reduce_rank_rows`.  Worker shards are unions of whole rank
  segments, so the addition sequence per node never depends on the
  worker count.
"""

from __future__ import annotations

import numpy as np

from repro.particles.arrays import MATRIX_COLUMNS, ParticleArray
from repro.pic.deposition import (
    CHANNELS,
    deposition_entries,
    pooled_duplicate_removal,
)
from repro.pic.interpolation import gather_from_node_values
from repro.pic.push import boris_push

__all__ = [
    "scatter_segment",
    "reduce_rank_rows",
    "gather_push_slice",
    "classify_chunk",
    "partition_segment_by_dest",
    "fill_sorted_matrix",
]


def scatter_segment(
    grid,
    parts: ParticleArray,
    counts: np.ndarray,
    r0: int,
    node_owner: np.ndarray,
    nnodes: int,
    out_rows: np.ndarray,
):
    """Deposition work for the rank segments ``[r0, r0 + len(counts))``.

    Parameters
    ----------
    parts:
        The pooled particles of these segments (a contiguous pool slice).
    counts:
        Per-rank particle counts of the covered segments.
    r0:
        Global rank id of the first covered segment.
    node_owner:
        Global node-ownership map.
    out_rows:
        ``(nranks, nchannels, nnodes)`` output — each covered rank's
        on-rank deposition partial (its entries accumulated in pool
        order).  Callers reduce rows in rank order via
        :func:`reduce_rank_rows`.

    Returns
    -------
    (cic, entries_per_rank, uniq_per_rank, messages):
        ``cic`` — the ``(nodes, weights)`` CIC evaluation (reused by the
        gather); ``entries_per_rank`` / ``uniq_per_rank`` — ghost-table
        tallies per covered rank; ``messages`` — per covered rank, a
        list of ``(owner, ids, values)`` coalesced ghost messages with
        node ids ascending inside each message.
    """
    nranks = int(counts.shape[0])
    nchannels = len(CHANNELS)
    vertices = grid.cic_vertices_weights(parts.x, parts.y)
    nodes, values = deposition_entries(grid, parts, vertices)
    flat_nodes = nodes.ravel()
    flat_values = values.reshape(nchannels, -1)
    local_rank = np.repeat(np.arange(nranks, dtype=np.int64), 4 * counts)
    owners = node_owner[flat_nodes]
    ghost = owners != (local_rank + np.int64(r0))
    ghost_idx = np.flatnonzero(ghost)
    if ghost_idx.size:
        mine_idx = np.flatnonzero(~ghost)
        nodes_mine = flat_nodes.take(mine_idx)
        values_mine = flat_values.take(mine_idx, axis=1)
        ranks_mine = local_rank.take(mine_idx)
    else:
        nodes_mine = flat_nodes
        values_mine = flat_values
        ranks_mine = local_rank

    # On-rank accumulation, one partial row per covered rank: a single
    # wide bincount keyed by (local rank, node).  Within one key the
    # entries arrive in pool order, so row r is bit-identical to a
    # per-rank bincount of rank r's entries alone.
    key_mine = ranks_mine * np.int64(nnodes) + nodes_mine
    width = nranks * nnodes
    for c in range(nchannels):
        out_rows[:, c, :] = np.bincount(
            key_mine, weights=values_mine[c], minlength=width
        ).reshape(nranks, nnodes)

    entries_per_rank = np.zeros(nranks, dtype=np.int64)
    uniq_per_rank = np.zeros(nranks, dtype=np.int64)
    messages: list[list[tuple[int, np.ndarray, np.ndarray]]] = [[] for _ in range(nranks)]
    if ghost_idx.size:
        g_ranks = local_rank.take(ghost_idx)
        g_nodes = flat_nodes.take(ghost_idx)
        g_values = flat_values.take(ghost_idx, axis=1)
        uniq_nodes, _, summed, seg = pooled_duplicate_removal(
            nnodes, nranks, g_ranks, g_nodes, g_values
        )
        entries_per_rank = np.bincount(g_ranks, minlength=nranks)
        uniq_per_rank = np.diff(seg)
        for lr in np.flatnonzero(uniq_per_rank):
            lo, hi = int(seg[lr]), int(seg[lr + 1])
            ids_r = uniq_nodes[lo:hi]
            vals_r = summed[:, lo:hi]
            owner_r = node_owner[ids_r]
            # Stable owner sort within the segment: equivalent to the
            # global stable sort by (src * p + owner) restricted to this
            # source, keeping node ids ascending inside every message.
            order = np.argsort(owner_r, kind="stable")
            ids_sorted = ids_r.take(order)
            vals_sorted = vals_r.take(order, axis=1)
            msg_uniq, msg_starts = np.unique(owner_r.take(order), return_index=True)
            bounds = np.append(msg_starts, owner_r.size)
            messages[lr] = [
                (
                    int(msg_uniq[i]),
                    np.ascontiguousarray(ids_sorted[bounds[i] : bounds[i + 1]]),
                    np.ascontiguousarray(vals_sorted[:, bounds[i] : bounds[i + 1]]),
                )
                for i in range(msg_uniq.size)
            ]
    return vertices, entries_per_rank, uniq_per_rank, messages


def reduce_rank_rows(rows: np.ndarray, p: int, acc: np.ndarray) -> np.ndarray:
    """Reduce per-rank deposition partials in ascending rank order.

    The fixed reduction order is the determinism anchor: it matches the
    looped engine's ``for r in range(p): acc += bincount(rank r)`` and is
    independent of how ranks were sharded across workers.
    """
    for r in range(p):
        acc += rows[r]
    return acc


def gather_push_slice(
    grid,
    parts: ParticleArray,
    node_values: np.ndarray,
    dt: float,
    cic: tuple[np.ndarray, np.ndarray] | None = None,
) -> None:
    """Field gather + Boris push for one contiguous pool slice, in place.

    Both operations are per-particle independent, so any slicing of the
    pool produces bit-identical results.  ``cic`` reuses the scatter's
    vertex evaluation for these particles (positions are unchanged
    between the phases).
    """
    if parts.n == 0:
        return
    if cic is None:
        cic = grid.cic_vertices_weights(parts.x, parts.y)
    nodes, weights = cic
    eb = gather_from_node_values(node_values, nodes, weights)
    boris_push(grid, parts, eb[:3], eb[3:], dt)


def classify_chunk(
    keys: np.ndarray,
    rank_of: np.ndarray,
    lows: np.ndarray,
    highs: np.ndarray,
    splitters: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Incremental-sort classification of one chunk of elements.

    Returns ``(dest, same)``: the destination rank under the previous
    epoch's splitters and the still-in-own-bucket mask.  Pure
    per-element work (binary search + two comparisons).
    """
    dest = np.searchsorted(splitters, keys, side="left").astype(np.int64)
    same = (dest == rank_of) & (keys >= lows) & (keys <= highs)
    return dest, same


def partition_segment_by_dest(dest: np.ndarray):
    """Stable destination sort of one source-rank segment.

    Returns ``(order, uniq_dests, starts)`` — identical to restricting
    the pooled global stable sort by ``src * p + dest`` to this source
    segment (every key in a segment shares the ``src`` term).
    """
    order = np.argsort(dest, kind="stable")
    uniq, starts = np.unique(dest.take(order), return_index=True)
    return order, uniq, starts


def fill_sorted_matrix(parts: ParticleArray, order: np.ndarray, out: np.ndarray) -> None:
    """Write ``parts`` rows permuted by ``order`` into a transport matrix.

    Equivalent to ``parts.to_matrix().take(order, axis=0)`` without the
    intermediate copy; ``out`` is ``(n, 9)`` float64 (ids are cast, exact
    up to 2**53).
    """
    for j, name in enumerate(MATRIX_COLUMNS):
        out[:, j] = getattr(parts, name)[order]
