"""Shared-memory arena: named numpy segments visible to forked workers.

The multicore flat backend keeps every *large* array — the pooled
particle columns, the node-ownership map, per-phase scratch buffers —
in ``multiprocessing.shared_memory`` blocks so the persistent worker
processes operate on the same physical pages as the main process.  Only
tiny :class:`ShmArray` descriptors (block name, dtype, shape, byte
offset) ever cross the task pipes; particle data is never pickled.

Lifecycle rules (the fork-safety contract of DESIGN.md §5.5):

* The **main process** owns every block: :class:`SharedArena` creates,
  tracks, and unlinks them.  Blocks are *versioned by name* — replacing
  a logical buffer (e.g. the particle pool after a migration) allocates
  a fresh block with a new serial and unlinks the old one.  On Linux an
  unlinked block stays mapped in any worker that still holds it, so
  eager unlinking is safe.
* **Workers** only ever attach by name through :class:`ShmAttachCache`
  and never unlink.  Python's ``resource_tracker`` would otherwise
  double-unlink attached blocks at worker exit; the cache unregisters
  each attachment (or uses ``track=False`` where available, 3.13+).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

import numpy as np

__all__ = [
    "ShmArray",
    "SharedArena",
    "ShmAttachCache",
    "shared_memory_available",
    "disable_resource_tracking",
]


def _open_shared_memory(name: str | None, create: bool, size: int = 0):
    """Open a block: tracked when creating (so an abnormal main-process
    exit still reclaims it), untracked when attaching (workers must
    never unlink; ``SharedMemory.unlink`` itself unregisters cleanly)."""
    from multiprocessing import shared_memory

    if create:
        return shared_memory.SharedMemory(name=name, create=True, size=size)
    try:
        return shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pragma: no cover - Python < 3.13
        shm = shared_memory.SharedMemory(name=name)
        _untrack(shm)
        return shm


def _untrack(shm) -> None:  # pragma: no cover - Python < 3.13 only
    """Stop the resource tracker from unlinking an *attached* block."""
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def disable_resource_tracking() -> None:
    """Neutralize this process's resource-tracker calls (workers only).

    Forked workers share the main process's tracker daemon and its
    per-resource *set* of names.  On Python < 3.13 every attach
    registers the name again and the subsequent untrack removes it —
    including the main process's own registration, so the owner's
    ``unlink`` later KeyErrors in the tracker.  Workers never create
    blocks, so inside a worker both calls can simply be no-ops.
    """
    from multiprocessing import resource_tracker

    resource_tracker.register = lambda *a, **kw: None
    resource_tracker.unregister = lambda *a, **kw: None


def shared_memory_available() -> bool:
    """Probe whether ``multiprocessing.shared_memory`` actually works.

    Creates, writes, and unlinks a tiny block; any failure (missing
    ``/dev/shm``, sandbox denial, unsupported platform) reports False so
    callers can fall back to the in-process path instead of crashing.
    """
    try:
        shm = _open_shared_memory(None, create=True, size=16)
        try:
            shm.buf[0] = 1
            ok = shm.buf[0] == 1
        finally:
            shm.close()
            shm.unlink()
        return bool(ok)
    except Exception:
        return False


@dataclass(frozen=True)
class ShmArray:
    """Picklable handle to a numpy array living in a shared block.

    ``name`` is the shared-memory block; the array is ``shape``/``dtype``
    starting ``offset`` bytes into the block.  This is the *only* form in
    which the backend ever references bulk data across the task pipes.
    """

    name: str
    dtype: str
    shape: tuple
    offset: int = 0

    @property
    def nbytes(self) -> int:
        return int(np.dtype(self.dtype).itemsize * int(np.prod(self.shape, dtype=np.int64)))


class SharedArena:
    """Main-process owner of named shared blocks.

    ``alloc`` hands back a writable numpy view plus its :class:`ShmArray`
    descriptor.  Logical names version automatically: allocating
    ``"pool"`` again creates ``...pool-<serial+1>`` and unlinks the old
    block, so stale descriptors held by in-flight tasks can never alias
    fresh data.
    """

    def __init__(self, tag: str = "flat") -> None:
        self._tag = tag
        self._serial = 0
        #: logical name -> (SharedMemory, ShmArray of the whole block)
        self._blocks: dict[str, object] = {}
        self._pid = os.getpid()

    # ------------------------------------------------------------------
    def alloc(self, logical: str, nbytes: int, *, fresh: bool = False):
        """(Re)allocate the block backing ``logical``; returns the block.

        Reuses the existing block when it is already big enough (scratch
        buffers are monotonic in practice); otherwise allocates a fresh
        versioned block and unlinks the predecessor.  ``fresh=True``
        forces a new block even when the old one is big enough — required
        when the *source* of the impending copy may be a view of the old
        block (pool rebuilds), where in-place reuse would corrupt it.
        """
        existing = self._blocks.get(logical)
        if existing is not None and existing.size >= nbytes and not fresh:
            return existing
        self._serial += 1
        name = f"repro-{self._pid}-{self._tag}-{logical}-{self._serial}"
        shm = _open_shared_memory(name, create=True, size=max(int(nbytes), 1))
        if existing is not None:
            existing.close()
            try:
                existing.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
        self._blocks[logical] = shm
        return shm

    def array(self, logical: str, shape: tuple, dtype) -> tuple[np.ndarray, ShmArray]:
        """Allocate (or reuse) ``logical`` sized for one ``shape`` array."""
        dtype = np.dtype(dtype)
        nbytes = int(dtype.itemsize * int(np.prod(shape, dtype=np.int64)))
        shm = self.alloc(logical, nbytes)
        arr = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
        desc = ShmArray(name=shm.name, dtype=dtype.str, shape=tuple(int(s) for s in shape))
        return arr, desc

    def columns(self, logical: str, specs: list[tuple[tuple, object]], *, fresh: bool = False):
        """Lay several arrays out back-to-back in one block.

        ``specs`` is a list of ``(shape, dtype)``; returns a list of
        ``(ndarray, ShmArray)`` pairs sharing the block, each descriptor
        carrying its byte offset.
        """
        dtypes = [np.dtype(dt) for _, dt in specs]
        sizes = [
            int(dt.itemsize * int(np.prod(shape, dtype=np.int64)))
            for (shape, _), dt in zip(specs, dtypes)
        ]
        shm = self.alloc(logical, sum(sizes), fresh=fresh)
        out = []
        offset = 0
        for (shape, _), dt, size in zip(specs, dtypes, sizes):
            arr = np.ndarray(shape, dtype=dt, buffer=shm.buf, offset=offset)
            out.append(
                (
                    arr,
                    ShmArray(
                        name=shm.name,
                        dtype=dt.str,
                        shape=tuple(int(s) for s in shape),
                        offset=offset,
                    ),
                )
            )
            offset += size
        return out

    def publish(self, logical: str, arr: np.ndarray) -> ShmArray:
        """Copy ``arr`` into the arena and return its descriptor."""
        view, desc = self.array(logical, arr.shape, arr.dtype)
        view[...] = arr
        return desc

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unlink every live block (idempotent)."""
        for shm in self._blocks.values():
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass
            except Exception:  # pragma: no cover - interpreter teardown
                pass
        self._blocks.clear()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        self.close()


class ShmAttachCache:
    """Worker-side attach-by-name cache.

    Attaching a block is a syscall + mmap; workers reuse attachments
    across tasks and evict least-recently-used blocks (unlinked blocks
    release their pages only once the last attachment closes).
    """

    def __init__(self, capacity: int = 32) -> None:
        self._capacity = capacity
        self._blocks: dict[str, object] = {}

    def get(self, desc: ShmArray) -> np.ndarray:
        """Numpy view of the descriptor's array (attaching if needed)."""
        shm = self._blocks.get(desc.name)
        if shm is None:
            shm = _open_shared_memory(desc.name, create=False)
            self._blocks[desc.name] = shm
            while len(self._blocks) > self._capacity:
                oldest = next(iter(self._blocks))
                if oldest == desc.name:
                    break
                self._blocks.pop(oldest).close()
        else:
            # refresh LRU position
            self._blocks[desc.name] = self._blocks.pop(desc.name)
        return np.ndarray(
            desc.shape, dtype=np.dtype(desc.dtype), buffer=shm.buf, offset=desc.offset
        )

    def close(self) -> None:
        for shm in self._blocks.values():
            try:
                shm.close()
            except Exception:  # pragma: no cover - teardown
                pass
        self._blocks.clear()
