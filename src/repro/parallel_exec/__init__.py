"""Multicore shared-memory execution backend for the flat engine.

Shards the segment-offset :class:`~repro.particles.arrays.ParticlePool`
across a persistent pool of forked worker processes operating on
``multiprocessing.shared_memory``-backed numpy segments.  Worker
parallelism is an *execution detail*: virtual-machine accounting, comm
statistics, RNG streams, checkpoints, and telemetry are computed in the
main process exactly as the in-process engines compute them, so results
are bit-identical for every worker count (DESIGN.md §5.5).

Entry point: :func:`create_backend` (graceful ``None`` fallback), wired
through ``Simulation(config, workers=N)`` / ``repro run --workers N``.
"""

from repro.parallel_exec.backend import FlatBackend, create_backend, resolve_workers
from repro.parallel_exec.pool import WorkerError, WorkerPool, live_worker_pids
from repro.parallel_exec.shm import (
    SharedArena,
    ShmArray,
    ShmAttachCache,
    shared_memory_available,
)

__all__ = [
    "FlatBackend",
    "create_backend",
    "resolve_workers",
    "WorkerPool",
    "WorkerError",
    "live_worker_pids",
    "SharedArena",
    "ShmArray",
    "ShmAttachCache",
    "shared_memory_available",
]
