"""Multicore backend of the flat engine: sharded pool, shared memory.

:class:`FlatBackend` owns a :class:`~repro.parallel_exec.shm.SharedArena`
(the particle pool's columns plus per-phase scratch buffers live in
named shared-memory blocks) and a persistent
:class:`~repro.parallel_exec.pool.WorkerPool`.  Each parallel phase
shards the pool's rank segments into contiguous ranges balanced by
particle count and dispatches one task per worker; all virtual-machine
accounting (clocks, op counters, comm stats, ghost-table stats) stays in
the main process, so results are bit-identical to the serial flat engine
for every worker count (DESIGN.md §5.5).

Construction goes through :func:`create_backend`, which degrades
gracefully: without usable shared memory, without ``fork``, or with
``workers <= 1`` it warns once and returns ``None`` — callers then run
the ordinary in-process flat path with identical results.
"""

from __future__ import annotations

import multiprocessing
import os
import warnings
import weakref

import numpy as np

from repro.parallel_exec.kernels import classify_chunk
from repro.parallel_exec.pool import WorkerError, WorkerPool
from repro.parallel_exec.shm import SharedArena, shared_memory_available
from repro.particles.arrays import MATRIX_COLUMNS, ParticleArray, ParticlePool
from repro.pic.deposition import CHANNELS
from repro.util.errors import InvalidRankError

__all__ = ["FlatBackend", "create_backend", "resolve_workers"]

#: fallback reasons already warned about (one warning per process each)
_warned: set[str] = set()


def _warn_once(reason: str) -> None:
    if reason not in _warned:
        _warned.add(reason)
        warnings.warn(
            f"multicore flat backend unavailable ({reason}); "
            "falling back to the in-process flat engine (results identical)",
            RuntimeWarning,
            stacklevel=3,
        )


def resolve_workers(spec) -> int:
    """Normalize a ``--workers`` value: int, numeric string, or ``"auto"``.

    ``"auto"`` resolves to the usable CPU count; ``0``/``1``/``None``
    mean in-process execution.
    """
    if spec is None:
        return 0
    if isinstance(spec, str):
        if spec.strip().lower() == "auto":
            try:
                return len(os.sched_getaffinity(0))
            except (AttributeError, OSError):  # pragma: no cover - non-Linux
                return os.cpu_count() or 1
        spec = int(spec)
    n = int(spec)
    if n < 0:
        raise ValueError(f"workers must be >= 0, got {n}")
    return n


def create_backend(workers, grid, arena_tag: str = "flat", reason_sink=None):
    """Build a :class:`FlatBackend`, or ``None`` with one warning.

    ``None`` (in-process execution) is returned when ``workers`` resolves
    to 0 or 1, when the platform lacks ``fork`` or usable
    ``multiprocessing.shared_memory``, or when worker startup fails —
    never an exception, and never a silent change of results.

    ``reason_sink`` (optional ``callable(str)``) receives the fallback
    reason on *every* degraded construction — unlike the
    ``RuntimeWarning``, which fires once per process per reason — so
    callers (``Simulation``) can surface the degradation in results and
    telemetry instead of relying on a transient warning.
    """

    def fallback(reason: str):
        if reason_sink is not None:
            reason_sink(reason)
        _warn_once(reason)
        return None

    n = resolve_workers(workers)
    if n <= 1:
        return None
    if "fork" not in multiprocessing.get_all_start_methods():
        return fallback("no fork start method on this platform")
    if not shared_memory_available():
        return fallback("multiprocessing.shared_memory is not usable")
    try:
        return FlatBackend(n, grid, arena_tag=arena_tag)
    except Exception as exc:  # pragma: no cover - startup race/oddity
        return fallback(f"worker startup failed: {exc}")


def _shutdown(workers: WorkerPool, arena: SharedArena) -> None:
    workers.close()
    arena.close()


class FlatBackend:
    """Worker-parallel execution of the flat engine's hot kernels.

    The backend is an *execution detail*: it owns no simulation state
    beyond the shared-memory residency of the current
    :class:`~repro.particles.arrays.ParticlePool` (pools must be built
    through :meth:`pool_from_ranks` / :meth:`pool_from_matrices` so
    worker-side in-place pushes land in the caller's arrays).  It is
    rank-count agnostic — scratch buffers resize lazily — so one backend
    serves a simulation across rank-failure shrinks.
    """

    def __init__(self, nworkers: int, grid, *, arena_tag: str = "flat") -> None:
        self.grid = grid
        self.arena = SharedArena(tag=arena_tag)
        self.workers = WorkerPool(nworkers, (grid.nx, grid.ny, grid.lx, grid.ly))
        self._pool: ParticlePool | None = None
        self._cols: dict | None = None
        self._version = 0
        self._finalizer = weakref.finalize(self, _shutdown, self.workers, self.arena)
        # surface fork/pipe breakage at construction, not mid-run
        self.workers.run([(w, "ping", {}) for w in range(self.workers.nworkers)])

    @property
    def nworkers(self) -> int:
        return self.workers.nworkers

    # ------------------------------------------------------------------
    # shared-memory pool construction
    # ------------------------------------------------------------------
    def _alloc_pool(self, total: int) -> tuple[ParticleArray, dict]:
        """Uninitialized pool columns in one fresh shared block.

        ``fresh=True`` is load-bearing: rebuild sources are often views
        of the previous pool block, so in-place block reuse would
        corrupt them mid-copy.
        """
        specs = [((total,), np.float64)] * 8 + [((total,), np.int64)]
        pairs = self.arena.columns("pool", specs, fresh=True)
        arrays = [arr for arr, _ in pairs]
        cols = {
            name: desc for (_, desc), name in zip(pairs, ParticleArray.__slots__)
        }
        return ParticleArray(*arrays), cols

    def _register(self, pool: ParticlePool, cols: dict) -> None:
        self._pool = pool
        self._cols = cols
        self._version += 1

    def _require_cols(self, pool: ParticlePool) -> dict:
        if pool is not self._pool:
            raise WorkerError(
                "pool was not built through this backend "
                "(use pool_from_ranks/pool_from_matrices)"
            )
        return self._cols

    def pool_from_ranks(self, parts: list[ParticleArray]) -> ParticlePool:
        """Shared-memory equivalent of :meth:`ParticlePool.from_ranks`."""
        counts = np.array([p.n for p in parts], dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(counts)))
        array, cols = self._alloc_pool(int(offsets[-1]))
        for name in ParticleArray.__slots__:
            np.concatenate(
                [getattr(p, name) for p in parts], out=getattr(array, name)
            )
        pool = ParticlePool(array, offsets)
        self._register(pool, cols)
        return pool

    def pool_from_matrices(self, matrices: list[np.ndarray]) -> ParticlePool:
        """Shared-memory equivalent of :meth:`ParticlePool.from_matrices`."""
        ncols = len(MATRIX_COLUMNS)
        mats = [np.asarray(m, dtype=np.float64).reshape(-1, ncols) for m in matrices]
        counts = np.array([m.shape[0] for m in mats], dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(counts)))
        array, cols = self._alloc_pool(int(offsets[-1]))
        for j, name in enumerate(MATRIX_COLUMNS):
            col = np.concatenate([m[:, j] for m in mats]) if mats else np.empty(0)
            if name == "ids":
                array.ids[:] = np.round(col).astype(np.int64)
            else:
                np.copyto(getattr(array, name), col)
        pool = ParticlePool(array, offsets)
        self._register(pool, cols)
        return pool

    @property
    def pool_version(self) -> int:
        return self._version

    # ------------------------------------------------------------------
    # sharding
    # ------------------------------------------------------------------
    def _shards(self, counts: np.ndarray) -> list[tuple[int, int]]:
        """Contiguous rank ranges covering ``[0, p)``, balanced by count.

        Every rank lands in exactly one shard (zero-particle ranks
        included, so scratch rows for them are always freshly written);
        shard boundaries depend only on ``counts`` and the worker count,
        and the per-rank reduction order downstream makes results
        independent of them.
        """
        p = int(counts.shape[0])
        k = max(min(self.nworkers, p), 1)
        cum = np.concatenate(([0], np.cumsum(counts, dtype=np.int64)))
        total = int(cum[-1])
        targets = (np.arange(1, k, dtype=np.int64) * total) // k
        cuts = np.searchsorted(cum, targets, side="left")
        bounds = np.concatenate(([0], cuts, [p]))
        bounds = np.maximum.accumulate(np.clip(bounds, 0, p))
        return [
            (int(bounds[i]), int(bounds[i + 1]))
            for i in range(k)
            if bounds[i + 1] > bounds[i]
        ]

    # ------------------------------------------------------------------
    # phase fan-outs
    # ------------------------------------------------------------------
    def scatter(self, pool: ParticlePool, node_owner: np.ndarray, nnodes: int):
        """Worker-parallel CIC deposition over the pool's rank segments.

        Returns ``(rows, entries_per_rank, uniq_per_rank, messages)``:
        the shared ``(p, nchannels, nnodes)`` per-rank partial rows (to
        be reduced in rank order by the caller), ghost-table tallies, and
        per-rank coalesced ghost messages — exactly the intermediates the
        serial flat scatter computes.
        """
        cols = self._require_cols(pool)
        p = pool.p
        counts = pool.counts
        rows, rows_desc = self.arena.array("rows", (p, len(CHANNELS), nnodes), np.float64)
        owner_desc = self.arena.publish("owner", np.ascontiguousarray(node_owner))
        offsets = np.asarray(pool.offsets, dtype=np.int64)
        shards = self._shards(counts)
        tasks = [
            (
                w,
                "scatter",
                dict(
                    cols=cols,
                    offsets=offsets,
                    r0=r0,
                    r1=r1,
                    owner=owner_desc,
                    nnodes=int(nnodes),
                    rows=rows_desc,
                    version=self._version,
                ),
            )
            for w, (r0, r1) in enumerate(shards)
        ]
        results = self.workers.run(tasks)
        entries = np.zeros(p, dtype=np.int64)
        uniq = np.zeros(p, dtype=np.int64)
        messages: list[list] = [[] for _ in range(p)]
        for (r0, r1), (ent, unq, msgs) in zip(shards, results):
            entries[r0:r1] = ent
            uniq[r0:r1] = unq
            for lr, msg in enumerate(msgs):
                messages[r0 + lr] = msg
        return rows, entries, uniq, messages

    def gather_push(self, pool: ParticlePool, node_values: np.ndarray, dt: float) -> None:
        """Worker-parallel field gather + Boris push, in place in the pool.

        Reuses each worker's cached CIC evaluation from the scatter of
        the same pool version when available.
        """
        cols = self._require_cols(pool)
        nv_desc = self.arena.publish("node_values", np.ascontiguousarray(node_values))
        offsets = np.asarray(pool.offsets, dtype=np.int64)
        tasks = [
            (
                w,
                "gather_push",
                dict(
                    cols=cols,
                    offsets=offsets,
                    r0=r0,
                    r1=r1,
                    node_values=nv_desc,
                    dt=float(dt),
                    version=self._version,
                ),
            )
            for w, (r0, r1) in enumerate(self._shards(pool.counts))
        ]
        self.workers.run(tasks)

    def migration_sends(self, pool: ParticlePool, cell_owner: np.ndarray):
        """Worker-parallel Eulerian migration partitioning.

        Workers compute each particle's destination (owner of its cell),
        destination-stable-sort every rank segment, and write the packed
        transport rows into a shared scratch matrix; the returned
        per-source send dicts are byte-identical to
        ``exchange_by_destination_pooled``'s partitioning of the same
        pool (views into the scratch — consumed before the next call).
        """
        cols = self._require_cols(pool)
        p = pool.p
        scratch, scratch_desc = self.arena.array(
            "migrate", (pool.n, len(MATRIX_COLUMNS)), np.float64
        )
        owner_desc = self.arena.publish("owner", np.ascontiguousarray(cell_owner))
        offsets = np.asarray(pool.offsets, dtype=np.int64)
        shards = self._shards(pool.counts)
        tasks = [
            (
                w,
                "migrate",
                dict(
                    cols=cols,
                    offsets=offsets,
                    r0=r0,
                    r1=r1,
                    owner=owner_desc,
                    scratch=scratch_desc,
                ),
            )
            for w, (r0, r1) in enumerate(shards)
        ]
        results = self.workers.run(tasks)
        sends: list[dict[int, np.ndarray]] = [dict() for _ in range(p)]
        for (r0, r1), per_rank in zip(shards, results):
            for lr, (unq, starts) in enumerate(per_rank):
                r = r0 + lr
                if unq.size == 0:
                    continue
                if unq[0] < 0 or unq[-1] >= p:
                    bad = unq[(unq < 0) | (unq >= p)]
                    raise InvalidRankError(
                        f"exchange_by_destination_pooled: destination out of "
                        f"range [0, {p}) in rank {r}'s segment "
                        f"(destinations {bad.tolist()[:3]})"
                    )
                lo = int(offsets[r])
                bounds = np.append(starts, int(offsets[r + 1]) - lo)
                for i in range(unq.size):
                    sends[r][int(unq[i])] = scratch[
                        lo + int(bounds[i]) : lo + int(bounds[i + 1])
                    ]
        return sends

    def classify(
        self,
        keys: np.ndarray,
        rank_of: np.ndarray,
        lows: np.ndarray,
        highs: np.ndarray,
        splitters: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Worker-parallel incremental-sort classification.

        Pure per-element integer work — any chunking is bit-identical to
        the serial ``searchsorted`` pass this replaces.
        """
        n = int(keys.shape[0])
        if n < 4 * self.nworkers:  # dispatch overhead dwarfs the work
            return classify_chunk(keys, rank_of, lows, highs, splitters)
        ins = self.arena.columns(
            "classify_in",
            [
                ((n,), keys.dtype),
                ((n,), rank_of.dtype),
                ((n,), lows.dtype),
                ((n,), highs.dtype),
            ],
        )
        for (view, _), src in zip(ins, (keys, rank_of, lows, highs)):
            view[...] = src
        outs = self.arena.columns(
            "classify_out", [((n,), np.int64), ((n,), np.bool_)]
        )
        (dest_view, dest_desc), (same_view, same_desc) = outs
        k = self.nworkers
        bounds = (np.arange(k + 1, dtype=np.int64) * n) // k
        tasks = [
            (
                w,
                "classify",
                dict(
                    keys=ins[0][1],
                    rank_of=ins[1][1],
                    lows=ins[2][1],
                    highs=ins[3][1],
                    splitters=np.ascontiguousarray(splitters),
                    lo=int(bounds[w]),
                    hi=int(bounds[w + 1]),
                    dest=dest_desc,
                    same=same_desc,
                ),
            )
            for w in range(k)
            if bounds[w + 1] > bounds[w]
        ]
        self.workers.run(tasks)
        return dest_view.copy(), same_view.copy()

    # ------------------------------------------------------------------
    # profiling passthrough (repro.obs.profile)
    # ------------------------------------------------------------------
    def set_profiling(self, enabled: bool) -> None:
        """Toggle in-worker handler timing (see ``WorkerPool.set_profiling``)."""
        self.workers.set_profiling(enabled)

    def drain_profile(self) -> dict:
        """Collect and clear worker handler timings, summed over workers."""
        return self.workers.drain_profile()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop the workers and unlink every shared block (idempotent)."""
        self._finalizer()

    def __repr__(self) -> str:
        return f"FlatBackend(workers={self.nworkers}, grid={self.grid!r})"
