"""Command-line interface: run experiments without writing Python.

Usage examples::

    python -m repro run --nx 64 --ny 32 -n 8192 -p 16 \
        --distribution irregular --policy dynamic --iterations 200
    python -m repro run --case fig20 --policy periodic:25
    python -m repro run --iterations 100 \
        --checkpoint-every 25 --checkpoint-path run.ckpt.npz
    python -m repro resume run.ckpt.npz --iterations 100
    python -m repro run --iterations 100 --trace run.trace.json --metrics run.jsonl
    python -m repro run --iterations 100 --profile prof/ --prom-dir metrics/
    python -m repro report run.jsonl --trace run.trace.json
    python -m repro report --batch obs/
    python -m repro scenarios
    python -m repro schemes
    python -m repro policies
    python -m repro bench run --suite smoke --json
    python -m repro bench policy --smoke --output BENCH_policies.json
    python -m repro bench compare BENCH_old.json BENCH_smoke.json
    python -m repro submit jobs.json --jobs 4 --retries 2 --cache .repro-cache
    python -m repro submit jobs.json --obs-dir obs/ --prom-dir metrics/
    python -m repro top obs/service.jsonl
    python -m repro jobs batch_report.json --stream obs/service.jsonl

Exit codes: 0 success, 1 failure; ``124`` means a ``--timeout``
wall-clock watchdog expired (coreutils ``timeout(1)`` convention) — for
``repro run``/``resume`` the final checkpoint was still written when
checkpointing was configured, so the run can be resumed.
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.analysis import format_table
from repro.indexing import available_schemes
from repro.pic import Simulation, SimulationConfig, SimulationResult
from repro.workloads import FIG16_CASES, FIG17_CASE, FIG20_CASE, TABLE2_CASES
from repro.workloads.scenarios import PaperCase

__all__ = ["main", "build_parser", "EXIT_TIMEOUT"]

#: Exit code when a --timeout watchdog expired (coreutils convention).
EXIT_TIMEOUT = 124


def _all_cases() -> dict[str, PaperCase]:
    cases: dict[str, PaperCase] = {"fig17": FIG17_CASE, "fig20": FIG20_CASE}
    for case in FIG16_CASES + TABLE2_CASES:
        cases[case.name] = case
    return cases


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel-PIC reproduction of Liao/Ou/Ranka (IPPS 1996)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one simulation")
    run.add_argument("--config", help="JSON file of SimulationConfig fields (overridden by flags)")
    run.add_argument("--case", help="start from a named paper case (see `scenarios`)")
    run.add_argument("--nx", type=int, default=64)
    run.add_argument("--ny", type=int, default=32)
    run.add_argument("-n", "--particles", type=int, default=8192)
    run.add_argument("-p", "--processors", type=int, default=16)
    run.add_argument("--distribution", default="irregular",
                     choices=["uniform", "irregular", "two_stream", "ring"])
    run.add_argument("--scheme", default="hilbert")
    run.add_argument("--policy", default="dynamic",
                     help="redistribution policy spec, e.g. static | dynamic | "
                          "periodic:<k> | sar-ewma | costmodel:horizon=50 | "
                          "imbalance:threshold=1.4 | planner "
                          "(see `repro policies` for the registry)")
    run.add_argument("--movement", default="lagrangian",
                     choices=["lagrangian", "eulerian"])
    run.add_argument("--partitioning", default="independent",
                     choices=["independent", "grid", "particle", "adaptive"])
    run.add_argument("--ghost-table", default="hash", choices=["hash", "direct"])
    run.add_argument("--iterations", type=int, default=200)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--vth", type=float, default=0.05)
    run.add_argument("--field-solver", default="maxwell", choices=["maxwell", "electrostatic"])
    run.add_argument("--engine", default="flat", choices=["flat", "looped"],
                     help="execution engine: pooled flat-rank kernels or per-rank loops")
    run.add_argument("--kernel", default="era", choices=["era", "modern"],
                     help="era = paper's CIC + collocated FDTD; modern = Yee + zigzag")
    run.add_argument("--guards", default="off", choices=["off", "warn", "strict"],
                     help="invariant guards: warn reports conservation/finiteness "
                          "violations, strict raises SimulationIntegrityError")
    run.add_argument("--workers", default="0", metavar="N|auto",
                     help="worker processes for the multicore flat backend "
                          "(engine=flat, kernel=era only); 'auto' uses the "
                          "available cores; results are bit-identical for "
                          "every worker count")
    run.add_argument("--fault-plan", metavar="FILE.json",
                     help="inject machine faults from a FaultPlan JSON file "
                          "(see examples/faults.json); rank kills recover automatically")
    run.add_argument("--json", action="store_true",
                     help="emit a machine-readable JSON summary")
    run.add_argument("--save-json", metavar="PATH",
                     help="write the full result (summary + per-iteration series) to PATH")
    run.add_argument("--checkpoint-every", type=int, metavar="K",
                     help="write an exact-resume checkpoint after every K iterations")
    run.add_argument("--checkpoint-path", metavar="PATH",
                     help="checkpoint file (.npz) written by --checkpoint-every")
    run.add_argument("--trace", metavar="PATH",
                     help="write a Perfetto/Chrome trace JSON of every "
                          "(iteration, phase, rank) span on the virtual clocks")
    run.add_argument("--metrics", metavar="PATH",
                     help="write per-iteration metrics JSONL (load imbalance, "
                          "comm tallies, SAR decisions, events)")
    run.add_argument("--profile", metavar="DIR",
                     help="deterministic kernel profiling: write collapsed-stack "
                          "flamegraph files (.folded) of the hot-path sections "
                          "to DIR; results stay bit-identical")
    run.add_argument("--prom-dir", metavar="DIR",
                     help="write a Prometheus textfile-collector snapshot "
                          "(repro-run.prom) of the run's metrics registry to DIR")
    run.add_argument("--timeout", type=float, metavar="S", default=None,
                     help="wall-clock watchdog: stop after S seconds (at an "
                          "iteration boundary), write a final checkpoint if "
                          "checkpointing is on, and exit with code 124")

    resume = sub.add_parser(
        "resume", help="resume a checkpointed run exactly where it left off"
    )
    resume.add_argument("path", help="checkpoint file written by `repro run --checkpoint-every`")
    resume.add_argument("--iterations", type=int, required=True,
                        help="number of further iterations to run")
    resume.add_argument("--guards", default=None, choices=["off", "warn", "strict"],
                        help="override the checkpointed guard severity; strict also "
                             "refuses legacy format-v1 checkpoints")
    resume.add_argument("--workers", default="0", metavar="N|auto",
                        help="worker processes for the multicore flat backend; "
                             "checkpoints never record a worker count, so any "
                             "value resumes bit-identically")
    resume.add_argument("--fault-plan", metavar="FILE.json",
                        help="inject machine faults from a FaultPlan JSON file")
    resume.add_argument("--json", action="store_true",
                        help="emit a machine-readable JSON summary")
    resume.add_argument("--save-json", metavar="PATH",
                        help="write the full result (summary + per-iteration series) to PATH")
    resume.add_argument("--checkpoint-every", type=int, metavar="K",
                        help="keep checkpointing every K iterations while resumed")
    resume.add_argument("--checkpoint-path", metavar="PATH",
                        help="checkpoint file for --checkpoint-every (default: resume source)")
    resume.add_argument("--trace", metavar="PATH",
                        help="write a Perfetto/Chrome trace JSON of the resumed run")
    resume.add_argument("--metrics", metavar="PATH",
                        help="write per-iteration metrics JSONL of the resumed run")
    resume.add_argument("--profile", metavar="DIR",
                        help="write collapsed-stack flamegraph files of the "
                             "resumed run's kernel sections to DIR")
    resume.add_argument("--prom-dir", metavar="DIR",
                        help="write a Prometheus textfile snapshot of the "
                             "resumed run's metrics registry to DIR")
    resume.add_argument("--timeout", type=float, metavar="S", default=None,
                        help="wall-clock watchdog: stop after S seconds and "
                             "exit with code 124 (see `run --timeout`)")

    submit = sub.add_parser(
        "submit",
        help="run a batch of jobs under the fault-tolerant scheduler",
    )
    submit.add_argument("file",
                        help="job file: a JSON list of jobs, {'jobs': [...]}, or "
                             "a {'base': ..., 'sweep': {...}} sweep (see EXPERIMENTS.md)")
    submit.add_argument("--jobs", type=int, default=2, metavar="N",
                        help="concurrent worker processes (default 2)")
    submit.add_argument("--timeout", type=float, default=None, metavar="S",
                        help="per-job wall-clock deadline; expired attempts are "
                             "killed and retried from their last checkpoint")
    submit.add_argument("--retries", type=int, default=2, metavar="K",
                        help="retry budget per job (default 2; attempts = K+1)")
    submit.add_argument("--cache", default=".repro-cache", metavar="DIR",
                        help="content-addressed result cache root "
                             "(default .repro-cache); repeat submissions are "
                             "served bit-identically from here")
    submit.add_argument("--no-cache", action="store_true",
                        help="always recompute; do not read or write the cache")
    submit.add_argument("--max-failures", type=int, default=0, metavar="M",
                        help="circuit breaker: after M distinct job failures, "
                             "cancel the rest of the batch (0 = off)")
    submit.add_argument("--heartbeat-timeout", type=float, default=60.0, metavar="S",
                        help="kill a worker silent for S seconds (default 60)")
    submit.add_argument("--checkpoint-every", type=int, default=2, metavar="K",
                        help="worker checkpoint cadence in iterations (default 2); "
                             "retries resume from the last checkpoint")
    submit.add_argument("--workdir", default=None, metavar="DIR",
                        help="scratch dir for in-progress checkpoints "
                             "(default <cache>/work; with --no-cache, a "
                             "private temp dir removed after the batch)")
    submit.add_argument("--report", default=None, metavar="PATH",
                        help="write the batch report JSON (repro-batch/1) to PATH")
    submit.add_argument("--metrics", default=None, metavar="PATH",
                        help="write scheduler telemetry JSONL (repro-service/2)")
    submit.add_argument("--obs-dir", default=None, metavar="DIR",
                        help="observability directory: stream service.jsonl live "
                             "(tail it with `repro top`) and save each job's "
                             "metrics + trace files there, all stamped with the "
                             "batch correlation identity")
    submit.add_argument("--prom-dir", default=None, metavar="DIR",
                        help="write Prometheus textfile snapshots "
                             "(repro-batch.prom) of the batch registry to DIR, "
                             "refreshed on every scheduler tick")
    submit.add_argument("--json", action="store_true",
                        help="print the batch report JSON to stdout")

    jobs_p = sub.add_parser(
        "jobs", help="render the status table of a saved batch report"
    )
    jobs_p.add_argument("report", help="batch report JSON written by `submit --report`")
    jobs_p.add_argument("--stream", metavar="PATH",
                        help="service.jsonl of the batch (written by "
                             "`submit --obs-dir`); sources the attempts and "
                             "cache columns from the event stream")
    jobs_p.add_argument("--watch", action="store_true",
                        help="with --stream: follow the live stream like "
                             "`repro top` until the batch finishes")

    top = sub.add_parser(
        "top", help="live view of a running batch (tails its service.jsonl)"
    )
    top.add_argument("stream",
                     help="service.jsonl streamed by `submit --obs-dir DIR` "
                          "(DIR/service.jsonl)")
    top.add_argument("--interval", type=float, default=0.5, metavar="S",
                     help="refresh interval in seconds (default 0.5)")
    top.add_argument("--once", action="store_true",
                     help="render the current state once and exit (CI mode)")
    top.add_argument("--timeout", type=float, default=None, metavar="S",
                     help="give up after S seconds even if the batch is still "
                          "running")

    report = sub.add_parser(
        "report",
        help="render a telemetry report from metrics JSONL (and optionally a trace)",
    )
    report.add_argument("metrics", nargs="*",
                        help="metrics JSONL file(s) written by `run --metrics`; "
                             "two or more adds a side-by-side comparison")
    report.add_argument("--trace", metavar="PATH",
                        help="trace JSON written by `run --trace` (cross-checked "
                             "against the first metrics file)")
    report.add_argument("--batch", metavar="DIR",
                        help="aggregate a batch obs directory (`submit "
                             "--obs-dir`) instead: join the service stream with "
                             "every job's metrics and render the rollup")
    report.add_argument("--json", action="store_true",
                        help="with --batch: print the rollup document as JSON")

    sub.add_parser("scenarios", help="list the paper's experiment configurations")
    sub.add_parser("schemes", help="list registered indexing schemes")
    sub.add_parser(
        "policies",
        help="list the registered redistribution policies and their spec parameters",
    )

    verify = sub.add_parser(
        "verify",
        help="check that the parallel code matches the sequential reference",
    )
    verify.add_argument("-p", "--processors", type=int, default=4)
    verify.add_argument("--iterations", type=int, default=10)
    verify.add_argument("--scheme", default="hilbert")
    verify.add_argument("--seed", type=int, default=0)

    bench = sub.add_parser("bench", help="perf-regression harness (repro.bench)")
    bench_sub = bench.add_subparsers(dest="bench_command", required=True)

    brun = bench_sub.add_parser("run", help="run a suite and write BENCH_<suite>.json")
    brun.add_argument("--suite", default="smoke",
                      help="suite name (smoke | full | paper | all); default smoke")
    brun.add_argument("--case", action="append", default=None, metavar="NAME",
                      help="run only the named case(s); repeatable")
    brun.add_argument("--repeats", type=int, default=None,
                      help="override timed repeats per case")
    brun.add_argument("--warmup", type=int, default=None,
                      help="override untimed warmup runs per case")
    brun.add_argument("--output", metavar="PATH", default=None,
                      help="trajectory file path (default BENCH_<suite>.json in cwd)")
    brun.add_argument("--json", action="store_true",
                      help="also print the trajectory document to stdout")
    brun.add_argument("--timeout", type=float, metavar="S", default=None,
                      help="suite wall-clock watchdog: stop before the next "
                           "case once S seconds elapsed, save the partial "
                           "trajectory, and exit with code 124")

    bcmp = bench_sub.add_parser(
        "compare", help="diff two trajectory files; exit 1 on tier-1 regressions"
    )
    bcmp.add_argument("old", help="baseline BENCH_*.json")
    bcmp.add_argument("new", help="candidate BENCH_*.json")
    bcmp.add_argument("--threshold", type=float, default=0.2,
                      help="relative wall-clock slowdown that fails (default 0.2 = 20%%)")
    bcmp.add_argument("--json", action="store_true",
                      help="print the machine-readable diff")

    blist = bench_sub.add_parser("list", help="list registered cases")
    blist.add_argument("--suite", default="all", help="restrict to one suite")

    bpol = bench_sub.add_parser(
        "policy",
        help="run the policy x workload x engine matrix and crown per-workload winners",
    )
    bpol.add_argument("--policy", action="append", default=None, metavar="SPEC",
                      help="policy spec to include (repeatable; default: the full zoo)")
    bpol.add_argument("--workload", action="append", default=None,
                      metavar="CLASS",
                      help="workload class: uniform | clustered | drifting "
                           "(repeatable; default: all three)")
    bpol.add_argument("--engine", action="append", default=None,
                      metavar="ENGINE",
                      help="execution engine: flat | looped (repeatable; default: both)")
    bpol.add_argument("--smoke", action="store_true",
                      help="CI scale: fewer particles and iterations, same matrix shape")
    bpol.add_argument("--output", metavar="PATH", default="BENCH_policies.json",
                      help="matrix document path (default BENCH_policies.json)")
    bpol.add_argument("--json", action="store_true",
                      help="also print the matrix document to stdout")
    return parser


def _config_from_args(args: argparse.Namespace) -> SimulationConfig:
    kwargs = dict(
        nx=args.nx,
        ny=args.ny,
        nparticles=args.particles,
        p=args.processors,
        distribution=args.distribution,
        scheme=args.scheme,
        policy=args.policy,
        movement=args.movement,
        partitioning=args.partitioning,
        ghost_table=args.ghost_table,
        field_solver=args.field_solver,
        kernel=args.kernel,
        engine=args.engine,
        seed=args.seed,
        vth=args.vth,
        guards=args.guards,
    )
    if args.config:
        from dataclasses import fields as dataclass_fields
        from pathlib import Path

        from repro.machine.model import MachineModel

        try:
            loaded = json.loads(Path(args.config).read_text())
        except FileNotFoundError:
            raise SystemExit(f"config file not found: {args.config}")
        except json.JSONDecodeError as exc:
            raise SystemExit(f"config file {args.config} is not valid JSON: {exc}")
        if not isinstance(loaded, dict):
            raise SystemExit(f"config file {args.config} must contain a JSON object")
        # Every SimulationConfig field is a valid config key — including
        # density / dt / nbuckets, which have no CLI flag — plus "model"
        # as a preset name or full constants dict.
        valid = {f.name for f in dataclass_fields(SimulationConfig)}
        unknown = set(loaded) - valid
        if unknown:
            raise SystemExit(f"unknown config keys in {args.config}: {sorted(unknown)}")
        model = loaded.pop("model", None)
        if model is not None:
            try:
                if isinstance(model, str):
                    loaded["model"] = MachineModel.by_name(model)
                elif isinstance(model, dict):
                    loaded["model"] = MachineModel.from_dict(model)
                else:
                    raise ValueError(f"model must be a name or a dict, got {model!r}")
            except (ValueError, KeyError, TypeError) as exc:
                raise SystemExit(f"bad machine model in {args.config}: {exc}")
        kwargs.update(loaded)
        # explicit command-line flags win over the file
        defaults = build_parser().parse_args(["run"])
        for key, cli_name in (
            ("nx", "nx"), ("ny", "ny"), ("nparticles", "particles"),
            ("p", "processors"), ("distribution", "distribution"),
            ("scheme", "scheme"), ("policy", "policy"), ("movement", "movement"),
            ("partitioning", "partitioning"), ("ghost_table", "ghost_table"),
            ("field_solver", "field_solver"), ("kernel", "kernel"),
            ("engine", "engine"), ("seed", "seed"), ("vth", "vth"),
            ("guards", "guards"),
        ):
            value = getattr(args, cli_name)
            if value != getattr(defaults, cli_name):
                kwargs[key] = value
    if args.case:
        cases = _all_cases()
        if args.case not in cases:
            known = ", ".join(sorted(cases))
            raise SystemExit(f"unknown case {args.case!r}; known cases: {known}")
        kwargs.update(cases[args.case].config_kwargs())
    return SimulationConfig(**kwargs)


def _summary_dict(result: SimulationResult) -> dict:
    return {
        "iterations": len(result.records),
        "total_time": result.total_time,
        "computation_time": result.computation_time,
        "overhead": result.overhead,
        "n_redistributions": result.n_redistributions,
        "redistribution_time": result.redistribution_time,
        "n_recoveries": result.n_recoveries,
        "recovery_time": result.recovery_time,
        "phase_breakdown": result.phase_breakdown,
        "mean_iteration_time": float(np.mean(result.iteration_times))
        if result.records
        else 0.0,
    }


def _load_fault_plan(path: str | None):
    """Load ``--fault-plan`` JSON into a FaultPlan (or None)."""
    if path is None:
        return None
    from repro.machine.faults import FaultPlan

    try:
        return FaultPlan.from_json(path)
    except FileNotFoundError:
        raise SystemExit(f"fault plan file not found: {path}")
    except ValueError as exc:
        raise SystemExit(f"bad fault plan: {exc}")


def _checkpoint_args(args: argparse.Namespace, default_path=None):
    every = args.checkpoint_every
    path = args.checkpoint_path or default_path
    if every is not None and every < 1:
        raise SystemExit(f"--checkpoint-every must be >= 1, got {every}")
    if every is not None and path is None:
        raise SystemExit("--checkpoint-every requires --checkpoint-path")
    return every, path


def _emit_result(args: argparse.Namespace, result, title: str) -> int:
    if args.save_json:
        result.save_json(args.save_json)
    summary = _summary_dict(result)
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        rows = [[k, v] for k, v in summary.items() if not isinstance(v, dict)]
        print(format_table(["quantity", "value"], rows, title=title))
        print()
        for phase, seconds in sorted(summary["phase_breakdown"].items()):
            print(f"  {phase:<15s} {seconds:10.4f} s")
    return 0


def _maybe_enable_telemetry(sim: Simulation, args: argparse.Namespace) -> None:
    """Turn on the observability the command line asked for."""
    if args.trace or args.metrics or args.prom_dir:
        sim.enable_telemetry()
    if args.profile:
        sim.enable_profiling()


def _save_telemetry(sim: Simulation, args: argparse.Namespace) -> None:
    """Write the observability artifacts requested on the command line."""
    if sim.telemetry is not None:
        if args.trace:
            path = sim.telemetry.save_trace(args.trace)
            print(f"[trace written to {path}]", file=sys.stderr)
        if args.metrics:
            path = sim.telemetry.save_metrics(args.metrics)
            print(f"[metrics written to {path}]", file=sys.stderr)
        if args.prom_dir:
            from repro.obs.prom import write_prom_snapshot

            path = write_prom_snapshot(
                args.prom_dir, sim.telemetry.registry, name="repro-run.prom"
            )
            print(f"[prometheus snapshot written to {path}]", file=sys.stderr)
    if args.profile and sim.profiler is not None:
        paths = sim.save_profile(args.profile)
        print(
            f"[{len(paths)} flamegraph file(s) written to {args.profile}]",
            file=sys.stderr,
        )


def _workers_arg(args: argparse.Namespace) -> str | int:
    """Validate ``--workers`` early so errors surface as usage errors."""
    from repro.parallel_exec import resolve_workers

    try:
        resolve_workers(args.workers)
    except ValueError as exc:
        raise SystemExit(f"--workers: {exc}")
    return args.workers


def _timeout_arg(args: argparse.Namespace) -> float | None:
    if args.timeout is not None and args.timeout <= 0:
        raise SystemExit(f"--timeout must be > 0 seconds, got {args.timeout}")
    return args.timeout


def _on_run_timeout(sim: Simulation, args: argparse.Namespace, exc) -> int:
    """Watchdog expiry: save what we have, report, exit with code 124."""
    _save_telemetry(sim, args)
    sim.close()
    ck = " (final checkpoint written)" if args.checkpoint_every else ""
    print(
        f"[timeout] {exc}{ck}",
        file=sys.stderr,
    )
    return EXIT_TIMEOUT


def _cmd_run(args: argparse.Namespace) -> int:
    from repro.util.errors import JobTimeout

    config = _config_from_args(args)
    plan = _load_fault_plan(args.fault_plan)
    every, ck_path = _checkpoint_args(args)
    sim = Simulation(config, workers=_workers_arg(args))
    if plan is not None:
        sim.install_faults(plan)
    _maybe_enable_telemetry(sim, args)
    try:
        result = sim.run(
            args.iterations,
            checkpoint_every=every,
            checkpoint_path=ck_path,
            walltime=_timeout_arg(args),
        )
    except JobTimeout as exc:
        return _on_run_timeout(sim, args, exc)
    _save_telemetry(sim, args)
    sim.close()
    return _emit_result(
        args, result, f"{args.iterations} iterations, p={config.p}"
    )


def _cmd_resume(args: argparse.Namespace) -> int:
    from repro.pic.checkpoint import CheckpointError
    from repro.util.errors import JobTimeout

    if args.iterations < 0:
        raise SystemExit(f"--iterations must be >= 0, got {args.iterations}")
    plan = _load_fault_plan(args.fault_plan)
    every, ck_path = _checkpoint_args(args, default_path=args.path)
    try:
        sim = Simulation.from_checkpoint(
            args.path, guards=args.guards, workers=_workers_arg(args)
        )
    except FileNotFoundError as exc:
        raise SystemExit(str(exc))
    except CheckpointError as exc:
        raise SystemExit(f"cannot resume: {exc}")
    if plan is not None:
        sim.install_faults(plan)
    _maybe_enable_telemetry(sim, args)
    try:
        result = sim.run(
            args.iterations,
            checkpoint_every=every,
            checkpoint_path=ck_path,
            walltime=_timeout_arg(args),
        )
    except JobTimeout as exc:
        return _on_run_timeout(sim, args, exc)
    _save_telemetry(sim, args)
    sim.close()
    return _emit_result(
        args,
        result,
        f"resumed +{args.iterations} iterations (total {sim.iteration}), p={sim.config.p}",
    )


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service import Scheduler, load_jobs, render_report

    try:
        jobs = load_jobs(args.file)
    except FileNotFoundError:
        raise SystemExit(f"job file not found: {args.file}")
    except ValueError as exc:
        raise SystemExit(f"bad job file: {exc}")
    if not jobs:
        raise SystemExit(f"job file {args.file} contains no jobs")
    if args.jobs < 1:
        raise SystemExit(f"--jobs must be >= 1, got {args.jobs}")
    if args.retries < 0:
        raise SystemExit(f"--retries must be >= 0, got {args.retries}")
    if args.timeout is not None and args.timeout <= 0:
        raise SystemExit(f"--timeout must be > 0 seconds, got {args.timeout}")
    if args.max_failures < 0:
        raise SystemExit(f"--max-failures must be >= 0, got {args.max_failures}")
    if args.checkpoint_every < 1:
        raise SystemExit(f"--checkpoint-every must be >= 1, got {args.checkpoint_every}")

    def progress(text: str) -> None:
        print(f"[submit] {text}", file=sys.stderr, flush=True)

    scheduler = Scheduler(
        workers=args.jobs,
        cache=None if args.no_cache else args.cache,
        workdir=args.workdir,
        timeout=args.timeout,
        heartbeat_timeout=args.heartbeat_timeout,
        retries=args.retries,
        max_failures=args.max_failures,
        checkpoint_every=args.checkpoint_every,
        progress=progress,
        obs_dir=args.obs_dir,
        prom_dir=args.prom_dir,
    )
    report = scheduler.run(jobs)
    if args.report:
        from repro.util.atomic_io import atomic_write_json

        path = atomic_write_json(args.report, report)
        print(f"[report written to {path}]", file=sys.stderr)
    if args.metrics:
        path = scheduler.telemetry.save(args.metrics)
        print(f"[metrics written to {path}]", file=sys.stderr)
    if args.json:
        print(json.dumps(report, indent=2))
    else:
        print(render_report(report))
    return 0 if report["ok"] else 1


def _cmd_jobs(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.service import render_report

    if args.watch and not args.stream:
        raise SystemExit("--watch requires --stream")
    try:
        report = json.loads(Path(args.report).read_text())
    except FileNotFoundError:
        raise SystemExit(f"batch report not found: {args.report}")
    except json.JSONDecodeError as exc:
        raise SystemExit(f"batch report {args.report} is not valid JSON: {exc}")
    events = None
    if args.stream:
        from repro.obs.top import read_stream

        if not Path(args.stream).exists():
            raise SystemExit(f"service stream not found: {args.stream}")
        if args.watch:
            from repro.obs.top import top_loop

            top_loop(args.stream)
        events, _ = read_stream(args.stream)
    try:
        print(render_report(report, events=events))
    except (ValueError, KeyError, TypeError) as exc:
        raise SystemExit(f"bad batch report: {exc}")
    return 0 if report.get("ok") else 1


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.top import top_loop

    if args.interval <= 0:
        raise SystemExit(f"--interval must be > 0 seconds, got {args.interval}")
    if args.timeout is not None and args.timeout <= 0:
        raise SystemExit(f"--timeout must be > 0 seconds, got {args.timeout}")
    view = top_loop(
        args.stream,
        interval=args.interval,
        once=args.once,
        timeout=args.timeout,
    )
    return 0 if (view.finished or args.once) else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.telemetry import TelemetrySchemaError, report_from_files

    if args.batch:
        from repro.obs.batch import aggregate_batch, render_batch_rollup

        try:
            rollup = aggregate_batch(args.batch)
        except FileNotFoundError as exc:
            raise SystemExit(f"batch file not found: {exc.filename or exc}")
        except TelemetrySchemaError as exc:
            raise SystemExit(f"bad batch directory: {exc}")
        if args.json:
            print(json.dumps(rollup, indent=2))
        else:
            print(render_batch_rollup(rollup))
        if rollup["correlation"]["orphans"]:
            return 1
        if not args.metrics:
            return 0
    elif not args.metrics:
        raise SystemExit("give metrics JSONL file(s) or --batch DIR")
    try:
        print(report_from_files(args.metrics, trace_path=args.trace))
    except FileNotFoundError as exc:
        raise SystemExit(f"telemetry file not found: {exc.filename or exc}")
    except TelemetrySchemaError as exc:
        raise SystemExit(f"bad telemetry file: {exc}")
    return 0


def _cmd_scenarios() -> int:
    rows = [
        [name, f"{c.nx}x{c.ny}", c.nparticles, c.p, c.distribution, c.iterations]
        for name, c in sorted(_all_cases().items())
    ]
    print(format_table(
        ["name", "mesh", "particles", "p", "distribution", "iterations"],
        rows,
        title="Paper experiment configurations",
    ))
    return 0


def _cmd_schemes() -> int:
    for name in available_schemes():
        print(name)
    return 0


def _cmd_policies() -> int:
    from repro.core.policies import available_policies, policy_entry

    rows = []
    for name in available_policies():
        cls = policy_entry(name)
        if cls.PARAMS:
            params = ", ".join(
                f"{p}" + ("" if param.required else f"={param.fmt(param.default)}")
                for p, param in cls.PARAMS.items()
            )
        else:
            params = "-"
        doc = (cls.__doc__ or "").strip().splitlines()[0]
        rows.append([name, cls.__name__, params, doc])
    print(format_table(
        ["spec", "class", "parameters", "description"],
        rows,
        title="registered redistribution policies",
    ))
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    """Run parallel vs sequential on a small problem and compare."""
    from repro.core import ParticlePartitioner
    from repro.machine import VirtualMachine
    from repro.mesh import CurveBlockDecomposition, Grid2D
    from repro.particles import gaussian_blob
    from repro.pic import ParallelPIC, SequentialPIC

    grid = Grid2D(32, 16)
    particles = gaussian_blob(grid, 2048, rng=args.seed)
    vm = VirtualMachine(args.processors)
    decomp = CurveBlockDecomposition(grid, args.processors, args.scheme)
    local = ParticlePartitioner(grid, args.scheme).initial_partition(
        particles, args.processors
    )
    par = ParallelPIC(vm, grid, decomp, local)
    seq = SequentialPIC(grid, particles.copy(), dt=par.dt)
    for _ in range(args.iterations):
        par.step()
        seq.step()
    a = par.all_particles()
    oa = np.argsort(a.ids)
    ob = np.argsort(seq.particles.ids)
    dx = float(np.abs(a.x[oa] - seq.particles.x[ob]).max()) if a.n else 0.0
    dez = float(np.abs(par.fields.ez - seq.fields.ez).max())
    ok = dx < 1e-9 and dez < 1e-9
    print(f"max |x_par - x_seq|  = {dx:.3e}")
    print(f"max |Ez_par - Ez_seq| = {dez:.3e}")
    print("VERIFY OK" if ok else "VERIFY FAILED")
    return 0 if ok else 1


def _cmd_bench_run(args: argparse.Namespace) -> int:
    from repro.bench import cases_for_suite, run_suite
    from repro.util.errors import JobTimeout

    cases = cases_for_suite(args.suite)
    if args.case:
        by_name = {c.name: c for c in cases_for_suite("all")}
        missing = [name for name in args.case if name not in by_name]
        if missing:
            raise SystemExit(f"unknown bench case(s): {', '.join(missing)}")
        cases = [by_name[name] for name in args.case]
    if not cases:
        raise SystemExit(f"no bench cases in suite {args.suite!r}")
    if args.repeats is not None and args.repeats < 1:
        raise SystemExit(f"--repeats must be >= 1, got {args.repeats}")
    if args.warmup is not None and args.warmup < 0:
        raise SystemExit(f"--warmup must be >= 0, got {args.warmup}")

    def progress(name: str) -> None:
        print(f"[bench] {name} ...", file=sys.stderr, flush=True)

    if args.timeout is not None and args.timeout <= 0:
        raise SystemExit(f"--timeout must be > 0 seconds, got {args.timeout}")
    try:
        suite = run_suite(
            args.suite,
            cases,
            repeats=args.repeats,
            warmup=args.warmup,
            progress=progress,
            walltime=args.timeout,
        )
    except JobTimeout as exc:
        output = args.output or f"BENCH_{args.suite}.json"
        path = exc.partial.save(output)
        print(
            f"[timeout] {exc}; skipped case(s): {', '.join(exc.remaining)}",
            file=sys.stderr,
        )
        print(f"[partial trajectory written to {path}]", file=sys.stderr)
        return EXIT_TIMEOUT
    output = args.output or f"BENCH_{args.suite}.json"
    path = suite.save(output)
    if args.json:
        print(json.dumps(suite.to_dict(), indent=2))
    else:
        rows = [
            [
                r.name,
                r.tier,
                f"{r.wall_min * 1e3:.2f}",
                f"{r.wall_mean * 1e3:.2f}",
                f"{r.vm_seconds:.4f}" if r.vm_seconds is not None else "-",
                f"{sum(r.op_counts.values()):.3g}" if r.op_counts else "-",
            ]
            for r in suite.results
        ]
        print(format_table(
            ["case", "tier", "wall min (ms)", "wall mean (ms)", "vm (s)", "ops"],
            rows,
            title=f"bench suite {args.suite!r} ({len(rows)} cases)",
        ))
    print(f"[written to {path}]", file=sys.stderr)
    return 0


def _cmd_bench_compare(args: argparse.Namespace) -> int:
    from repro.bench import compare_files

    try:
        comparison = compare_files(args.old, args.new, threshold=args.threshold)
    except FileNotFoundError as exc:
        raise SystemExit(f"trajectory file not found: {exc.filename}")
    except ValueError as exc:
        raise SystemExit(str(exc))
    if args.json:
        print(json.dumps(comparison.to_dict(), indent=2))
    else:
        rows = []
        for d in sorted(comparison.deltas, key=lambda d: d.wall_ratio, reverse=True):
            flag = ""
            if d.tier <= 1 and d.regressed(args.threshold):
                flag = "REGRESSED"
            elif d.improved(args.threshold):
                flag = "improved"
            rows.append([
                d.name,
                d.tier,
                f"{d.old_wall * 1e3:.2f}",
                f"{d.new_wall * 1e3:.2f}",
                f"{(d.wall_ratio - 1.0) * 100:+.1f}%",
                f"{(d.vm_ratio - 1.0) * 100:+.1f}%" if d.vm_ratio is not None else "-",
                flag,
            ])
        print(format_table(
            ["case", "tier", "old (ms)", "new (ms)", "wall delta", "vm delta", ""],
            rows,
            title=f"bench compare (gate: tier-1 wall > +{args.threshold * 100:.0f}%)",
        ))
        for name in comparison.only_old:
            print(f"  only in old: {name}")
        for name in comparison.only_new:
            print(f"  only in new: {name}")
        verdict = "OK" if comparison.ok else (
            f"FAILED: {len(comparison.regressions)} tier-1 regression(s)"
        )
        print(f"bench compare: {verdict}")
    return 0 if comparison.ok else 1


def _cmd_bench_policy(args: argparse.Namespace) -> int:
    from repro.bench.policy_suite import (
        ENGINES,
        ZOO_SPECS,
        render_matrix,
        run_policy_matrix,
        save_matrix,
    )
    from repro.core.policies import make_policy

    policies = tuple(args.policy) if args.policy else ZOO_SPECS
    for spec in policies:
        try:
            make_policy(spec)
        except ValueError as exc:
            raise SystemExit(f"--policy: {exc}")
    engines = tuple(args.engine) if args.engine else ENGINES
    for engine in engines:
        if engine not in ENGINES:
            raise SystemExit(f"--engine must be one of {ENGINES}, got {engine!r}")

    def progress(name: str) -> None:
        print(f"[policy] {name} ...", file=sys.stderr, flush=True)

    try:
        doc = run_policy_matrix(
            policies,
            args.workload,
            engines,
            smoke=args.smoke,
            progress=progress,
        )
    except (ValueError, RuntimeError) as exc:
        raise SystemExit(str(exc))
    path = save_matrix(doc, args.output)
    if args.json:
        print(json.dumps(doc, indent=2, sort_keys=True))
    else:
        print(render_matrix(doc))
    print(f"[written to {path}]", file=sys.stderr)
    return 0 if doc["engine_parity"] else 1


def _cmd_bench_list(args: argparse.Namespace) -> int:
    from repro.bench import cases_for_suite

    cases = cases_for_suite(args.suite)
    rows = [[c.name, ",".join(c.suites), c.tier, c.repeats, c.description] for c in cases]
    print(format_table(
        ["case", "suites", "tier", "repeats", "description"],
        rows,
        title=f"registered bench cases ({args.suite})",
    ))
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "resume":
        return _cmd_resume(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "jobs":
        return _cmd_jobs(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "report":
        return _cmd_report(args)
    if args.command == "scenarios":
        return _cmd_scenarios()
    if args.command == "schemes":
        return _cmd_schemes()
    if args.command == "policies":
        return _cmd_policies()
    if args.command == "verify":
        return _cmd_verify(args)
    if args.command == "bench":
        if args.bench_command == "run":
            return _cmd_bench_run(args)
        if args.bench_command == "compare":
            return _cmd_bench_compare(args)
        if args.bench_command == "list":
            return _cmd_bench_list(args)
        if args.bench_command == "policy":
            return _cmd_bench_policy(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
