"""Command-line interface: run experiments without writing Python.

Usage examples::

    python -m repro run --nx 64 --ny 32 -n 8192 -p 16 \
        --distribution irregular --policy dynamic --iterations 200
    python -m repro run --case fig20 --policy periodic:25
    python -m repro scenarios
    python -m repro schemes
"""

from __future__ import annotations

import argparse
import json
import sys

import numpy as np

from repro.analysis import format_table
from repro.indexing import available_schemes
from repro.pic import Simulation, SimulationConfig, SimulationResult
from repro.workloads import FIG16_CASES, FIG17_CASE, FIG20_CASE, TABLE2_CASES
from repro.workloads.scenarios import PaperCase

__all__ = ["main", "build_parser"]


def _all_cases() -> dict[str, PaperCase]:
    cases: dict[str, PaperCase] = {"fig17": FIG17_CASE, "fig20": FIG20_CASE}
    for case in FIG16_CASES + TABLE2_CASES:
        cases[case.name] = case
    return cases


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Parallel-PIC reproduction of Liao/Ou/Ranka (IPPS 1996)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run one simulation")
    run.add_argument("--config", help="JSON file of SimulationConfig fields (overridden by flags)")
    run.add_argument("--case", help="start from a named paper case (see `scenarios`)")
    run.add_argument("--nx", type=int, default=64)
    run.add_argument("--ny", type=int, default=32)
    run.add_argument("-n", "--particles", type=int, default=8192)
    run.add_argument("-p", "--processors", type=int, default=16)
    run.add_argument("--distribution", default="irregular",
                     choices=["uniform", "irregular", "two_stream", "ring"])
    run.add_argument("--scheme", default="hilbert")
    run.add_argument("--policy", default="dynamic",
                     help="static | dynamic | periodic:<k>")
    run.add_argument("--movement", default="lagrangian",
                     choices=["lagrangian", "eulerian"])
    run.add_argument("--partitioning", default="independent",
                     choices=["independent", "grid", "particle"])
    run.add_argument("--ghost-table", default="hash", choices=["hash", "direct"])
    run.add_argument("--iterations", type=int, default=200)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--vth", type=float, default=0.05)
    run.add_argument("--field-solver", default="maxwell", choices=["maxwell", "electrostatic"])
    run.add_argument("--kernel", default="era", choices=["era", "modern"],
                     help="era = paper's CIC + collocated FDTD; modern = Yee + zigzag")
    run.add_argument("--json", action="store_true",
                     help="emit a machine-readable JSON summary")
    run.add_argument("--save-json", metavar="PATH",
                     help="write the full result (summary + per-iteration series) to PATH")

    sub.add_parser("scenarios", help="list the paper's experiment configurations")
    sub.add_parser("schemes", help="list registered indexing schemes")

    verify = sub.add_parser(
        "verify",
        help="check that the parallel code matches the sequential reference",
    )
    verify.add_argument("-p", "--processors", type=int, default=4)
    verify.add_argument("--iterations", type=int, default=10)
    verify.add_argument("--scheme", default="hilbert")
    verify.add_argument("--seed", type=int, default=0)
    return parser


def _config_from_args(args: argparse.Namespace) -> SimulationConfig:
    kwargs = dict(
        nx=args.nx,
        ny=args.ny,
        nparticles=args.particles,
        p=args.processors,
        distribution=args.distribution,
        scheme=args.scheme,
        policy=args.policy,
        movement=args.movement,
        partitioning=args.partitioning,
        ghost_table=args.ghost_table,
        field_solver=args.field_solver,
        kernel=args.kernel,
        seed=args.seed,
        vth=args.vth,
    )
    if args.config:
        from pathlib import Path

        try:
            loaded = json.loads(Path(args.config).read_text())
        except FileNotFoundError:
            raise SystemExit(f"config file not found: {args.config}")
        except json.JSONDecodeError as exc:
            raise SystemExit(f"config file {args.config} is not valid JSON: {exc}")
        if not isinstance(loaded, dict):
            raise SystemExit(f"config file {args.config} must contain a JSON object")
        unknown = set(loaded) - set(kwargs)
        if unknown:
            raise SystemExit(f"unknown config keys in {args.config}: {sorted(unknown)}")
        kwargs.update(loaded)
        # explicit command-line flags win over the file
        defaults = build_parser().parse_args(["run"])
        for key, cli_name in (
            ("nx", "nx"), ("ny", "ny"), ("nparticles", "particles"),
            ("p", "processors"), ("distribution", "distribution"),
            ("scheme", "scheme"), ("policy", "policy"), ("movement", "movement"),
            ("partitioning", "partitioning"), ("ghost_table", "ghost_table"),
            ("field_solver", "field_solver"), ("kernel", "kernel"),
            ("seed", "seed"), ("vth", "vth"),
        ):
            value = getattr(args, cli_name)
            if value != getattr(defaults, cli_name):
                kwargs[key] = value
    if args.case:
        cases = _all_cases()
        if args.case not in cases:
            known = ", ".join(sorted(cases))
            raise SystemExit(f"unknown case {args.case!r}; known cases: {known}")
        kwargs.update(cases[args.case].config_kwargs())
    return SimulationConfig(**kwargs)


def _summary_dict(result: SimulationResult) -> dict:
    return {
        "iterations": len(result.records),
        "total_time": result.total_time,
        "computation_time": result.computation_time,
        "overhead": result.overhead,
        "n_redistributions": result.n_redistributions,
        "redistribution_time": result.redistribution_time,
        "phase_breakdown": result.phase_breakdown,
        "mean_iteration_time": float(np.mean(result.iteration_times))
        if result.records
        else 0.0,
    }


def _cmd_run(args: argparse.Namespace) -> int:
    config = _config_from_args(args)
    sim = Simulation(config)
    result = sim.run(args.iterations)
    if args.save_json:
        result.save_json(args.save_json)
    summary = _summary_dict(result)
    if args.json:
        print(json.dumps(summary, indent=2))
    else:
        rows = [[k, v] for k, v in summary.items() if not isinstance(v, dict)]
        print(format_table(["quantity", "value"], rows,
                           title=f"{args.iterations} iterations, p={config.p}"))
        print()
        for phase, seconds in sorted(summary["phase_breakdown"].items()):
            print(f"  {phase:<15s} {seconds:10.4f} s")
    return 0


def _cmd_scenarios() -> int:
    rows = [
        [name, f"{c.nx}x{c.ny}", c.nparticles, c.p, c.distribution, c.iterations]
        for name, c in sorted(_all_cases().items())
    ]
    print(format_table(
        ["name", "mesh", "particles", "p", "distribution", "iterations"],
        rows,
        title="Paper experiment configurations",
    ))
    return 0


def _cmd_schemes() -> int:
    for name in available_schemes():
        print(name)
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    """Run parallel vs sequential on a small problem and compare."""
    from repro.core import ParticlePartitioner
    from repro.machine import VirtualMachine
    from repro.mesh import CurveBlockDecomposition, Grid2D
    from repro.particles import gaussian_blob
    from repro.pic import ParallelPIC, SequentialPIC

    grid = Grid2D(32, 16)
    particles = gaussian_blob(grid, 2048, rng=args.seed)
    vm = VirtualMachine(args.processors)
    decomp = CurveBlockDecomposition(grid, args.processors, args.scheme)
    local = ParticlePartitioner(grid, args.scheme).initial_partition(
        particles, args.processors
    )
    par = ParallelPIC(vm, grid, decomp, local)
    seq = SequentialPIC(grid, particles.copy(), dt=par.dt)
    for _ in range(args.iterations):
        par.step()
        seq.step()
    a = par.all_particles()
    oa = np.argsort(a.ids)
    ob = np.argsort(seq.particles.ids)
    dx = float(np.abs(a.x[oa] - seq.particles.x[ob]).max()) if a.n else 0.0
    dez = float(np.abs(par.fields.ez - seq.fields.ez).max())
    ok = dx < 1e-9 and dez < 1e-9
    print(f"max |x_par - x_seq|  = {dx:.3e}")
    print(f"max |Ez_par - Ez_seq| = {dez:.3e}")
    print("VERIFY OK" if ok else "VERIFY FAILED")
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "run":
        return _cmd_run(args)
    if args.command == "scenarios":
        return _cmd_scenarios()
    if args.command == "schemes":
        return _cmd_schemes()
    if args.command == "verify":
        return _cmd_verify(args)
    raise AssertionError(f"unhandled command {args.command!r}")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
