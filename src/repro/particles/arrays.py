"""Structure-of-arrays particle storage.

:class:`ParticleArray` keeps one NumPy array per attribute (positions
``x, y``; relativistic momenta ``ux, uy, uz`` = gamma * v in normalized
units; ``q`` charge, ``m`` mass, ``w`` statistical weight, and a
persistent ``ids`` field used to verify that redistribution permutes but
never loses particles).  The dense ``(n, 9)`` matrix form is the wire
format for migration through the virtual machine: ids ride in a float64
column, exact up to 2**53 particles.

:class:`ParticlePool` concatenates all ranks' particles into one SoA
with per-rank segment offsets — the storage layout of the flat-rank
execution engine (see ``DESIGN.md``), where every PIC phase runs as one
vectorized pass over the pool and per-rank results are recovered by
slicing at segment boundaries.  ``pool.views[r]`` are zero-copy slice
views of the pooled arrays, so in-place kernels (the Boris push) update
the per-rank sets and the pool simultaneously.
"""

from __future__ import annotations

import numpy as np

from repro.util import require

__all__ = ["ParticleArray", "ParticlePool"]

#: Transport-matrix column order.
MATRIX_COLUMNS = ("x", "y", "ux", "uy", "uz", "q", "m", "w", "ids")


class ParticleArray:
    """A set of particles stored as parallel 1-D arrays.

    All float attributes are float64; ``ids`` is int64.  Instances own
    their arrays (constructors copy only when needed via ``np.asarray``
    — pass copies if you intend to keep mutating the inputs).
    """

    __slots__ = ("x", "y", "ux", "uy", "uz", "q", "m", "w", "ids")

    def __init__(
        self,
        x: np.ndarray,
        y: np.ndarray,
        ux: np.ndarray,
        uy: np.ndarray,
        uz: np.ndarray,
        q: np.ndarray,
        m: np.ndarray,
        w: np.ndarray,
        ids: np.ndarray,
    ) -> None:
        self.x = np.asarray(x, dtype=np.float64)
        self.y = np.asarray(y, dtype=np.float64)
        self.ux = np.asarray(ux, dtype=np.float64)
        self.uy = np.asarray(uy, dtype=np.float64)
        self.uz = np.asarray(uz, dtype=np.float64)
        self.q = np.asarray(q, dtype=np.float64)
        self.m = np.asarray(m, dtype=np.float64)
        self.w = np.asarray(w, dtype=np.float64)
        self.ids = np.asarray(ids, dtype=np.int64)
        n = self.x.shape[0]
        for name in self.__slots__:
            arr = getattr(self, name)
            require(arr.ndim == 1, f"{name} must be 1-D")
            require(arr.shape[0] == n, f"{name} has length {arr.shape[0]}, expected {n}")

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @classmethod
    def empty(cls, n: int = 0) -> "ParticleArray":
        """``n`` zero-initialized particles with ids ``0..n-1``."""
        z = np.zeros(n)
        return cls(z, z.copy(), z.copy(), z.copy(), z.copy(), z.copy(), z.copy(), z.copy(), np.arange(n, dtype=np.int64))

    @classmethod
    def concat(cls, parts: list["ParticleArray"]) -> "ParticleArray":
        """Concatenate several arrays (empty list gives an empty array)."""
        if not parts:
            return cls.empty(0)
        return cls(
            *(
                np.concatenate([getattr(p, name) for p in parts])
                for name in cls.__slots__
            )
        )

    # ------------------------------------------------------------------
    @property
    def n(self) -> int:
        """Number of particles."""
        return self.x.shape[0]

    def __len__(self) -> int:
        return self.n

    def copy(self) -> "ParticleArray":
        """Deep copy."""
        return ParticleArray(*(getattr(self, name).copy() for name in self.__slots__))

    def take(self, idx: np.ndarray) -> "ParticleArray":
        """Select particles by integer index or boolean mask."""
        idx = np.asarray(idx)
        return ParticleArray(*(getattr(self, name)[idx] for name in self.__slots__))

    def slice_view(self, start: int, stop: int) -> "ParticleArray":
        """Zero-copy view of particles ``[start, stop)`` (shared memory)."""
        return ParticleArray(
            *(getattr(self, name)[start:stop] for name in self.__slots__)
        )

    def sorted_by(self, keys: np.ndarray) -> "ParticleArray":
        """Return a copy stably sorted by ``keys``."""
        keys = np.asarray(keys)
        require(keys.shape == (self.n,), "keys must have one entry per particle")
        order = np.argsort(keys, kind="stable")
        return self.take(order)

    # ------------------------------------------------------------------
    # wire format
    # ------------------------------------------------------------------
    def to_matrix(self) -> np.ndarray:
        """Pack into the dense ``(n, 9)`` float64 transport matrix."""
        out = np.empty((self.n, len(MATRIX_COLUMNS)))
        for j, name in enumerate(MATRIX_COLUMNS):
            out[:, j] = getattr(self, name)
        return out

    @classmethod
    def from_matrix(cls, matrix: np.ndarray) -> "ParticleArray":
        """Unpack a transport matrix produced by :meth:`to_matrix`."""
        matrix = np.asarray(matrix, dtype=np.float64)
        if matrix.ndim != 2 or matrix.shape[1] != len(MATRIX_COLUMNS):
            raise ValueError(f"expected (n, {len(MATRIX_COLUMNS)}) matrix, got {matrix.shape}")
        cols = {name: matrix[:, j].copy() for j, name in enumerate(MATRIX_COLUMNS)}
        cols["ids"] = np.round(cols["ids"]).astype(np.int64)
        return cls(**cols)

    # ------------------------------------------------------------------
    # physics helpers
    # ------------------------------------------------------------------
    def gamma(self) -> np.ndarray:
        """Relativistic Lorentz factor per particle (c = 1)."""
        return np.sqrt(1.0 + self.ux**2 + self.uy**2 + self.uz**2)

    def kinetic_energy(self) -> float:
        """Total relativistic kinetic energy ``sum w * m * (gamma - 1)``."""
        return float((self.w * self.m * (self.gamma() - 1.0)).sum())

    def momentum(self) -> np.ndarray:
        """Total momentum vector ``sum w * m * u`` (3 components)."""
        return np.array(
            [
                float((self.w * self.m * self.ux).sum()),
                float((self.w * self.m * self.uy).sum()),
                float((self.w * self.m * self.uz).sum()),
            ]
        )

    def __repr__(self) -> str:
        return f"ParticleArray(n={self.n})"


class ParticlePool:
    """All ranks' particles in one :class:`ParticleArray` with segment offsets.

    Attributes
    ----------
    array:
        The pooled particles, rank-segment ordered: rank ``r`` owns rows
        ``[offsets[r], offsets[r+1])``.
    offsets:
        int64 segment boundaries, length ``p + 1`` with ``offsets[0] == 0``
        and ``offsets[-1] == array.n``.
    views:
        Per-rank zero-copy :meth:`ParticleArray.slice_view` windows into
        ``array`` — mutating a view mutates the pool and vice versa.
    """

    __slots__ = ("array", "offsets", "views", "_rank_of")

    def __init__(self, array: ParticleArray, offsets: np.ndarray) -> None:
        offsets = np.asarray(offsets, dtype=np.int64)
        require(offsets.ndim == 1 and offsets.shape[0] >= 2, "offsets must be 1-D, length >= 2")
        require(offsets[0] == 0, "offsets must start at 0")
        require(offsets[-1] == array.n, "offsets must end at the pool size")
        if np.any(np.diff(offsets) < 0):
            raise ValueError("offsets must be non-decreasing")
        self.array = array
        self.offsets = offsets
        self.views = [
            array.slice_view(int(offsets[r]), int(offsets[r + 1]))
            for r in range(offsets.shape[0] - 1)
        ]
        self._rank_of: np.ndarray | None = None

    @classmethod
    def from_ranks(cls, parts: list[ParticleArray]) -> "ParticlePool":
        """Pool per-rank particle sets (one concatenation copy)."""
        counts = np.array([p.n for p in parts], dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(counts)))
        return cls(ParticleArray.concat(parts), offsets)

    @classmethod
    def from_matrices(cls, matrices: list[np.ndarray]) -> "ParticlePool":
        """Pool per-rank transport matrices (the migration receive path)."""
        ncols = len(MATRIX_COLUMNS)
        mats = [np.asarray(m, dtype=np.float64).reshape(-1, ncols) for m in matrices]
        counts = np.array([m.shape[0] for m in mats], dtype=np.int64)
        offsets = np.concatenate(([0], np.cumsum(counts)))
        stacked = (
            np.concatenate(mats) if mats else np.empty((0, ncols))
        )
        return cls(ParticleArray.from_matrix(stacked), offsets)

    # ------------------------------------------------------------------
    @property
    def p(self) -> int:
        """Number of rank segments."""
        return len(self.views)

    @property
    def n(self) -> int:
        """Total pooled particles."""
        return self.array.n

    @property
    def counts(self) -> np.ndarray:
        """Per-rank particle counts (int64, length ``p``)."""
        return np.diff(self.offsets)

    def rank_of_particles(self) -> np.ndarray:
        """Owning rank of every pooled row (cached)."""
        if self._rank_of is None:
            self._rank_of = np.repeat(
                np.arange(self.p, dtype=np.int64), self.counts
            )
        return self._rank_of

    def owns(self, particles: list[ParticleArray]) -> bool:
        """True when ``particles`` are exactly this pool's views.

        The flat engine uses this identity check to detect external
        replacement of a stepper's per-rank particle lists (e.g. by the
        redistributor) and rebuild the pool lazily.
        """
        return len(particles) == self.p and all(
            particles[r] is self.views[r] for r in range(self.p)
        )

    def __repr__(self) -> str:
        return f"ParticlePool(p={self.p}, n={self.n})"
