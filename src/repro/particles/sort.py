"""Parallel sorting of keyed particle data on the virtual machine.

:func:`parallel_sample_sort` is the from-scratch distribution algorithm
(paper §5.1 "Sorting"): sample-based splitter selection, all-to-many
routing, and local sort.  The *incremental* variant that reuses the
previous epoch's order lives in :mod:`repro.core.incremental_sort`; this
module provides the shared primitives.
"""

from __future__ import annotations

import numpy as np

from repro.machine.virtual import VirtualMachine
from repro.machine.collectives import exchange_by_destination
from repro.util import require

__all__ = ["regular_samples", "local_sort_by_keys", "parallel_sample_sort"]


def regular_samples(sorted_keys: np.ndarray, nsamples: int) -> np.ndarray:
    """Pick ``nsamples`` regularly spaced samples from a sorted key array.

    Fewer samples are returned when the array is shorter than requested.
    """
    require(nsamples >= 1, f"nsamples must be >= 1, got {nsamples}")
    n = sorted_keys.shape[0]
    if n == 0:
        return sorted_keys[:0]
    take = min(nsamples, n)
    idx = (np.arange(1, take + 1) * n) // (take + 1)
    idx = np.clip(idx, 0, n - 1)
    return sorted_keys[idx]


def local_sort_by_keys(
    keys: np.ndarray, payload: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Stable-sort ``payload`` rows by ``keys``; returns (keys, payload)."""
    keys = np.asarray(keys)
    require(keys.shape[0] == payload.shape[0], "keys/payload length mismatch")
    order = np.argsort(keys, kind="stable")
    return keys[order], payload[order]


def parallel_sample_sort(
    vm: VirtualMachine,
    keys: list[np.ndarray],
    payloads: list[np.ndarray],
    *,
    oversample: int = 4,
) -> tuple[list[np.ndarray], list[np.ndarray], np.ndarray]:
    """Globally sort keyed rows across ranks by sample sort.

    Parameters
    ----------
    vm:
        The virtual machine; costs are charged under its current phase.
    keys:
        Per-rank int64/float key arrays.
    payloads:
        Per-rank 2-D row payloads aligned with ``keys`` (e.g. particle
        transport matrices).
    oversample:
        Samples per rank = ``oversample * p`` (regular sampling of the
        locally sorted keys), traded against splitter quality.

    Returns
    -------
    (keys_out, payloads_out, splitters):
        Per-rank sorted slices such that the rank-order concatenation is
        globally sorted, plus the ``p - 1`` global splitters used.
        Counts per rank are *approximately* equal (sample sort property);
        follow with :func:`repro.core.load_balance.order_maintaining_balance`
        for exact balance.
    """
    p = vm.p
    require(len(keys) == p and len(payloads) == p, "need one keys/payload per rank")
    # 1. local sort (charged as n log n comparisons per rank)
    sorted_keys: list[np.ndarray] = []
    sorted_payloads: list[np.ndarray] = []
    nlocal = np.zeros(p)
    for r in range(p):
        k, m = local_sort_by_keys(np.asarray(keys[r]), np.asarray(payloads[r]))
        sorted_keys.append(k)
        sorted_payloads.append(m)
        nlocal[r] = k.shape[0]
    logn = np.log2(np.maximum(nlocal, 2.0))
    vm.charge_ops("sort", nlocal * logn)

    # 2. sample and pick global splitters (concatenation collective)
    samples = [regular_samples(sorted_keys[r], oversample * p) for r in range(p)]
    gathered = vm.allgather(samples)[0]
    all_samples = np.sort(np.concatenate([s for s in gathered if s.size]))
    if all_samples.size >= p - 1 and p > 1:
        idx = (np.arange(1, p) * all_samples.size) // p
        splitters = all_samples[idx]
    else:
        splitters = all_samples[: max(p - 1, 0)]

    # 3. route rows to destination ranks
    dests = [
        np.searchsorted(splitters, sorted_keys[r], side="right").astype(np.int64)
        for r in range(p)
    ]
    vm.charge_ops("sort", nlocal * np.log2(max(p, 2)))
    recv_payloads = exchange_by_destination(vm, sorted_payloads, dests)
    recv_keys = exchange_by_destination(
        vm, [k.reshape(-1, 1) for k in sorted_keys], dests
    )

    # 4. final local sort of received rows
    keys_out: list[np.ndarray] = []
    payloads_out: list[np.ndarray] = []
    for r in range(p):
        k = recv_keys[r].reshape(-1)
        m = recv_payloads[r]
        if m.ndim == 1:  # empty receive may come back flat
            m = m.reshape(0, payloads[r].shape[1] if payloads[r].ndim == 2 else 1)
        k, m = local_sort_by_keys(k, m)
        keys_out.append(k)
        payloads_out.append(m)
    counts = np.array([k.shape[0] for k in keys_out], dtype=float)
    vm.charge_ops("sort", counts * np.log2(np.maximum(counts, 2.0)))
    return keys_out, payloads_out, splitters
