"""Particle samplers for the paper's workloads and physics demos.

The paper evaluates two spatial distributions (its Figure 15):

* *uniform* — particles spread evenly over the whole domain
  (:func:`uniform_plasma`);
* *irregular* — particles concentrated in the centre of the domain
  (:func:`gaussian_blob`), chosen "highly irregular in order to study
  the effect of such distribution" on the methods.

Two extra samplers support the physics examples: the classic two-stream
instability (:func:`two_stream`) and a ring beam
(:func:`ring_distribution`).

All samplers use normalized units: charge -1, mass 1 (electrons), with
per-particle weight ``w = density * ncells / n`` so the mean charge
density is ``density`` regardless of particle count; a neutralizing ion
background is implied (the field solver subtracts the mean charge
density).

The default ``density = 0.01`` makes the plasma weakly coupled: the
plasma frequency is ``sqrt(density) = 0.1`` and the Debye length
``vth / w_p = 0.5 dx`` at the default ``vth`` — resolved by the grid, so
PIC self-heating (the finite-grid instability, which sets in when the
Debye length is far below the cell size) stays negligible over
benchmark-length runs.  Physics demos that want ``w_p = 1`` pass
``density=1.0`` explicitly and accept the stronger heating.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.grid import Grid2D
from repro.particles.arrays import ParticleArray
from repro.util import as_rng, require

__all__ = ["uniform_plasma", "gaussian_blob", "two_stream", "ring_distribution"]


#: Default mean charge-density magnitude (see the module docstring).
DEFAULT_DENSITY = 0.01


def _finalize(
    grid: Grid2D,
    x: np.ndarray,
    y: np.ndarray,
    ux: np.ndarray,
    uy: np.ndarray,
    uz: np.ndarray,
    density: float,
) -> ParticleArray:
    require(density > 0, f"density must be > 0, got {density}")
    n = x.shape[0]
    x, y = grid.wrap_positions(x, y)
    weight = density * grid.ncells / max(n, 1)
    return ParticleArray(
        x=x,
        y=y,
        ux=ux,
        uy=uy,
        uz=uz,
        q=np.full(n, -1.0),
        m=np.ones(n),
        w=np.full(n, weight),
        ids=np.arange(n, dtype=np.int64),
    )


def uniform_plasma(
    grid: Grid2D,
    n: int,
    *,
    vth: float = 0.05,
    density: float = DEFAULT_DENSITY,
    rng: int | None | np.random.Generator = None,
) -> ParticleArray:
    """Uniform spatial distribution with Maxwellian momenta.

    Parameters
    ----------
    grid:
        Domain geometry.
    n:
        Number of particles.
    vth:
        Thermal momentum spread (normalized, ``gamma*v`` units).
    density:
        Mean charge-density magnitude (sets the plasma frequency).
    rng:
        Seed or generator.
    """
    require(n >= 0, f"n must be >= 0, got {n}")
    gen = as_rng(rng)
    x = gen.uniform(0.0, grid.lx, n)
    y = gen.uniform(0.0, grid.ly, n)
    u = gen.normal(0.0, vth, (3, n))
    return _finalize(grid, x, y, u[0], u[1], u[2], density)


def gaussian_blob(
    grid: Grid2D,
    n: int,
    *,
    sigma_frac: float = 0.08,
    vth: float = 0.05,
    density: float = DEFAULT_DENSITY,
    center: tuple[float, float] | None = None,
    rng: int | None | np.random.Generator = None,
) -> ParticleArray:
    """The paper's *irregular* distribution: a Gaussian blob at the centre.

    Parameters
    ----------
    sigma_frac:
        Blob standard deviation as a fraction of the domain extent
        (0.08 concentrates ~99% of particles inside the central quarter,
        matching the "highly irregular" intent of Figure 15).
    center:
        Blob centre; defaults to the domain centre.
    """
    require(n >= 0, f"n must be >= 0, got {n}")
    require(sigma_frac > 0, f"sigma_frac must be > 0, got {sigma_frac}")
    gen = as_rng(rng)
    cx, cy = center if center is not None else (grid.lx / 2.0, grid.ly / 2.0)
    x = gen.normal(cx, sigma_frac * grid.lx, n)
    y = gen.normal(cy, sigma_frac * grid.ly, n)
    u = gen.normal(0.0, vth, (3, n))
    return _finalize(grid, x, y, u[0], u[1], u[2], density)


def two_stream(
    grid: Grid2D,
    n: int,
    *,
    vdrift: float = 0.2,
    vth: float = 0.01,
    density: float = DEFAULT_DENSITY,
    rng: int | None | np.random.Generator = None,
) -> ParticleArray:
    """Two counter-streaming beams along x (two-stream instability setup).

    Half the particles drift at ``+vdrift``, half at ``-vdrift``, both
    with small thermal spread ``vth``; uniform in space.
    """
    require(n >= 0 and n % 2 == 0, f"n must be even and >= 0, got {n}")
    gen = as_rng(rng)
    x = gen.uniform(0.0, grid.lx, n)
    y = gen.uniform(0.0, grid.ly, n)
    ux = gen.normal(0.0, vth, n)
    ux[: n // 2] += vdrift
    ux[n // 2 :] -= vdrift
    uy = gen.normal(0.0, vth, n)
    uz = gen.normal(0.0, vth, n)
    return _finalize(grid, x, y, ux, uy, uz, density)


def ring_distribution(
    grid: Grid2D,
    n: int,
    *,
    radius_frac: float = 0.25,
    width_frac: float = 0.03,
    vth: float = 0.05,
    density: float = DEFAULT_DENSITY,
    rng: int | None | np.random.Generator = None,
) -> ParticleArray:
    """Particles on an annulus around the domain centre.

    A second irregular workload whose subdomains are *non-convex* —
    a stress test for alignment beyond the paper's centre blob.
    """
    require(n >= 0, f"n must be >= 0, got {n}")
    gen = as_rng(rng)
    theta = gen.uniform(0.0, 2.0 * np.pi, n)
    scale = min(grid.lx, grid.ly)
    r = gen.normal(radius_frac * scale, width_frac * scale, n)
    x = grid.lx / 2.0 + r * np.cos(theta)
    y = grid.ly / 2.0 + r * np.sin(theta)
    u = gen.normal(0.0, vth, (3, n))
    return _finalize(grid, x, y, u[0], u[1], u[2], density)
