"""Particle substrate: structure-of-arrays storage, samplers, parallel sort.

The particle array is one of the paper's two irregularly coupled data
arrays.  It is stored SoA (positions, relativistic momenta, charge,
mass, weight, persistent ids) with a dense-matrix wire format for
communication through the virtual machine.
"""

from repro.particles.arrays import ParticleArray, ParticlePool
from repro.particles.init import (
    gaussian_blob,
    ring_distribution,
    two_stream,
    uniform_plasma,
)
from repro.particles.sort import local_sort_by_keys, parallel_sample_sort, regular_samples

__all__ = [
    "ParticleArray",
    "ParticlePool",
    "uniform_plasma",
    "gaussian_blob",
    "two_stream",
    "ring_distribution",
    "parallel_sample_sort",
    "regular_samples",
    "local_sort_by_keys",
]
