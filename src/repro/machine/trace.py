"""Execution tracing: per-phase, per-iteration timeline of a run.

:class:`PhaseTrace` snapshots the virtual machine's phase clocks after
every iteration, producing the data for an execution-profile view: how
the time of each phase (scatter / field / gather / push /
redistribution) evolves over the run, and an ASCII "stacked bar"
rendering for terminals.
"""

from __future__ import annotations

import numpy as np

from repro.machine.virtual import VirtualMachine
from repro.util import require

__all__ = ["PhaseTrace"]


class PhaseTrace:
    """Record per-iteration phase times from a virtual machine.

    Call :meth:`snapshot` once per iteration; each snapshot stores the
    *increment* of every phase's max-over-ranks time since the previous
    snapshot.

    The machine binding is rebindable: rank-failure recovery replaces
    the simulation's :class:`VirtualMachine` with a shrunk one whose
    phase tables carry the accumulated maxima forward, so
    :meth:`rebind` keeps the increment stream continuous across the
    swap (no stale-machine reads, no double-counted time).  A trace can
    also be built without any machine (``vm=None`` /
    :meth:`from_rows`) to re-render rows recovered from a metrics file
    or a checkpoint.
    """

    def __init__(self, vm: VirtualMachine | None = None) -> None:
        self.vm = vm
        # Baseline at the machine's current breakdown: time charged
        # before the trace existed (setup, restored checkpoints) belongs
        # to no iteration row.
        self._last: dict[str, float] = vm.phase_breakdown() if vm is not None else {}
        self.rows: list[dict[str, float]] = []

    @classmethod
    def from_rows(cls, rows: list[dict]) -> "PhaseTrace":
        """Rebuild a trace from previously recorded increment rows."""
        trace = cls(None)
        trace.rows = [{str(k): float(v) for k, v in row.items()} for row in rows]
        return trace

    def rebind(self, vm: VirtualMachine) -> None:
        """Continue the trace on ``vm`` (e.g. after a recovery shrink).

        The shrunk machine's phase tables are seeded with the failed
        machine's maxima, so the running-increment baseline stays valid:
        the next :meth:`snapshot` row picks up exactly the detection,
        recovery, and replay time charged since the last snapshot —
        nothing lost to the swap, nothing double-counted.
        """
        self.vm = vm

    def snapshot(self) -> dict[str, float]:
        """Record and return this iteration's per-phase time increments."""
        require(self.vm is not None, "trace has no machine bound (vm=None)")
        current = self.vm.phase_breakdown()
        increment = {
            phase: current.get(phase, 0.0) - self._last.get(phase, 0.0)
            for phase in set(current) | set(self._last)
        }
        self._last = current
        self.rows.append(increment)
        return increment

    # ------------------------------------------------------------------
    @property
    def phases(self) -> list[str]:
        """All phase labels seen, sorted."""
        seen: set[str] = set()
        for row in self.rows:
            seen.update(k for k, v in row.items() if v > 0)
        return sorted(seen)

    def series(self, phase: str) -> np.ndarray:
        """Per-iteration time series of one phase (zeros where absent)."""
        return np.array([row.get(phase, 0.0) for row in self.rows])

    def totals(self) -> dict[str, float]:
        """Total time per phase over the trace."""
        return {phase: float(self.series(phase).sum()) for phase in self.phases}

    def render(self, *, width: int = 60) -> str:
        """ASCII profile: one stacked bar of phase shares per trace row
        group (rows are bucketed to at most ``width`` columns)."""
        require(bool(self.rows), "no snapshots recorded")
        phases = self.phases
        glyphs = "SFGPRMX"  # scatter field gather push redistribution migration other
        glyph_of = {}
        for phase in phases:
            for key, glyph in (
                ("scatter", "S"),
                ("field", "F"),
                ("gather", "G"),
                ("push", "P"),
                ("redistribution", "R"),
                ("migration", "M"),
            ):
                if phase == key:
                    glyph_of[phase] = glyph
                    break
            else:
                glyph_of[phase] = "X"
        lines = ["phase profile (per-iteration share):"]
        legend = ", ".join(f"{glyph_of[p]}={p}" for p in phases)
        lines.append(legend)
        nrows = len(self.rows)
        buckets = np.linspace(0, nrows, min(width, nrows) + 1).astype(int)
        bar_height = 10
        grid_cols = []
        for a, b in zip(buckets[:-1], buckets[1:]):
            sums = {p: float(self.series(p)[a:b].sum()) for p in phases}
            total = sum(sums.values())
            column = []
            if total > 0:
                # Largest-remainder apportionment: glyph counts always sum
                # to exactly bar_height, so no phase's share is silently
                # truncated by independent rounding.
                shares = np.array([bar_height * sums[p] / total for p in phases])
                counts = np.floor(shares).astype(int)
                shortfall = bar_height - int(counts.sum())
                if shortfall > 0:
                    order = np.argsort(-(shares - counts), kind="stable")
                    counts[order[:shortfall]] += 1
                for p, count in zip(phases, counts):
                    column.extend(glyph_of[p] * int(count))
            column = (column + [" "] * bar_height)[:bar_height]
            grid_cols.append(column)
        for level in range(bar_height - 1, -1, -1):
            lines.append("|" + "".join(col[level] for col in grid_cols))
        lines.append("+" + "-" * len(grid_cols))
        return "\n".join(lines)
