"""Higher-level communication patterns built on the virtual machine.

These are the reusable schedules the PIC phases and the redistribution
algorithms share:

* :func:`alltoall_concat` — all-to-many exchange followed by per-rank
  concatenation of received arrays (particle migration, sorted merges).
* :func:`exchange_by_destination` — split a per-rank array by a
  destination map and deliver the pieces (one call = the paper's
  ``All-to-many_COMM`` on a send-list table).
* :func:`exchange_by_destination_pooled` — the same exchange driven from
  one flat pool of rows with segment offsets instead of ``p`` per-rank
  arrays: a single stable ``argsort`` over ``src * p + dest`` keys
  replaces the per-rank sorts, producing byte-identical messages (and
  therefore identical machine statistics and charges).
* :func:`halo_sendrecv` — neighbour exchange for field halos.
"""

from __future__ import annotations

import numpy as np

from repro.machine.virtual import VirtualMachine
from repro.util import require
from repro.util.errors import InvalidRankError


def _check_destinations(dest: np.ndarray, p: int, *, who: str) -> None:
    """Raise a typed error naming the offending destination ranks.

    ``np.take``-based bucketing would otherwise wrap negative ranks and
    mis-deliver silently; every exchange validates up front instead.
    """
    if dest.size == 0:
        return
    bad = (dest < 0) | (dest >= p)
    if bad.any():
        idx = np.flatnonzero(bad)
        examples = ", ".join(
            f"row {i}: dest {dest[i]}" for i in idx[:3]
        )
        raise InvalidRankError(
            f"{who}: destination out of range [0, {p}) "
            f"for {idx.size} row(s) ({examples})"
        )

__all__ = [
    "alltoall_concat",
    "exchange_by_destination",
    "exchange_by_destination_pooled",
    "halo_sendrecv",
]


def alltoall_concat(
    vm: VirtualMachine,
    send: list[dict[int, np.ndarray]],
) -> list[np.ndarray]:
    """All-to-many exchange returning, per rank, the received arrays
    concatenated in source-rank order.

    Empty receives produce a zero-length array matching the dtype of any
    payload sent anywhere (or float64 if the whole exchange is empty).
    """
    recv = vm.alltoallv(send)
    template = None
    for chunks in send:
        for payload in chunks.values():
            template = payload
            break
        if template is not None:
            break
    out: list[np.ndarray] = []
    for dst in range(vm.p):
        parts = [recv[dst][src] for src in sorted(recv[dst])]
        if parts:
            out.append(np.concatenate(parts))
        elif template is not None:
            out.append(np.empty((0,) + template.shape[1:], dtype=template.dtype))
        else:
            out.append(np.empty(0, dtype=np.float64))
    return out


def exchange_by_destination(
    vm: VirtualMachine,
    arrays: list[np.ndarray],
    destinations: list[np.ndarray],
) -> list[np.ndarray]:
    """Route each element of each rank's array to the rank named by
    ``destinations`` and return, per rank, the concatenation of what it
    received (source-rank order, stable within a source).

    ``arrays[r]`` and ``destinations[r]`` must have equal length;
    destination values must be valid ranks.
    """
    require(len(arrays) == vm.p and len(destinations) == vm.p, "need one array per rank")
    send: list[dict[int, np.ndarray]] = []
    for r in range(vm.p):
        arr = np.asarray(arrays[r])
        dest = np.asarray(destinations[r], dtype=np.int64)
        require(arr.shape[0] == dest.shape[0], f"rank {r}: array/destination length mismatch")
        _check_destinations(dest, vm.p, who=f"exchange_by_destination rank {r}")
        chunks: dict[int, np.ndarray] = {}
        if dest.size:
            order = np.argsort(dest, kind="stable")
            sorted_dest = dest[order]
            sorted_arr = arr[order]
            uniq, starts = np.unique(sorted_dest, return_index=True)
            bounds = np.append(starts, dest.size)
            for i, d in enumerate(uniq):
                chunks[int(d)] = sorted_arr[bounds[i] : bounds[i + 1]]
        send.append(chunks)
    return alltoall_concat(vm, send)


def exchange_by_destination_pooled(
    vm: VirtualMachine,
    rows: np.ndarray,
    destinations: np.ndarray,
    offsets: np.ndarray,
) -> list[np.ndarray]:
    """Pooled form of :func:`exchange_by_destination`.

    Parameters
    ----------
    rows:
        ``(n, ...)`` pooled payload rows, rank-segment ordered: rank
        ``r``'s rows are ``rows[offsets[r]:offsets[r + 1]]``.
    destinations:
        int64 destination rank per row, aligned with ``rows``.
    offsets:
        Segment boundaries, length ``vm.p + 1``.

    Returns
    -------
    list of numpy.ndarray
        Per destination rank, the received rows concatenated in
        source-rank order (stable within a source) — exactly what
        :func:`exchange_by_destination` returns for the equivalent
        per-rank inputs, with identical messages on the machine.
    """
    rows = np.asarray(rows)
    destinations = np.asarray(destinations, dtype=np.int64)
    offsets = np.asarray(offsets, dtype=np.int64)
    require(offsets.shape[0] == vm.p + 1, "offsets must have p + 1 entries")
    require(
        rows.shape[0] == destinations.shape[0] == offsets[-1],
        "rows/destinations must cover the pooled segments",
    )
    _check_destinations(destinations, vm.p, who="exchange_by_destination_pooled")
    send: list[dict[int, np.ndarray]] = [dict() for _ in range(vm.p)]
    if destinations.size:
        src = np.repeat(np.arange(vm.p, dtype=np.int64), np.diff(offsets))
        # One stable sort over (src, dest) keys: within a source segment
        # every key shares the src term, so the order among that source's
        # rows matches the per-rank stable sort by destination alone.
        key = src * vm.p + destinations
        order = np.argsort(key, kind="stable")
        sorted_key = key.take(order)
        sorted_rows = rows.take(order, axis=0)
        uniq, starts = np.unique(sorted_key, return_index=True)
        bounds = np.append(starts, key.size)
        for i, k in enumerate(uniq):
            s, d = divmod(int(k), vm.p)
            send[s][d] = sorted_rows[bounds[i] : bounds[i + 1]]
    return alltoall_concat(vm, send)


def halo_sendrecv(
    vm: VirtualMachine,
    messages: list[dict[int, np.ndarray]],
) -> list[dict[int, np.ndarray]]:
    """Neighbour (halo) exchange — semantically :meth:`VirtualMachine.alltoallv`
    but named for readability at call sites; kept synchronous because the
    field stencil needs all halos before updating.
    """
    return vm.alltoallv(messages)
