"""Per-phase, per-rank communication statistics.

The paper reports (Figures 18, 19) the *maximum amount of data* and the
*maximum number of messages* sent or received by any processor in the
scatter phase, per iteration.  :class:`CommStats` records exactly those
quantities: every communication call on the virtual machine logs per-rank
messages/bytes under the active phase label, and the simulation snapshots
an *epoch* (one iteration) at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util import require

__all__ = ["PhaseComm", "CommStats"]


@dataclass
class PhaseComm:
    """Per-rank message/byte tallies for one phase label.

    Arrays all have length ``p`` (one slot per rank).
    """

    msgs_sent: np.ndarray
    msgs_recv: np.ndarray
    bytes_sent: np.ndarray
    bytes_recv: np.ndarray

    @classmethod
    def zeros(cls, p: int) -> "PhaseComm":
        """Return an all-zero record for ``p`` ranks."""
        return cls(
            msgs_sent=np.zeros(p, dtype=np.int64),
            msgs_recv=np.zeros(p, dtype=np.int64),
            bytes_sent=np.zeros(p, dtype=np.int64),
            bytes_recv=np.zeros(p, dtype=np.int64),
        )

    def copy(self) -> "PhaseComm":
        """Deep copy of the record."""
        return PhaseComm(
            self.msgs_sent.copy(),
            self.msgs_recv.copy(),
            self.bytes_sent.copy(),
            self.bytes_recv.copy(),
        )

    def add(self, other: "PhaseComm") -> None:
        """Accumulate ``other`` into this record."""
        self.msgs_sent += other.msgs_sent
        self.msgs_recv += other.msgs_recv
        self.bytes_sent += other.bytes_sent
        self.bytes_recv += other.bytes_recv

    # -- the quantities the paper plots ---------------------------------
    @property
    def max_msgs(self) -> int:
        """Maximum number of messages sent or received by any rank."""
        return int(max(self.msgs_sent.max(initial=0), self.msgs_recv.max(initial=0)))

    @property
    def max_bytes(self) -> int:
        """Maximum data volume sent or received by any rank, in bytes."""
        return int(max(self.bytes_sent.max(initial=0), self.bytes_recv.max(initial=0)))

    @property
    def total_bytes(self) -> int:
        """Total bytes sent across all ranks."""
        return int(self.bytes_sent.sum())

    @property
    def total_msgs(self) -> int:
        """Total messages sent across all ranks."""
        return int(self.msgs_sent.sum())

    def to_dict(self) -> dict:
        """The paper's reported quantities as a JSON-serializable dict."""
        return {
            "msgs": self.total_msgs,
            "bytes": self.total_bytes,
            "max_msgs": self.max_msgs,
            "max_bytes": self.max_bytes,
        }


class CommStats:
    """Accumulates :class:`PhaseComm` records keyed by phase label.

    Use :meth:`snapshot_epoch` to pop the tallies accumulated since the
    previous snapshot — the simulation calls it once per iteration so
    per-iteration series (Figures 17–19) can be assembled.
    """

    def __init__(self, p: int) -> None:
        require(p >= 1, f"p must be >= 1, got {p}")
        self.p = p
        self._phases: dict[str, PhaseComm] = {}

    def _get(self, phase: str) -> PhaseComm:
        record = self._phases.get(phase)
        if record is None:
            record = PhaseComm.zeros(self.p)
            self._phases[phase] = record
        return record

    def record_message(self, phase: str, src: int, dst: int, nbytes: int) -> None:
        """Log one point-to-point message of ``nbytes`` from ``src`` to ``dst``."""
        require(0 <= src < self.p and 0 <= dst < self.p, "rank out of range")
        require(nbytes >= 0, "nbytes must be >= 0")
        record = self._get(phase)
        record.msgs_sent[src] += 1
        record.bytes_sent[src] += nbytes
        record.msgs_recv[dst] += 1
        record.bytes_recv[dst] += nbytes

    def record_collective(self, phase: str, nbytes_per_rank: np.ndarray) -> None:
        """Log a collective where each rank contributes ``nbytes_per_rank``.

        Counted as one logical message per rank in each direction.
        """
        record = self._get(phase)
        contrib = np.asarray(nbytes_per_rank, dtype=np.int64)
        require(contrib.shape == (self.p,), "nbytes_per_rank must have one slot per rank")
        record.msgs_sent += 1
        record.msgs_recv += 1
        record.bytes_sent += contrib
        record.bytes_recv += int(contrib.sum())

    def phase(self, name: str) -> PhaseComm:
        """Return the accumulated record for phase ``name`` (zeros if unseen)."""
        return self._phases.get(name, PhaseComm.zeros(self.p)).copy()

    def phases(self) -> list[str]:
        """Names of all phases with recorded traffic."""
        return sorted(self._phases)

    def snapshot_epoch(self) -> dict[str, PhaseComm]:
        """Return all tallies since the last snapshot, then reset them."""
        snap = {name: record.copy() for name, record in self._phases.items()}
        self._phases.clear()
        return snap

    def reset(self) -> None:
        """Discard all accumulated tallies."""
        self._phases.clear()

    # ------------------------------------------------------------------
    # state export / import (exact-resume checkpoints)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable snapshot of all per-phase tallies."""
        return {
            name: {
                "msgs_sent": record.msgs_sent.tolist(),
                "msgs_recv": record.msgs_recv.tolist(),
                "bytes_sent": record.bytes_sent.tolist(),
                "bytes_recv": record.bytes_recv.tolist(),
            }
            for name, record in self._phases.items()
        }

    def load_state(self, state: dict) -> None:
        """Restore tallies from a :meth:`state_dict` snapshot (exact)."""
        self._phases.clear()
        for name, record in state.items():
            arrays = {
                key: np.asarray(record[key], dtype=np.int64)
                for key in ("msgs_sent", "msgs_recv", "bytes_sent", "bytes_recv")
            }
            for key, arr in arrays.items():
                require(arr.shape == (self.p,), f"stats {name}/{key} must have length p={self.p}")
            self._phases[name] = PhaseComm(**arrays)
