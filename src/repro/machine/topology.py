"""Processor-grid topology helpers.

The mesh is BLOCK-distributed over a ``pr x pc`` logical processor grid
(paper §3.1); the field-solve phase exchanges halos with the four grid
neighbours.  :class:`BlockTopology` provides rank <-> (row, col) mapping
and neighbour lookup with periodic or open boundaries, and
:func:`best_process_grid` picks the most square factorization of ``p``.
"""

from __future__ import annotations

import numpy as np

from repro.util import require

__all__ = ["best_process_grid", "BlockTopology"]


def best_process_grid(p: int) -> tuple[int, int]:
    """Return the factorization ``(pr, pc)`` of ``p`` closest to square.

    ``pr * pc == p`` with ``pr <= pc`` and ``pc - pr`` minimal.
    """
    require(p >= 1, f"p must be >= 1, got {p}")
    best = (1, p)
    for pr in range(1, int(np.sqrt(p)) + 1):
        if p % pr == 0:
            best = (pr, p // pr)
    return best


class BlockTopology:
    """A 2-D logical processor grid with 4-neighbour connectivity.

    Parameters
    ----------
    pr, pc:
        Processor-grid rows and columns; ranks are row-major over the
        grid (rank = ``row * pc + col``).
    periodic:
        If True, neighbour lookups wrap around (matching periodic field
        boundary conditions); otherwise edge ranks have ``None``
        neighbours on the boundary sides.
    """

    def __init__(self, pr: int, pc: int, *, periodic: bool = True) -> None:
        require(pr >= 1 and pc >= 1, f"grid must be >= 1x1, got {pr}x{pc}")
        self.pr = pr
        self.pc = pc
        self.p = pr * pc
        self.periodic = periodic

    @classmethod
    def square_ish(cls, p: int, *, periodic: bool = True) -> "BlockTopology":
        """Build the most-square topology for ``p`` ranks."""
        pr, pc = best_process_grid(p)
        return cls(pr, pc, periodic=periodic)

    def coords(self, rank: int) -> tuple[int, int]:
        """Return ``(row, col)`` of ``rank``."""
        require(0 <= rank < self.p, f"rank {rank} out of range [0, {self.p})")
        return divmod(rank, self.pc)

    def rank(self, row: int, col: int) -> int:
        """Return the rank at ``(row, col)``, applying wrap if periodic."""
        if self.periodic:
            row %= self.pr
            col %= self.pc
        require(0 <= row < self.pr and 0 <= col < self.pc, f"coords ({row}, {col}) out of range")
        return row * self.pc + col

    def neighbors(self, rank: int) -> dict[str, int | None]:
        """Return the four grid neighbours of ``rank``.

        Keys are ``"north"`` (row-1), ``"south"`` (row+1), ``"west"``
        (col-1), ``"east"`` (col+1); values are ranks or ``None`` on an
        open boundary.  A neighbour that wraps onto the rank itself
        (degenerate 1-wide periodic grids) is reported normally — callers
        that exchange halos handle self-sends locally.
        """
        row, col = self.coords(rank)
        out: dict[str, int | None] = {}
        for key, (dr, dc) in {
            "north": (-1, 0),
            "south": (1, 0),
            "west": (0, -1),
            "east": (0, 1),
        }.items():
            nr, nc = row + dr, col + dc
            if self.periodic:
                out[key] = self.rank(nr, nc)
            elif 0 <= nr < self.pr and 0 <= nc < self.pc:
                out[key] = self.rank(nr, nc)
            else:
                out[key] = None
        return out

    def __repr__(self) -> str:
        return f"BlockTopology({self.pr}x{self.pc}, periodic={self.periodic})"
